#include "preprocess/features.h"

#include <cmath>

#include "common/math_utils.h"
#include "sensors/sensor_types.h"

namespace magneto::preprocess {

namespace {

using sensors::Channel;
using sensors::kNumChannels;

// Extracts column `ch` of `window` into a contiguous buffer.
void ExtractColumn(const Matrix& window, size_t ch, std::vector<float>* out) {
  out->resize(window.rows());
  for (size_t i = 0; i < window.rows(); ++i) (*out)[i] = window.At(i, ch);
}

// Euclidean magnitude of a tri-axial channel group.
void Magnitude(const Matrix& window, Channel x, Channel y, Channel z,
               std::vector<float>* out) {
  const size_t cx = static_cast<size_t>(x);
  const size_t cy = static_cast<size_t>(y);
  const size_t cz = static_cast<size_t>(z);
  out->resize(window.rows());
  for (size_t i = 0; i < window.rows(); ++i) {
    const double a = window.At(i, cx);
    const double b = window.At(i, cy);
    const double c = window.At(i, cz);
    (*out)[i] = static_cast<float>(std::sqrt(a * a + b * b + c * c));
  }
}

double ColumnStd(const Matrix& window, Channel c, std::vector<float>* buf) {
  ExtractColumn(window, static_cast<size_t>(c), buf);
  return stats::StdDev(buf->data(), buf->size());
}

double ColumnMean(const Matrix& window, Channel c, std::vector<float>* buf) {
  ExtractColumn(window, static_cast<size_t>(c), buf);
  return stats::Mean(buf->data(), buf->size());
}

constexpr Channel kMotionAxes[9] = {
    Channel::kAccX,    Channel::kAccY,    Channel::kAccZ,
    Channel::kGyroX,   Channel::kGyroY,   Channel::kGyroZ,
    Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ};

}  // namespace

Result<std::vector<float>> FeatureExtractor::Extract(
    const Matrix& window) const {
  if (window.cols() != kNumChannels) {
    return Status::InvalidArgument(
        "window must have " + std::to_string(kNumChannels) + " channels, got " +
        std::to_string(window.cols()));
  }
  if (window.rows() < 2) {
    return Status::InvalidArgument("window must have at least 2 samples");
  }

  std::vector<float> out;
  out.reserve(kNumFeatures);
  std::vector<float> buf;

  // [0..44] per-axis motion stats.
  for (Channel c : kMotionAxes) {
    ExtractColumn(window, static_cast<size_t>(c), &buf);
    const float* x = buf.data();
    const size_t n = buf.size();
    out.push_back(static_cast<float>(stats::Mean(x, n)));
    out.push_back(static_cast<float>(stats::StdDev(x, n)));
    out.push_back(static_cast<float>(stats::Min(x, n)));
    out.push_back(static_cast<float>(stats::Max(x, n)));
    out.push_back(static_cast<float>(stats::ZeroCrossingRate(x, n)));
  }

  // [45..68] magnitude-signal stats.
  const struct {
    Channel x, y, z;
  } kGroups[3] = {
      {Channel::kAccX, Channel::kAccY, Channel::kAccZ},
      {Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ},
      {Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ}};
  const size_t lag = std::max<size_t>(1, window.rows() / 10);
  for (const auto& g : kGroups) {
    Magnitude(window, g.x, g.y, g.z, &buf);
    const float* x = buf.data();
    const size_t n = buf.size();
    out.push_back(static_cast<float>(stats::Mean(x, n)));
    out.push_back(static_cast<float>(stats::StdDev(x, n)));
    out.push_back(static_cast<float>(stats::Skewness(x, n)));
    out.push_back(static_cast<float>(stats::Kurtosis(x, n)));
    out.push_back(static_cast<float>(stats::Energy(x, n)));
    out.push_back(static_cast<float>(stats::MeanAbsDiff(x, n)));
    out.push_back(static_cast<float>(stats::Autocorrelation(x, n, lag)));
    out.push_back(static_cast<float>(stats::Iqr(buf)));
  }

  // [69..71] accelerometer cross-axis correlations.
  std::vector<float> ax, ay, az;
  ExtractColumn(window, static_cast<size_t>(Channel::kAccX), &ax);
  ExtractColumn(window, static_cast<size_t>(Channel::kAccY), &ay);
  ExtractColumn(window, static_cast<size_t>(Channel::kAccZ), &az);
  const size_t n = ax.size();
  out.push_back(
      static_cast<float>(stats::PearsonCorrelation(ax.data(), ay.data(), n)));
  out.push_back(
      static_cast<float>(stats::PearsonCorrelation(ax.data(), az.data(), n)));
  out.push_back(
      static_cast<float>(stats::PearsonCorrelation(ay.data(), az.data(), n)));

  // [72..79] context stats.
  out.push_back(static_cast<float>(ColumnMean(window, Channel::kGravityZ, &buf)));
  out.push_back(static_cast<float>((ColumnStd(window, Channel::kRotX, &buf) +
                                    ColumnStd(window, Channel::kRotY, &buf) +
                                    ColumnStd(window, Channel::kRotZ, &buf)) /
                                   3.0));
  out.push_back(static_cast<float>((ColumnStd(window, Channel::kMagX, &buf) +
                                    ColumnStd(window, Channel::kMagY, &buf) +
                                    ColumnStd(window, Channel::kMagZ, &buf)) /
                                   3.0));
  out.push_back(
      static_cast<float>(ColumnMean(window, Channel::kPressure, &buf)));
  out.push_back(static_cast<float>(ColumnMean(window, Channel::kLight, &buf)));
  out.push_back(
      static_cast<float>(ColumnMean(window, Channel::kProximity, &buf)));
  out.push_back(static_cast<float>(ColumnMean(window, Channel::kSpeed, &buf)));
  out.push_back(static_cast<float>(ColumnStd(window, Channel::kSpeed, &buf)));

  MAGNETO_CHECK(out.size() == kNumFeatures);
  return out;
}

const std::vector<std::string>& FeatureExtractor::FeatureNames() {
  static const std::vector<std::string>& kNames = *[] {
    auto* names = new std::vector<std::string>();
    const char* axes[9] = {"acc_x",     "acc_y",     "acc_z",
                           "gyro_x",    "gyro_y",    "gyro_z",
                           "lin_acc_x", "lin_acc_y", "lin_acc_z"};
    const char* axis_stats[5] = {"mean", "std", "min", "max", "zcr"};
    for (const char* axis : axes) {
      for (const char* stat : axis_stats) {
        names->push_back(std::string(axis) + "_" + stat);
      }
    }
    const char* mags[3] = {"acc_mag", "gyro_mag", "lin_acc_mag"};
    const char* mag_stats[8] = {"mean",   "std",      "skew", "kurtosis",
                                "energy", "abs_diff", "acorr", "iqr"};
    for (const char* mag : mags) {
      for (const char* stat : mag_stats) {
        names->push_back(std::string(mag) + "_" + stat);
      }
    }
    names->push_back("acc_corr_xy");
    names->push_back("acc_corr_xz");
    names->push_back("acc_corr_yz");
    names->push_back("gravity_z_mean");
    names->push_back("rot_std_avg");
    names->push_back("mag_std_avg");
    names->push_back("pressure_mean");
    names->push_back("light_mean");
    names->push_back("proximity_mean");
    names->push_back("speed_mean");
    names->push_back("speed_std");
    MAGNETO_CHECK(names->size() == kNumFeatures);
    return names;
  }();
  return kNames;
}

}  // namespace magneto::preprocess
