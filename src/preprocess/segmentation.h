#ifndef MAGNETO_PREPROCESS_SEGMENTATION_H_
#define MAGNETO_PREPROCESS_SEGMENTATION_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/serial.h"
#include "sensors/recording.h"

namespace magneto::preprocess {

/// Fixed-length windowing of a continuous recording.
///
/// The paper segments the stream into one-second windows of ~120 samples
/// (§4.1.2); `stride` < `window_samples` gives overlapping windows, which the
/// edge learner uses to squeeze more training windows out of a short 20-30 s
/// capture.
struct SegmentationConfig {
  size_t window_samples = 120;
  size_t stride = 120;  ///< samples between window starts; == window -> no overlap
  /// Drop a trailing partial window (always true in this implementation; a
  /// partial window would distort the statistical features).

  void Serialize(BinaryWriter* writer) const;
  static Result<SegmentationConfig> Deserialize(BinaryReader* reader);
};

/// Splits `samples` (rows = time) into windows of `window_samples` rows every
/// `stride` rows. Trailing samples that do not fill a window are dropped.
Result<std::vector<Matrix>> Segment(const Matrix& samples,
                                    const SegmentationConfig& config);

/// Convenience overload for recordings.
Result<std::vector<Matrix>> Segment(const sensors::Recording& recording,
                                    const SegmentationConfig& config);

}  // namespace magneto::preprocess

#endif  // MAGNETO_PREPROCESS_SEGMENTATION_H_
