#include "preprocess/denoise.h"

#include <algorithm>
#include <vector>

namespace magneto::preprocess {

void DenoiseConfig::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(method));
  writer->WriteU64(window);
  writer->WriteF64(alpha);
}

Result<DenoiseConfig> DenoiseConfig::Deserialize(BinaryReader* reader) {
  DenoiseConfig config;
  MAGNETO_ASSIGN_OR_RETURN(uint8_t method, reader->ReadU8());
  if (method > static_cast<uint8_t>(DenoiseMethod::kLowPass)) {
    return Status::Corruption("bad denoise method: " + std::to_string(method));
  }
  config.method = static_cast<DenoiseMethod>(method);
  MAGNETO_ASSIGN_OR_RETURN(config.window, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(config.alpha, reader->ReadF64());
  return config;
}

namespace {

// Centred boxcar with shrinking window at the edges. O(n) per channel via a
// sliding sum.
void MovingAverageColumn(const Matrix& in, Matrix* out, size_t col,
                         size_t window) {
  const size_t n = in.rows();
  const size_t half = window / 2;
  double sum = 0.0;
  size_t lo = 0, hi = 0;  // current [lo, hi) window
  for (size_t i = 0; i < n; ++i) {
    const size_t want_lo = i >= half ? i - half : 0;
    const size_t want_hi = std::min(n, i + half + 1);
    while (hi < want_hi) sum += in.At(hi++, col);
    while (lo < want_lo) sum -= in.At(lo++, col);
    out->At(i, col) = static_cast<float>(sum / static_cast<double>(hi - lo));
  }
}

void MedianColumn(const Matrix& in, Matrix* out, size_t col, size_t window) {
  const size_t n = in.rows();
  const size_t half = window / 2;
  std::vector<float> buf;
  buf.reserve(window);
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(n, i + half + 1);
    buf.clear();
    for (size_t j = lo; j < hi; ++j) buf.push_back(in.At(j, col));
    std::nth_element(buf.begin(), buf.begin() + (buf.size() / 2), buf.end());
    out->At(i, col) = buf[buf.size() / 2];
  }
}

void LowPassColumn(const Matrix& in, Matrix* out, size_t col, double alpha) {
  const size_t n = in.rows();
  if (n == 0) return;
  double y = in.At(0, col);
  out->At(0, col) = static_cast<float>(y);
  for (size_t i = 1; i < n; ++i) {
    y = alpha * in.At(i, col) + (1.0 - alpha) * y;
    out->At(i, col) = static_cast<float>(y);
  }
}

}  // namespace

Result<Matrix> Denoise(const Matrix& samples, const DenoiseConfig& config) {
  if (config.method == DenoiseMethod::kNone) return samples;
  if (config.method == DenoiseMethod::kLowPass) {
    if (config.alpha <= 0.0 || config.alpha > 1.0) {
      return Status::InvalidArgument("low-pass alpha must be in (0, 1]");
    }
  } else {
    if (config.window == 0 || config.window % 2 == 0) {
      return Status::InvalidArgument("denoise window must be odd and >= 1");
    }
  }

  Matrix out(samples.rows(), samples.cols());
  for (size_t c = 0; c < samples.cols(); ++c) {
    switch (config.method) {
      case DenoiseMethod::kMovingAverage:
        MovingAverageColumn(samples, &out, c, config.window);
        break;
      case DenoiseMethod::kMedian:
        MedianColumn(samples, &out, c, config.window);
        break;
      case DenoiseMethod::kLowPass:
        LowPassColumn(samples, &out, c, config.alpha);
        break;
      case DenoiseMethod::kNone:
        break;
    }
  }
  return out;
}

}  // namespace magneto::preprocess
