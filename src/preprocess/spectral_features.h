#ifndef MAGNETO_PREPROCESS_SPECTRAL_FEATURES_H_
#define MAGNETO_PREPROCESS_SPECTRAL_FEATURES_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace magneto::preprocess {

/// Number of spectral features per window.
inline constexpr size_t kNumSpectralFeatures = 27;

/// The "more advanced feature extractor" slot the paper leaves open (§3.2
/// item 1: "more advanced feature extractors can be explored and integrated
/// into our framework"). FFT-based descriptors of the motion channels:
///
///   per magnitude group (|acc|, |gyro|, |lin_acc|):
///     dominant frequency, spectral centroid, spectral entropy,
///     band power 0.5-3 Hz (gait band), 3-8 Hz (vigorous motion / gesture),
///     8-20 Hz (vibration)                                  (3 x 6 = 18)
///   per motion axis (acc/gyro/lin_acc x/y/z):
///     dominant frequency                                   (9)
///
/// Cost is O(window log window) per window — still constant-bounded per
/// one-second window, preserving the real-time property.
class SpectralFeatureExtractor {
 public:
  explicit SpectralFeatureExtractor(double sample_rate_hz = 120.0)
      : sample_rate_hz_(sample_rate_hz) {}

  double sample_rate_hz() const { return sample_rate_hz_; }

  /// Computes the 27 features on `window` (rows = time, 22 channels).
  Result<std::vector<float>> Extract(const Matrix& window) const;

  static const std::vector<std::string>& FeatureNames();

 private:
  double sample_rate_hz_;
};

}  // namespace magneto::preprocess

#endif  // MAGNETO_PREPROCESS_SPECTRAL_FEATURES_H_
