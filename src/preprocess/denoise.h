#ifndef MAGNETO_PREPROCESS_DENOISE_H_
#define MAGNETO_PREPROCESS_DENOISE_H_

#include <cstdint>

#include "common/matrix.h"
#include "common/result.h"
#include "common/serial.h"

namespace magneto::preprocess {

/// Denoising filter applied independently to each sensor channel (column).
enum class DenoiseMethod : uint8_t {
  kNone = 0,
  kMovingAverage = 1,  ///< centred boxcar of `window` samples
  kMedian = 2,         ///< centred running median of `window` samples
  kLowPass = 3,        ///< single-pole IIR, y[t] = a*x[t] + (1-a)*y[t-1]
};

struct DenoiseConfig {
  DenoiseMethod method = DenoiseMethod::kMovingAverage;
  size_t window = 5;    ///< for kMovingAverage / kMedian; must be odd and >= 1
  double alpha = 0.3;   ///< for kLowPass; in (0, 1]

  void Serialize(BinaryWriter* writer) const;
  static Result<DenoiseConfig> Deserialize(BinaryReader* reader);
};

/// Returns a denoised copy of `samples` (rows = time, cols = channels).
/// All methods are linear (or near-linear) in the number of samples, keeping
/// the paper's "preprocessing requires linear time" property.
Result<Matrix> Denoise(const Matrix& samples, const DenoiseConfig& config);

}  // namespace magneto::preprocess

#endif  // MAGNETO_PREPROCESS_DENOISE_H_
