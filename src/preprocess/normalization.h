#ifndef MAGNETO_PREPROCESS_NORMALIZATION_H_
#define MAGNETO_PREPROCESS_NORMALIZATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "sensors/dataset.h"

namespace magneto::preprocess {

enum class NormalizationMethod : uint8_t {
  kNone = 0,
  kZScore = 1,  ///< (x - mean) / std, per dimension
  kMinMax = 2,  ///< (x - min) / (max - min), per dimension
};

/// Per-dimension affine normaliser with *frozen* statistics.
///
/// The statistics are fitted once on the cloud pre-training data and shipped
/// to the edge as part of the bundle ("the pre-processing function", §3.2
/// item 1). The edge never re-fits them: incremental updates must live in the
/// same input space the backbone was trained in, otherwise old prototypes and
/// the distillation targets would silently shift.
class Normalizer {
 public:
  Normalizer() = default;

  /// Fits statistics of `method` on the rows of `data`.
  static Result<Normalizer> Fit(NormalizationMethod method,
                                const sensors::FeatureDataset& data);

  NormalizationMethod method() const { return method_; }
  bool fitted() const { return method_ == NormalizationMethod::kNone || !scale_.empty(); }
  size_t dim() const { return offset_.size(); }

  /// Normalises one feature vector in place.
  Status Apply(std::vector<float>* features) const;
  Status Apply(float* features, size_t n) const;

  /// Normalises every row of `data`, returning a new dataset.
  Result<sensors::FeatureDataset> ApplyToDataset(
      const sensors::FeatureDataset& data) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Normalizer> Deserialize(BinaryReader* reader);

  bool operator==(const Normalizer& other) const {
    return method_ == other.method_ && offset_ == other.offset_ &&
           scale_ == other.scale_;
  }

 private:
  NormalizationMethod method_ = NormalizationMethod::kNone;
  // Normalised value = (x - offset) * scale, per dimension.
  std::vector<float> offset_;
  std::vector<float> scale_;
};

}  // namespace magneto::preprocess

#endif  // MAGNETO_PREPROCESS_NORMALIZATION_H_
