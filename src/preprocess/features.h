#ifndef MAGNETO_PREPROCESS_FEATURES_H_
#define MAGNETO_PREPROCESS_FEATURES_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace magneto::preprocess {

/// Number of hand-crafted statistical features per window (§4.1.2: "We
/// extract 80 statistical features").
inline constexpr size_t kNumFeatures = 80;

/// The paper's "primary feature extractor that relies on handcrafted
/// statistic features, requiring linear processing time" (§3.2 item 1).
///
/// Layout of the 80-dimensional vector, computed on one window
/// (window_samples x 22 channels):
///
///   [0..44]  per-axis stats on the 9 motion channels
///            (acc x/y/z, gyro x/y/z, lin_acc x/y/z):
///            mean, std, min, max, zero-crossing rate       (9 x 5 = 45)
///   [45..68] magnitude-signal stats on |acc|, |gyro|, |lin_acc|:
///            mean, std, skewness, kurtosis, energy,
///            mean |diff|, autocorr(lag=win/10), IQR        (3 x 8 = 24)
///   [69..71] accelerometer cross-axis Pearson correlations
///            (xy, xz, yz)                                  (3)
///   [72..79] context stats: gravity_z mean, rotation std (avg of 3 axes),
///            magnetometer std (avg of 3 axes), pressure mean, light mean,
///            proximity mean, speed mean, speed std         (8)
///
/// Every statistic is O(window) except IQR/quantiles, which are
/// O(window log window) on a 120-sample window — constant-bounded per window,
/// so the pipeline stays linear in stream length.
class FeatureExtractor {
 public:
  FeatureExtractor() = default;

  /// Computes the 80 features on `window` (rows = time, 22 columns).
  /// Fails with kInvalidArgument if the window has the wrong channel count or
  /// fewer than 2 samples.
  Result<std::vector<float>> Extract(const Matrix& window) const;

  /// Stable names for each of the 80 dimensions, for docs and debugging.
  static const std::vector<std::string>& FeatureNames();
};

}  // namespace magneto::preprocess

#endif  // MAGNETO_PREPROCESS_FEATURES_H_
