#ifndef MAGNETO_PREPROCESS_PIPELINE_H_
#define MAGNETO_PREPROCESS_PIPELINE_H_

#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "preprocess/denoise.h"
#include "preprocess/features.h"
#include "preprocess/normalization.h"
#include "preprocess/segmentation.h"
#include "preprocess/spectral_features.h"
#include "sensors/dataset.h"
#include "sensors/synthetic_generator.h"

namespace magneto::preprocess {

/// Which feature family the pipeline produces per window.
enum class FeatureMode : uint8_t {
  kStatistical = 0,  ///< the paper's 80 hand-crafted statistics (default)
  kSpectral = 1,     ///< 27 FFT-based descriptors
  kCombined = 2,     ///< both, concatenated (107)
};

/// Feature dimension produced by a mode.
size_t FeatureDim(FeatureMode mode);

/// Configuration of the full preprocessing function.
struct PipelineConfig {
  DenoiseConfig denoise;
  SegmentationConfig segmentation;
  NormalizationMethod normalization = NormalizationMethod::kZScore;
  FeatureMode features = FeatureMode::kStatistical;
  double sample_rate_hz = 120.0;  ///< used by the spectral extractor

  void Serialize(BinaryWriter* writer) const;
  static Result<PipelineConfig> Deserialize(BinaryReader* reader);
};

/// The paper's "pre-processing function" (§3.2 item 1): denoising ->
/// segmentation -> feature extraction -> normalisation, as one serialisable
/// unit that the cloud ships to the edge.
///
/// Usage: the cloud calls `Fit` on the pre-training recordings (freezing the
/// normaliser statistics), the edge then calls `Process`/`ProcessLabeled` on
/// fresh sensor data. Both ends run the identical code path — there is no
/// cloud-only shortcut.
class Pipeline {
 public:
  Pipeline() = default;
  explicit Pipeline(PipelineConfig config)
      : config_(config), spectral_(config.sample_rate_hz) {}

  const PipelineConfig& config() const { return config_; }
  const Normalizer& normalizer() const { return normalizer_; }
  bool fitted() const {
    return config_.normalization == NormalizationMethod::kNone ||
           normalizer_.dim() > 0;
  }

  /// Fits the normaliser on `recordings` and returns the processed dataset.
  /// (Cloud-side, done once.)
  Result<sensors::FeatureDataset> Fit(
      const std::vector<sensors::LabeledRecording>& recordings);

  /// Processes one recording into per-window feature vectors using the frozen
  /// normaliser. Fails with kFailedPrecondition if not fitted.
  Result<std::vector<std::vector<float>>> Process(
      const sensors::Recording& recording) const;

  /// Processes one already-segmented window.
  Result<std::vector<float>> ProcessWindow(const Matrix& window) const;

  /// Processes labeled recordings into a labeled dataset (frozen normaliser).
  Result<sensors::FeatureDataset> ProcessLabeled(
      const std::vector<sensors::LabeledRecording>& recordings) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Pipeline> Deserialize(BinaryReader* reader);

  /// Feature dimension this pipeline produces per window.
  size_t feature_dim() const { return FeatureDim(config_.features); }

 private:
  /// Runs the configured feature extractor(s) on one denoised window.
  Result<std::vector<float>> Featurize(const Matrix& window) const;

  /// Denoise + segment + featurise, no normalisation.
  Result<sensors::FeatureDataset> RawFeatures(
      const std::vector<sensors::LabeledRecording>& recordings) const;

  PipelineConfig config_;
  FeatureExtractor extractor_;
  SpectralFeatureExtractor spectral_;
  Normalizer normalizer_;
};

}  // namespace magneto::preprocess

#endif  // MAGNETO_PREPROCESS_PIPELINE_H_
