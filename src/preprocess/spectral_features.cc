#include "preprocess/spectral_features.h"

#include <cmath>

#include "common/fft.h"
#include "sensors/sensor_types.h"

namespace magneto::preprocess {

namespace {

using sensors::Channel;
using sensors::kNumChannels;

constexpr Channel kMotionAxes[9] = {
    Channel::kAccX,    Channel::kAccY,    Channel::kAccZ,
    Channel::kGyroX,   Channel::kGyroY,   Channel::kGyroZ,
    Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ};

void ExtractColumn(const Matrix& window, Channel ch, std::vector<float>* out) {
  const size_t c = static_cast<size_t>(ch);
  out->resize(window.rows());
  for (size_t i = 0; i < window.rows(); ++i) (*out)[i] = window.At(i, c);
}

void Magnitude(const Matrix& window, Channel x, Channel y, Channel z,
               std::vector<float>* out) {
  out->resize(window.rows());
  for (size_t i = 0; i < window.rows(); ++i) {
    const double a = window.At(i, static_cast<size_t>(x));
    const double b = window.At(i, static_cast<size_t>(y));
    const double c = window.At(i, static_cast<size_t>(z));
    (*out)[i] = static_cast<float>(std::sqrt(a * a + b * b + c * c));
  }
}

/// Removes the mean so the DC bin does not swamp the gait bands.
void RemoveMean(std::vector<float>* x) {
  double mean = 0.0;
  for (float v : *x) mean += v;
  mean /= static_cast<double>(x->size());
  for (float& v : *x) v = static_cast<float>(v - mean);
}

}  // namespace

Result<std::vector<float>> SpectralFeatureExtractor::Extract(
    const Matrix& window) const {
  if (window.cols() != kNumChannels) {
    return Status::InvalidArgument(
        "window must have " + std::to_string(kNumChannels) + " channels, got " +
        std::to_string(window.cols()));
  }
  if (window.rows() < 4) {
    return Status::InvalidArgument("window must have at least 4 samples");
  }

  std::vector<float> out;
  out.reserve(kNumSpectralFeatures);
  std::vector<float> buf;

  const struct {
    Channel x, y, z;
  } kGroups[3] = {
      {Channel::kAccX, Channel::kAccY, Channel::kAccZ},
      {Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ},
      {Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ}};

  for (const auto& g : kGroups) {
    Magnitude(window, g.x, g.y, g.z, &buf);
    RemoveMean(&buf);
    const size_t padded = NextPowerOfTwo(buf.size());
    const std::vector<double> power = PowerSpectrum(buf.data(), buf.size());
    out.push_back(static_cast<float>(
        spectral::DominantFrequency(power, sample_rate_hz_, padded)));
    out.push_back(static_cast<float>(
        spectral::SpectralCentroid(power, sample_rate_hz_, padded)));
    out.push_back(static_cast<float>(spectral::SpectralEntropy(power)));
    out.push_back(static_cast<float>(
        spectral::BandPower(power, sample_rate_hz_, padded, 0.5, 3.0)));
    out.push_back(static_cast<float>(
        spectral::BandPower(power, sample_rate_hz_, padded, 3.0, 8.0)));
    out.push_back(static_cast<float>(
        spectral::BandPower(power, sample_rate_hz_, padded, 8.0, 20.0)));
  }

  for (Channel c : kMotionAxes) {
    ExtractColumn(window, c, &buf);
    RemoveMean(&buf);
    const size_t padded = NextPowerOfTwo(buf.size());
    const std::vector<double> power = PowerSpectrum(buf.data(), buf.size());
    out.push_back(static_cast<float>(
        spectral::DominantFrequency(power, sample_rate_hz_, padded)));
  }

  MAGNETO_CHECK(out.size() == kNumSpectralFeatures);
  return out;
}

const std::vector<std::string>& SpectralFeatureExtractor::FeatureNames() {
  static const std::vector<std::string>& kNames = *[] {
    auto* names = new std::vector<std::string>();
    const char* groups[3] = {"acc_mag", "gyro_mag", "lin_acc_mag"};
    const char* stats[6] = {"dom_freq", "centroid",   "entropy",
                            "band_gait", "band_mid",  "band_vib"};
    for (const char* group : groups) {
      for (const char* stat : stats) {
        names->push_back(std::string(group) + "_" + stat);
      }
    }
    const char* axes[9] = {"acc_x",     "acc_y",     "acc_z",
                           "gyro_x",    "gyro_y",    "gyro_z",
                           "lin_acc_x", "lin_acc_y", "lin_acc_z"};
    for (const char* axis : axes) {
      names->push_back(std::string(axis) + "_dom_freq");
    }
    MAGNETO_CHECK(names->size() == kNumSpectralFeatures);
    return names;
  }();
  return kNames;
}

}  // namespace magneto::preprocess
