#include "preprocess/pipeline.h"

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::preprocess {

namespace {

struct PipelineMetrics {
  obs::Counter* recordings =
      obs::Registry::Global().GetCounter("pipeline.recordings");
  obs::Counter* windows =
      obs::Registry::Global().GetCounter("pipeline.windows");
  obs::Counter* stream_windows =
      obs::Registry::Global().GetCounter("pipeline.stream_windows");
  obs::Histogram* batch_ms = obs::Registry::Global().GetHistogram(
      "pipeline.batch_ms", obs::LatencyBucketsMs());
  obs::Histogram* window_us =
      obs::Registry::Global().GetHistogram("pipeline.window_us");
};

PipelineMetrics& Metrics() {
  static PipelineMetrics* metrics = new PipelineMetrics;
  return *metrics;
}

/// Returns the first non-OK status in `statuses`, or OK. Scanning in index
/// order keeps the reported error identical to the serial loop's.
Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

size_t FeatureDim(FeatureMode mode) {
  switch (mode) {
    case FeatureMode::kStatistical:
      return kNumFeatures;
    case FeatureMode::kSpectral:
      return kNumSpectralFeatures;
    case FeatureMode::kCombined:
      return kNumFeatures + kNumSpectralFeatures;
  }
  return 0;
}

void PipelineConfig::Serialize(BinaryWriter* writer) const {
  denoise.Serialize(writer);
  segmentation.Serialize(writer);
  writer->WriteU8(static_cast<uint8_t>(normalization));
  writer->WriteU8(static_cast<uint8_t>(features));
  writer->WriteF64(sample_rate_hz);
}

Result<PipelineConfig> PipelineConfig::Deserialize(BinaryReader* reader) {
  PipelineConfig config;
  MAGNETO_ASSIGN_OR_RETURN(config.denoise, DenoiseConfig::Deserialize(reader));
  MAGNETO_ASSIGN_OR_RETURN(config.segmentation,
                           SegmentationConfig::Deserialize(reader));
  MAGNETO_ASSIGN_OR_RETURN(uint8_t norm, reader->ReadU8());
  if (norm > static_cast<uint8_t>(NormalizationMethod::kMinMax)) {
    return Status::Corruption("bad normalization method: " +
                              std::to_string(norm));
  }
  config.normalization = static_cast<NormalizationMethod>(norm);
  MAGNETO_ASSIGN_OR_RETURN(uint8_t features, reader->ReadU8());
  if (features > static_cast<uint8_t>(FeatureMode::kCombined)) {
    return Status::Corruption("bad feature mode: " + std::to_string(features));
  }
  config.features = static_cast<FeatureMode>(features);
  MAGNETO_ASSIGN_OR_RETURN(config.sample_rate_hz, reader->ReadF64());
  return config;
}

Result<std::vector<float>> Pipeline::Featurize(const Matrix& window) const {
  switch (config_.features) {
    case FeatureMode::kStatistical:
      return extractor_.Extract(window);
    case FeatureMode::kSpectral:
      return spectral_.Extract(window);
    case FeatureMode::kCombined: {
      MAGNETO_ASSIGN_OR_RETURN(std::vector<float> stat,
                               extractor_.Extract(window));
      MAGNETO_ASSIGN_OR_RETURN(std::vector<float> spec,
                               spectral_.Extract(window));
      stat.insert(stat.end(), spec.begin(), spec.end());
      return stat;
    }
  }
  return Status::Internal("unknown feature mode");
}

Result<sensors::FeatureDataset> Pipeline::RawFeatures(
    const std::vector<sensors::LabeledRecording>& recordings) const {
  obs::TraceSpan span("Pipeline::RawFeatures");
  obs::ScopedTimer timer(Metrics().batch_ms, /*scale=*/1e3);
  Metrics().recordings->Increment(recordings.size());

  // Stage 1: denoise + segment, one recording per work item.
  const size_t n = recordings.size();
  std::vector<std::vector<Matrix>> windows(n);
  std::vector<Status> seg_status(n, Status::Ok());
  {
    obs::TraceSpan segment_span("Pipeline::DenoiseSegment");
    ParallelFor(0, n, 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        Result<Matrix> denoised =
            Denoise(recordings[i].recording.samples, config_.denoise);
        if (!denoised.ok()) {
          seg_status[i] = denoised.status();
          continue;
        }
        Result<std::vector<Matrix>> segs =
            Segment(denoised.value(), config_.segmentation);
        if (!segs.ok()) {
          seg_status[i] = segs.status();
          continue;
        }
        windows[i] = std::move(segs).value();
      }
    });
  }
  MAGNETO_RETURN_IF_ERROR(FirstError(seg_status));

  // Stage 2: featurize every window. The flattened work list preserves
  // (recording, window) order, so the assembled dataset matches the serial
  // loop row for row.
  std::vector<const Matrix*> work;
  std::vector<sensors::ActivityId> work_labels;
  for (size_t i = 0; i < n; ++i) {
    for (const Matrix& w : windows[i]) {
      work.push_back(&w);
      work_labels.push_back(recordings[i].label);
    }
  }
  Metrics().windows->Increment(work.size());
  std::vector<std::vector<float>> features(work.size());
  std::vector<Status> feat_status(work.size(), Status::Ok());
  {
    obs::TraceSpan featurize_span("Pipeline::Featurize");
    ParallelFor(0, work.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        Result<std::vector<float>> f = Featurize(*work[i]);
        if (f.ok()) {
          features[i] = std::move(f).value();
        } else {
          feat_status[i] = f.status();
        }
      }
    });
  }
  MAGNETO_RETURN_IF_ERROR(FirstError(feat_status));

  sensors::FeatureDataset out;
  for (size_t i = 0; i < work.size(); ++i) {
    out.Append(features[i], work_labels[i]);
  }
  return out;
}

Result<sensors::FeatureDataset> Pipeline::Fit(
    const std::vector<sensors::LabeledRecording>& recordings) {
  obs::TraceSpan span("Pipeline::Fit");
  MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset raw,
                           RawFeatures(recordings));
  if (raw.empty()) {
    return Status::InvalidArgument(
        "no complete windows in the fitting recordings");
  }
  MAGNETO_ASSIGN_OR_RETURN(normalizer_,
                           Normalizer::Fit(config_.normalization, raw));
  return normalizer_.ApplyToDataset(raw);
}

Result<std::vector<float>> Pipeline::ProcessWindow(const Matrix& window) const {
  if (!fitted()) {
    return Status::FailedPrecondition("pipeline normalizer not fitted");
  }
  obs::TraceSpan span("Pipeline::ProcessWindow");
  obs::ScopedTimer timer(Metrics().window_us);
  Metrics().stream_windows->Increment();
  MAGNETO_ASSIGN_OR_RETURN(Matrix denoised, Denoise(window, config_.denoise));
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> features, Featurize(denoised));
  MAGNETO_RETURN_IF_ERROR(normalizer_.Apply(&features));
  return features;
}

Result<std::vector<std::vector<float>>> Pipeline::Process(
    const sensors::Recording& recording) const {
  if (!fitted()) {
    return Status::FailedPrecondition("pipeline normalizer not fitted");
  }
  MAGNETO_ASSIGN_OR_RETURN(Matrix denoised,
                           Denoise(recording.samples, config_.denoise));
  MAGNETO_ASSIGN_OR_RETURN(std::vector<Matrix> windows,
                           Segment(denoised, config_.segmentation));
  std::vector<std::vector<float>> out(windows.size());
  std::vector<Status> status(windows.size(), Status::Ok());
  ParallelFor(0, windows.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      Result<std::vector<float>> features = Featurize(windows[i]);
      if (!features.ok()) {
        status[i] = features.status();
        continue;
      }
      out[i] = std::move(features).value();
      status[i] = normalizer_.Apply(&out[i]);
    }
  });
  MAGNETO_RETURN_IF_ERROR(FirstError(status));
  return out;
}

Result<sensors::FeatureDataset> Pipeline::ProcessLabeled(
    const std::vector<sensors::LabeledRecording>& recordings) const {
  if (!fitted()) {
    return Status::FailedPrecondition("pipeline normalizer not fitted");
  }
  obs::TraceSpan span("Pipeline::ProcessLabeled");
  MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset raw,
                           RawFeatures(recordings));
  return normalizer_.ApplyToDataset(raw);
}

void Pipeline::Serialize(BinaryWriter* writer) const {
  config_.Serialize(writer);
  normalizer_.Serialize(writer);
}

Result<Pipeline> Pipeline::Deserialize(BinaryReader* reader) {
  Pipeline pipeline;
  MAGNETO_ASSIGN_OR_RETURN(pipeline.config_,
                           PipelineConfig::Deserialize(reader));
  pipeline.spectral_ = SpectralFeatureExtractor(pipeline.config_.sample_rate_hz);
  MAGNETO_ASSIGN_OR_RETURN(pipeline.normalizer_,
                           Normalizer::Deserialize(reader));
  return pipeline;
}

}  // namespace magneto::preprocess
