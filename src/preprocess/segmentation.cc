#include "preprocess/segmentation.h"

namespace magneto::preprocess {

void SegmentationConfig::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(window_samples);
  writer->WriteU64(stride);
}

Result<SegmentationConfig> SegmentationConfig::Deserialize(
    BinaryReader* reader) {
  SegmentationConfig config;
  MAGNETO_ASSIGN_OR_RETURN(config.window_samples, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(config.stride, reader->ReadU64());
  return config;
}

Result<std::vector<Matrix>> Segment(const Matrix& samples,
                                    const SegmentationConfig& config) {
  if (config.window_samples == 0) {
    return Status::InvalidArgument("window_samples must be > 0");
  }
  if (config.stride == 0) {
    return Status::InvalidArgument("stride must be > 0");
  }
  std::vector<Matrix> windows;
  if (samples.rows() < config.window_samples) return windows;
  for (size_t start = 0; start + config.window_samples <= samples.rows();
       start += config.stride) {
    windows.push_back(samples.RowSlice(start, start + config.window_samples));
  }
  return windows;
}

Result<std::vector<Matrix>> Segment(const sensors::Recording& recording,
                                    const SegmentationConfig& config) {
  return Segment(recording.samples, config);
}

}  // namespace magneto::preprocess
