#include "preprocess/normalization.h"

#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace magneto::preprocess {

Result<Normalizer> Normalizer::Fit(NormalizationMethod method,
                                   const sensors::FeatureDataset& data) {
  Normalizer norm;
  norm.method_ = method;
  if (method == NormalizationMethod::kNone) return norm;
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit normalizer on empty dataset");
  }
  const size_t d = data.dim();
  const size_t n = data.size();
  norm.offset_.assign(d, 0.0f);
  norm.scale_.assign(d, 1.0f);

  if (method == NormalizationMethod::kZScore) {
    std::vector<double> mean(d, 0.0), m2(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const float* row = data.Row(i);
      for (size_t j = 0; j < d; ++j) mean[j] += row[j];
    }
    for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      const float* row = data.Row(i);
      for (size_t j = 0; j < d; ++j) {
        const double diff = row[j] - mean[j];
        m2[j] += diff * diff;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      const double var = m2[j] / static_cast<double>(n);
      const double stddev = std::sqrt(var);
      norm.offset_[j] = static_cast<float>(mean[j]);
      // Constant dimensions map to 0 (offset subtracts the constant).
      norm.scale_[j] =
          stddev > 1e-12 ? static_cast<float>(1.0 / stddev) : 1.0f;
    }
  } else {  // kMinMax
    std::vector<float> lo(d, std::numeric_limits<float>::max());
    std::vector<float> hi(d, std::numeric_limits<float>::lowest());
    for (size_t i = 0; i < n; ++i) {
      const float* row = data.Row(i);
      for (size_t j = 0; j < d; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
    for (size_t j = 0; j < d; ++j) {
      norm.offset_[j] = lo[j];
      const float range = hi[j] - lo[j];
      norm.scale_[j] = range > 1e-12f ? 1.0f / range : 1.0f;
    }
  }
  return norm;
}

Status Normalizer::Apply(std::vector<float>* features) const {
  return Apply(features->data(), features->size());
}

Status Normalizer::Apply(float* features, size_t n) const {
  if (method_ == NormalizationMethod::kNone) return Status::Ok();
  if (n != offset_.size()) {
    return Status::InvalidArgument(
        "feature dim " + std::to_string(n) + " != normalizer dim " +
        std::to_string(offset_.size()));
  }
  for (size_t j = 0; j < n; ++j) {
    features[j] = (features[j] - offset_[j]) * scale_[j];
  }
  return Status::Ok();
}

Result<sensors::FeatureDataset> Normalizer::ApplyToDataset(
    const sensors::FeatureDataset& data) const {
  sensors::FeatureDataset out;
  std::vector<float> row(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    row = data.RowVector(i);
    MAGNETO_RETURN_IF_ERROR(Apply(&row));
    out.Append(row, data.Label(i));
  }
  return out;
}

void Normalizer::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(method_));
  writer->WriteF32Vector(offset_);
  writer->WriteF32Vector(scale_);
}

Result<Normalizer> Normalizer::Deserialize(BinaryReader* reader) {
  Normalizer norm;
  MAGNETO_ASSIGN_OR_RETURN(uint8_t method, reader->ReadU8());
  if (method > static_cast<uint8_t>(NormalizationMethod::kMinMax)) {
    return Status::Corruption("bad normalization method: " +
                              std::to_string(method));
  }
  norm.method_ = static_cast<NormalizationMethod>(method);
  MAGNETO_ASSIGN_OR_RETURN(norm.offset_, reader->ReadF32Vector());
  MAGNETO_ASSIGN_OR_RETURN(norm.scale_, reader->ReadF32Vector());
  if (norm.offset_.size() != norm.scale_.size()) {
    return Status::Corruption("normalizer offset/scale size mismatch");
  }
  return norm;
}

}  // namespace magneto::preprocess
