#include "nn/layer_norm.h"

#include <cmath>

namespace magneto::nn {

LayerNorm::LayerNorm(size_t dim, double epsilon)
    : dim_(dim),
      epsilon_(epsilon),
      gamma_(1, dim),
      beta_(1, dim),
      grad_gamma_(1, dim),
      grad_beta_(1, dim) {
  MAGNETO_CHECK(dim > 0);
  gamma_.Fill(1.0f);
}

void LayerNorm::Forward(const Matrix& input, bool /*training*/,
                        LayerState* state, Matrix* output) const {
  MAGNETO_CHECK(input.cols() == dim_);
  const size_t batch = input.rows();
  if (state != nullptr) {
    state->cached.ResetForOverwrite(batch, dim_);  // x_hat
    state->stats.resize(batch);                    // 1/std per row
  }
  output->ResetForOverwrite(batch, dim_);
  for (size_t r = 0; r < batch; ++r) {
    const float* x = input.RowPtr(r);
    double mean = 0.0;
    for (size_t j = 0; j < dim_; ++j) mean += x[j];
    mean /= static_cast<double>(dim_);
    double var = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double d = x[j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim_);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    if (state != nullptr) state->stats[r] = inv_std;
    float* xhat = state != nullptr ? state->cached.RowPtr(r) : nullptr;
    float* y = output->RowPtr(r);
    const float* g = gamma_.RowPtr(0);
    const float* b = beta_.RowPtr(0);
    for (size_t j = 0; j < dim_; ++j) {
      const float xh = (x[j] - static_cast<float>(mean)) * inv_std;
      if (xhat != nullptr) xhat[j] = xh;
      y[j] = g[j] * xh + b[j];
    }
  }
}

void LayerNorm::Backward(const Matrix& grad_output, const Matrix& /*input*/,
                         const Matrix& /*output*/, LayerState* state,
                         Matrix* grad_input) {
  MAGNETO_CHECK(state != nullptr);
  MAGNETO_CHECK(grad_output.rows() == state->cached.rows());
  MAGNETO_CHECK(grad_output.cols() == dim_);
  const size_t batch = grad_output.rows();
  grad_input->ResetForOverwrite(batch, dim_);
  const float* g = gamma_.RowPtr(0);
  const double n = static_cast<double>(dim_);
  for (size_t r = 0; r < batch; ++r) {
    const float* dy = grad_output.RowPtr(r);
    const float* xhat = state->cached.RowPtr(r);
    // Parameter gradients.
    float* gg = grad_gamma_.RowPtr(0);
    float* gb = grad_beta_.RowPtr(0);
    for (size_t j = 0; j < dim_; ++j) {
      gg[j] += dy[j] * xhat[j];
      gb[j] += dy[j];
    }
    // Input gradient:
    // dx = inv_std/n * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat)),
    // with dxhat = dy * gamma.
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double dxhat = static_cast<double>(dy[j]) * g[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat[j];
    }
    float* dx = grad_input->RowPtr(r);
    const double inv_std = state->stats[r];
    for (size_t j = 0; j < dim_; ++j) {
      const double dxhat = static_cast<double>(dy[j]) * g[j];
      dx[j] = static_cast<float>(
          inv_std / n * (n * dxhat - sum_dxhat - xhat[j] * sum_dxhat_xhat));
    }
  }
}

void LayerNorm::ZeroGrad() {
  grad_gamma_.Fill(0.0f);
  grad_beta_.Fill(0.0f);
}

std::string LayerNorm::name() const {
  return "LayerNorm(" + std::to_string(dim_) + ")";
}

std::unique_ptr<Layer> LayerNorm::Clone() const {
  auto clone = std::make_unique<LayerNorm>(dim_, epsilon_);
  clone->gamma_ = gamma_;
  clone->beta_ = beta_;
  return clone;
}

void LayerNorm::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(kLayerNormTag);
  writer->WriteU64(dim_);
  writer->WriteF64(epsilon_);
  writer->WriteF32Vector(gamma_.storage());
  writer->WriteF32Vector(beta_.storage());
}

Result<std::unique_ptr<LayerNorm>> LayerNorm::Deserialize(
    BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t dim, reader->ReadU64());
  if (dim == 0 || dim > (1 << 20)) {
    return Status::Corruption("layer norm dim out of range");
  }
  MAGNETO_ASSIGN_OR_RETURN(double epsilon, reader->ReadF64());
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> gamma, reader->ReadF32Vector());
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> beta, reader->ReadF32Vector());
  if (gamma.size() != dim || beta.size() != dim) {
    return Status::Corruption("layer norm payload size mismatch");
  }
  auto layer = std::make_unique<LayerNorm>(dim, epsilon);
  layer->gamma_ = Matrix(1, dim, std::move(gamma));
  layer->beta_ = Matrix(1, dim, std::move(beta));
  return layer;
}

}  // namespace magneto::nn
