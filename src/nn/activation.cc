#include "nn/activation.h"

#include <cmath>

namespace magneto::nn {

void Relu::Forward(const Matrix& input, bool /*training*/,
                   LayerState* /*state*/, Matrix* output) const {
  output->ResetForOverwrite(input.rows(), input.cols());
  const float* in = input.data();
  float* out = output->data();
  for (size_t i = 0; i < input.size(); ++i) {
    out[i] = in[i] < 0.0f ? 0.0f : in[i];
  }
}

void Relu::Backward(const Matrix& grad_output, const Matrix& input,
                    const Matrix& /*output*/, LayerState* /*state*/,
                    Matrix* grad_input) {
  MAGNETO_CHECK(grad_output.SameShape(input));
  grad_input->ResetForOverwrite(grad_output.rows(), grad_output.cols());
  const float* g = grad_output.data();
  const float* in = input.data();
  float* gi = grad_input->data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    gi[i] = in[i] <= 0.0f ? 0.0f : g[i];
  }
}

void Relu::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kRelu));
}

void Tanh::Forward(const Matrix& input, bool /*training*/,
                   LayerState* /*state*/, Matrix* output) const {
  output->ResetForOverwrite(input.rows(), input.cols());
  const float* in = input.data();
  float* out = output->data();
  for (size_t i = 0; i < input.size(); ++i) out[i] = std::tanh(in[i]);
}

void Tanh::Backward(const Matrix& grad_output, const Matrix& /*input*/,
                    const Matrix& output, LayerState* /*state*/,
                    Matrix* grad_input) {
  MAGNETO_CHECK(grad_output.SameShape(output));
  grad_input->ResetForOverwrite(grad_output.rows(), grad_output.cols());
  const float* g = grad_output.data();
  const float* y = output.data();
  float* gi = grad_input->data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    gi[i] = g[i] * (1.0f - y[i] * y[i]);
  }
}

void Tanh::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kTanh));
}

void Sigmoid::Forward(const Matrix& input, bool /*training*/,
                      LayerState* /*state*/, Matrix* output) const {
  output->ResetForOverwrite(input.rows(), input.cols());
  const float* in = input.data();
  float* out = output->data();
  for (size_t i = 0; i < input.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
}

void Sigmoid::Backward(const Matrix& grad_output, const Matrix& /*input*/,
                       const Matrix& output, LayerState* /*state*/,
                       Matrix* grad_input) {
  MAGNETO_CHECK(grad_output.SameShape(output));
  grad_input->ResetForOverwrite(grad_output.rows(), grad_output.cols());
  const float* g = grad_output.data();
  const float* y = output.data();
  float* gi = grad_input->data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    gi[i] = g[i] * y[i] * (1.0f - y[i]);
  }
}

void Sigmoid::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kSigmoid));
}

}  // namespace magneto::nn
