#include "nn/activation.h"

#include <cmath>

namespace magneto::nn {

Matrix Relu::Forward(const Matrix& input, bool /*training*/) {
  cached_input_ = input;
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
  }
  return out;
}

Matrix Relu::Backward(const Matrix& grad_output) {
  MAGNETO_CHECK(grad_output.SameShape(cached_input_));
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
  return grad;
}

void Relu::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kRelu));
}

Matrix Tanh::Forward(const Matrix& input, bool /*training*/) {
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  cached_output_ = out;
  return out;
}

Matrix Tanh::Backward(const Matrix& grad_output) {
  MAGNETO_CHECK(grad_output.SameShape(cached_output_));
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    const float y = cached_output_.data()[i];
    grad.data()[i] *= 1.0f - y * y;
  }
  return grad;
}

void Tanh::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kTanh));
}

Matrix Sigmoid::Forward(const Matrix& input, bool /*training*/) {
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  }
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::Backward(const Matrix& grad_output) {
  MAGNETO_CHECK(grad_output.SameShape(cached_output_));
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    const float y = cached_output_.data()[i];
    grad.data()[i] *= y * (1.0f - y);
  }
  return grad;
}

void Sigmoid::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kSigmoid));
}

}  // namespace magneto::nn
