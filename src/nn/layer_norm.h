#ifndef MAGNETO_NN_LAYER_NORM_H_
#define MAGNETO_NN_LAYER_NORM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/layer.h"

namespace magneto::nn {

/// Serialisation tag extension for LayerNorm.
inline constexpr uint8_t kLayerNormTag = 7;

/// Layer normalisation (Ba et al.): per-sample standardisation over the
/// feature axis followed by a learned affine map,
///
///   y = gamma * (x - mean(x)) / sqrt(var(x) + eps) + beta.
///
/// Unlike batch norm, it has no batch-statistics state, which matters on the
/// edge: incremental updates train on tiny, class-skewed batches where batch
/// statistics would thrash. Optional in `BuildMlp`-style backbones.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(size_t dim, double epsilon = 1e-5);

  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;

  std::vector<Matrix*> Params() override { return {&gamma_, &beta_}; }
  std::vector<Matrix*> Grads() override { return {&grad_gamma_, &grad_beta_}; }
  void ZeroGrad() override;

  LayerType type() const override {
    return static_cast<LayerType>(kLayerNormTag);
  }
  std::string name() const override;
  size_t input_dim() const override { return dim_; }
  size_t output_dim(size_t) const override { return dim_; }

  Matrix& gamma() { return gamma_; }
  Matrix& beta() { return beta_; }

  std::unique_ptr<Layer> Clone() const override;
  void Serialize(BinaryWriter* writer) const override;
  static Result<std::unique_ptr<LayerNorm>> Deserialize(BinaryReader* reader);

 private:
  size_t dim_;
  double epsilon_;
  Matrix gamma_;       ///< 1 x dim, init 1
  Matrix beta_;        ///< 1 x dim, init 0
  Matrix grad_gamma_;
  Matrix grad_beta_;
  // The backward caches (x_hat and the per-row 1/std) live in the caller's
  // LayerState: `cached` and `stats` respectively.
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_LAYER_NORM_H_
