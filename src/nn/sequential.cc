#include "nn/sequential.h"

#include "nn/activation.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/layer_norm.h"
#include "nn/quantized_linear.h"
#include "preprocess/features.h"

namespace magneto::nn {

const Matrix& Sequential::Forward(const Matrix& input, ForwardWorkspace* ws,
                                  bool training, bool record) const {
  MAGNETO_CHECK(ws != nullptr);
  // A training forward without recording would lose the dropout mask the
  // backward needs; nothing legitimately wants that combination.
  MAGNETO_CHECK(record || !training);
  ws->PrepareLayers(layers_.size());
  ws->recorded_ = record;
  ws->recorded_net_ = record ? this : nullptr;
  ws->recorded_layers_ = layers_.size();
  if (record) {
    // Per-layer activation slots: acts_[i] is layer i's input, so Backward
    // can replay the stack without any layer caching its own copy.
    ws->acts_[0].CopyFrom(input);
    for (size_t i = 0; i < layers_.size(); ++i) {
      layers_[i]->Forward(ws->acts_[i], training, &ws->states_[i],
                          &ws->acts_[i + 1]);
    }
    return ws->acts_[layers_.size()];
  }
  // Inference: ping-pong between two reusable buffers — no per-layer
  // temporaries, no caches, nothing written outside `ws`.
  if (layers_.empty()) {
    ws->io_[0].CopyFrom(input);
    return ws->io_[0];
  }
  const Matrix* x = &input;
  size_t flip = 0;
  for (const auto& layer : layers_) {
    Matrix* out = &ws->io_[flip];
    layer->Forward(*x, training, /*state=*/nullptr, out);
    x = out;
    flip ^= 1;
  }
  return *x;
}

const Matrix& Sequential::Backward(const Matrix& grad_output,
                                   ForwardWorkspace* ws) {
  MAGNETO_CHECK(ws != nullptr);
  MAGNETO_CHECK(ws->recorded_ && ws->recorded_net_ == this &&
                ws->recorded_layers_ == layers_.size());
  if (layers_.empty()) {
    ws->grad_[0].CopyFrom(grad_output);
    return ws->grad_[0];
  }
  const Matrix* g = &grad_output;
  size_t flip = 0;
  for (size_t i = layers_.size(); i-- > 0;) {
    Matrix* gi = &ws->grad_[flip];
    layers_[i]->Backward(*g, ws->acts_[i], ws->acts_[i + 1], &ws->states_[i],
                         gi);
    g = gi;
    flip ^= 1;
  }
  return *g;
}

std::vector<Matrix*> Sequential::Params() {
  std::vector<Matrix*> params;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> Sequential::Grads() {
  std::vector<Matrix*> grads;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->Grads()) grads.push_back(g);
  }
  return grads;
}

void Sequential::ZeroGrad() {
  for (auto& layer : layers_) layer->ZeroGrad();
}

size_t Sequential::NumParameters() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    // Params() is non-const by design (optimisers mutate); cast is safe here
    // because we only read sizes.
    for (Matrix* p : const_cast<Layer&>(*layer).Params()) n += p->size();
  }
  return n;
}

size_t Sequential::InputDim() const {
  for (const auto& layer : layers_) {
    if (layer->input_dim() > 0) return layer->input_dim();
  }
  return 0;
}

Sequential Sequential::Clone() const {
  Sequential clone;
  for (const auto& layer : layers_) clone.Add(layer->Clone());
  return clone;
}

std::string Sequential::Summary() const {
  std::string out;
  for (const auto& layer : layers_) {
    out += layer->name();
    out += "\n";
  }
  return out;
}

void Sequential::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(layers_.size());
  for (const auto& layer : layers_) layer->Serialize(writer);
}

Result<Sequential> Sequential::Deserialize(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  Sequential net;
  for (uint64_t i = 0; i < n; ++i) {
    MAGNETO_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
    switch (static_cast<LayerType>(tag)) {
      case LayerType::kLinear: {
        MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<Linear> layer,
                                 Linear::Deserialize(reader));
        net.Add(std::move(layer));
        break;
      }
      case LayerType::kRelu:
        net.Add(std::make_unique<Relu>());
        break;
      case LayerType::kTanh:
        net.Add(std::make_unique<Tanh>());
        break;
      case LayerType::kSigmoid:
        net.Add(std::make_unique<Sigmoid>());
        break;
      case LayerType::kDropout: {
        MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<Dropout> layer,
                                 Dropout::Deserialize(reader));
        net.Add(std::move(layer));
        break;
      }
      default: {
        if (tag == kQuantizedLinearTag) {
          MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<QuantizedLinear> layer,
                                   QuantizedLinear::Deserialize(reader));
          net.Add(std::move(layer));
          break;
        }
        if (tag == kLayerNormTag) {
          MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<LayerNorm> layer,
                                   LayerNorm::Deserialize(reader));
          net.Add(std::move(layer));
          break;
        }
        return Status::Corruption("unknown layer tag: " + std::to_string(tag));
      }
    }
  }
  return net;
}

Sequential BuildMlp(size_t input_dim, const std::vector<size_t>& dims,
                    Rng* rng, double dropout_p) {
  MAGNETO_CHECK(!dims.empty());
  Sequential net;
  size_t in = input_dim;
  for (size_t i = 0; i < dims.size(); ++i) {
    net.Add(std::make_unique<Linear>(in, dims[i], rng));
    const bool last = (i + 1 == dims.size());
    if (!last) {
      net.Add(std::make_unique<Relu>());
      if (dropout_p > 0.0) {
        net.Add(std::make_unique<Dropout>(dropout_p, rng->engine()()));
      }
    }
    in = dims[i];
  }
  return net;
}

Sequential BuildPaperBackbone(Rng* rng) {
  return BuildMlp(preprocess::kNumFeatures, {1024, 512, 128, 64, 128}, rng);
}

}  // namespace magneto::nn
