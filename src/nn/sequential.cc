#include "nn/sequential.h"

#include "nn/activation.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/layer_norm.h"
#include "nn/quantized_linear.h"
#include "preprocess/features.h"

namespace magneto::nn {

Matrix Sequential::Forward(const Matrix& input, bool training) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x, training);
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Matrix*> Sequential::Params() {
  std::vector<Matrix*> params;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> Sequential::Grads() {
  std::vector<Matrix*> grads;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->Grads()) grads.push_back(g);
  }
  return grads;
}

void Sequential::ZeroGrad() {
  for (auto& layer : layers_) layer->ZeroGrad();
}

size_t Sequential::NumParameters() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    // Params() is non-const by design (optimisers mutate); cast is safe here
    // because we only read sizes.
    for (Matrix* p : const_cast<Layer&>(*layer).Params()) n += p->size();
  }
  return n;
}

size_t Sequential::InputDim() const {
  for (const auto& layer : layers_) {
    if (layer->input_dim() > 0) return layer->input_dim();
  }
  return 0;
}

Sequential Sequential::Clone() const {
  Sequential clone;
  for (const auto& layer : layers_) clone.Add(layer->Clone());
  return clone;
}

std::string Sequential::Summary() const {
  std::string out;
  for (const auto& layer : layers_) {
    out += layer->name();
    out += "\n";
  }
  return out;
}

void Sequential::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(layers_.size());
  for (const auto& layer : layers_) layer->Serialize(writer);
}

Result<Sequential> Sequential::Deserialize(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  Sequential net;
  for (uint64_t i = 0; i < n; ++i) {
    MAGNETO_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
    switch (static_cast<LayerType>(tag)) {
      case LayerType::kLinear: {
        MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<Linear> layer,
                                 Linear::Deserialize(reader));
        net.Add(std::move(layer));
        break;
      }
      case LayerType::kRelu:
        net.Add(std::make_unique<Relu>());
        break;
      case LayerType::kTanh:
        net.Add(std::make_unique<Tanh>());
        break;
      case LayerType::kSigmoid:
        net.Add(std::make_unique<Sigmoid>());
        break;
      case LayerType::kDropout: {
        MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<Dropout> layer,
                                 Dropout::Deserialize(reader));
        net.Add(std::move(layer));
        break;
      }
      default: {
        if (tag == kQuantizedLinearTag) {
          MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<QuantizedLinear> layer,
                                   QuantizedLinear::Deserialize(reader));
          net.Add(std::move(layer));
          break;
        }
        if (tag == kLayerNormTag) {
          MAGNETO_ASSIGN_OR_RETURN(std::unique_ptr<LayerNorm> layer,
                                   LayerNorm::Deserialize(reader));
          net.Add(std::move(layer));
          break;
        }
        return Status::Corruption("unknown layer tag: " + std::to_string(tag));
      }
    }
  }
  return net;
}

Sequential BuildMlp(size_t input_dim, const std::vector<size_t>& dims,
                    Rng* rng, double dropout_p) {
  MAGNETO_CHECK(!dims.empty());
  Sequential net;
  size_t in = input_dim;
  for (size_t i = 0; i < dims.size(); ++i) {
    net.Add(std::make_unique<Linear>(in, dims[i], rng));
    const bool last = (i + 1 == dims.size());
    if (!last) {
      net.Add(std::make_unique<Relu>());
      if (dropout_p > 0.0) {
        net.Add(std::make_unique<Dropout>(dropout_p, rng->engine()()));
      }
    }
    in = dims[i];
  }
  return net;
}

Sequential BuildPaperBackbone(Rng* rng) {
  return BuildMlp(preprocess::kNumFeatures, {1024, 512, 128, 64, 128}, rng);
}

}  // namespace magneto::nn
