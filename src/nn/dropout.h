#ifndef MAGNETO_NN_DROPOUT_H_
#define MAGNETO_NN_DROPOUT_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "nn/layer.h"

namespace magneto::nn {

/// Inverted dropout: in training, each unit is zeroed with probability `p`
/// and survivors are scaled by 1/(1-p); in inference the layer is identity.
///
/// The mask RNG is owned by the layer (seeded at construction) so training
/// runs are reproducible.
class Dropout : public Layer {
 public:
  Dropout(double p, uint64_t seed);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;

  LayerType type() const override { return LayerType::kDropout; }
  std::string name() const override;
  double p() const { return p_; }

  std::unique_ptr<Layer> Clone() const override;
  void Serialize(BinaryWriter* writer) const override;
  static Result<std::unique_ptr<Dropout>> Deserialize(BinaryReader* reader);

 private:
  double p_;
  uint64_t seed_;
  Rng rng_;
  Matrix mask_;         ///< scaled keep-mask of the last training forward
  bool last_training_ = false;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_DROPOUT_H_
