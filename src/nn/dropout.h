#ifndef MAGNETO_NN_DROPOUT_H_
#define MAGNETO_NN_DROPOUT_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "nn/layer.h"

namespace magneto::nn {

/// Inverted dropout: in training, each unit is zeroed with probability `p`
/// and survivors are scaled by 1/(1-p); in inference the layer is identity.
///
/// The layer itself holds only `p` and the mask seed; the mask RNG and the
/// keep-mask live in the caller's `LayerState`, lazily seeded from the
/// layer's seed on the first training forward. A training run that keeps one
/// workspace therefore sees the exact reproducible mask sequence a
/// layer-owned RNG would have produced, while concurrent inference runs
/// share the layer with zero mutable state.
class Dropout : public Layer {
 public:
  Dropout(double p, uint64_t seed);

  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;

  LayerType type() const override { return LayerType::kDropout; }
  std::string name() const override;
  double p() const { return p_; }

  std::unique_ptr<Layer> Clone() const override;
  void Serialize(BinaryWriter* writer) const override;
  static Result<std::unique_ptr<Dropout>> Deserialize(BinaryReader* reader);

 private:
  double p_;
  uint64_t seed_;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_DROPOUT_H_
