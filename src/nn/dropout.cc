#include "nn/dropout.h"

namespace magneto::nn {

Dropout::Dropout(double p, uint64_t seed) : p_(p), seed_(seed), rng_(seed) {
  MAGNETO_CHECK(p >= 0.0 && p < 1.0);
}

Matrix Dropout::Forward(const Matrix& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return input;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_.Reset(input.rows(), input.cols());
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng_.Bernoulli(p_)) {
      out.data()[i] = 0.0f;
      mask_.data()[i] = 0.0f;
    } else {
      out.data()[i] *= keep_scale;
      mask_.data()[i] = keep_scale;
    }
  }
  return out;
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (!last_training_ || p_ == 0.0) return grad_output;
  MAGNETO_CHECK(grad_output.SameShape(mask_));
  Matrix grad = grad_output;
  grad.MulInPlace(mask_);
  return grad;
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

std::unique_ptr<Layer> Dropout::Clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

void Dropout::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kDropout));
  writer->WriteF64(p_);
  writer->WriteU64(seed_);
}

Result<std::unique_ptr<Dropout>> Dropout::Deserialize(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(double p, reader->ReadF64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t seed, reader->ReadU64());
  if (p < 0.0 || p >= 1.0) {
    return Status::Corruption("dropout p out of range");
  }
  return std::make_unique<Dropout>(p, seed);
}

}  // namespace magneto::nn
