#include "nn/dropout.h"

namespace magneto::nn {

Dropout::Dropout(double p, uint64_t seed) : p_(p), seed_(seed) {
  MAGNETO_CHECK(p >= 0.0 && p < 1.0);
}

void Dropout::Forward(const Matrix& input, bool training, LayerState* state,
                      Matrix* output) const {
  if (!training || p_ == 0.0) {
    if (state != nullptr) state->flag = false;
    output->CopyFrom(input);
    return;
  }
  MAGNETO_CHECK(state != nullptr);  // the mask RNG lives in the run state
  state->flag = true;
  if (state->rng == nullptr || state->rng_seed != seed_) {
    state->rng = std::make_unique<Rng>(seed_);
    state->rng_seed = seed_;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  state->cached.ResetForOverwrite(input.rows(), input.cols());
  output->ResetForOverwrite(input.rows(), input.cols());
  const float* in = input.data();
  float* out = output->data();
  float* mask = state->cached.data();
  for (size_t i = 0; i < input.size(); ++i) {
    if (state->rng->Bernoulli(p_)) {
      out[i] = 0.0f;
      mask[i] = 0.0f;
    } else {
      out[i] = in[i] * keep_scale;
      mask[i] = keep_scale;
    }
  }
}

void Dropout::Backward(const Matrix& grad_output, const Matrix& /*input*/,
                       const Matrix& /*output*/, LayerState* state,
                       Matrix* grad_input) {
  if (p_ == 0.0 || state == nullptr || !state->flag) {
    grad_input->CopyFrom(grad_output);
    return;
  }
  MAGNETO_CHECK(grad_output.SameShape(state->cached));
  grad_input->CopyFrom(grad_output);
  grad_input->MulInPlace(state->cached);
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

std::unique_ptr<Layer> Dropout::Clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

void Dropout::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kDropout));
  writer->WriteF64(p_);
  writer->WriteU64(seed_);
}

Result<std::unique_ptr<Dropout>> Dropout::Deserialize(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(double p, reader->ReadF64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t seed, reader->ReadU64());
  if (p < 0.0 || p >= 1.0) {
    return Status::Corruption("dropout p out of range");
  }
  return std::make_unique<Dropout>(p, seed);
}

}  // namespace magneto::nn
