#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace magneto::nn {

namespace {

void UpdateErrors(double analytic, double numeric, GradientCheckResult* r) {
  const double abs_err = std::fabs(analytic - numeric);
  // The 1e-2 floor keeps float32 forward noise from dominating coordinates
  // whose true gradient is (near) zero — e.g. a shared Siamese bias, whose
  // effect cancels exactly in the pair distance. Such coordinates would
  // otherwise score rel error ~1 from ~1e-4 of numeric noise.
  const double denom = std::fabs(analytic) + std::fabs(numeric) + 1e-2;
  r->max_abs_error = std::max(r->max_abs_error, abs_err);
  r->max_rel_error = std::max(r->max_rel_error, abs_err / denom);
  ++r->checked;
}

}  // namespace

GradientCheckResult CheckParameterGradients(
    Sequential* net, const std::function<double()>& loss_fn, double epsilon,
    size_t max_scalars_per_param) {
  GradientCheckResult result;

  // One backward pass to collect analytic gradients.
  net->ZeroGrad();
  loss_fn();
  std::vector<Matrix*> params = net->Params();
  std::vector<Matrix*> grads = net->Grads();
  // Snapshot gradients: later loss_fn calls for numeric probing would
  // otherwise keep accumulating into the same buffers.
  std::vector<Matrix> analytic;
  analytic.reserve(grads.size());
  for (Matrix* g : grads) analytic.push_back(*g);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Matrix* p = params[pi];
    const size_t stride =
        std::max<size_t>(1, p->size() / max_scalars_per_param);
    for (size_t j = 0; j < p->size(); j += stride) {
      const float original = p->data()[j];
      p->data()[j] = original + static_cast<float>(epsilon);
      net->ZeroGrad();
      const double loss_plus = loss_fn();
      p->data()[j] = original - static_cast<float>(epsilon);
      net->ZeroGrad();
      const double loss_minus = loss_fn();
      p->data()[j] = original;
      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      UpdateErrors(analytic[pi].data()[j], numeric, &result);
    }
  }
  net->ZeroGrad();
  return result;
}

GradientCheckResult CheckInputGradient(
    const Matrix& input,
    const std::function<double(const Matrix& input, Matrix* grad)>&
        loss_and_grad,
    double epsilon, size_t max_scalars) {
  GradientCheckResult result;
  Matrix analytic;
  loss_and_grad(input, &analytic);

  Matrix probe = input;
  const size_t stride = std::max<size_t>(1, probe.size() / max_scalars);
  Matrix unused;
  for (size_t j = 0; j < probe.size(); j += stride) {
    const float original = probe.data()[j];
    probe.data()[j] = original + static_cast<float>(epsilon);
    const double loss_plus = loss_and_grad(probe, &unused);
    probe.data()[j] = original - static_cast<float>(epsilon);
    const double loss_minus = loss_and_grad(probe, &unused);
    probe.data()[j] = original;
    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    UpdateErrors(analytic.data()[j], numeric, &result);
  }
  return result;
}

}  // namespace magneto::nn
