#ifndef MAGNETO_NN_LAYER_H_
#define MAGNETO_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/serial.h"

namespace magneto::nn {

/// Serialisation tags for layer types (stable on-disk ids).
enum class LayerType : uint8_t {
  kLinear = 1,
  kRelu = 2,
  kTanh = 3,
  kSigmoid = 4,
  kDropout = 5,
};

/// A differentiable network layer.
///
/// MAGNETO's backbone is a plain MLP, so the layer contract is the classic
/// batch one: `Forward` maps a (batch x in_dim) matrix to (batch x out_dim)
/// and caches whatever it needs; `Backward` receives dLoss/dOutput,
/// *accumulates* parameter gradients, and returns dLoss/dInput. Gradients
/// accumulate across calls until `ZeroGrad` — that is what lets the joint
/// contrastive + distillation objective sum several loss terms per step.
class Layer {
 public:
  virtual ~Layer() = default;

  /// `training` enables train-only behaviour (e.g. dropout masking).
  virtual Matrix Forward(const Matrix& input, bool training) = 0;

  /// Must be called after a matching `Forward`.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Matrix*> Params() { return {}; }

  /// Gradient buffers, parallel to `Params()`.
  virtual std::vector<Matrix*> Grads() { return {}; }

  virtual void ZeroGrad() {}

  virtual LayerType type() const = 0;
  virtual std::string name() const = 0;
  virtual size_t output_dim(size_t input_dim) const { return input_dim; }

  /// Fixed input width, or 0 if the layer accepts any width.
  virtual size_t input_dim() const { return 0; }

  /// Deep copy, including parameter values (not cached activations).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Writes the layer type tag plus its own payload.
  virtual void Serialize(BinaryWriter* writer) const = 0;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_LAYER_H_
