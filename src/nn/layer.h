#ifndef MAGNETO_NN_LAYER_H_
#define MAGNETO_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/serial.h"
#include "nn/workspace.h"

namespace magneto::nn {

/// Serialisation tags for layer types (stable on-disk ids).
enum class LayerType : uint8_t {
  kLinear = 1,
  kRelu = 2,
  kTanh = 3,
  kSigmoid = 4,
  kDropout = 5,
};

/// A differentiable network layer.
///
/// MAGNETO's backbone is a plain MLP, so the layer contract is the classic
/// batch one: `Forward` maps a (batch x in_dim) matrix to (batch x out_dim);
/// `Backward` receives dLoss/dOutput, *accumulates* parameter gradients, and
/// produces dLoss/dInput. Gradients accumulate across calls until `ZeroGrad`
/// — that is what lets the joint contrastive + distillation objective sum
/// several loss terms per step.
///
/// Layers are stateless across runs: `Forward` is `const` and every
/// per-run tensor (activations, masks, statistics) lives in the caller's
/// `LayerState` slot and output buffer, so one layer instance serves any
/// number of concurrent forwards as long as each caller brings its own
/// state. In practice callers go through `Sequential`, which threads a
/// `ForwardWorkspace` slot per layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes `output` from `input`. `output` is a reusable caller buffer
  /// (resized in place) and must not alias `input`. `training` enables
  /// train-only behaviour (e.g. dropout masking). `state` is the layer's
  /// per-run slot for anything `Backward` will need (dropout mask,
  /// layer-norm statistics); it may be null for pure inference, except that
  /// dropout requires it whenever `training` is true (the mask RNG lives in
  /// the slot).
  virtual void Forward(const Matrix& input, bool training, LayerState* state,
                       Matrix* output) const = 0;

  /// Must follow a matching `Forward`. `input`/`output` are the tensors of
  /// that forward and `state` is the slot it recorded into (required).
  /// Accumulates parameter gradients and writes dLoss/dInput into
  /// `grad_input` (a reusable caller buffer; must not alias `grad_output`).
  virtual void Backward(const Matrix& grad_output, const Matrix& input,
                        const Matrix& output, LayerState* state,
                        Matrix* grad_input) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Matrix*> Params() { return {}; }

  /// Gradient buffers, parallel to `Params()`.
  virtual std::vector<Matrix*> Grads() { return {}; }

  virtual void ZeroGrad() {}

  virtual LayerType type() const = 0;
  virtual std::string name() const = 0;
  virtual size_t output_dim(size_t input_dim) const { return input_dim; }

  /// Fixed input width, or 0 if the layer accepts any width.
  virtual size_t input_dim() const { return 0; }

  /// Deep copy, including parameter values.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Writes the layer type tag plus its own payload.
  virtual void Serialize(BinaryWriter* writer) const = 0;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_LAYER_H_
