#ifndef MAGNETO_NN_ACTIVATION_H_
#define MAGNETO_NN_ACTIVATION_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace magneto::nn {

/// Rectified linear unit, elementwise max(0, x).
class Relu : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  LayerType type() const override { return LayerType::kRelu; }
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Relu>();
  }
  void Serialize(BinaryWriter* writer) const override;

 private:
  Matrix cached_input_;
};

/// Elementwise tanh.
class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  LayerType type() const override { return LayerType::kTanh; }
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Tanh>();
  }
  void Serialize(BinaryWriter* writer) const override;

 private:
  Matrix cached_output_;
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  LayerType type() const override { return LayerType::kSigmoid; }
  std::string name() const override { return "Sigmoid"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Sigmoid>();
  }
  void Serialize(BinaryWriter* writer) const override;

 private:
  Matrix cached_output_;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_ACTIVATION_H_
