#ifndef MAGNETO_NN_ACTIVATION_H_
#define MAGNETO_NN_ACTIVATION_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace magneto::nn {

// The activations keep no state of their own: ReLU's backward reads the
// forward `input`, tanh/sigmoid's backward read the forward `output` — both
// supplied by the caller (Sequential keeps them in the workspace).

/// Rectified linear unit, elementwise max(0, x).
class Relu : public Layer {
 public:
  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;
  LayerType type() const override { return LayerType::kRelu; }
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Relu>();
  }
  void Serialize(BinaryWriter* writer) const override;
};

/// Elementwise tanh.
class Tanh : public Layer {
 public:
  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;
  LayerType type() const override { return LayerType::kTanh; }
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Tanh>();
  }
  void Serialize(BinaryWriter* writer) const override;
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;
  LayerType type() const override { return LayerType::kSigmoid; }
  std::string name() const override { return "Sigmoid"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Sigmoid>();
  }
  void Serialize(BinaryWriter* writer) const override;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_ACTIVATION_H_
