#include "nn/linear.h"

#include <cmath>

namespace magneto::nn {

Linear::Linear(size_t in_dim, size_t out_dim)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weight_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  MAGNETO_CHECK(in_dim > 0 && out_dim > 0);
}

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng)
    : Linear(in_dim, out_dim) {
  // He-uniform: U(-limit, limit), limit = sqrt(6 / fan_in). Suits the ReLU
  // MLP backbone.
  const double limit = std::sqrt(6.0 / static_cast<double>(in_dim));
  for (size_t i = 0; i < weight_.size(); ++i) {
    weight_.data()[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void Linear::Forward(const Matrix& input, bool /*training*/,
                     LayerState* /*state*/, Matrix* output) const {
  MAGNETO_CHECK(input.cols() == in_dim_);
  MatMulInto(input, weight_, output);
  for (size_t r = 0; r < output->rows(); ++r) {
    float* row = output->RowPtr(r);
    const float* b = bias_.RowPtr(0);
    for (size_t c = 0; c < out_dim_; ++c) row[c] += b[c];
  }
}

void Linear::Backward(const Matrix& grad_output, const Matrix& input,
                      const Matrix& /*output*/, LayerState* state,
                      Matrix* grad_input) {
  MAGNETO_CHECK(grad_output.cols() == out_dim_);
  MAGNETO_CHECK(grad_output.rows() == input.rows());
  MAGNETO_CHECK(state != nullptr);
  // The weight gradient lands in the workspace scratch first and is then
  // accumulated — same compute order as a freshly-allocated temporary, so
  // gradients stay bit-identical, without the per-step allocation.
  MatMulTransAInto(input, grad_output, &state->scratch);
  grad_weight_.AddInPlace(state->scratch);
  grad_bias_.AddInPlace(grad_output.ColSum());
  MatMulTransBInto(grad_output, weight_, grad_input);
}

void Linear::ZeroGrad() {
  grad_weight_.Fill(0.0f);
  grad_bias_.Fill(0.0f);
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_dim_) + "->" + std::to_string(out_dim_) +
         ")";
}

std::unique_ptr<Layer> Linear::Clone() const {
  auto clone = std::make_unique<Linear>(in_dim_, out_dim_);
  clone->weight_ = weight_;
  clone->bias_ = bias_;
  return clone;
}

void Linear::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(LayerType::kLinear));
  writer->WriteU64(in_dim_);
  writer->WriteU64(out_dim_);
  writer->WriteF32Vector(weight_.storage());
  writer->WriteF32Vector(bias_.storage());
}

Result<std::unique_ptr<Linear>> Linear::Deserialize(BinaryReader* reader) {
  // Caller consumed the type tag already.
  MAGNETO_ASSIGN_OR_RETURN(uint64_t in_dim, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t out_dim, reader->ReadU64());
  // Dimension sanity cap: rejects hostile headers whose product would wrap
  // or demand an absurd allocation before the payload check can catch it.
  constexpr uint64_t kMaxDim = 1 << 20;
  if (in_dim == 0 || out_dim == 0 || in_dim > kMaxDim || out_dim > kMaxDim) {
    return Status::Corruption("linear layer dimensions out of range");
  }
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> w, reader->ReadF32Vector());
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> b, reader->ReadF32Vector());
  if (w.size() != in_dim * out_dim || b.size() != out_dim) {
    return Status::Corruption("linear layer payload size mismatch");
  }
  auto layer = std::make_unique<Linear>(in_dim, out_dim);
  layer->weight_ = Matrix(in_dim, out_dim, std::move(w));
  layer->bias_ = Matrix(1, out_dim, std::move(b));
  return layer;
}

}  // namespace magneto::nn
