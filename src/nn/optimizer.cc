#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace magneto::nn {

Optimizer::Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  MAGNETO_CHECK(params_.size() == grads_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    MAGNETO_CHECK(params_[i]->SameShape(*grads_[i]));
  }
}

void Optimizer::ZeroGrad() {
  for (Matrix* g : grads_) g->Fill(0.0f);
}

Sgd::Sgd(std::vector<Matrix*> params, std::vector<Matrix*> grads,
         Options options)
    : Optimizer(std::move(params), std::move(grads)), options_(options) {
  if (options_.momentum != 0.0) {
    velocity_.reserve(params_.size());
    for (Matrix* p : params_) velocity_.emplace_back(p->rows(), p->cols());
  }
}

void Sgd::Step() {
  const float lr = static_cast<float>(options_.learning_rate);
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    if (mu != 0.0f) {
      Matrix& v = velocity_[i];
      // v = mu * v + g;  p -= lr * v
      v.Scale(mu);
      v.AddInPlace(g);
      p.Axpy(-lr, v);
    } else {
      p.Axpy(-lr, g);
    }
    if (wd != 0.0f) p.Scale(1.0f - lr * wd);
  }
}

Adam::Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
           Options options)
    : Optimizer(std::move(params), std::move(grads)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::Step() {
  ++t_;
  const double lr = options_.learning_rate;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double eps = options_.epsilon;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const float wd = static_cast<float>(options_.weight_decay);

  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    float* pd = p.data();
    const float* gd = g.data();
    float* md = m.data();
    float* vd = v.data();
    ParallelFor(0, p.size(), size_t{1} << 16, [&](size_t lo, size_t hi) {
      for (size_t j = lo; j < hi; ++j) {
        md[j] = static_cast<float>(b1 * md[j] + (1.0 - b1) * gd[j]);
        vd[j] = static_cast<float>(b2 * vd[j] +
                                   (1.0 - b2) * static_cast<double>(gd[j]) *
                                       gd[j]);
        const double mhat = md[j] / bc1;
        const double vhat = vd[j] / bc2;
        pd[j] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps));
      }
    });
    if (wd != 0.0f) p.Scale(1.0f - static_cast<float>(lr) * wd);
  }
}

}  // namespace magneto::nn
