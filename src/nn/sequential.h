#ifndef MAGNETO_NN_SEQUENTIAL_H_
#define MAGNETO_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "nn/layer.h"
#include "nn/workspace.h"

namespace magneto::nn {

/// A feed-forward stack of layers — MAGNETO's backbone container.
///
/// Move-only (owns its layers). `Clone()` deep-copies parameters, which is
/// how the incremental learner freezes the pre-update "teacher" model for
/// distillation.
///
/// The network holds parameters only; every per-run tensor lives in the
/// caller's `ForwardWorkspace`. `Forward` is therefore `const` and one
/// network instance serves any number of concurrent forwards, each caller
/// bringing its own workspace — the session/run-context split that lets the
/// fleet's micro-batcher embed lock-free.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }
  const Layer& layer(size_t i) const { return *layers_[i]; }

  /// Runs all layers through `ws`; `training` is forwarded to each layer.
  /// With `record` (defaults to `training`) the per-layer activations are
  /// kept in the workspace so `Backward` can run; without it the layers
  /// ping-pong between two reusable buffers and nothing is retained. The
  /// returned reference points into `ws` and stays valid until the
  /// workspace's next forward. `input` must not be a buffer inside `ws`.
  ///
  /// The rare split of the two flags is an inference-mode forward that
  /// still supports backward (dropout off, caches on) — what EWC's Fisher
  /// estimation wants.
  const Matrix& Forward(const Matrix& input, ForwardWorkspace* ws,
                        bool training, bool record) const;
  const Matrix& Forward(const Matrix& input, ForwardWorkspace* ws,
                        bool training = false) const {
    return Forward(input, ws, training, /*record=*/training);
  }

  /// Backpropagates through the activations recorded in `ws` (which must be
  /// the workspace of the matching recorded `Forward`); every layer
  /// accumulates its parameter gradients. Returns dLoss/dInput, pointing
  /// into `ws` (valid until the workspace's next backward).
  const Matrix& Backward(const Matrix& grad_output, ForwardWorkspace* ws);

  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();
  void ZeroGrad();

  /// Total learnable scalar count.
  size_t NumParameters() const;

  /// Width the network expects as input (first constrained layer), or 0 if
  /// unconstrained (e.g. activations only).
  size_t InputDim() const;

  /// Deep copy with parameter values.
  Sequential Clone() const;

  /// Human-readable architecture summary, one layer per line.
  std::string Summary() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Sequential> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds the paper's backbone: an MLP over `input_dim` features with hidden
/// widths `dims` (last entry = embedding dim), ReLU between layers, no final
/// activation. The paper's default is dims = {1024, 512, 128, 64, 128} on 80
/// input features (§3.2 item 2).
Sequential BuildMlp(size_t input_dim, const std::vector<size_t>& dims,
                    Rng* rng, double dropout_p = 0.0);

/// The exact paper configuration: 80 -> [1024, 512, 128, 64] -> 128.
Sequential BuildPaperBackbone(Rng* rng);

}  // namespace magneto::nn

#endif  // MAGNETO_NN_SEQUENTIAL_H_
