#include "nn/loss.h"

#include <cmath>

#include <vector>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/parallel.h"

namespace magneto::nn {

LossResult SoftmaxCrossEntropy(const Matrix& logits,
                               const std::vector<int>& labels) {
  const size_t batch = logits.rows();
  const size_t classes = logits.cols();
  MAGNETO_CHECK(labels.size() == batch);
  MAGNETO_CHECK(batch > 0);

  LossResult result;
  result.grad = logits;  // will be overwritten with softmax - onehot
  double loss = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    float* row = result.grad.RowPtr(i);
    SoftmaxInPlace(row, classes);
    const int label = labels[i];
    MAGNETO_CHECK(label >= 0 && static_cast<size_t>(label) < classes);
    loss += -std::log(std::max(1e-12f, row[label]));
    row[label] -= 1.0f;
  }
  const float inv_batch = 1.0f / static_cast<float>(batch);
  result.grad.Scale(inv_batch);
  result.loss = loss / static_cast<double>(batch);
  return result;
}

PairLossResult ContrastiveLoss(const Matrix& a, const Matrix& b,
                               const std::vector<uint8_t>& same,
                               double margin) {
  MAGNETO_CHECK(a.SameShape(b));
  MAGNETO_CHECK(same.size() == a.rows());
  MAGNETO_CHECK(a.rows() > 0);
  const size_t batch = a.rows();
  const size_t dim = a.cols();

  PairLossResult result;
  result.grad_a.Reset(batch, dim);
  result.grad_b.Reset(batch, dim);
  const double inv_batch = 1.0 / static_cast<double>(batch);

  // Pairs are independent: gradients go to disjoint rows and each pair's
  // loss lands in its own slot, summed in index order below so the total is
  // bit-identical at any thread count.
  std::vector<double> pair_loss(batch, 0.0);
  ParallelFor(0, batch, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* ai = a.RowPtr(i);
      const float* bi = b.RowPtr(i);
      const double d2 = SquaredL2(ai, bi, dim);
      const double d = std::sqrt(d2);
      float* ga = result.grad_a.RowPtr(i);
      float* gb = result.grad_b.RowPtr(i);
      if (same[i]) {
        pair_loss[i] = 0.5 * d2;
        // dL/da = (a - b), scaled by 1/batch.
        for (size_t j = 0; j < dim; ++j) {
          const float diff = static_cast<float>(inv_batch) * (ai[j] - bi[j]);
          ga[j] = diff;
          gb[j] = -diff;
        }
      } else if (d < margin) {
        const double gap = margin - d;
        pair_loss[i] = 0.5 * gap * gap;
        // dL/da = -(margin - d) * (a - b) / d. Guard d ~ 0: the hinge term is
        // then flat in direction, use zero gradient (measure-zero event).
        if (d > 1e-12) {
          const double coef = -gap / d * inv_batch;
          for (size_t j = 0; j < dim; ++j) {
            const float g = static_cast<float>(coef * (ai[j] - bi[j]));
            ga[j] = g;
            gb[j] = -g;
          }
        }
      }
    }
  });
  double loss = 0.0;
  for (size_t i = 0; i < batch; ++i) loss += pair_loss[i];
  result.loss = loss * inv_batch;
  return result;
}

LossResult SupConLoss(const Matrix& embeddings, const std::vector<int>& labels,
                      double temperature) {
  const size_t batch = embeddings.rows();
  const size_t dim = embeddings.cols();
  MAGNETO_CHECK(labels.size() == batch);
  MAGNETO_CHECK(temperature > 0.0);

  LossResult result;
  result.grad.Reset(batch, dim);
  if (batch < 2) return result;

  // L2-normalise rows: u_i = z_i / ||z_i||.
  Matrix u(batch, dim);
  std::vector<double> norms(batch);
  for (size_t i = 0; i < batch; ++i) {
    const float* z = embeddings.RowPtr(i);
    double n2 = 0.0;
    for (size_t j = 0; j < dim; ++j) n2 += static_cast<double>(z[j]) * z[j];
    const double n = std::max(std::sqrt(n2), 1e-12);
    norms[i] = n;
    float* urow = u.RowPtr(i);
    for (size_t j = 0; j < dim; ++j) {
      urow[j] = static_cast<float>(z[j] / n);
    }
  }

  // Similarity logits s_ij = u_i . u_j / tau (diagonal excluded).
  Matrix s = MatMulTransB(u, u);
  s.Scale(static_cast<float>(1.0 / temperature));

  // q_ij = softmax over j != i of s_ij; phat_ij = 1{same class}/|P(i)|.
  // dL_i/ds_ij = (q_ij - phat_ij) / num_anchors.
  size_t num_anchors = 0;
  std::vector<size_t> positives(batch, 0);
  for (size_t i = 0; i < batch; ++i) {
    for (size_t j = 0; j < batch; ++j) {
      if (j != i && labels[j] == labels[i]) ++positives[i];
    }
    if (positives[i] > 0) ++num_anchors;
  }
  if (num_anchors == 0) return result;

  Matrix ds(batch, batch);  // dL/ds, zero where i == j or anchor skipped
  double loss = 0.0;
  std::vector<double> row_logits(batch - 1);
  for (size_t i = 0; i < batch; ++i) {
    if (positives[i] == 0) continue;
    // log-sum-exp over j != i.
    size_t k = 0;
    for (size_t j = 0; j < batch; ++j) {
      if (j != i) row_logits[k++] = s.At(i, j);
    }
    const double lse = LogSumExp(row_logits.data(), k);
    const double inv_p = 1.0 / static_cast<double>(positives[i]);
    for (size_t j = 0; j < batch; ++j) {
      if (j == i) continue;
      const double q = std::exp(static_cast<double>(s.At(i, j)) - lse);
      double phat = 0.0;
      if (labels[j] == labels[i]) {
        phat = inv_p;
        loss += -(static_cast<double>(s.At(i, j)) - lse) * inv_p;
      }
      ds.At(i, j) = static_cast<float>((q - phat) /
                                       static_cast<double>(num_anchors));
    }
  }
  result.loss = loss / static_cast<double>(num_anchors);

  // dL/du_i = sum_j (ds_ij + ds_ji) * u_j / tau.
  Matrix sym = ds;
  sym.AddInPlace(ds.Transposed());
  Matrix du = MatMul(sym, u);
  du.Scale(static_cast<float>(1.0 / temperature));

  // Backprop through the normalisation: dL/dz = (g - (g.u) u) / ||z||.
  for (size_t i = 0; i < batch; ++i) {
    const float* g = du.RowPtr(i);
    const float* urow = u.RowPtr(i);
    const double gu = Dot(g, urow, dim);
    float* out = result.grad.RowPtr(i);
    for (size_t j = 0; j < dim; ++j) {
      out[j] = static_cast<float>((g[j] - gu * urow[j]) / norms[i]);
    }
  }
  return result;
}

LossResult DistillationMse(const Matrix& student, const Matrix& teacher) {
  MAGNETO_CHECK(student.SameShape(teacher));
  MAGNETO_CHECK(student.rows() > 0);
  const size_t batch = student.rows();
  LossResult result;
  result.grad = student;
  result.grad.SubInPlace(teacher);
  result.loss = static_cast<double>(result.grad.SumOfSquares()) /
                static_cast<double>(batch);
  result.grad.Scale(2.0f / static_cast<float>(batch));
  return result;
}

LossResult DistillationCosine(const Matrix& student, const Matrix& teacher) {
  MAGNETO_CHECK(student.SameShape(teacher));
  MAGNETO_CHECK(student.rows() > 0);
  const size_t batch = student.rows();
  const size_t dim = student.cols();
  LossResult result;
  result.grad.Reset(batch, dim);
  double loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (size_t i = 0; i < batch; ++i) {
    const float* s = student.RowPtr(i);
    const float* t = teacher.RowPtr(i);
    double ss = 0.0, tt = 0.0, st = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      ss += static_cast<double>(s[j]) * s[j];
      tt += static_cast<double>(t[j]) * t[j];
      st += static_cast<double>(s[j]) * t[j];
    }
    const double ns = std::max(std::sqrt(ss), 1e-12);
    const double nt = std::max(std::sqrt(tt), 1e-12);
    const double cosine = st / (ns * nt);
    loss += 1.0 - cosine;
    // d(1 - cos)/ds_j = -(t_j / (ns*nt) - cos * s_j / ns^2)
    float* g = result.grad.RowPtr(i);
    for (size_t j = 0; j < dim; ++j) {
      g[j] = static_cast<float>(
          inv_batch * -(t[j] / (ns * nt) - cosine * s[j] / (ns * ns)));
    }
  }
  result.loss = loss * inv_batch;
  return result;
}

}  // namespace magneto::nn
