#ifndef MAGNETO_NN_QUANTIZED_LINEAR_H_
#define MAGNETO_NN_QUANTIZED_LINEAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/layer.h"
#include "nn/linear.h"

namespace magneto::nn {

/// Serialisation tag extension for the quantized layer.
inline constexpr uint8_t kQuantizedLinearTag = 6;

/// Int8 symmetric per-output-channel quantization of a matrix: for column j,
/// q[i][j] = round(w[i][j] / scale[j]) with scale[j] = max_i |w[i][j]| / 127.
struct QuantizedMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<int8_t> data;   ///< row-major, rows x cols
  std::vector<float> scales;  ///< per column

  /// InvalidArgument if `w` holds any non-finite value: a single NaN or inf
  /// would otherwise poison the column scale and silently zero the channel.
  static Result<QuantizedMatrix> Quantize(const Matrix& w);
  Matrix Dequantize() const;
  size_t PayloadBytes() const { return data.size() + scales.size() * 4; }
};

/// Inference-only int8 fully-connected layer (§2.1: "quantizing weights to
/// reduce resource costs").
///
/// Weights are stored in int8 with per-output-channel scales; the bias stays
/// fp32. The layer serialises at ~1/4 the size of `Linear`, which is what the
/// quantized bundle variant in bench_compression measures. `Backward` is
/// deliberately unsupported — a quantized model is a deployment artifact, not
/// a training target; on-device retraining keeps the fp32 backbone.
class QuantizedLinear : public Layer {
 public:
  /// Quantizes an existing fp32 layer. InvalidArgument if the source holds
  /// non-finite weights or biases.
  static Result<std::unique_ptr<QuantizedLinear>> FromLinear(
      const Linear& source);

  /// Dynamic-activation int8 GEMM: the input rows are quantized to int8 on
  /// the fly, multiplied through `QGemmInt8`, and rescaled per output
  /// channel. Integer accumulation is exact, so the int8 output is
  /// bit-identical across thread counts. With `MAGNETO_QGEMM=off` (or
  /// `SetQGemmEnabled(false)`) the layer instead runs the serial fp32-dequant
  /// reference — weights widened on the fly, activations unquantized — which
  /// the kernel path must track within the quantization tolerance.
  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;

  /// Always aborts: quantized layers are inference-only.
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;

  LayerType type() const override {
    return static_cast<LayerType>(kQuantizedLinearTag);
  }
  std::string name() const override;
  size_t output_dim(size_t) const override { return out_dim_; }
  size_t input_dim() const override { return in_dim_; }

  /// Maximum absolute weight error introduced by quantization.
  float MaxWeightError(const Linear& source) const;

  std::unique_ptr<Layer> Clone() const override;
  void Serialize(BinaryWriter* writer) const override;
  static Result<std::unique_ptr<QuantizedLinear>> Deserialize(
      BinaryReader* reader);

 private:
  QuantizedLinear() = default;

  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  QuantizedMatrix weight_;
  std::vector<float> bias_;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_QUANTIZED_LINEAR_H_
