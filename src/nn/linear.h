#ifndef MAGNETO_NN_LINEAR_H_
#define MAGNETO_NN_LINEAR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "nn/layer.h"

namespace magneto::nn {

/// Fully-connected layer: y = x W + b, with W of shape (in_dim x out_dim).
class Linear : public Layer {
 public:
  /// Weights start at zero; call an initialiser (see initializer.h) or use
  /// `Linear(in, out, rng)` for He-uniform init.
  Linear(size_t in_dim, size_t out_dim);

  /// He-uniform initialised weights, zero bias.
  Linear(size_t in_dim, size_t out_dim, Rng* rng);

  void Forward(const Matrix& input, bool training, LayerState* state,
               Matrix* output) const override;
  void Backward(const Matrix& grad_output, const Matrix& input,
                const Matrix& output, LayerState* state,
                Matrix* grad_input) override;

  std::vector<Matrix*> Params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> Grads() override { return {&grad_weight_, &grad_bias_}; }
  void ZeroGrad() override;

  LayerType type() const override { return LayerType::kLinear; }
  std::string name() const override;
  size_t output_dim(size_t) const override { return out_dim_; }
  size_t input_dim() const override { return in_dim_; }
  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  Matrix& weight() { return weight_; }
  const Matrix& weight() const { return weight_; }
  Matrix& bias() { return bias_; }
  const Matrix& bias() const { return bias_; }

  std::unique_ptr<Layer> Clone() const override;
  void Serialize(BinaryWriter* writer) const override;
  static Result<std::unique_ptr<Linear>> Deserialize(BinaryReader* reader);

 private:
  size_t in_dim_;
  size_t out_dim_;
  Matrix weight_;       ///< in_dim x out_dim
  Matrix bias_;         ///< 1 x out_dim
  Matrix grad_weight_;
  Matrix grad_bias_;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_LINEAR_H_
