#ifndef MAGNETO_NN_WORKSPACE_H_
#define MAGNETO_NN_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"

namespace magneto::nn {

class Sequential;

/// Per-layer, per-run mutable state. Layers are immutable during `Forward`;
/// anything a run needs to remember between `Forward` and `Backward` (a
/// dropout mask, layer-norm statistics) lives in the slot the caller hands
/// in. Slots are plain buffers reused across calls, so a run at a stable
/// batch shape never allocates.
struct LayerState {
  /// Layer-defined forward cache: LayerNorm's x_hat, Dropout's scaled
  /// keep-mask. Untouched by layers with no backward state.
  Matrix cached;
  /// Backward scratch (Linear's weight-gradient GEMM output).
  Matrix scratch;
  /// Per-row scalars (LayerNorm's 1/std).
  std::vector<float> stats;
  /// Dropout's mask stream. Lazily created from the layer's seed on the
  /// first training forward, then advances across calls — a training run
  /// that keeps one workspace sees the same mask sequence the layer-owned
  /// RNG used to produce.
  std::unique_ptr<Rng> rng;
  /// Seed `rng` was created from; a mismatch (the workspace moved to a
  /// different network) re-seeds the stream.
  uint64_t rng_seed = 0;
  /// Dropout: the last recorded forward ran in training mode.
  bool flag = false;
};

/// Caller-owned activation storage for `Sequential::Forward`/`Backward` —
/// the run-context half of a session/run-context split. The network holds
/// parameters only and its `Forward` is `const`; every mutable tensor of a
/// pass lives here. One immutable backbone therefore runs on N threads with
/// zero locks, each thread bringing its own workspace.
///
/// Ownership rules:
///  - One workspace per concurrent caller. Sharing a workspace across
///    threads is a data race; sharing it across networks is fine (buffers
///    and dropout streams re-adapt).
///  - References returned by `Sequential::Forward`/`Backward` point into
///    the workspace and stay valid until its next forward/backward.
///  - `Backward` must use the same workspace as the recorded `Forward` it
///    matches.
///
/// Buffers grow to the high-water shape and are then reused: steady-state
/// forwards perform zero heap allocations (see `Matrix::AllocationCount`).
class ForwardWorkspace {
 public:
  ForwardWorkspace() = default;
  ForwardWorkspace(ForwardWorkspace&&) noexcept = default;
  ForwardWorkspace& operator=(ForwardWorkspace&&) noexcept = default;
  ForwardWorkspace(const ForwardWorkspace&) = delete;
  ForwardWorkspace& operator=(const ForwardWorkspace&) = delete;

  /// Releases every held buffer (capacity included). Reuse never requires
  /// this; it exists for memory-pressure housekeeping.
  void Clear() {
    states_.clear();
    acts_.clear();
    io_[0] = Matrix();
    io_[1] = Matrix();
    grad_[0] = Matrix();
    grad_[1] = Matrix();
    recorded_net_ = nullptr;
    recorded_layers_ = 0;
    recorded_ = false;
  }

 private:
  friend class Sequential;

  void PrepareLayers(size_t n) {
    if (states_.size() < n) states_.resize(n);
    if (acts_.size() < n + 1) acts_.resize(n + 1);
  }

  std::vector<LayerState> states_;
  /// Recorded path: acts_[0] is the pass input, acts_[i+1] layer i's output.
  std::vector<Matrix> acts_;
  /// Inference path: layers ping-pong between these two buffers.
  Matrix io_[2];
  /// Backward path: layer input-gradients ping-pong between these two, so
  /// the forward output survives the backward pass.
  Matrix grad_[2];
  /// Which network's activations are recorded here (misuse detection).
  const void* recorded_net_ = nullptr;
  size_t recorded_layers_ = 0;
  bool recorded_ = false;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_WORKSPACE_H_
