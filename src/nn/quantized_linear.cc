#include "nn/quantized_linear.h"

#include <cmath>

namespace magneto::nn {

QuantizedMatrix QuantizedMatrix::Quantize(const Matrix& w) {
  QuantizedMatrix q;
  q.rows = w.rows();
  q.cols = w.cols();
  q.data.resize(w.size());
  q.scales.assign(w.cols(), 0.0f);
  for (size_t j = 0; j < w.cols(); ++j) {
    float max_abs = 0.0f;
    for (size_t i = 0; i < w.rows(); ++i) {
      max_abs = std::max(max_abs, std::fabs(w.At(i, j)));
    }
    q.scales[j] = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  }
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      const float scaled = w.At(i, j) / q.scales[j];
      q.data[i * w.cols() + j] = static_cast<int8_t>(
          std::lround(std::fmin(127.0f, std::fmax(-127.0f, scaled))));
    }
  }
  return q;
}

Matrix QuantizedMatrix::Dequantize() const {
  Matrix w(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      w.At(i, j) = static_cast<float>(data[i * cols + j]) * scales[j];
    }
  }
  return w;
}

QuantizedLinear::QuantizedLinear(const Linear& source)
    : in_dim_(source.in_dim()),
      out_dim_(source.out_dim()),
      weight_(QuantizedMatrix::Quantize(source.weight())),
      bias_(source.bias().Row(0)) {}

void QuantizedLinear::Forward(const Matrix& input, bool /*training*/,
                              LayerState* /*state*/, Matrix* output) const {
  MAGNETO_CHECK(input.cols() == in_dim_);
  output->ResetForOverwrite(input.rows(), out_dim_);
  // y[r][j] = (sum_i x[r][i] * q[i][j]) * scale[j] + b[j]. The inner
  // accumulation runs over int8 weights widened on the fly.
  for (size_t r = 0; r < input.rows(); ++r) {
    const float* x = input.RowPtr(r);
    float* y = output->RowPtr(r);
    for (size_t j = 0; j < out_dim_; ++j) y[j] = 0.0f;
    for (size_t i = 0; i < in_dim_; ++i) {
      const float xi = x[i];
      if (xi == 0.0f) continue;
      const int8_t* wrow = weight_.data.data() + i * out_dim_;
      for (size_t j = 0; j < out_dim_; ++j) {
        y[j] += xi * static_cast<float>(wrow[j]);
      }
    }
    for (size_t j = 0; j < out_dim_; ++j) {
      y[j] = y[j] * weight_.scales[j] + bias_[j];
    }
  }
}

void QuantizedLinear::Backward(const Matrix& /*grad_output*/,
                               const Matrix& /*input*/,
                               const Matrix& /*output*/, LayerState* /*state*/,
                               Matrix* /*grad_input*/) {
  MAGNETO_LOG(Fatal) << "QuantizedLinear is inference-only";
}

std::string QuantizedLinear::name() const {
  return "QuantizedLinear(" + std::to_string(in_dim_) + "->" +
         std::to_string(out_dim_) + ", int8)";
}

float QuantizedLinear::MaxWeightError(const Linear& source) const {
  Matrix dequantized = weight_.Dequantize();
  dequantized.SubInPlace(source.weight());
  return dequantized.AbsMax();
}

std::unique_ptr<Layer> QuantizedLinear::Clone() const {
  auto clone = std::unique_ptr<QuantizedLinear>(new QuantizedLinear());
  clone->in_dim_ = in_dim_;
  clone->out_dim_ = out_dim_;
  clone->weight_ = weight_;
  clone->bias_ = bias_;
  return clone;
}

void QuantizedLinear::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(kQuantizedLinearTag);
  writer->WriteU64(in_dim_);
  writer->WriteU64(out_dim_);
  writer->WriteI8Vector(weight_.data);
  writer->WriteF32Vector(weight_.scales);
  writer->WriteF32Vector(bias_);
}

Result<std::unique_ptr<QuantizedLinear>> QuantizedLinear::Deserialize(
    BinaryReader* reader) {
  auto layer = std::unique_ptr<QuantizedLinear>(new QuantizedLinear());
  MAGNETO_ASSIGN_OR_RETURN(layer->in_dim_, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(layer->out_dim_, reader->ReadU64());
  constexpr uint64_t kMaxDim = 1 << 20;
  if (layer->in_dim_ == 0 || layer->out_dim_ == 0 ||
      layer->in_dim_ > kMaxDim || layer->out_dim_ > kMaxDim) {
    return Status::Corruption("quantized linear dimensions out of range");
  }
  MAGNETO_ASSIGN_OR_RETURN(layer->weight_.data, reader->ReadI8Vector());
  MAGNETO_ASSIGN_OR_RETURN(layer->weight_.scales, reader->ReadF32Vector());
  MAGNETO_ASSIGN_OR_RETURN(layer->bias_, reader->ReadF32Vector());
  layer->weight_.rows = layer->in_dim_;
  layer->weight_.cols = layer->out_dim_;
  if (layer->weight_.data.size() != layer->in_dim_ * layer->out_dim_ ||
      layer->weight_.scales.size() != layer->out_dim_ ||
      layer->bias_.size() != layer->out_dim_) {
    return Status::Corruption("quantized linear payload size mismatch");
  }
  return layer;
}

}  // namespace magneto::nn
