#include "nn/quantized_linear.h"

#include <algorithm>
#include <cmath>

#include "common/qgemm.h"

namespace magneto::nn {

Result<QuantizedMatrix> QuantizedMatrix::Quantize(const Matrix& w) {
  for (size_t i = 0; i < w.rows(); ++i) {
    const float* row = w.RowPtr(i);
    for (size_t j = 0; j < w.cols(); ++j) {
      if (!std::isfinite(row[j])) {
        return Status::InvalidArgument(
            "cannot quantize non-finite weight at (" + std::to_string(i) +
            ", " + std::to_string(j) + ")");
      }
    }
  }
  QuantizedMatrix q;
  q.rows = w.rows();
  q.cols = w.cols();
  q.data.resize(w.size());
  q.scales.assign(w.cols(), 0.0f);
  for (size_t j = 0; j < w.cols(); ++j) {
    float max_abs = 0.0f;
    for (size_t i = 0; i < w.rows(); ++i) {
      max_abs = std::max(max_abs, std::fabs(w.At(i, j)));
    }
    q.scales[j] = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  }
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      const float scaled = w.At(i, j) / q.scales[j];
      q.data[i * w.cols() + j] = static_cast<int8_t>(
          std::lround(std::fmin(127.0f, std::fmax(-127.0f, scaled))));
    }
  }
  return q;
}

Matrix QuantizedMatrix::Dequantize() const {
  Matrix w(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      w.At(i, j) = static_cast<float>(data[i * cols + j]) * scales[j];
    }
  }
  return w;
}

Result<std::unique_ptr<QuantizedLinear>> QuantizedLinear::FromLinear(
    const Linear& source) {
  auto layer = std::unique_ptr<QuantizedLinear>(new QuantizedLinear());
  layer->in_dim_ = source.in_dim();
  layer->out_dim_ = source.out_dim();
  MAGNETO_ASSIGN_OR_RETURN(layer->weight_,
                           QuantizedMatrix::Quantize(source.weight()));
  layer->bias_ = source.bias().Row(0);
  for (float b : layer->bias_) {
    if (!std::isfinite(b)) {
      return Status::InvalidArgument("cannot quantize non-finite bias");
    }
  }
  return layer;
}

void QuantizedLinear::Forward(const Matrix& input, bool /*training*/,
                              LayerState* /*state*/, Matrix* output) const {
  MAGNETO_CHECK(input.cols() == in_dim_);
  if (QGemmEnabled()) {
    // Quantize the activations per row, then run the integer GEMM. The
    // scratch is call-local so one immutable layer can serve concurrent
    // forwards. Output is bit-identical across thread counts: integer
    // accumulation is exact and the scale fold is a fixed float sequence.
    QuantizedRows qx;
    QuantizeRowsInt8(input, &qx);
    QGemmInt8(qx, weight_.data.data(), in_dim_, out_dim_,
              weight_.scales.data(), bias_.data(), output);
    return;
  }
  // MAGNETO_QGEMM=off: the serial fp32-dequant reference — weights widened
  // on the fly, activations left in float. This is the path the int8 kernel
  // replaced; it has no activation-quantization error, so the kernel must
  // track it within the per-row quantization tolerance (and beat it on
  // latency — see bench_quant).
  output->ResetForOverwrite(input.rows(), out_dim_);
  for (size_t r = 0; r < input.rows(); ++r) {
    const float* x = input.RowPtr(r);
    float* y = output->RowPtr(r);
    for (size_t j = 0; j < out_dim_; ++j) y[j] = 0.0f;
    for (size_t i = 0; i < in_dim_; ++i) {
      const float xi = x[i];
      if (xi == 0.0f) continue;
      const int8_t* wrow = weight_.data.data() + i * out_dim_;
      for (size_t j = 0; j < out_dim_; ++j) {
        y[j] += xi * static_cast<float>(wrow[j]);
      }
    }
    for (size_t j = 0; j < out_dim_; ++j) {
      y[j] = y[j] * weight_.scales[j] + bias_[j];
    }
  }
}

void QuantizedLinear::Backward(const Matrix& /*grad_output*/,
                               const Matrix& /*input*/,
                               const Matrix& /*output*/, LayerState* /*state*/,
                               Matrix* /*grad_input*/) {
  MAGNETO_LOG(Fatal) << "QuantizedLinear is inference-only";
}

std::string QuantizedLinear::name() const {
  return "QuantizedLinear(" + std::to_string(in_dim_) + "->" +
         std::to_string(out_dim_) + ", int8)";
}

float QuantizedLinear::MaxWeightError(const Linear& source) const {
  Matrix dequantized = weight_.Dequantize();
  dequantized.SubInPlace(source.weight());
  return dequantized.AbsMax();
}

std::unique_ptr<Layer> QuantizedLinear::Clone() const {
  auto clone = std::unique_ptr<QuantizedLinear>(new QuantizedLinear());
  clone->in_dim_ = in_dim_;
  clone->out_dim_ = out_dim_;
  clone->weight_ = weight_;
  clone->bias_ = bias_;
  return clone;
}

void QuantizedLinear::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(kQuantizedLinearTag);
  writer->WriteU64(in_dim_);
  writer->WriteU64(out_dim_);
  writer->WriteI8Vector(weight_.data);
  writer->WriteF32Vector(weight_.scales);
  writer->WriteF32Vector(bias_);
}

Result<std::unique_ptr<QuantizedLinear>> QuantizedLinear::Deserialize(
    BinaryReader* reader) {
  auto layer = std::unique_ptr<QuantizedLinear>(new QuantizedLinear());
  MAGNETO_ASSIGN_OR_RETURN(layer->in_dim_, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(layer->out_dim_, reader->ReadU64());
  constexpr uint64_t kMaxDim = 1 << 20;
  if (layer->in_dim_ == 0 || layer->out_dim_ == 0 ||
      layer->in_dim_ > kMaxDim || layer->out_dim_ > kMaxDim) {
    return Status::Corruption("quantized linear dimensions out of range");
  }
  // Every vector read is bounded by the element count the validated dims
  // imply — a corrupt length field fails *before* any allocation instead of
  // driving a huge one from untrusted bundle bytes.
  const uint64_t weight_count = layer->in_dim_ * layer->out_dim_;
  MAGNETO_ASSIGN_OR_RETURN(layer->weight_.data,
                           reader->ReadI8VectorExpected(weight_count));
  MAGNETO_ASSIGN_OR_RETURN(layer->weight_.scales,
                           reader->ReadF32VectorExpected(layer->out_dim_));
  MAGNETO_ASSIGN_OR_RETURN(layer->bias_,
                           reader->ReadF32VectorExpected(layer->out_dim_));
  layer->weight_.rows = layer->in_dim_;
  layer->weight_.cols = layer->out_dim_;
  for (float s : layer->weight_.scales) {
    // A NaN/inf/zero/negative scale silently poisons every embedding that
    // flows through the layer; reject at the trust boundary instead.
    if (!std::isfinite(s) || s <= 0.0f) {
      return Status::Corruption("quantized linear scale not finite-positive");
    }
  }
  for (float b : layer->bias_) {
    if (!std::isfinite(b)) {
      return Status::Corruption("quantized linear bias not finite");
    }
  }
  return layer;
}

}  // namespace magneto::nn
