#ifndef MAGNETO_NN_LOSS_H_
#define MAGNETO_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace magneto::nn {

/// Scalar loss plus gradient w.r.t. a single input batch.
struct LossResult {
  double loss = 0.0;
  Matrix grad;  ///< same shape as the input batch
};

/// Scalar loss plus gradients w.r.t. the two branches of a Siamese pair.
struct PairLossResult {
  double loss = 0.0;
  Matrix grad_a;
  Matrix grad_b;
};

/// Mean softmax cross-entropy over the batch. `logits` is (B x C),
/// `labels[i]` in [0, C).
LossResult SoftmaxCrossEntropy(const Matrix& logits,
                               const std::vector<int>& labels);

/// Margin-based pairwise contrastive loss (Hadsell et al.) over a batch of
/// Siamese pairs — the loss MAGNETO trains its embedding with:
///
///   d_i = || a_i - b_i ||_2
///   L_i = same_i       : 0.5 * d_i^2
///         different_i  : 0.5 * max(0, margin - d_i)^2
///
/// Pulls same-activity windows together, pushes different activities at least
/// `margin` apart, yielding the class-separable embedding space the NCM
/// classifier needs. Loss is the batch mean.
PairLossResult ContrastiveLoss(const Matrix& a, const Matrix& b,
                               const std::vector<uint8_t>& same,
                               double margin);

/// Supervised contrastive loss (Khosla et al. 2020) over one batch of
/// embeddings. Embeddings are L2-normalised internally; the returned gradient
/// is w.r.t. the *unnormalised* input. Anchors with no positive in the batch
/// are skipped. `temperature` > 0.
LossResult SupConLoss(const Matrix& embeddings, const std::vector<int>& labels,
                      double temperature);

/// Embedding distillation, MSE flavour: mean_i ||student_i - teacher_i||^2.
/// The teacher batch is a constant (no gradient).
LossResult DistillationMse(const Matrix& student, const Matrix& teacher);

/// Embedding distillation, cosine flavour: mean_i (1 - cos(student_i,
/// teacher_i)). Scale-invariant — constrains embedding *directions* only.
LossResult DistillationCosine(const Matrix& student, const Matrix& teacher);

}  // namespace magneto::nn

#endif  // MAGNETO_NN_LOSS_H_
