#ifndef MAGNETO_NN_GRADIENT_CHECK_H_
#define MAGNETO_NN_GRADIENT_CHECK_H_

#include <functional>

#include "common/matrix.h"
#include "nn/sequential.h"

namespace magneto::nn {

/// Result of a finite-difference gradient check.
struct GradientCheckResult {
  double max_abs_error = 0.0;   ///< max |analytic - numeric|
  double max_rel_error = 0.0;   ///< max error / (|analytic| + |numeric| + eps)
  size_t checked = 0;           ///< number of scalars compared
  bool Passed(double rel_tol) const { return max_rel_error <= rel_tol; }
};

/// Verifies a network's parameter gradients against central differences.
///
/// `loss_fn` must run `net.Forward(..., ws, /*training=*/true)` exactly once
/// through a workspace it owns, call `net.Backward(..., ws)` (accumulating
/// gradients), and return the scalar loss.
/// The checker zeroes gradients itself before invoking `loss_fn`. Float32
/// parameters limit achievable agreement; rel_tol around 1e-2 with
/// epsilon ~1e-3 is the practical regime, and the check perturbs at most
/// `max_scalars_per_param` entries of each parameter to stay fast.
GradientCheckResult CheckParameterGradients(
    Sequential* net, const std::function<double()>& loss_fn,
    double epsilon = 1e-3, size_t max_scalars_per_param = 16);

/// Verifies an input-gradient function against central differences.
/// `loss_and_grad` returns the loss and fills `grad` (same shape as `input`)
/// for the supplied input.
GradientCheckResult CheckInputGradient(
    const Matrix& input,
    const std::function<double(const Matrix& input, Matrix* grad)>&
        loss_and_grad,
    double epsilon = 1e-3, size_t max_scalars = 64);

}  // namespace magneto::nn

#endif  // MAGNETO_NN_GRADIENT_CHECK_H_
