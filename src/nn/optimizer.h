#ifndef MAGNETO_NN_OPTIMIZER_H_
#define MAGNETO_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "common/matrix.h"

namespace magneto::nn {

/// First-order optimiser over a fixed parameter/gradient list.
///
/// Bound once to the matrices of a `Sequential` (the lists must stay alive
/// and keep their shapes); `Step()` consumes the accumulated gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradient buffers.
  virtual void Step() = 0;

  /// Clears the gradient buffers.
  void ZeroGrad();

  size_t num_params() const { return params_.size(); }

 protected:
  Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads);

  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  struct Options {
    double learning_rate = 0.01;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Matrix*> params, std::vector<Matrix*> grads,
      Options options);

  void Step() override;

  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }

 private:
  Options options_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW-style).
class Adam : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads,
       Options options);

  void Step() override;

  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }

 private:
  Options options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t t_ = 0;
};

}  // namespace magneto::nn

#endif  // MAGNETO_NN_OPTIMIZER_H_
