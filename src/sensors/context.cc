#include "sensors/context.h"

#include <cmath>

namespace magneto::sensors {

RecordingContext RecordingContext::Sample(Rng* rng) {
  RecordingContext ctx;
  // Illuminance spans orders of magnitude between night and noon: log-uniform.
  ctx.light_scale = std::exp(rng->Uniform(std::log(0.05), std::log(5.0)));
  // Altitude (0-1500 m) and weather systems move the barometer tens of hPa.
  ctx.pressure_shift = rng->Uniform(-40.0, 15.0);
  // Pocket vs hand: proximity sensor covered or not.
  ctx.proximity = rng->Bernoulli(0.5) ? rng->Uniform(0.0, 1.0)
                                      : rng->Uniform(4.0, 6.0);
  ctx.speed_noise_scale = std::exp(rng->Normal(0.0, 0.4));
  for (int i = 0; i < 3; ++i) {
    ctx.mag_shift[i] = rng->Normal(0.0, 15.0);
    ctx.orientation_gain[i] = std::exp(rng->Normal(0.0, 0.15));
  }
  return ctx;
}

SignalModel RecordingContext::Apply(const SignalModel& model) const {
  SignalModel out = model;

  ChannelModel& light = out.channel(Channel::kLight);
  light.baseline *= light_scale;
  light.noise_sigma *= light_scale;

  out.channel(Channel::kPressure).baseline += pressure_shift;
  out.channel(Channel::kProximity).baseline = proximity;

  ChannelModel& speed = out.channel(Channel::kSpeed);
  speed.noise_sigma *= speed_noise_scale;

  const Channel mags[3] = {Channel::kMagX, Channel::kMagY, Channel::kMagZ};
  const Channel gravity[3] = {Channel::kGravityX, Channel::kGravityY,
                              Channel::kGravityZ};
  const Channel rot[3] = {Channel::kRotX, Channel::kRotY, Channel::kRotZ};
  for (int i = 0; i < 3; ++i) {
    out.channel(mags[i]).baseline += mag_shift[i];
    ChannelModel& g = out.channel(gravity[i]);
    g.baseline *= orientation_gain[i];
    for (Harmonic& h : g.harmonics) h.amplitude *= orientation_gain[i];
    ChannelModel& r = out.channel(rot[i]);
    r.baseline *= orientation_gain[i];
  }
  return out;
}

}  // namespace magneto::sensors
