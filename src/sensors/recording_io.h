#ifndef MAGNETO_SENSORS_RECORDING_IO_H_
#define MAGNETO_SENSORS_RECORDING_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "sensors/dataset.h"
#include "sensors/synthetic_generator.h"

namespace magneto::sensors {

/// Binary persistence for sensor recordings — the on-disk artifact of a
/// "data collection campaign" (§3.2). Format: magic "MSNS", u32 version,
/// u64 count, per recording {i64 label, f64 rate, u64 rows, u64 cols,
/// packed f32 samples}, u32 CRC of everything after the magic.
///
/// A labeled capture file round-trips losslessly and is what `magneto
/// collect` writes and `magneto pretrain --data` consumes.

void SerializeRecording(const Recording& recording, BinaryWriter* writer);
Result<Recording> DeserializeRecording(BinaryReader* reader);

/// Whole-campaign file helpers.
Status SaveRecordings(const std::vector<LabeledRecording>& recordings,
                      const std::string& path);
Result<std::vector<LabeledRecording>> LoadRecordings(const std::string& path);

/// Writes a feature dataset as CSV for external analysis (pandas, R, ...):
/// header `label,<feature names...>`, one row per example. `feature_names`
/// must match the dataset dimension (e.g. `FeatureExtractor::FeatureNames()`)
/// or be empty, in which case columns are named f0..fN.
Status WriteFeatureCsv(const FeatureDataset& dataset,
                       const std::vector<std::string>& feature_names,
                       const std::string& path);

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_RECORDING_IO_H_
