#ifndef MAGNETO_SENSORS_RECORDING_H_
#define MAGNETO_SENSORS_RECORDING_H_

#include <cstddef>

#include "common/matrix.h"
#include "sensors/sensor_types.h"

namespace magneto::sensors {

/// A contiguous multi-channel sensor capture.
///
/// Rows are time steps, columns are channels (see `Channel` for the layout).
/// This is the raw unit the preprocessing pipeline consumes — e.g. the
/// "roughly 20-30 seconds of recording" a user captures for a new activity
/// (§3.3 step 1).
struct Recording {
  Matrix samples;                              ///< num_samples x kNumChannels
  double sample_rate_hz = kDefaultSampleRateHz;

  size_t num_samples() const { return samples.rows(); }
  size_t num_channels() const { return samples.cols(); }
  double duration_seconds() const {
    return sample_rate_hz > 0
               ? static_cast<double>(num_samples()) / sample_rate_hz
               : 0.0;
  }
};

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_RECORDING_H_
