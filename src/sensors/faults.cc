#include "sensors/faults.h"

#include <algorithm>
#include <cmath>

namespace magneto::sensors {

Recording InjectFaults(const Recording& recording,
                       const std::vector<FaultSpec>& faults, Rng* rng) {
  Recording out = recording;
  const double rate = recording.sample_rate_hz;
  for (const FaultSpec& fault : faults) {
    const size_t ch = static_cast<size_t>(fault.channel);
    if (ch >= out.num_channels()) continue;
    const size_t start = static_cast<size_t>(
        std::max(0.0, fault.start_s) * rate);
    const size_t end = std::min(
        out.num_samples(),
        static_cast<size_t>((fault.start_s + fault.duration_s) * rate));
    if (start >= end) continue;

    switch (fault.kind) {
      case FaultKind::kDropout:
        for (size_t i = start; i < end; ++i) out.samples.At(i, ch) = 0.0f;
        break;
      case FaultKind::kFreeze: {
        const float frozen =
            start > 0 ? out.samples.At(start - 1, ch) : out.samples.At(0, ch);
        for (size_t i = start; i < end; ++i) out.samples.At(i, ch) = frozen;
        break;
      }
      case FaultKind::kSaturate: {
        const float clip = static_cast<float>(fault.magnitude);
        for (size_t i = start; i < end; ++i) {
          out.samples.At(i, ch) =
              out.samples.At(i, ch) >= 0.0f ? clip : -clip;
        }
        break;
      }
      case FaultKind::kSpikes: {
        MAGNETO_CHECK(rng != nullptr);
        for (size_t i = start; i < end; ++i) {
          if (rng->Bernoulli(0.1)) {
            out.samples.At(i, ch) = static_cast<float>(
                (rng->Bernoulli(0.5) ? 1.0 : -1.0) * fault.magnitude);
          }
        }
        break;
      }
    }
  }
  return out;
}

std::vector<FaultSpec> RandomFaults(size_t count, double duration_s,
                                    Rng* rng) {
  MAGNETO_CHECK(rng != nullptr);
  std::vector<FaultSpec> faults;
  faults.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    FaultSpec fault;
    fault.channel = static_cast<Channel>(rng->Index(kNumChannels));
    fault.kind = static_cast<FaultKind>(rng->Index(4));
    fault.duration_s = rng->Uniform(0.2, duration_s / 2.0);
    fault.start_s = rng->Uniform(0.0, duration_s - fault.duration_s);
    fault.magnitude = rng->Uniform(10.0, 100.0);
    faults.push_back(fault);
  }
  return faults;
}

}  // namespace magneto::sensors
