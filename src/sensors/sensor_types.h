#ifndef MAGNETO_SENSORS_SENSOR_TYPES_H_
#define MAGNETO_SENSORS_SENSOR_TYPES_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace magneto::sensors {

/// Number of sensor channels produced by the (simulated) mobile device.
/// Matches the paper's "22 mobile sensors" (§4.1.2).
inline constexpr size_t kNumChannels = 22;

/// Default sampling rate. The paper segments into one-second windows of
/// "roughly 120 sequential measurements", i.e. ~120 Hz.
inline constexpr double kDefaultSampleRateHz = 120.0;

/// Identifies one scalar sensor channel on the device.
///
/// The layout mirrors a typical Android sensor stack: three-axis inertial
/// sensors plus scalar environment sensors.
enum class Channel : uint8_t {
  kAccX = 0,
  kAccY = 1,
  kAccZ = 2,
  kGyroX = 3,
  kGyroY = 4,
  kGyroZ = 5,
  kMagX = 6,
  kMagY = 7,
  kMagZ = 8,
  kLinAccX = 9,
  kLinAccY = 10,
  kLinAccZ = 11,
  kGravityX = 12,
  kGravityY = 13,
  kGravityZ = 14,
  kRotX = 15,
  kRotY = 16,
  kRotZ = 17,
  kPressure = 18,
  kLight = 19,
  kProximity = 20,
  kSpeed = 21,
};

/// Stable, human-readable channel name (e.g. "acc_x").
std::string_view ChannelName(Channel c);

/// One synchronous multi-channel sample (one row of a recording).
using Frame = std::array<float, kNumChannels>;

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_SENSOR_TYPES_H_
