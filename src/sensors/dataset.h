#ifndef MAGNETO_SENSORS_DATASET_H_
#define MAGNETO_SENSORS_DATASET_H_

#include <map>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "sensors/activity.h"

namespace magneto::sensors {

/// A labeled set of fixed-length feature vectors.
///
/// This is the representation everything downstream of the preprocessing
/// pipeline works on: one row = one one-second window reduced to the 80
/// statistical features, `labels()[i]` = the activity performed in that
/// window. Storage is a flat row-major buffer with amortised append.
class FeatureDataset {
 public:
  FeatureDataset() = default;

  /// Takes ownership of row-major `features` (n x dim) and `labels` (n).
  FeatureDataset(Matrix features, std::vector<ActivityId> labels);

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  size_t dim() const { return dim_; }

  const std::vector<ActivityId>& labels() const { return labels_; }

  const float* Row(size_t i) const {
    MAGNETO_DCHECK(i < size());
    return data_.data() + i * dim_;
  }
  std::vector<float> RowVector(size_t i) const {
    const float* r = Row(i);
    return std::vector<float>(r, r + dim_);
  }
  ActivityId Label(size_t i) const { return labels_[i]; }

  /// Copies all rows into a fresh (size x dim) matrix.
  Matrix ToMatrix() const;

  /// Appends one example. The first append fixes the feature dimension.
  void Append(const float* feature, size_t dim, ActivityId label);
  void Append(const std::vector<float>& feature, ActivityId label) {
    Append(feature.data(), feature.size(), label);
  }

  /// Appends all examples of `other` (dimensions must match).
  void Merge(const FeatureDataset& other);

  /// Random permutation of the examples.
  void Shuffle(Rng* rng);

  /// Stratified split: `train_fraction` of each class goes to the first
  /// dataset, the rest to the second. Preserves class balance in both halves.
  std::pair<FeatureDataset, FeatureDataset> StratifiedSplit(
      double train_fraction, Rng* rng) const;

  /// All examples of class `label`.
  FeatureDataset FilterByClass(ActivityId label) const;

  /// All examples whose label is in `labels`.
  FeatureDataset FilterByClasses(const std::vector<ActivityId>& labels) const;

  /// Examples per class.
  std::map<ActivityId, size_t> ClassCounts() const;

  /// Distinct labels in ascending order.
  std::vector<ActivityId> Classes() const;

  /// Keeps at most `max_per_class` random examples per class.
  FeatureDataset SubsamplePerClass(size_t max_per_class, Rng* rng) const;

 private:
  size_t dim_ = 0;
  std::vector<float> data_;  ///< row-major, size() * dim_ floats
  std::vector<ActivityId> labels_;
};

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_DATASET_H_
