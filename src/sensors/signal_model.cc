#include "sensors/signal_model.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace magneto::sensors {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kGravity = 9.81;

void SetTriAxis(SignalModel* m, Channel x, Channel y, Channel z,
                const ChannelModel& base, double y_scale, double z_scale) {
  m->channel(x) = base;
  m->channel(y) = base;
  m->channel(z) = base;
  for (Harmonic& h : m->channel(y).harmonics) h.amplitude *= y_scale;
  for (Harmonic& h : m->channel(z).harmonics) h.amplitude *= z_scale;
  m->channel(y).burst_amplitude *= y_scale;
  m->channel(z).burst_amplitude *= z_scale;
}

/// Shared environment-channel defaults: phone in pocket / hand, outdoors.
void SetEnvironmentDefaults(SignalModel* m, double pressure_noise,
                            double light_level, double speed_mps,
                            double speed_noise) {
  ChannelModel pressure;
  pressure.baseline = 1013.0;
  pressure.noise_sigma = pressure_noise;
  pressure.drift_sigma = 0.0005;
  m->channel(Channel::kPressure) = pressure;

  ChannelModel light;
  light.baseline = light_level;
  light.noise_sigma = light_level * 0.05 + 1.0;
  m->channel(Channel::kLight) = light;

  ChannelModel proximity;
  proximity.baseline = 5.0;  // cm; uncovered
  proximity.noise_sigma = 0.05;
  m->channel(Channel::kProximity) = proximity;

  ChannelModel speed;
  speed.baseline = speed_mps;
  speed.noise_sigma = speed_noise;
  speed.drift_sigma = speed_noise * 0.02;
  m->channel(Channel::kSpeed) = speed;
}

/// Magnetometer: earth field plus activity-dependent orientation wobble.
void SetMagDefaults(SignalModel* m, double wobble_amp, double wobble_hz) {
  const double field[3] = {22.0, 5.0, -42.0};  // microtesla, typical
  const Channel mags[3] = {Channel::kMagX, Channel::kMagY, Channel::kMagZ};
  for (int i = 0; i < 3; ++i) {
    ChannelModel c;
    c.baseline = field[i];
    c.noise_sigma = 0.4;
    if (wobble_amp > 0.0) {
      c.harmonics.push_back({wobble_amp * (1.0 + 0.2 * i), wobble_hz,
                             0.7 * static_cast<double>(i)});
    }
    m->channel(mags[i]) = c;
  }
}

/// Gravity channels: constant ~g split across axes with small tilt wobble.
void SetGravityDefaults(SignalModel* m, double tilt_wobble_amp,
                        double wobble_hz) {
  const double g_axis[3] = {0.8, 2.1, kGravity * 0.97};
  const Channel grav[3] = {Channel::kGravityX, Channel::kGravityY,
                           Channel::kGravityZ};
  for (int i = 0; i < 3; ++i) {
    ChannelModel c;
    c.baseline = g_axis[i];
    c.noise_sigma = 0.02;
    if (tilt_wobble_amp > 0.0) {
      c.harmonics.push_back(
          {tilt_wobble_amp, wobble_hz, 0.5 * static_cast<double>(i)});
    }
    m->channel(grav[i]) = c;
  }
}

SignalModel MakeStill() {
  SignalModel m;
  ChannelModel acc;
  acc.baseline = 0.05;
  acc.noise_sigma = 0.02;  // hand tremor
  SetTriAxis(&m, Channel::kAccX, Channel::kAccY, Channel::kAccZ, acc, 1.0,
             1.0);
  m.channel(Channel::kAccZ).baseline = kGravity;  // device flat

  ChannelModel gyro;
  gyro.noise_sigma = 0.01;
  SetTriAxis(&m, Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ, gyro, 1.0,
             1.0);

  ChannelModel lin;
  lin.noise_sigma = 0.015;
  SetTriAxis(&m, Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ, lin,
             1.0, 1.0);

  ChannelModel rot;
  rot.baseline = 0.1;
  rot.noise_sigma = 0.005;
  SetTriAxis(&m, Channel::kRotX, Channel::kRotY, Channel::kRotZ, rot, 1.2,
             0.8);

  SetMagDefaults(&m, /*wobble_amp=*/0.0, /*wobble_hz=*/0.0);
  SetGravityDefaults(&m, 0.0, 0.0);
  SetEnvironmentDefaults(&m, /*pressure_noise=*/0.01, /*light_level=*/150.0,
                         /*speed_mps=*/0.0, /*speed_noise=*/0.05);
  return m;
}

SignalModel MakeWalk() {
  SignalModel m;
  const double step_hz = 1.9;  // cadence
  ChannelModel acc;
  acc.baseline = 0.1;
  acc.noise_sigma = 0.25;
  acc.harmonics = {{1.6, step_hz, 0.0}, {0.7, 2 * step_hz, 0.9}};
  acc.burst_rate_hz = step_hz;  // heel strikes
  acc.burst_amplitude = 1.2;
  acc.burst_duration_s = 0.08;
  SetTriAxis(&m, Channel::kAccX, Channel::kAccY, Channel::kAccZ, acc, 0.7,
             1.4);
  m.channel(Channel::kAccZ).baseline = kGravity;

  ChannelModel gyro;
  gyro.noise_sigma = 0.12;
  gyro.harmonics = {{0.8, step_hz, 0.5}, {0.3, 2 * step_hz, 1.1}};
  SetTriAxis(&m, Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ, gyro, 1.3,
             0.6);

  ChannelModel lin;
  lin.noise_sigma = 0.2;
  lin.harmonics = {{1.5, step_hz, 0.2}, {0.6, 2 * step_hz, 1.4}};
  SetTriAxis(&m, Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ, lin,
             0.8, 1.5);

  ChannelModel rot;
  rot.baseline = 0.1;
  rot.noise_sigma = 0.03;
  rot.harmonics = {{0.15, step_hz, 0.0}};
  SetTriAxis(&m, Channel::kRotX, Channel::kRotY, Channel::kRotZ, rot, 1.0,
             1.0);

  SetMagDefaults(&m, /*wobble_amp=*/2.5, /*wobble_hz=*/step_hz);
  SetGravityDefaults(&m, 0.35, step_hz);
  SetEnvironmentDefaults(&m, 0.02, 800.0, /*speed_mps=*/1.4,
                         /*speed_noise=*/0.15);
  return m;
}

SignalModel MakeRun() {
  SignalModel m;
  const double step_hz = 2.8;
  ChannelModel acc;
  acc.baseline = 0.2;
  acc.noise_sigma = 0.6;
  acc.harmonics = {{4.5, step_hz, 0.0}, {1.8, 2 * step_hz, 0.7},
                   {0.6, 3 * step_hz, 1.9}};
  acc.burst_rate_hz = step_hz;
  acc.burst_amplitude = 4.0;
  acc.burst_duration_s = 0.05;
  SetTriAxis(&m, Channel::kAccX, Channel::kAccY, Channel::kAccZ, acc, 0.8,
             1.6);
  m.channel(Channel::kAccZ).baseline = kGravity;

  ChannelModel gyro;
  gyro.noise_sigma = 0.35;
  gyro.harmonics = {{2.2, step_hz, 0.4}, {0.9, 2 * step_hz, 1.2}};
  SetTriAxis(&m, Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ, gyro, 1.4,
             0.7);

  ChannelModel lin;
  lin.noise_sigma = 0.5;
  lin.harmonics = {{4.2, step_hz, 0.1}, {1.6, 2 * step_hz, 1.0}};
  SetTriAxis(&m, Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ, lin,
             0.9, 1.7);

  ChannelModel rot;
  rot.baseline = 0.15;
  rot.noise_sigma = 0.08;
  rot.harmonics = {{0.4, step_hz, 0.3}};
  SetTriAxis(&m, Channel::kRotX, Channel::kRotY, Channel::kRotZ, rot, 1.0,
             1.0);

  SetMagDefaults(&m, 5.0, step_hz);
  SetGravityDefaults(&m, 0.8, step_hz);
  SetEnvironmentDefaults(&m, 0.03, 1500.0, /*speed_mps=*/3.2,
                         /*speed_noise=*/0.4);
  return m;
}

SignalModel MakeDrive() {
  SignalModel m;
  const double engine_hz = 28.0;   // engine/road texture
  const double sway_hz = 0.4;      // suspension sway
  ChannelModel acc;
  acc.baseline = 0.05;
  acc.noise_sigma = 0.12;
  acc.harmonics = {{0.25, engine_hz, 0.0}, {0.35, sway_hz, 0.8}};
  acc.burst_rate_hz = 0.3;  // potholes
  acc.burst_amplitude = 1.0;
  acc.burst_duration_s = 0.12;
  SetTriAxis(&m, Channel::kAccX, Channel::kAccY, Channel::kAccZ, acc, 1.1,
             0.9);
  m.channel(Channel::kAccZ).baseline = kGravity;

  ChannelModel gyro;
  gyro.noise_sigma = 0.03;
  gyro.harmonics = {{0.08, sway_hz, 0.2}};
  gyro.drift_sigma = 0.001;  // slow heading changes
  SetTriAxis(&m, Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ, gyro, 0.8,
             1.5);

  ChannelModel lin;
  lin.noise_sigma = 0.1;
  lin.harmonics = {{0.2, engine_hz, 0.3}, {0.3, sway_hz, 1.2}};
  lin.drift_sigma = 0.004;  // accel/brake cycles
  SetTriAxis(&m, Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ, lin,
             1.0, 0.8);

  ChannelModel rot;
  rot.baseline = 0.2;
  rot.noise_sigma = 0.01;
  rot.drift_sigma = 0.002;
  SetTriAxis(&m, Channel::kRotX, Channel::kRotY, Channel::kRotZ, rot, 1.0,
             1.0);

  SetMagDefaults(&m, 8.0, sway_hz);  // car body distorts the field
  SetGravityDefaults(&m, 0.1, sway_hz);
  SetEnvironmentDefaults(&m, 0.05, 400.0, /*speed_mps=*/13.0,
                         /*speed_noise=*/1.5);
  return m;
}

SignalModel MakeEScooter() {
  SignalModel m;
  const double deck_hz = 14.0;  // deck vibration from small wheels
  const double lean_hz = 0.8;
  ChannelModel acc;
  acc.baseline = 0.1;
  acc.noise_sigma = 0.3;
  acc.harmonics = {{0.9, deck_hz, 0.0}, {0.4, lean_hz, 0.6}};
  acc.burst_rate_hz = 1.2;  // pavement joints
  acc.burst_amplitude = 1.8;
  acc.burst_duration_s = 0.06;
  SetTriAxis(&m, Channel::kAccX, Channel::kAccY, Channel::kAccZ, acc, 0.9,
             1.3);
  m.channel(Channel::kAccZ).baseline = kGravity;

  ChannelModel gyro;
  gyro.noise_sigma = 0.08;
  gyro.harmonics = {{0.25, lean_hz, 0.4}, {0.1, deck_hz, 1.0}};
  SetTriAxis(&m, Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ, gyro, 1.2,
             0.9);

  ChannelModel lin;
  lin.noise_sigma = 0.25;
  lin.harmonics = {{0.8, deck_hz, 0.2}, {0.35, lean_hz, 1.1}};
  SetTriAxis(&m, Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ, lin,
             1.0, 1.2);

  ChannelModel rot;
  rot.baseline = 0.12;
  rot.noise_sigma = 0.02;
  rot.harmonics = {{0.1, lean_hz, 0.5}};
  SetTriAxis(&m, Channel::kRotX, Channel::kRotY, Channel::kRotZ, rot, 1.0,
             1.0);

  SetMagDefaults(&m, 3.0, lean_hz);
  SetGravityDefaults(&m, 0.25, lean_hz);
  SetEnvironmentDefaults(&m, 0.03, 1000.0, /*speed_mps=*/5.5,
                         /*speed_noise=*/0.6);
  return m;
}

SignalModel MakeCycle() {
  SignalModel m;
  const double cadence_hz = 1.3;  // pedal revolutions
  ChannelModel acc;
  acc.baseline = 0.1;
  acc.noise_sigma = 0.25;
  acc.harmonics = {{1.0, cadence_hz, 0.0}, {0.5, 2 * cadence_hz, 0.8}};
  SetTriAxis(&m, Channel::kAccX, Channel::kAccY, Channel::kAccZ, acc, 1.2,
             0.8);
  m.channel(Channel::kAccZ).baseline = kGravity;

  ChannelModel gyro;
  gyro.noise_sigma = 0.1;
  // Leg swing couples strongly into the thigh-pocket gyro.
  gyro.harmonics = {{1.4, cadence_hz, 0.3}, {0.4, 2 * cadence_hz, 1.0}};
  SetTriAxis(&m, Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ, gyro, 0.9,
             0.5);

  ChannelModel lin;
  lin.noise_sigma = 0.2;
  lin.harmonics = {{0.9, cadence_hz, 0.1}, {0.4, 2 * cadence_hz, 1.2}};
  SetTriAxis(&m, Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ, lin,
             1.1, 0.7);

  ChannelModel rot;
  rot.baseline = 0.12;
  rot.noise_sigma = 0.02;
  rot.harmonics = {{0.2, cadence_hz, 0.4}};
  SetTriAxis(&m, Channel::kRotX, Channel::kRotY, Channel::kRotZ, rot, 1.0,
             1.0);

  SetMagDefaults(&m, 3.5, cadence_hz);
  SetGravityDefaults(&m, 0.3, cadence_hz);
  SetEnvironmentDefaults(&m, 0.03, 1200.0, /*speed_mps=*/4.5,
                         /*speed_noise=*/0.5);
  return m;
}

SignalModel MakeStairsUp() {
  // Walking gait, slower cadence, with the barometer falling as altitude
  // rises (~0.12 hPa per metre; ~0.2 m per step at 1.5 steps/s).
  SignalModel m = MakeWalk();
  for (Channel c : {Channel::kAccX, Channel::kAccY, Channel::kAccZ,
                    Channel::kGyroX, Channel::kGyroY, Channel::kGyroZ,
                    Channel::kLinAccX, Channel::kLinAccY, Channel::kLinAccZ}) {
    for (Harmonic& h : m.channel(c).harmonics) {
      h.frequency_hz *= 0.75;   // slower cadence
      h.amplitude *= 1.25;      // stronger vertical work
    }
    m.channel(c).burst_rate_hz *= 0.75;
  }
  ChannelModel& pressure = m.channel(Channel::kPressure);
  pressure.drift_sigma = 0.02;
  pressure.baseline -= 0.5;  // climbing away from street level
  m.channel(Channel::kSpeed).baseline = 0.5;  // GPS barely moves in stairwells
  m.channel(Channel::kSpeed).noise_sigma = 0.4;
  return m;
}

SignalModel MakeSit() {
  // Still-like, but the device rests at a different attitude (thigh pocket,
  // roughly 70 degrees from flat) with occasional fidgeting.
  SignalModel m = MakeStill();
  m.channel(Channel::kAccZ).baseline = kGravity * 0.35;
  m.channel(Channel::kAccX).baseline = kGravity * 0.9;
  m.channel(Channel::kGravityZ).baseline = kGravity * 0.35;
  m.channel(Channel::kGravityX).baseline = kGravity * 0.9;
  for (Channel c : {Channel::kAccX, Channel::kAccY, Channel::kAccZ}) {
    ChannelModel& ch = m.channel(c);
    ch.burst_rate_hz = 0.1;  // fidgets
    ch.burst_amplitude = 0.6;
    ch.burst_duration_s = 0.3;
  }
  m.channel(Channel::kLight).baseline = 40.0;  // pocket / indoors
  m.channel(Channel::kProximity).baseline = 0.5;
  return m;
}

}  // namespace

ActivityLibrary ExtendedActivityLibrary() {
  ActivityLibrary lib = DefaultActivityLibrary();
  lib[kCycle] = MakeCycle();
  lib[kStairsUp] = MakeStairsUp();
  lib[kSit] = MakeSit();
  return lib;
}

ActivityLibrary DefaultActivityLibrary() {
  ActivityLibrary lib;
  lib[kDrive] = MakeDrive();
  lib[kEScooter] = MakeEScooter();
  lib[kRun] = MakeRun();
  lib[kStill] = MakeStill();
  lib[kWalk] = MakeWalk();
  return lib;
}

SignalModel MakeGestureModel(uint64_t seed) {
  Rng rng(seed);
  // Start from a stationary body (gestures are performed standing still)...
  SignalModel m = MakeStill();
  // ...and overlay a distinctive arm oscillation on the motion channels.
  const double gesture_hz = rng.Uniform(3.5, 7.5);
  const double amp = rng.Uniform(1.5, 3.5);
  const Channel motion[] = {Channel::kAccX,    Channel::kAccY,
                            Channel::kAccZ,    Channel::kGyroX,
                            Channel::kGyroY,   Channel::kGyroZ,
                            Channel::kLinAccX, Channel::kLinAccY,
                            Channel::kLinAccZ};
  for (Channel c : motion) {
    ChannelModel& cm = m.channel(c);
    const double axis_scale = rng.Uniform(0.3, 1.0);
    cm.harmonics.push_back(
        {amp * axis_scale, gesture_hz, rng.Uniform(0.0, 2.0 * kPi)});
    // Secondary harmonic gives each gesture a distinct timbre.
    cm.harmonics.push_back({amp * axis_scale * rng.Uniform(0.2, 0.5),
                            gesture_hz * rng.Uniform(1.7, 2.3),
                            rng.Uniform(0.0, 2.0 * kPi)});
    cm.noise_sigma += 0.05;
  }
  // Wrist rotation wobble.
  m.channel(Channel::kRotX).harmonics.push_back({0.3, gesture_hz, 0.0});
  m.channel(Channel::kRotY).harmonics.push_back({0.2, gesture_hz, 1.0});
  return m;
}

namespace {

/// The full parameter vector of one large-vocabulary class signature.
/// Drawing it as a struct (fixed draw order) lets overlap interpolate a
/// class toward the shared signature parameter-by-parameter.
struct VocabularySignature {
  double base_hz = 0.0;
  double amp = 0.0;
  double harmonic_ratio = 0.0;
  std::array<double, 9> axis_scale{};
  std::array<double, 9> phase{};
  double pressure_offset = 0.0;
  double light_offset = 0.0;
  double speed_offset = 0.0;
};

VocabularySignature DrawSignature(Rng* rng) {
  VocabularySignature s;
  s.base_hz = rng->Uniform(1.2, 9.0);
  s.amp = rng->Uniform(0.8, 3.2);
  s.harmonic_ratio = rng->Uniform(1.6, 2.4);
  for (double& a : s.axis_scale) a = rng->Uniform(0.2, 1.0);
  for (double& p : s.phase) p = rng->Uniform(0.0, 2.0 * kPi);
  s.pressure_offset = rng->Uniform(-0.3, 0.3);
  s.light_offset = rng->Uniform(-20.0, 20.0);
  s.speed_offset = rng->Uniform(0.0, 2.0);
  return s;
}

double Lerp(double shared, double own, double keep) {
  return shared + keep * (own - shared);
}

/// SplitMix64 — decorrelates the per-class seeds from the base seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ActivityLibrary LargeVocabularyLibrary(const LargeVocabularyOptions& options) {
  const double keep =
      1.0 - std::min(1.0, std::max(0.0, options.overlap));
  Rng shared_rng(Mix64(options.seed));
  const VocabularySignature shared = DrawSignature(&shared_rng);

  ActivityLibrary lib;
  for (size_t i = 0; i < options.num_classes; ++i) {
    const ActivityId id = options.first_id + static_cast<ActivityId>(i);
    Rng rng(Mix64(options.seed ^ Mix64(static_cast<uint64_t>(id))));
    VocabularySignature own = DrawSignature(&rng);
    own.base_hz = Lerp(shared.base_hz, own.base_hz, keep);
    own.amp = Lerp(shared.amp, own.amp, keep);
    own.harmonic_ratio = Lerp(shared.harmonic_ratio, own.harmonic_ratio, keep);
    for (size_t a = 0; a < own.axis_scale.size(); ++a) {
      own.axis_scale[a] = Lerp(shared.axis_scale[a], own.axis_scale[a], keep);
      own.phase[a] = Lerp(shared.phase[a], own.phase[a], keep);
    }
    own.pressure_offset =
        Lerp(shared.pressure_offset, own.pressure_offset, keep);
    own.light_offset = Lerp(shared.light_offset, own.light_offset, keep);
    own.speed_offset = Lerp(shared.speed_offset, own.speed_offset, keep);

    SignalModel m = MakeStill();
    const Channel motion[] = {Channel::kAccX,    Channel::kAccY,
                              Channel::kAccZ,    Channel::kGyroX,
                              Channel::kGyroY,   Channel::kGyroZ,
                              Channel::kLinAccX, Channel::kLinAccY,
                              Channel::kLinAccZ};
    for (size_t a = 0; a < 9; ++a) {
      ChannelModel& cm = m.channel(motion[a]);
      cm.harmonics.push_back(
          {own.amp * own.axis_scale[a], own.base_hz, own.phase[a]});
      // Secondary harmonic gives each class a distinct timbre (same trick
      // as MakeGestureModel).
      cm.harmonics.push_back({own.amp * own.axis_scale[a] * 0.35,
                              own.base_hz * own.harmonic_ratio,
                              own.phase[(a + 3) % 9]});
      cm.noise_sigma += 0.03;
    }
    m.channel(Channel::kRotX).harmonics.push_back(
        {0.25, own.base_hz, own.phase[0]});
    m.channel(Channel::kRotY).harmonics.push_back(
        {0.15, own.base_hz, own.phase[1]});
    // Environment offsets add class signal to the non-motion features.
    m.channel(Channel::kPressure).baseline += own.pressure_offset;
    m.channel(Channel::kLight).baseline =
        std::max(0.0, m.channel(Channel::kLight).baseline + own.light_offset);
    m.channel(Channel::kSpeed).baseline += own.speed_offset;
    lib[id] = std::move(m);
  }
  return lib;
}

}  // namespace magneto::sensors
