#ifndef MAGNETO_SENSORS_SIGNAL_MODEL_H_
#define MAGNETO_SENSORS_SIGNAL_MODEL_H_

#include <array>
#include <map>
#include <vector>

#include "common/random.h"
#include "sensors/activity.h"
#include "sensors/sensor_types.h"

namespace magneto::sensors {

/// One sinusoidal component of a channel's motion signature.
struct Harmonic {
  double amplitude = 0.0;
  double frequency_hz = 0.0;
  double phase = 0.0;  ///< radians
};

/// Generative model of a single sensor channel under one activity.
///
/// A channel sample at time t is:
///   baseline + sum_i harmonics_i + N(0, noise_sigma) + drift(t) + burst(t)
/// where drift is a Gaussian random walk (step std `drift_sigma` per sample)
/// and bursts are short rectangular-envelope shocks occurring as a Poisson
/// process — they model footfalls, road bumps, gesture strokes.
struct ChannelModel {
  double baseline = 0.0;
  std::vector<Harmonic> harmonics;
  double noise_sigma = 0.01;
  double drift_sigma = 0.0;
  double burst_rate_hz = 0.0;   ///< expected bursts per second
  double burst_amplitude = 0.0;
  double burst_duration_s = 0.05;
};

/// Generative model of all 22 channels under one activity.
///
/// This is the synthetic stand-in for the paper's proprietary sensor corpus:
/// each base activity gets a distinct multi-channel signature (frequency
/// bands, amplitudes, environment-sensor baselines) so that the downstream
/// 80-feature representation is class-separable — the property the paper's
/// learning pipeline depends on.
struct SignalModel {
  std::array<ChannelModel, kNumChannels> channels;

  ChannelModel& channel(Channel c) {
    return channels[static_cast<size_t>(c)];
  }
  const ChannelModel& channel(Channel c) const {
    return channels[static_cast<size_t>(c)];
  }
};

/// Library of generative models keyed by activity id.
using ActivityLibrary = std::map<ActivityId, SignalModel>;

/// Base library plus Cycle (pedalling cadence, moderate speed), Stairs Up
/// (walk-like gait with a falling barometer), and Sit (still-like with a
/// tilted gravity vector) — 8 classes for scaling experiments.
ActivityLibrary ExtendedActivityLibrary();

/// Models for the five base activities (Drive, E-scooter, Run, Still, Walk),
/// with signatures loosely matched to their physical characteristics:
/// gait harmonics near 2 Hz (Walk) / 2.8 Hz (Run), engine/road vibration for
/// Drive, high-frequency deck vibration for E-scooter, near-flat Still.
ActivityLibrary DefaultActivityLibrary();

/// A randomly parameterised short-gesture model (e.g. "Gesture Hi", §4.2.2):
/// a distinctive mid-frequency oscillation on the wrist-motion channels.
/// Different seeds give different, mutually distinguishable gestures.
SignalModel MakeGestureModel(uint64_t seed);

/// Large-vocabulary mode: hundreds of procedurally generated activity
/// classes for the ANN-index scaling experiments (ids `first_id`,
/// `first_id + 1`, ...). Each class gets its own multi-harmonic motion
/// signature plus environment-baseline offsets.
struct LargeVocabularyOptions {
  size_t num_classes = 100;
  /// Inter-class overlap knob in [0, 1]: every class's parameters are
  /// interpolated toward one shared signature drawn from `seed`. 0 keeps
  /// classes maximally distinct; 1 collapses all of them onto the shared
  /// signature. Raising it squeezes the classes together in feature space,
  /// which is what actually stresses ANN recall.
  double overlap = 0.25;
  uint64_t seed = 1;
  ActivityId first_id = 1000;
};

/// Builds the procedural library. Class `i`'s model depends only on
/// (`seed`, `overlap`, `first_id + i`) — never on `num_classes` — so
/// growing the vocabulary leaves existing classes bit-identical.
ActivityLibrary LargeVocabularyLibrary(const LargeVocabularyOptions& options);

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_SIGNAL_MODEL_H_
