#include "sensors/sensor_types.h"

namespace magneto::sensors {

std::string_view ChannelName(Channel c) {
  switch (c) {
    case Channel::kAccX:
      return "acc_x";
    case Channel::kAccY:
      return "acc_y";
    case Channel::kAccZ:
      return "acc_z";
    case Channel::kGyroX:
      return "gyro_x";
    case Channel::kGyroY:
      return "gyro_y";
    case Channel::kGyroZ:
      return "gyro_z";
    case Channel::kMagX:
      return "mag_x";
    case Channel::kMagY:
      return "mag_y";
    case Channel::kMagZ:
      return "mag_z";
    case Channel::kLinAccX:
      return "lin_acc_x";
    case Channel::kLinAccY:
      return "lin_acc_y";
    case Channel::kLinAccZ:
      return "lin_acc_z";
    case Channel::kGravityX:
      return "gravity_x";
    case Channel::kGravityY:
      return "gravity_y";
    case Channel::kGravityZ:
      return "gravity_z";
    case Channel::kRotX:
      return "rot_x";
    case Channel::kRotY:
      return "rot_y";
    case Channel::kRotZ:
      return "rot_z";
    case Channel::kPressure:
      return "pressure";
    case Channel::kLight:
      return "light";
    case Channel::kProximity:
      return "proximity";
    case Channel::kSpeed:
      return "speed";
  }
  return "unknown";
}

}  // namespace magneto::sensors
