#include "sensors/recording_io.h"

#include <cstdio>
#include <cstring>

namespace magneto::sensors {

namespace {
constexpr char kMagic[4] = {'M', 'S', 'N', 'S'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kMaxSide = 1ull << 32;  // wire sanity cap
}  // namespace

void SerializeRecording(const Recording& recording, BinaryWriter* writer) {
  writer->WriteF64(recording.sample_rate_hz);
  writer->WriteU64(recording.samples.rows());
  writer->WriteU64(recording.samples.cols());
  writer->WriteF32Vector(recording.samples.storage());
}

Result<Recording> DeserializeRecording(BinaryReader* reader) {
  Recording rec;
  MAGNETO_ASSIGN_OR_RETURN(rec.sample_rate_hz, reader->ReadF64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t cols, reader->ReadU64());
  if (rows >= kMaxSide || cols >= kMaxSide) {
    return Status::Corruption("recording dimensions out of range");
  }
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> data, reader->ReadF32Vector());
  if (data.size() != rows * cols) {
    return Status::Corruption("recording payload size mismatch");
  }
  rec.samples = Matrix(rows, cols, std::move(data));
  return rec;
}

Status SaveRecordings(const std::vector<LabeledRecording>& recordings,
                      const std::string& path) {
  BinaryWriter body;
  body.WriteU32(kVersion);
  body.WriteU64(recordings.size());
  for (const LabeledRecording& rec : recordings) {
    body.WriteI64(rec.label);
    SerializeRecording(rec.recording, &body);
  }

  BinaryWriter out;
  out.WriteBytes(kMagic, sizeof(kMagic));
  out.WriteBytes(body.buffer().data(), body.size());
  out.WriteU32(Crc32(body.buffer().data(), body.size()));
  return WriteFile(path, out.buffer());
}

Result<std::vector<LabeledRecording>> LoadRecordings(const std::string& path) {
  MAGNETO_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a MAGNETO recording file: " + path);
  }
  const char* body = bytes.data() + sizeof(kMagic);
  const size_t body_size = bytes.size() - sizeof(kMagic) - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32(body, body_size) != stored_crc) {
    return Status::Corruption("recording file checksum mismatch: " + path);
  }

  BinaryReader reader(body, body_size);
  MAGNETO_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::Corruption("unsupported recording file version: " +
                              std::to_string(version));
  }
  MAGNETO_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  std::vector<LabeledRecording> out;
  out.reserve(std::min<uint64_t>(count, 4096));
  for (uint64_t i = 0; i < count; ++i) {
    LabeledRecording rec;
    MAGNETO_ASSIGN_OR_RETURN(rec.label, reader.ReadI64());
    MAGNETO_ASSIGN_OR_RETURN(rec.recording, DeserializeRecording(&reader));
    out.push_back(std::move(rec));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in recording file");
  }
  return out;
}

Status WriteFeatureCsv(const FeatureDataset& dataset,
                       const std::vector<std::string>& feature_names,
                       const std::string& path) {
  if (!feature_names.empty() && feature_names.size() != dataset.dim()) {
    return Status::InvalidArgument(
        "feature_names size " + std::to_string(feature_names.size()) +
        " != dataset dim " + std::to_string(dataset.dim()));
  }
  std::string csv;
  csv.reserve(dataset.size() * dataset.dim() * 12 + 1024);
  csv += "label";
  for (size_t j = 0; j < dataset.dim(); ++j) {
    csv += ',';
    csv += feature_names.empty() ? "f" + std::to_string(j) : feature_names[j];
  }
  csv += '\n';
  char cell[48];
  for (size_t i = 0; i < dataset.size(); ++i) {
    csv += std::to_string(dataset.Label(i));
    const float* row = dataset.Row(i);
    for (size_t j = 0; j < dataset.dim(); ++j) {
      std::snprintf(cell, sizeof(cell), ",%.9g", row[j]);
      csv += cell;
    }
    csv += '\n';
  }
  return WriteFile(path, csv);
}

}  // namespace magneto::sensors
