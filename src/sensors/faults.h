#ifndef MAGNETO_SENSORS_FAULTS_H_
#define MAGNETO_SENSORS_FAULTS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sensors/recording.h"
#include "sensors/sensor_types.h"

namespace magneto::sensors {

/// How a sensor channel misbehaves during a fault interval.
enum class FaultKind : uint8_t {
  kDropout = 0,   ///< channel reads 0 (sensor off / permission revoked)
  kFreeze = 1,    ///< channel repeats its last good value (stuck driver)
  kSaturate = 2,  ///< channel clips at an extreme value (range overflow)
  kSpikes = 3,    ///< channel emits large random impulses (loose contact)
};

/// One injected fault: `channel` misbehaves as `kind` during
/// [start_s, start_s + duration_s).
struct FaultSpec {
  Channel channel = Channel::kAccX;
  FaultKind kind = FaultKind::kDropout;
  double start_s = 0.0;
  double duration_s = 1.0;
  /// For kSaturate: the clip value; for kSpikes: impulse amplitude.
  double magnitude = 50.0;
};

/// Returns a copy of `recording` with the faults applied. Real phone sensor
/// stacks misbehave like this routinely; the robustness tests check that the
/// preprocessing pipeline keeps producing finite features and the classifier
/// degrades instead of crashing.
Recording InjectFaults(const Recording& recording,
                       const std::vector<FaultSpec>& faults, Rng* rng);

/// Samples `count` random faults spread over a recording of `duration_s`.
std::vector<FaultSpec> RandomFaults(size_t count, double duration_s,
                                    Rng* rng);

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_FAULTS_H_
