#ifndef MAGNETO_SENSORS_SYNTHETIC_GENERATOR_H_
#define MAGNETO_SENSORS_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sensors/activity.h"
#include "sensors/recording.h"
#include "sensors/signal_model.h"

namespace magneto::sensors {

/// A recording annotated with the activity performed during it.
struct LabeledRecording {
  Recording recording;
  ActivityId label = 0;
};

/// Configuration for the synthetic sensor stream generator.
struct GeneratorOptions {
  double sample_rate_hz = kDefaultSampleRateHz;
  /// Random per-recording phase: two recordings of the same activity do not
  /// start at the same gait position (true of any real capture).
  bool randomize_phase = true;
};

/// Produces synthetic multi-channel sensor streams from `SignalModel`s.
///
/// This is the data substrate of the reproduction: it plays the role of the
/// phone's sensor stack plus the paper's 100 GB collection campaign. All
/// draws go through an explicit seed for reproducibility.
class SyntheticGenerator {
 public:
  SyntheticGenerator(GeneratorOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  explicit SyntheticGenerator(uint64_t seed)
      : SyntheticGenerator(GeneratorOptions{}, seed) {}

  /// Generates `duration_s` seconds of signal under `model`.
  Recording Generate(const SignalModel& model, double duration_s);

  /// Generates `count` independent recordings of `duration_s` seconds each.
  std::vector<Recording> GenerateMany(const SignalModel& model, size_t count,
                                      double duration_s);

  /// Generates `per_class` labeled recordings for every activity in `library`.
  std::vector<LabeledRecording> GenerateDataset(const ActivityLibrary& library,
                                                size_t per_class,
                                                double duration_s);

  /// Large-vocabulary mode: builds the procedural library
  /// (`LargeVocabularyLibrary`) and generates `per_class` labeled
  /// recordings for each of its `vocabulary.num_classes` classes — the data
  /// substrate for the hundred-class ANN experiments (bench_ann).
  std::vector<LabeledRecording> GenerateVocabularyDataset(
      const LargeVocabularyOptions& vocabulary, size_t per_class,
      double duration_s);

  const GeneratorOptions& options() const { return options_; }

 private:
  GeneratorOptions options_;
  Rng rng_;
};

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_SYNTHETIC_GENERATOR_H_
