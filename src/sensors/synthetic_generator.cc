#include "sensors/synthetic_generator.h"

#include <cmath>

namespace magneto::sensors {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}

Recording SyntheticGenerator::Generate(const SignalModel& model,
                                       double duration_s) {
  const double rate = options_.sample_rate_hz;
  const size_t n = static_cast<size_t>(std::llround(duration_s * rate));
  Recording rec;
  rec.sample_rate_hz = rate;
  rec.samples.Reset(n, kNumChannels);

  for (size_t ch = 0; ch < kNumChannels; ++ch) {
    const ChannelModel& cm = model.channels[ch];
    // Per-recording random phase offset, shared by the channel's harmonics so
    // their relative alignment (the "shape" of the gait) is preserved.
    const double phase0 =
        options_.randomize_phase ? rng_.Uniform(0.0, kTwoPi) : 0.0;

    // Pre-sample burst windows as a Poisson process over the recording.
    std::vector<std::pair<size_t, size_t>> bursts;  // [start, end) in samples
    std::vector<double> burst_signs;
    if (cm.burst_rate_hz > 0.0 && cm.burst_amplitude != 0.0) {
      double t = 0.0;
      while (true) {
        // Exponential inter-arrival.
        t += -std::log(1.0 - rng_.Uniform(0.0, 1.0)) / cm.burst_rate_hz;
        if (t >= duration_s) break;
        const size_t start = static_cast<size_t>(t * rate);
        const size_t len = std::max<size_t>(
            1, static_cast<size_t>(cm.burst_duration_s * rate));
        bursts.emplace_back(start, std::min(n, start + len));
        burst_signs.push_back(rng_.Bernoulli(0.5) ? 1.0 : -1.0);
      }
    }

    double drift = 0.0;
    size_t burst_idx = 0;
    for (size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / rate;
      double v = cm.baseline;
      for (const Harmonic& h : cm.harmonics) {
        v += h.amplitude *
             std::sin(kTwoPi * h.frequency_hz * t + h.phase + phase0);
      }
      if (cm.noise_sigma > 0.0) v += rng_.Normal(0.0, cm.noise_sigma);
      if (cm.drift_sigma > 0.0) {
        drift += rng_.Normal(0.0, cm.drift_sigma);
        v += drift;
      }
      // Advance past bursts that ended before i.
      while (burst_idx < bursts.size() && bursts[burst_idx].second <= i) {
        ++burst_idx;
      }
      if (burst_idx < bursts.size() && i >= bursts[burst_idx].first &&
          i < bursts[burst_idx].second) {
        const auto& [start, end] = bursts[burst_idx];
        // Half-sine envelope over the burst window.
        const double u = static_cast<double>(i - start) /
                         static_cast<double>(end - start);
        v += burst_signs[burst_idx] * cm.burst_amplitude *
             std::sin(u * 3.14159265358979323846);
      }
      rec.samples.At(i, ch) = static_cast<float>(v);
    }
  }
  return rec;
}

std::vector<Recording> SyntheticGenerator::GenerateMany(
    const SignalModel& model, size_t count, double duration_s) {
  std::vector<Recording> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Generate(model, duration_s));
  return out;
}

std::vector<LabeledRecording> SyntheticGenerator::GenerateDataset(
    const ActivityLibrary& library, size_t per_class, double duration_s) {
  std::vector<LabeledRecording> out;
  out.reserve(library.size() * per_class);
  for (const auto& [id, model] : library) {
    for (size_t i = 0; i < per_class; ++i) {
      out.push_back({Generate(model, duration_s), id});
    }
  }
  return out;
}

std::vector<LabeledRecording> SyntheticGenerator::GenerateVocabularyDataset(
    const LargeVocabularyOptions& vocabulary, size_t per_class,
    double duration_s) {
  return GenerateDataset(LargeVocabularyLibrary(vocabulary), per_class,
                         duration_s);
}

}  // namespace magneto::sensors
