#include "sensors/dataset.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace magneto::sensors {

FeatureDataset::FeatureDataset(Matrix features, std::vector<ActivityId> labels)
    : dim_(features.cols()),
      data_(features.storage()),
      labels_(std::move(labels)) {
  MAGNETO_CHECK(features.rows() == labels_.size());
}

Matrix FeatureDataset::ToMatrix() const {
  return Matrix(size(), dim_, data_);
}

void FeatureDataset::Append(const float* feature, size_t dim,
                            ActivityId label) {
  if (empty() && dim_ == 0) dim_ = dim;
  MAGNETO_CHECK(dim == dim_);
  data_.insert(data_.end(), feature, feature + dim);
  labels_.push_back(label);
}

void FeatureDataset::Merge(const FeatureDataset& other) {
  if (other.empty()) return;
  if (empty() && dim_ == 0) dim_ = other.dim_;
  MAGNETO_CHECK(dim_ == other.dim_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

void FeatureDataset::Shuffle(Rng* rng) {
  std::vector<size_t> perm(size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng->Shuffle(&perm);
  std::vector<float> data(data_.size());
  std::vector<ActivityId> labels(size());
  for (size_t i = 0; i < perm.size(); ++i) {
    std::memcpy(data.data() + i * dim_, Row(perm[i]), dim_ * sizeof(float));
    labels[i] = labels_[perm[i]];
  }
  data_ = std::move(data);
  labels_ = std::move(labels);
}

std::pair<FeatureDataset, FeatureDataset> FeatureDataset::StratifiedSplit(
    double train_fraction, Rng* rng) const {
  FeatureDataset train, test;
  for (ActivityId label : Classes()) {
    std::vector<size_t> idx;
    for (size_t i = 0; i < size(); ++i) {
      if (labels_[i] == label) idx.push_back(i);
    }
    rng->Shuffle(&idx);
    const size_t n_train =
        static_cast<size_t>(train_fraction * static_cast<double>(idx.size()));
    for (size_t j = 0; j < idx.size(); ++j) {
      FeatureDataset& dst = (j < n_train) ? train : test;
      dst.Append(Row(idx[j]), dim_, label);
    }
  }
  return {std::move(train), std::move(test)};
}

FeatureDataset FeatureDataset::FilterByClass(ActivityId label) const {
  return FilterByClasses({label});
}

FeatureDataset FeatureDataset::FilterByClasses(
    const std::vector<ActivityId>& labels) const {
  const std::set<ActivityId> wanted(labels.begin(), labels.end());
  FeatureDataset out;
  for (size_t i = 0; i < size(); ++i) {
    if (wanted.count(labels_[i]) > 0) out.Append(Row(i), dim_, labels_[i]);
  }
  return out;
}

std::map<ActivityId, size_t> FeatureDataset::ClassCounts() const {
  std::map<ActivityId, size_t> counts;
  for (ActivityId label : labels_) ++counts[label];
  return counts;
}

std::vector<ActivityId> FeatureDataset::Classes() const {
  std::set<ActivityId> classes(labels_.begin(), labels_.end());
  return std::vector<ActivityId>(classes.begin(), classes.end());
}

FeatureDataset FeatureDataset::SubsamplePerClass(size_t max_per_class,
                                                 Rng* rng) const {
  FeatureDataset out;
  for (ActivityId label : Classes()) {
    std::vector<size_t> idx;
    for (size_t i = 0; i < size(); ++i) {
      if (labels_[i] == label) idx.push_back(i);
    }
    rng->Shuffle(&idx);
    const size_t keep = std::min(max_per_class, idx.size());
    for (size_t j = 0; j < keep; ++j) {
      out.Append(Row(idx[j]), dim_, label);
    }
  }
  return out;
}

}  // namespace magneto::sensors
