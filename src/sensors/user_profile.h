#ifndef MAGNETO_SENSORS_USER_PROFILE_H_
#define MAGNETO_SENSORS_USER_PROFILE_H_

#include <array>
#include <cstdint>

#include "sensors/sensor_types.h"
#include "sensors/signal_model.h"

namespace magneto::sensors {

/// Models one person's *style*: how their physiology and habits distort the
/// canonical activity signatures.
///
/// Personalization (Definition 2 of the paper) only matters because users
/// differ from the population the cloud model was pre-trained on. A
/// `UserProfile` applies per-channel amplitude/frequency/phase perturbations
/// and extra noise to a `SignalModel`, producing that person's version of the
/// activity. The `intensity` knob controls how far the user deviates from the
/// canonical signature — benchmarks sweep it to show when calibration pays
/// off (Experiment C7).
class UserProfile {
 public:
  /// Samples a random profile. `intensity` in [0, ~1]: 0 = exactly canonical,
  /// 0.3 = typical person-to-person variation, 1 = extreme outlier.
  UserProfile(uint64_t seed, double intensity);

  /// The canonical (no-op) profile.
  static UserProfile Canonical();

  /// Returns `model` as this user performs it.
  SignalModel Personalize(const SignalModel& model) const;

  /// Personalizes every activity in `library`.
  ActivityLibrary Personalize(const ActivityLibrary& library) const;

  double intensity() const { return intensity_; }

 private:
  UserProfile() = default;

  double intensity_ = 0.0;
  // Per-channel multiplicative amplitude factors, global tempo factor,
  // per-channel phase offsets, per-channel extra-noise factors.
  std::array<double, kNumChannels> amplitude_scale_{};
  double tempo_scale_ = 1.0;
  std::array<double, kNumChannels> phase_offset_{};
  std::array<double, kNumChannels> noise_scale_{};
  std::array<double, kNumChannels> baseline_shift_{};
};

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_USER_PROFILE_H_
