#ifndef MAGNETO_SENSORS_CONTEXT_H_
#define MAGNETO_SENSORS_CONTEXT_H_

#include "common/random.h"
#include "sensors/signal_model.h"

namespace magneto::sensors {

/// Recording-context nuisance: conditions that vary between captures but say
/// nothing about the activity — time of day (light), weather/altitude
/// (pressure), carry position (proximity, orientation), GPS quality (speed
/// noise), local magnetic disturbances.
///
/// Real sensor corpora are full of this variance; a recognizer that keys on
/// absolute light level or barometric pressure generalises terribly. Sampling
/// a `RecordingContext` per capture injects exactly that confound into the
/// synthetic data, which is what makes the learned, nuisance-suppressing
/// embedding measurably better than raw-feature matching (ablated in
/// bench_pretraining).
struct RecordingContext {
  double light_scale = 1.0;      ///< night ... noon sun
  double pressure_shift = 0.0;   ///< hPa, altitude + weather
  double proximity = 5.0;        ///< cm; ~0 = in pocket
  double speed_noise_scale = 1.0;///< GPS fix quality
  double mag_shift[3] = {0, 0, 0};  ///< nearby ferrous objects, uT
  double orientation_gain[3] = {1, 1, 1};  ///< carry-angle projection of
                                           ///< gravity/rotation axes

  /// Samples a plausible random context.
  static RecordingContext Sample(Rng* rng);

  /// Returns `model` as it would be captured under this context.
  SignalModel Apply(const SignalModel& model) const;
};

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_CONTEXT_H_
