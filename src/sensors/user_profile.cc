#include "sensors/user_profile.h"

#include <cmath>

#include "common/random.h"

namespace magneto::sensors {

UserProfile::UserProfile(uint64_t seed, double intensity)
    : intensity_(intensity) {
  Rng rng(seed);
  // Tempo: everyone walks/runs at their own cadence.
  tempo_scale_ = std::exp(rng.Normal(0.0, 0.08 * intensity));
  for (size_t i = 0; i < kNumChannels; ++i) {
    amplitude_scale_[i] = std::exp(rng.Normal(0.0, 0.25 * intensity));
    phase_offset_[i] = rng.Normal(0.0, 0.6 * intensity);
    noise_scale_[i] = std::exp(rng.Normal(0.0, 0.2 * intensity));
    baseline_shift_[i] = rng.Normal(0.0, 0.1 * intensity);
  }
}

UserProfile UserProfile::Canonical() {
  UserProfile p;
  p.intensity_ = 0.0;
  p.tempo_scale_ = 1.0;
  p.amplitude_scale_.fill(1.0);
  p.phase_offset_.fill(0.0);
  p.noise_scale_.fill(1.0);
  p.baseline_shift_.fill(0.0);
  return p;
}

SignalModel UserProfile::Personalize(const SignalModel& model) const {
  SignalModel out = model;
  for (size_t i = 0; i < kNumChannels; ++i) {
    ChannelModel& c = out.channels[i];
    for (Harmonic& h : c.harmonics) {
      h.amplitude *= amplitude_scale_[i];
      h.frequency_hz *= tempo_scale_;
      h.phase += phase_offset_[i];
    }
    c.noise_sigma *= noise_scale_[i];
    c.burst_amplitude *= amplitude_scale_[i];
    c.burst_rate_hz *= tempo_scale_;
    // Baseline shift scaled by the channel's own magnitude so environment
    // channels (pressure ~1013) are not destroyed by an additive unit shift.
    const double scale = std::max(0.05, std::fabs(c.baseline) * 0.05);
    c.baseline += baseline_shift_[i] * scale;
  }
  return out;
}

ActivityLibrary UserProfile::Personalize(const ActivityLibrary& library) const {
  ActivityLibrary out;
  for (const auto& [id, model] : library) out[id] = Personalize(model);
  return out;
}

}  // namespace magneto::sensors
