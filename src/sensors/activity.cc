#include "sensors/activity.h"

#include <algorithm>

#include "common/logging.h"

namespace magneto::sensors {

ActivityRegistry ActivityRegistry::BaseActivities() {
  ActivityRegistry registry;
  // Order fixed to match the base ids above.
  MAGNETO_CHECK(registry.RegisterWithId(kDrive, "Drive").ok());
  MAGNETO_CHECK(registry.RegisterWithId(kEScooter, "E-scooter").ok());
  MAGNETO_CHECK(registry.RegisterWithId(kRun, "Run").ok());
  MAGNETO_CHECK(registry.RegisterWithId(kStill, "Still").ok());
  MAGNETO_CHECK(registry.RegisterWithId(kWalk, "Walk").ok());
  return registry;
}

ActivityRegistry ActivityRegistry::ExtendedActivities() {
  ActivityRegistry registry = BaseActivities();
  MAGNETO_CHECK(registry.RegisterWithId(kCycle, "Cycle").ok());
  MAGNETO_CHECK(registry.RegisterWithId(kStairsUp, "Stairs Up").ok());
  MAGNETO_CHECK(registry.RegisterWithId(kSit, "Sit").ok());
  return registry;
}

Result<ActivityId> ActivityRegistry::Register(const std::string& name) {
  if (ids_.count(name) > 0) {
    return Status::AlreadyExists("activity name taken: " + name);
  }
  const ActivityId id = next_id_;
  MAGNETO_RETURN_IF_ERROR(RegisterWithId(id, name));
  return id;
}

Status ActivityRegistry::RegisterWithId(ActivityId id,
                                        const std::string& name) {
  if (names_.count(id) > 0) {
    return Status::AlreadyExists("activity id taken: " + std::to_string(id));
  }
  if (ids_.count(name) > 0) {
    return Status::AlreadyExists("activity name taken: " + name);
  }
  names_[id] = name;
  ids_[name] = id;
  next_id_ = std::max(next_id_, id + 1);
  return Status::Ok();
}

Result<ActivityId> ActivityRegistry::IdOf(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return Status::NotFound("unknown activity: " + name);
  return it->second;
}

Result<std::string> ActivityRegistry::NameOf(ActivityId id) const {
  auto it = names_.find(id);
  if (it == names_.end()) {
    return Status::NotFound("unknown activity id: " + std::to_string(id));
  }
  return it->second;
}

std::vector<ActivityId> ActivityRegistry::Ids() const {
  std::vector<ActivityId> ids;
  ids.reserve(names_.size());
  for (const auto& [id, name] : names_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ActivityRegistry::Serialize(BinaryWriter* writer) const {
  const std::vector<ActivityId> ids = Ids();
  writer->WriteU64(ids.size());
  for (ActivityId id : ids) {
    writer->WriteI64(id);
    writer->WriteString(names_.at(id));
  }
  writer->WriteI64(next_id_);
}

Result<ActivityRegistry> ActivityRegistry::Deserialize(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  ActivityRegistry registry;
  for (uint64_t i = 0; i < n; ++i) {
    MAGNETO_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    MAGNETO_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    MAGNETO_RETURN_IF_ERROR(registry.RegisterWithId(id, name));
  }
  MAGNETO_ASSIGN_OR_RETURN(int64_t next_id, reader->ReadI64());
  registry.next_id_ = std::max(registry.next_id_, next_id);
  return registry;
}

}  // namespace magneto::sensors
