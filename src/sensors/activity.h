#ifndef MAGNETO_SENSORS_ACTIVITY_H_
#define MAGNETO_SENSORS_ACTIVITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "common/status.h"

namespace magneto::sensors {

/// Numeric label of an activity class. Stable across the lifetime of a
/// deployment: new user-defined activities get fresh ids, ids are never
/// reused.
using ActivityId = int64_t;

/// Base activity ids — the five classes the paper pre-trains on (§4.1.2).
inline constexpr ActivityId kDrive = 0;
inline constexpr ActivityId kEScooter = 1;
inline constexpr ActivityId kRun = 2;
inline constexpr ActivityId kStill = 3;
inline constexpr ActivityId kWalk = 4;

/// Extended activity ids (the optional 8-class configuration; see
/// `ExtendedActivityLibrary`).
inline constexpr ActivityId kCycle = 5;
inline constexpr ActivityId kStairsUp = 6;
inline constexpr ActivityId kSit = 7;

/// Bidirectional name <-> id registry of activity classes.
///
/// The registry is *dynamic*: MAGNETO's whole point is that users can add new
/// activities on the Edge at runtime (Definition 2 / §3.3). The registry is
/// part of the serialised model bundle so that the set of known classes
/// travels with the model.
class ActivityRegistry {
 public:
  ActivityRegistry() = default;

  /// Registry pre-populated with the paper's five base activities.
  static ActivityRegistry BaseActivities();

  /// Base activities plus Cycle, Stairs Up and Sit (8 classes) — for the
  /// scaling experiments beyond the paper's demo set.
  static ActivityRegistry ExtendedActivities();

  /// Registers a new activity under `name`. Fails with kAlreadyExists if the
  /// name is taken. Returns the new id.
  Result<ActivityId> Register(const std::string& name);

  /// Registers `name` under a caller-chosen id (used by deserialisation).
  Status RegisterWithId(ActivityId id, const std::string& name);

  Result<ActivityId> IdOf(const std::string& name) const;
  Result<std::string> NameOf(ActivityId id) const;
  bool Contains(ActivityId id) const { return names_.count(id) > 0; }

  size_t size() const { return names_.size(); }

  /// Ids in ascending order.
  std::vector<ActivityId> Ids() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<ActivityRegistry> Deserialize(BinaryReader* reader);

 private:
  std::unordered_map<ActivityId, std::string> names_;
  std::unordered_map<std::string, ActivityId> ids_;
  ActivityId next_id_ = 0;
};

}  // namespace magneto::sensors

#endif  // MAGNETO_SENSORS_ACTIVITY_H_
