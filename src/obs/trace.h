#ifndef MAGNETO_OBS_TRACE_H_
#define MAGNETO_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace magneto::obs {

/// Scoped tracing for the MAGNETO hot paths, exported as Chrome
/// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev).
///
/// Cost model:
///   * Tracing OFF (default): each `TraceSpan` is one relaxed atomic load.
///   * Tracing ON: two steady-clock reads plus one write into a
///     pre-allocated per-thread ring buffer. No allocation, no locks on the
///     span path (the ring's mutex is uncontended except during export).
///
/// Enable with the `MAGNETO_TRACE` environment variable (anything but empty
/// or "0"), or programmatically with `SetTraceEnabled(true)`.
///
/// Span names must be string literals (or otherwise outlive the trace) —
/// the ring stores the pointer, not a copy.

/// One completed span. Timestamps are steady-clock nanoseconds.
struct TraceEvent {
  const char* name;
  uint64_t begin_ns;
  uint64_t end_ns;
  uint32_t thread;  ///< stable small id, assigned per thread on first span
  uint16_t depth;   ///< nesting depth at the span's open
};

/// True when spans are being recorded. First call latches the
/// `MAGNETO_TRACE` environment variable.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// RAII span: records [construction, destruction) of the enclosing scope.
/// A span captures the enabled flag at open, so toggling tracing mid-span is
/// safe (the span is dropped or kept atomically).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr when tracing was off at open
  uint64_t begin_ns_ = 0;
  uint16_t depth_ = 0;
};

/// Spans each thread's ring can hold before the oldest are overwritten.
/// Applies to rings created after the call (a thread's ring is created on
/// its first recorded span). Mainly for tests; default 16384.
void SetTraceRingCapacity(size_t spans);

/// Drops every recorded span (rings stay allocated).
void ClearTrace();

/// All recorded spans, ordered by begin time. Thread-safe.
std::vector<TraceEvent> CollectTraceEvents();

/// Chrome trace_event JSON: {"traceEvents": [...]} with matched "B"/"E"
/// pairs per span, timestamps in microseconds relative to the earliest span.
std::string TraceToJson();

/// Writes `TraceToJson()` to `path`; false on I/O failure.
bool WriteTrace(const std::string& path);

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_TRACE_H_
