#ifndef MAGNETO_OBS_TRACE_H_
#define MAGNETO_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace magneto::obs {

/// Scoped tracing for the MAGNETO hot paths, exported as Chrome
/// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev).
///
/// Cost model:
///   * Tracing OFF (default): each `TraceSpan` is one relaxed atomic load.
///   * Tracing ON: two steady-clock reads plus one write into a
///     pre-allocated per-thread ring buffer. No allocation, no locks on the
///     span path (the ring's mutex is uncontended except during export).
///
/// Enable with the `MAGNETO_TRACE` environment variable (anything but empty
/// or "0"), or programmatically with `SetTraceEnabled(true)`.
///
/// Span names must be string literals (or otherwise outlive the trace) —
/// the ring stores the pointer, not a copy.

/// What a recorded event is. Spans export as matched "B"/"E" duration
/// pairs; flow markers export as single "s"/"t"/"f" events that the trace
/// viewer draws as arrows between the duration slices enclosing them, which
/// is what links one request's life across threads.
enum class TracePhase : uint8_t {
  kSpan = 0,
  kFlowBegin,  ///< ph "s"
  kFlowStep,   ///< ph "t"
  kFlowEnd,    ///< ph "f" (with "bp":"e": binds to the enclosing slice)
};

/// One completed span or flow marker. Timestamps are steady-clock
/// nanoseconds; flow markers use `begin_ns` only.
struct TraceEvent {
  const char* name;
  uint64_t begin_ns;
  uint64_t end_ns;
  uint32_t thread;  ///< stable small id, assigned per thread on first span
  uint16_t depth;   ///< nesting depth at the span's open
  TracePhase phase = TracePhase::kSpan;
  uint64_t flow_id = 0;  ///< links s/t/f markers of one flow; 0 for spans
};

/// True when spans are being recorded. First call latches the
/// `MAGNETO_TRACE` environment variable.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// RAII span: records [construction, destruction) of the enclosing scope.
/// A span captures the enabled flag at open, so toggling tracing mid-span is
/// safe (the span is dropped or kept atomically).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  /// Opens the span at a caller-supplied steady-clock timestamp instead of
  /// reading the clock (hot paths reuse a stamp they already took). Same
  /// monotonicity caveat as the flow `At` variants.
  TraceSpan(const char* name, uint64_t begin_ns);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr when tracing was off at open
  uint64_t begin_ns_ = 0;
  uint16_t depth_ = 0;
};

/// Flow markers: causally link the duration slices a request passes through
/// on different threads. Emit `TraceFlowBegin` inside the slice where the
/// request is born (same `name` + `id` for the whole flow), `TraceFlowStep`
/// inside each intermediate hop, and `TraceFlowEnd` inside the slice that
/// retires it. Each call records one instant marker on the current thread
/// (no-op when tracing is off); the exporter turns them into Chrome
/// `ph:"s"/"t"/"f"` events that bind to the enclosing slice, so Perfetto
/// draws one arrow chain per id. `name` must be a string literal.
void TraceFlowBegin(const char* name, uint64_t id);
void TraceFlowStep(const char* name, uint64_t id);
void TraceFlowEnd(const char* name, uint64_t id);

/// `At` variants stamp the marker at a caller-supplied steady-clock
/// nanosecond timestamp instead of reading the clock again. The serving path
/// uses these to reuse the stage timestamps it already takes for the latency
/// histograms — per-marker cost drops to a ring write. The timestamp must be
/// from `RequestContext::NowNs`'s clock and not precede earlier events
/// recorded by the same thread, or the exported trace loses per-track
/// timestamp monotonicity.
void TraceFlowBeginAt(const char* name, uint64_t id, uint64_t ts_ns);
void TraceFlowStepAt(const char* name, uint64_t id, uint64_t ts_ns);
void TraceFlowEndAt(const char* name, uint64_t id, uint64_t ts_ns);

/// Spans each thread's ring can hold before the oldest are overwritten.
/// Applies to rings created after the call (a thread's ring is created on
/// its first recorded span). Mainly for tests; default 16384.
void SetTraceRingCapacity(size_t spans);

/// Drops every recorded span (rings stay allocated).
void ClearTrace();

/// All recorded spans, ordered by begin time. Thread-safe.
std::vector<TraceEvent> CollectTraceEvents();

/// Chrome trace_event JSON: {"traceEvents": [...]} with matched "B"/"E"
/// pairs per span, timestamps in microseconds relative to the earliest span.
std::string TraceToJson();

/// Writes `TraceToJson()` to `path`; false on I/O failure.
bool WriteTrace(const std::string& path);

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_TRACE_H_
