#include "obs/slo_monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace magneto::obs {

/// One epoch's worth of observations. All members are relaxed atomics: an
/// observer that races with `AdvanceEpoch` may land its sample in an epoch
/// that was just zeroed (counted once, slightly late) — acceptable for a
/// monitor, and the reason the observe path needs no lock.
struct SloMonitor::Epoch {
  explicit Epoch(size_t num_buckets)
      : buckets(new std::atomic<uint64_t>[num_buckets]),
        num_buckets(num_buckets) {
    Zero();
  }

  void Zero() {
    for (size_t i = 0; i < num_buckets; ++i) {
      buckets[i].store(0, std::memory_order_relaxed);
    }
    requests.store(0, std::memory_order_relaxed);
    shed.store(0, std::memory_order_relaxed);
    errors.store(0, std::memory_order_relaxed);
  }

  std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  const size_t num_buckets;
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> errors{0};
};

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "OK";
    case HealthState::kDegraded:
      return "DEGRADED";
    case HealthState::kCritical:
      return "CRITICAL";
  }
  return "UNKNOWN";
}

SloMonitor::SloMonitor(SloTargets targets)
    : targets_([&] {
        SloTargets t = targets;
        if (t.window_epochs == 0) t.window_epochs = 1;
        return t;
      }()),
      bounds_(LogLatencyBucketsUs()) {
  epochs_.reserve(targets_.window_epochs);
  for (size_t i = 0; i < targets_.window_epochs; ++i) {
    epochs_.push_back(std::make_unique<Epoch>(bounds_.size() + 1));
  }
}

SloMonitor::~SloMonitor() { StopExporter(); }

SloMonitor::Epoch& SloMonitor::CurrentEpoch() {
  return *epochs_[current_.load(std::memory_order_relaxed) % epochs_.size()];
}

void SloMonitor::ObserveLatency(double us) {
  Epoch& epoch = CurrentEpoch();
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), us) - bounds_.begin());
  epoch.buckets[i].fetch_add(1, std::memory_order_relaxed);
  epoch.requests.fetch_add(1, std::memory_order_relaxed);
}

void SloMonitor::ObserveShed() {
  CurrentEpoch().shed.fetch_add(1, std::memory_order_relaxed);
}

void SloMonitor::ObserveError() {
  CurrentEpoch().errors.fetch_add(1, std::memory_order_relaxed);
}

void SloMonitor::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  const size_t next =
      (current_.load(std::memory_order_relaxed) + 1) % epochs_.size();
  epochs_[next]->Zero();
  current_.store(next, std::memory_order_relaxed);
}

HealthReport SloMonitor::Evaluate() const {
  HealthReport report;
  std::vector<uint64_t> buckets(bounds_.size() + 1, 0);
  for (const std::unique_ptr<Epoch>& epoch : epochs_) {
    for (size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] += epoch->buckets[i].load(std::memory_order_relaxed);
    }
    report.requests += epoch->requests.load(std::memory_order_relaxed);
    report.shed += epoch->shed.load(std::memory_order_relaxed);
    report.errors += epoch->errors.load(std::memory_order_relaxed);
  }

  if (report.requests > 0) {
    const uint64_t target = static_cast<uint64_t>(
        std::ceil(0.99 * static_cast<double>(report.requests)));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      if (cumulative >= target) {
        report.p99_latency_us =
            i < bounds_.size() ? bounds_[i] : bounds_.back();
        break;
      }
    }
  }

  const uint64_t arrivals = report.requests + report.shed;
  if (arrivals > 0) {
    report.shed_rate =
        static_cast<double>(report.shed) / static_cast<double>(arrivals);
    report.error_rate =
        static_cast<double>(report.errors) / static_cast<double>(arrivals);
  }
  report.error_budget_burn =
      targets_.error_budget > 0.0 ? report.error_rate / targets_.error_budget
                                  : (report.error_rate > 0.0 ? 4.0 : 0.0);

  report.state = HealthState::kOk;
  if (report.p99_latency_us > targets_.p99_latency_us ||
      report.shed_rate > targets_.max_shed_rate ||
      report.error_budget_burn > 1.0) {
    report.state = HealthState::kDegraded;
  }
  if (report.p99_latency_us > 2.0 * targets_.p99_latency_us ||
      report.shed_rate > 4.0 * targets_.max_shed_rate ||
      report.error_budget_burn > 4.0) {
    report.state = HealthState::kCritical;
  }

  static Gauge* const health_gauge =
      Registry::Global().GetGauge("slo.health_state");
  health_gauge->Set(static_cast<double>(static_cast<int>(report.state)));
  return report;
}

void SloMonitor::StartExporter(double period_seconds) {
  std::lock_guard<std::mutex> lock(exporter_mu_);
  if (exporter_.joinable()) return;
  exporter_stop_ = false;
  const auto period = std::chrono::duration<double>(
      period_seconds > 0.0 ? period_seconds : 0.01);
  exporter_ = std::thread([this, period] {
    const auto start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(exporter_mu_);
    while (!exporter_stop_) {
      if (exporter_cv_.wait_for(lock, period,
                                [this] { return exporter_stop_; })) {
        break;
      }
      lock.unlock();
      AdvanceEpoch();
      TimelinePoint point;
      point.t_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      point.report = Evaluate();
      lock.lock();
      timeline_.push_back(point);
    }
  });
}

void SloMonitor::StopExporter() {
  {
    std::lock_guard<std::mutex> lock(exporter_mu_);
    if (!exporter_.joinable()) return;
    exporter_stop_ = true;
  }
  exporter_cv_.notify_all();
  exporter_.join();
  std::lock_guard<std::mutex> lock(exporter_mu_);
  exporter_ = std::thread();
}

std::vector<SloMonitor::TimelinePoint> SloMonitor::Timeline() const {
  std::lock_guard<std::mutex> lock(exporter_mu_);
  return timeline_;
}

void SloMonitor::ReportToJson(const HealthReport& report, JsonWriter& json) {
  json.Field("state", HealthStateName(report.state));
  json.Field("p99_latency_us", report.p99_latency_us);
  json.Field("shed_rate", report.shed_rate);
  json.Field("error_rate", report.error_rate);
  json.Field("error_budget_burn", report.error_budget_burn);
  json.Field("requests", report.requests);
  json.Field("shed", report.shed);
  json.Field("errors", report.errors);
}

void SloMonitor::AppendHealthJson(JsonWriter& json) const {
  const HealthReport report = Evaluate();
  json.BeginObject();
  ReportToJson(report, json);
  json.Key("targets").BeginObject();
  json.Field("p99_latency_us", targets_.p99_latency_us);
  json.Field("max_shed_rate", targets_.max_shed_rate);
  json.Field("error_budget", targets_.error_budget);
  json.Field("window_epochs", static_cast<uint64_t>(targets_.window_epochs));
  json.EndObject();
  json.Key("timeline").BeginArray();
  for (const TimelinePoint& point : Timeline()) {
    json.BeginObject();
    json.Field("t_seconds", point.t_seconds);
    ReportToJson(point.report, json);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string SloMonitor::HealthJson(bool pretty) const {
  JsonWriter json(pretty);
  AppendHealthJson(json);
  return json.str();
}

}  // namespace magneto::obs
