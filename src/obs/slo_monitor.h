#ifndef MAGNETO_OBS_SLO_MONITOR_H_
#define MAGNETO_OBS_SLO_MONITOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace magneto::obs {

class JsonWriter;

/// Rolling-window SLO evaluation for the serving path.
///
/// The monitor keeps a ring of fixed-length epochs; observations land in the
/// current epoch (relaxed atomics, no locks on the observe path) and
/// `AdvanceEpoch` rotates the ring, so `Evaluate` always aggregates the last
/// `window_epochs` epochs — a rolling window that forgets old load instead
/// of averaging over the whole run. A background exporter (`StartExporter`)
/// rotates epochs on a timer and appends one `TimelinePoint` per tick, which
/// is how BENCH_fleet.metrics.json gets a health time-series instead of only
/// end-of-run totals.
///
/// Health states and thresholds (vs `SloTargets`):
///   * OK        — everything within target.
///   * DEGRADED  — rolling p99 > p99_latency_us, shed rate > max_shed_rate,
///                 or error-budget burn > 1.
///   * CRITICAL  — p99 > 2x target, shed rate > 4x target, or burn > 4.
/// An empty window is OK (no evidence of trouble). Every `Evaluate` also
/// publishes the state to the `slo.health_state` gauge (0/1/2).

struct SloTargets {
  double p99_latency_us = 50'000.0;  ///< end-to-end request latency target
  double max_shed_rate = 0.01;       ///< tolerated shed fraction of arrivals
  double error_budget = 0.001;       ///< tolerated error fraction of arrivals
  size_t window_epochs = 8;          ///< rolling window length (>= 1)
};

enum class HealthState : int { kOk = 0, kDegraded = 1, kCritical = 2 };

const char* HealthStateName(HealthState state);

struct HealthReport {
  HealthState state = HealthState::kOk;
  double p99_latency_us = 0.0;
  double shed_rate = 0.0;
  double error_rate = 0.0;
  /// error_rate / error_budget: > 1 means the budget is being burned faster
  /// than allowed.
  double error_budget_burn = 0.0;
  uint64_t requests = 0;  ///< served (latency-observed) requests in window
  uint64_t shed = 0;
  uint64_t errors = 0;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloTargets targets = {});
  ~SloMonitor();

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// One served request with end-to-end latency `us`. Lock-free.
  void ObserveLatency(double us);
  /// One request rejected at admission. Lock-free.
  void ObserveShed();
  /// One request that failed in the serve path. Lock-free.
  void ObserveError();

  /// Rotates the ring: the oldest epoch is zeroed and becomes current.
  /// Called by the exporter thread; exposed for tests driving time by hand.
  void AdvanceEpoch();

  /// Aggregates the window, publishes `slo.health_state`, returns the
  /// report. p99 is a log-bucket upper bound (LogLatencyBucketsUs).
  HealthReport Evaluate() const;

  /// Starts a background thread that every `period_seconds` advances the
  /// epoch, evaluates, and appends a timeline point. No-op if running.
  void StartExporter(double period_seconds);
  /// Stops and joins the exporter (idempotent; also runs on destruction).
  void StopExporter();

  struct TimelinePoint {
    double t_seconds = 0.0;  ///< since StartExporter
    HealthReport report;
  };
  std::vector<TimelinePoint> Timeline() const;

  const SloTargets& targets() const { return targets_; }

  /// Appends a complete JSON object value — state, window aggregates,
  /// targets, and the exporter timeline. Call with the writer expecting a
  /// value (e.g. after `json.Key("health")`).
  void AppendHealthJson(JsonWriter& json) const;
  /// The same object as a standalone document.
  std::string HealthJson(bool pretty = true) const;

 private:
  struct Epoch;

  Epoch& CurrentEpoch();
  static void ReportToJson(const HealthReport& report, JsonWriter& json);

  const SloTargets targets_;
  const std::vector<double>& bounds_;  ///< LogLatencyBucketsUs
  std::vector<std::unique_ptr<Epoch>> epochs_;
  std::atomic<size_t> current_{0};
  std::mutex advance_mu_;  // serializes AdvanceEpoch

  mutable std::mutex exporter_mu_;
  std::condition_variable exporter_cv_;
  bool exporter_stop_ = false;
  std::thread exporter_;
  std::vector<TimelinePoint> timeline_;
};

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_SLO_MONITOR_H_
