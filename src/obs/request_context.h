#ifndef MAGNETO_OBS_REQUEST_CONTEXT_H_
#define MAGNETO_OBS_REQUEST_CONTEXT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace magneto::obs {

/// Request-scoped identity and per-stage timing for the serving path.
///
/// A `RequestContext` is allocated when a window is admitted into the fleet
/// and rides along with the request through every thread it crosses
/// (admission queue -> worker bulk-pop -> micro-batch combiner -> embed ->
/// classify -> publish). Each hop stamps its stage, so at publish time the
/// request decomposes into adjacent intervals that sum *exactly* to the
/// end-to-end latency. The id doubles as the Chrome trace flow-event id and
/// the histogram exemplar id, so a p99 outlier in the metrics snapshot links
/// directly to its slice chain in the trace and its flight-recorder record.

/// Process-unique, monotonically increasing request id. 1-based; 0 means
/// "no request" everywhere (flows, exemplars, flight records).
inline uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// The serving-path stages a request passes through, in order. Stage k's
/// interval is [stage_ns[k-1], stage_ns[k]); kAdmit is the epoch.
enum class RequestStage : size_t {
  kAdmit = 0,     ///< SubmitWindow accepted the request into the queue
  kDequeue,       ///< a serve worker bulk-popped it off the admission queue
  kEmbedStart,    ///< its micro-batch reached the combining leader's Embed
  kEmbedEnd,      ///< stacked backbone forward finished
  kClassifyEnd,   ///< per-request KNN/NCM classification finished
  kPublish,       ///< prediction handed back to the caller
  kNumStages,
};

constexpr size_t kNumRequestStages =
    static_cast<size_t>(RequestStage::kNumStages);

struct RequestContext {
  uint64_t id = 0;
  uint32_t session = 0;
  /// Steady-clock stamps, one per stage; 0 = not reached.
  std::array<uint64_t, kNumRequestStages> stage_ns{};

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }

  void Stamp(RequestStage stage) {
    stage_ns[static_cast<size_t>(stage)] = NowNs();
  }
  void StampAt(RequestStage stage, uint64_t now_ns) {
    stage_ns[static_cast<size_t>(stage)] = now_ns;
  }
  uint64_t At(RequestStage stage) const {
    return stage_ns[static_cast<size_t>(stage)];
  }

  /// Microseconds between two stamped stages; 0 when either stamp is missing
  /// or the clock stepped (stamps are same-process steady-clock, so a
  /// negative interval means the stage was never reached).
  double StageUs(RequestStage from, RequestStage to) const {
    const uint64_t a = At(from);
    const uint64_t b = At(to);
    if (a == 0 || b == 0 || b < a) return 0.0;
    return static_cast<double>(b - a) / 1000.0;
  }

  /// Admit -> publish, the caller-visible latency.
  double EndToEndUs() const {
    return StageUs(RequestStage::kAdmit, RequestStage::kPublish);
  }
};

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_REQUEST_CONTEXT_H_
