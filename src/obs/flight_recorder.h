#ifndef MAGNETO_OBS_FLIGHT_RECORDER_H_
#define MAGNETO_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/request_context.h"

namespace magneto::obs {

/// Bounded lock-free ring of the most recent per-request serving records —
/// the "black box" of the fleet. Every published, shed, or errored request
/// leaves one fixed-size record (id, session, per-stage stamps, batch size,
/// deployment version, outcome). The ring can be dumped as deterministic
/// JSON on demand (`magneto fleet --flight-record-out`) and dumps itself
/// automatically on anomalies: a shed burst, an update rollback, or a
/// checkpoint fallback. That gives a post-mortem of the requests *leading
/// up to* the event, which aggregate histograms cannot reconstruct.
///
/// Concurrency: `Record` is wait-free apart from one CAS — a slot is claimed
/// from a monotonic cursor and guarded by a per-slot sequence counter
/// (seqlock). Writers never block; a writer that lands on a slot another
/// writer is mid-filling (only possible after cursor wraparound) drops its
/// record. Readers retry a slot a few times and skip it if it stays
/// unstable, so dumps taken under fire are consistent per record.

/// One request's record. All fields are plain words so the ring can store
/// them as relaxed atomics.
struct FlightRecord {
  enum class Outcome : uint64_t {
    kOk = 0,     ///< prediction published
    kShed = 1,   ///< rejected at admission (queue full)
    kError = 2,  ///< serve path returned a non-OK status
  };

  uint64_t id = 0;  ///< RequestContext id; 0 = empty slot
  uint32_t session = 0;
  uint32_t batch_size = 0;        ///< micro-batch the request was embedded in
  uint64_t deployment_version = 0;
  Outcome outcome = Outcome::kOk;
  std::array<uint64_t, kNumRequestStages> stage_ns{};

  /// Microseconds between two stages; 0 when either is missing.
  double StageUs(RequestStage from, RequestStage to) const {
    const uint64_t a = stage_ns[static_cast<size_t>(from)];
    const uint64_t b = stage_ns[static_cast<size_t>(to)];
    if (a == 0 || b == 0 || b < a) return 0.0;
    return static_cast<double>(b - a) / 1000.0;
  }
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to at least 2 and fixed for the recorder's
  /// life (the record path is lock-free, so the ring cannot be resized
  /// underneath it).
  explicit FlightRecorder(size_t capacity = 4096);

  /// Process-wide recorder (leaked, like Registry::Global). The fleet and
  /// the anomaly hooks in core/ write here unless a test injects its own.
  static FlightRecorder& Global();

  /// Stores `record` into the ring (overwrites the oldest). Lock-free.
  void Record(const FlightRecord& record);

  /// Convenience for an admission-time rejection: records a kShed record
  /// stamped at `now` and advances the shed-burst detector. A run of
  /// `shed_burst_threshold()` consecutive sheds (no intervening NoteAdmit)
  /// raises the "shed_burst" anomaly once per burst.
  void RecordShed(uint64_t id, uint32_t session);

  /// Marks a successful admission: resets the shed-burst streak.
  void NoteAdmit();

  /// Raises an anomaly: bumps `flight.anomalies` (and a per-kind counter),
  /// remembers `kind` as the dump's "last_anomaly", and — when an auto-dump
  /// path is configured — writes the ring to it. `kind` must be a short
  /// identifier ([a-z_], e.g. "update_rollback").
  void NoteAnomaly(const std::string& kind);

  /// Enables anomaly auto-dump to `path` (empty disables).
  void SetAutoDumpPath(const std::string& path);
  /// Consecutive sheds that constitute a burst (default 32; minimum 1).
  void SetShedBurstThreshold(uint64_t consecutive);
  uint64_t shed_burst_threshold() const {
    return shed_burst_threshold_.load(std::memory_order_relaxed);
  }

  /// Consistent copies of every non-empty slot, sorted by request id
  /// ascending — the deterministic dump order.
  std::vector<FlightRecord> Snapshot() const;

  /// {"schema_version": 1, "capacity": N, "last_anomaly": "...",
  ///  "records": [...sorted by id...]} with per-record stage attribution in
  ///  microseconds.
  std::string ToJson(bool pretty = true) const;

  /// Writes `ToJson()` to `path`; false on I/O failure.
  bool Dump(const std::string& path) const;

  /// Empties the ring and resets the shed streak (config survives).
  void Clear();

  size_t capacity() const { return capacity_; }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  // Slot layout, all relaxed-atomic words.
  static constexpr size_t kIdWord = 0;
  static constexpr size_t kSessionWord = 1;
  static constexpr size_t kBatchWord = 2;
  static constexpr size_t kVersionWord = 3;
  static constexpr size_t kOutcomeWord = 4;
  static constexpr size_t kStageWord0 = 5;
  static constexpr size_t kWordsPerSlot = kStageWord0 + kNumRequestStages;

  bool ReadSlot(size_t slot, FlightRecord* out) const;

  const size_t capacity_;
  std::unique_ptr<std::atomic<uint64_t>[]> seqs_;   // per-slot seqlock
  std::unique_ptr<std::atomic<uint64_t>[]> words_;  // capacity_*kWordsPerSlot
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> shed_streak_{0};
  std::atomic<uint64_t> shed_burst_threshold_{32};

  mutable std::mutex config_mu_;  // auto_dump_path_, last_anomaly_
  std::string auto_dump_path_;
  std::string last_anomaly_;
};

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_FLIGHT_RECORDER_H_
