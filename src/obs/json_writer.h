#ifndef MAGNETO_OBS_JSON_WRITER_H_
#define MAGNETO_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace magneto::obs {

/// Minimal streaming JSON writer shared by the metrics/trace exporters and
/// the bench harness (`bench/bench_util.h`). Emits syntactically valid JSON
/// with correct string escaping and shortest round-trip numbers; commas and
/// (optionally) indentation are handled by the writer, so call sites read as
/// a flat sequence of Begin/Key/Value calls.
///
/// `magneto_obs` sits below `magneto_common` in the link order, so this
/// header deliberately avoids Status/Result; file I/O reports plain bool.
class JsonWriter {
 public:
  /// `pretty` adds newlines and two-space indentation.
  explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next object member. Must be inside an object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }

  /// Key + Value in one call.
  template <typename T>
  JsonWriter& Field(std::string_view name, T v) {
    Key(name);
    return Value(v);
  }

  /// True once every container opened has been closed.
  bool Complete() const { return stack_.empty() && wrote_root_; }

  /// The document so far (the full document once `Complete()`).
  const std::string& str() const { return out_; }

  /// Writes the document to `path`; false on I/O failure.
  bool WriteToFile(const std::string& path) const;

 private:
  void Indent();
  void BeforeValue();

  struct Frame {
    bool is_object;
    size_t count = 0;
  };

  bool pretty_;
  bool wrote_root_ = false;
  bool pending_key_ = false;
  std::vector<Frame> stack_;
  std::string out_;
};

/// Appends `v` to `out` JSON-escaped, without surrounding quotes.
void JsonEscape(std::string_view v, std::string* out);

/// Writes `content` to `path` atomically enough for our purposes (single
/// fopen/fwrite/fclose); false on failure.
bool WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_JSON_WRITER_H_
