#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/json_writer.h"

namespace magneto::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// -1 = not yet latched from the environment.
std::atomic<int> g_enabled{-1};

int LatchFromEnv() {
  const char* env = std::getenv("MAGNETO_TRACE");
  const int v = (env != nullptr && env[0] != '\0' &&
                 !(env[0] == '0' && env[1] == '\0'))
                    ? 1
                    : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

std::atomic<size_t> g_ring_capacity{16384};
std::atomic<uint32_t> g_next_thread_id{0};

/// Fixed-capacity ring of completed spans for one thread. The owning thread
/// appends; exporters read under the same mutex. Spans are recorded whole
/// (at close), so wraparound can never orphan half a span — every kept span
/// exports as a matched B/E pair.
struct Ring {
  explicit Ring(size_t capacity, uint32_t thread_id)
      : capacity(capacity), thread(thread_id) {
    events.reserve(capacity);
  }

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < capacity) {
      events.push_back(event);
    } else {
      events[head] = event;
      head = (head + 1) % capacity;
    }
  }

  /// Oldest-to-newest copy of the ring's contents.
  std::vector<TraceEvent> Contents() const {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      out.push_back(events[(head + i) % events.size()]);
    }
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
    head = 0;
  }

  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  size_t head = 0;  // oldest element once the ring is full
  const size_t capacity;
  const uint32_t thread;
};

/// Keeps every thread's ring alive past thread exit so late exports still
/// see its spans. Leaked (like ThreadPool::Global) to survive static
/// teardown of tracing translation units.
struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
};

RingDirectory& Directory() {
  static RingDirectory* directory = new RingDirectory;
  return *directory;
}

Ring& ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>(
        g_ring_capacity.load(std::memory_order_relaxed),
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed));
    RingDirectory& directory = Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    directory.rings.push_back(r);
    return r;
  }();
  return *ring;
}

thread_local uint16_t t_depth = 0;

}  // namespace

bool TraceEnabled() {
  const int v = g_enabled.load(std::memory_order_relaxed);
  return (v < 0 ? LatchFromEnv() : v) != 0;
}

void SetTraceEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name)
    : name_(TraceEnabled() ? name : nullptr) {
  if (name_ == nullptr) return;
  depth_ = t_depth++;
  begin_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  uint64_t end_ns = NowNs();
  // A strictly positive duration keeps B strictly before E after the export
  // sort, so zero-cost spans cannot invert into E-before-B.
  if (end_ns <= begin_ns_) end_ns = begin_ns_ + 1;
  --t_depth;
  Ring& ring = ThreadRing();
  ring.Push({name_, begin_ns_, end_ns, ring.thread, depth_});
}

void SetTraceRingCapacity(size_t spans) {
  g_ring_capacity.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
}

void ClearTrace() {
  RingDirectory& directory = Directory();
  std::lock_guard<std::mutex> lock(directory.mu);
  for (const std::shared_ptr<Ring>& ring : directory.rings) ring->Clear();
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> events;
  {
    RingDirectory& directory = Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    for (const std::shared_ptr<Ring>& ring : directory.rings) {
      std::vector<TraceEvent> contents = ring->Contents();
      events.insert(events.end(), contents.begin(), contents.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.depth < b.depth;
            });
  return events;
}

std::string TraceToJson() {
  const std::vector<TraceEvent> spans = CollectTraceEvents();

  // Split every span into a B and an E marker, then order them the way the
  // Chrome trace viewer requires: by timestamp; at equal timestamps closes
  // precede opens (disjoint spans) and outer spans open before inner ones.
  struct Marker {
    uint64_t ts_ns;
    bool is_begin;
    const TraceEvent* span;
  };
  std::vector<Marker> markers;
  markers.reserve(spans.size() * 2);
  uint64_t epoch_ns = UINT64_MAX;
  for (const TraceEvent& span : spans) {
    markers.push_back({span.begin_ns, true, &span});
    markers.push_back({span.end_ns, false, &span});
    epoch_ns = std::min(epoch_ns, span.begin_ns);
  }
  std::sort(markers.begin(), markers.end(),
            [](const Marker& a, const Marker& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.is_begin != b.is_begin) return !a.is_begin;  // E first
              return a.is_begin ? a.span->depth < b.span->depth
                                : a.span->depth > b.span->depth;
            });

  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  json.Field("displayTimeUnit", "ms");
  json.Key("traceEvents").BeginArray();
  for (const Marker& marker : markers) {
    json.BeginObject();
    json.Field("name", marker.span->name);
    json.Field("cat", "magneto");
    json.Field("ph", marker.is_begin ? "B" : "E");
    json.Field("ts",
               static_cast<double>(marker.ts_ns - epoch_ns) / 1000.0);
    json.Field("pid", 1);
    json.Field("tid", marker.span->thread);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

bool WriteTrace(const std::string& path) {
  return WriteStringToFile(TraceToJson(), path);
}

}  // namespace magneto::obs
