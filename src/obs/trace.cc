#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace magneto::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// -1 = not yet latched from the environment.
std::atomic<int> g_enabled{-1};

int LatchFromEnv() {
  const char* env = std::getenv("MAGNETO_TRACE");
  const int v = (env != nullptr && env[0] != '\0' &&
                 !(env[0] == '0' && env[1] == '\0'))
                    ? 1
                    : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

std::atomic<size_t> g_ring_capacity{16384};
std::atomic<uint32_t> g_next_thread_id{0};

/// Fixed-capacity ring of completed spans for one thread. The owning thread
/// appends; exporters read under the same mutex. Spans are recorded whole
/// (at close), so wraparound can never orphan half a span — every kept span
/// exports as a matched B/E pair.
struct Ring {
  explicit Ring(size_t capacity, uint32_t thread_id)
      : capacity(capacity),
        thread(thread_id),
        // Resolved once per ring, not per push: the registry lookup (mutex +
        // map) must stay off the per-event path.
        dropped(Registry::Global().GetCounter("obs.trace.dropped")) {
    events.reserve(capacity);
  }

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < capacity) {
      events.push_back(event);
    } else {
      // Overwriting the oldest event is silent data loss for the exporter,
      // so it is surfaced in the metrics snapshot (`obs.trace.dropped`).
      dropped->Increment();
      events[head] = event;
      // Branch, not `% capacity`: the capacity is not a compile-time
      // constant, and an integer divide would dominate the push.
      if (++head == capacity) head = 0;
    }
  }

  /// Oldest-to-newest copy of the ring's contents.
  std::vector<TraceEvent> Contents() const {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      out.push_back(events[(head + i) % events.size()]);
    }
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
    head = 0;
  }

  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  size_t head = 0;  // oldest element once the ring is full
  const size_t capacity;
  const uint32_t thread;
  Counter* const dropped;
};

/// Keeps every thread's ring alive past thread exit so late exports still
/// see its spans. Leaked (like ThreadPool::Global) to survive static
/// teardown of tracing translation units.
struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
};

RingDirectory& Directory() {
  static RingDirectory* directory = new RingDirectory;
  return *directory;
}

Ring& ThreadRing() {
  // The shared_ptr keeps the ring alive in the directory past thread exit;
  // the raw pointer is what the hot path dereferences.
  thread_local Ring* ring = [] {
    auto r = std::make_shared<Ring>(
        g_ring_capacity.load(std::memory_order_relaxed),
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed));
    RingDirectory& directory = Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    directory.rings.push_back(r);
    return r.get();
  }();
  return *ring;
}

thread_local uint16_t t_depth = 0;

}  // namespace

bool TraceEnabled() {
  const int v = g_enabled.load(std::memory_order_relaxed);
  return (v < 0 ? LatchFromEnv() : v) != 0;
}

void SetTraceEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name)
    : name_(TraceEnabled() ? name : nullptr) {
  if (name_ == nullptr) return;
  depth_ = t_depth++;
  begin_ns_ = NowNs();
}

TraceSpan::TraceSpan(const char* name, uint64_t begin_ns)
    : name_(TraceEnabled() ? name : nullptr) {
  if (name_ == nullptr) return;
  depth_ = t_depth++;
  begin_ns_ = begin_ns;
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  uint64_t end_ns = NowNs();
  // A strictly positive duration keeps B strictly before E after the export
  // sort, so zero-cost spans cannot invert into E-before-B.
  if (end_ns <= begin_ns_) end_ns = begin_ns_ + 1;
  --t_depth;
  Ring& ring = ThreadRing();
  ring.Push({name_, begin_ns_, end_ns, ring.thread, depth_});
}

namespace {

void PushFlowMarkerAt(const char* name, uint64_t id, TracePhase phase,
                      uint64_t ts_ns) {
  if (!TraceEnabled()) return;
  Ring& ring = ThreadRing();
  TraceEvent event{name, ts_ns, ts_ns, ring.thread, t_depth};
  event.phase = phase;
  event.flow_id = id;
  ring.Push(event);
}

void PushFlowMarker(const char* name, uint64_t id, TracePhase phase) {
  if (!TraceEnabled()) return;
  PushFlowMarkerAt(name, id, phase, NowNs());
}

}  // namespace

void TraceFlowBegin(const char* name, uint64_t id) {
  PushFlowMarker(name, id, TracePhase::kFlowBegin);
}

void TraceFlowStep(const char* name, uint64_t id) {
  PushFlowMarker(name, id, TracePhase::kFlowStep);
}

void TraceFlowEnd(const char* name, uint64_t id) {
  PushFlowMarker(name, id, TracePhase::kFlowEnd);
}

void TraceFlowBeginAt(const char* name, uint64_t id, uint64_t ts_ns) {
  PushFlowMarkerAt(name, id, TracePhase::kFlowBegin, ts_ns);
}

void TraceFlowStepAt(const char* name, uint64_t id, uint64_t ts_ns) {
  PushFlowMarkerAt(name, id, TracePhase::kFlowStep, ts_ns);
}

void TraceFlowEndAt(const char* name, uint64_t id, uint64_t ts_ns) {
  PushFlowMarkerAt(name, id, TracePhase::kFlowEnd, ts_ns);
}

void SetTraceRingCapacity(size_t spans) {
  g_ring_capacity.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
}

void ClearTrace() {
  RingDirectory& directory = Directory();
  std::lock_guard<std::mutex> lock(directory.mu);
  for (const std::shared_ptr<Ring>& ring : directory.rings) ring->Clear();
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> events;
  {
    RingDirectory& directory = Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    for (const std::shared_ptr<Ring>& ring : directory.rings) {
      std::vector<TraceEvent> contents = ring->Contents();
      events.insert(events.end(), contents.begin(), contents.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.depth < b.depth;
            });
  return events;
}

std::string TraceToJson() {
  const std::vector<TraceEvent> events = CollectTraceEvents();

  // Split every span into a B and an E marker (flow markers stay single
  // events), then order them the way the Chrome trace viewer requires: by
  // timestamp; at equal timestamps closes precede opens (disjoint spans),
  // outer spans open before inner ones, and flow markers sort after opens so
  // they land inside the slice that recorded them.
  enum MarkerKind { kClose = 0, kOpen = 1, kFlow = 2 };
  struct Marker {
    uint64_t ts_ns;
    MarkerKind kind;
    const TraceEvent* event;
  };
  std::vector<Marker> markers;
  markers.reserve(events.size() * 2);
  uint64_t epoch_ns = UINT64_MAX;
  for (const TraceEvent& event : events) {
    if (event.phase == TracePhase::kSpan) {
      markers.push_back({event.begin_ns, kOpen, &event});
      markers.push_back({event.end_ns, kClose, &event});
    } else {
      markers.push_back({event.begin_ns, kFlow, &event});
    }
    epoch_ns = std::min(epoch_ns, event.begin_ns);
  }
  std::sort(markers.begin(), markers.end(),
            [](const Marker& a, const Marker& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.kind == kFlow) return a.event->flow_id < b.event->flow_id;
              return a.kind == kOpen ? a.event->depth < b.event->depth
                                     : a.event->depth > b.event->depth;
            });

  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  json.Field("displayTimeUnit", "ms");
  json.Key("traceEvents").BeginArray();
  for (const Marker& marker : markers) {
    json.BeginObject();
    json.Field("name", marker.event->name);
    json.Field("cat", "magneto");
    if (marker.kind == kFlow) {
      const TracePhase phase = marker.event->phase;
      json.Field("ph", phase == TracePhase::kFlowBegin  ? "s"
                       : phase == TracePhase::kFlowStep ? "t"
                                                        : "f");
    } else {
      json.Field("ph", marker.kind == kOpen ? "B" : "E");
    }
    json.Field("ts",
               static_cast<double>(marker.ts_ns - epoch_ns) / 1000.0);
    json.Field("pid", 1);
    json.Field("tid", marker.event->thread);
    if (marker.kind == kFlow) {
      json.Field("id", marker.event->flow_id);
      // "bp":"e" binds the finish to the *enclosing* slice instead of the
      // next one, matching where TraceFlowEnd was actually called.
      if (marker.event->phase == TracePhase::kFlowEnd) json.Field("bp", "e");
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

bool WriteTrace(const std::string& path) {
  return WriteStringToFile(TraceToJson(), path);
}

}  // namespace magneto::obs
