#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json_writer.h"

namespace magneto::obs {

namespace {

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

/// 1-2-5 series across `decades` decades starting at `first`.
std::vector<double> OneTwoFive(double first, int decades) {
  std::vector<double> bounds;
  double base = first;
  for (int d = 0; d < decades; ++d) {
    bounds.push_back(base);
    bounds.push_back(base * 2.0);
    bounds.push_back(base * 5.0);
    base *= 10.0;
  }
  return bounds;
}

}  // namespace

const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double> bounds = OneTwoFive(1.0, 7);  // 1us..5s
  return bounds;
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double> bounds = OneTwoFive(0.01, 7);  // 10us..50s
  return bounds;
}

const std::vector<double>& LogLatencyBucketsUs() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    b.reserve(29);
    for (int k = 0; k <= 28; ++k) {  // 10^(0/4) .. 10^(28/4): 1us .. 10s
      b.push_back(std::pow(10.0, static_cast<double>(k) / 4.0));
    }
    return b;
  }();
  return bounds;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      exemplar_ids_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      exemplar_bits_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      min_bits_(DoubleBits(std::numeric_limits<double>::infinity())),
      max_bits_(DoubleBits(-std::numeric_limits<double>::infinity())) {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0);
    exemplar_ids_[i].store(0);
    exemplar_bits_[i].store(0);
  }
}

void Histogram::Record(double value) {
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point sum: integer adds commute, so the total is bit-identical at
  // any thread count (the determinism contract of the snapshot).
  sum_milli_.fetch_add(static_cast<int64_t>(std::llround(value * 1000.0)),
                       std::memory_order_relaxed);
  uint64_t cur = min_bits_.load(std::memory_order_relaxed);
  while (value < BitsDouble(cur) &&
         !min_bits_.compare_exchange_weak(cur, DoubleBits(value),
                                          std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (value > BitsDouble(cur) &&
         !max_bits_.compare_exchange_weak(cur, DoubleBits(value),
                                          std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double value, uint64_t exemplar_id) {
  Record(value);
  if (exemplar_id == 0) return;
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // Two independent relaxed stores: a reader may pair an id with the
  // previous value (benign — see header). Value first so a freshly-visible
  // id is never paired with a stale zero.
  exemplar_bits_[i].store(DoubleBits(value), std::memory_order_relaxed);
  exemplar_ids_[i].store(exemplar_id, std::memory_order_relaxed);
}

double Histogram::exemplar_value(size_t i) const {
  return BitsDouble(exemplar_bits_[i].load(std::memory_order_relaxed));
}

double Histogram::min() const {
  const double v = BitsDouble(min_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
  const double v = BitsDouble(max_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

void Histogram::Reset() {
  for (size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
    exemplar_ids_[i].store(0, std::memory_order_relaxed);
    exemplar_bits_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_milli_.store(0, std::memory_order_relaxed);
  min_bits_.store(DoubleBits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(DoubleBits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // leaked: handles never dangle
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = LatencyBucketsUs();
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return it->second.get();
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iterates in name order, which is what makes snapshots
  // deterministic (and diffs between snapshots readable).
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    Snapshot::HistogramValue value;
    value.name = name;
    value.bounds = histogram->bounds();
    value.buckets.resize(histogram->num_buckets());
    for (size_t i = 0; i < value.buckets.size(); ++i) {
      value.buckets[i] = histogram->bucket(i);
    }
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.min = histogram->min();
    value.max = histogram->max();
    for (size_t i = 0; i < value.buckets.size(); ++i) {
      const uint64_t id = histogram->exemplar_id(i);
      if (id != 0) {
        value.exemplars.push_back({i, id, histogram->exemplar_value(i)});
      }
    }
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

double Snapshot::HistogramValue::Quantile(double q) const {
  if (count == 0) return 0.0;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

const Snapshot::CounterValue* Snapshot::FindCounter(
    std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Snapshot::GaugeValue* Snapshot::FindGauge(std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const Snapshot::HistogramValue* Snapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::ToJson(
    bool pretty, const std::function<void(JsonWriter&)>& extra) const {
  JsonWriter json(pretty);
  json.BeginObject();
  json.Field("schema_version", 2);
  json.Key("counters").BeginObject();
  for (const CounterValue& c : counters) json.Field(c.name, c.value);
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const GaugeValue& g : gauges) json.Field(g.name, g.value);
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const HistogramValue& h : histograms) {
    json.Key(h.name).BeginObject();
    json.Field("count", h.count);
    json.Field("sum", h.sum);
    json.Field("min", h.min);
    json.Field("max", h.max);
    json.Field("mean",
               h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count));
    json.Field("p50", h.Quantile(0.50));
    json.Field("p95", h.Quantile(0.95));
    json.Field("p99", h.Quantile(0.99));
    json.Key("bounds").BeginArray();
    for (double b : h.bounds) json.Value(b);
    json.EndArray();
    json.Key("buckets").BeginArray();
    for (uint64_t b : h.buckets) json.Value(b);
    json.EndArray();
    if (!h.exemplars.empty()) {
      json.Key("exemplars").BeginArray();
      for (const HistogramValue::Exemplar& e : h.exemplars) {
        json.BeginObject();
        json.Field("bucket", static_cast<uint64_t>(e.bucket));
        json.Field("id", e.id);
        json.Field("value", e.value);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndObject();
  if (extra) extra(json);
  json.EndObject();
  return json.str();
}

std::string Snapshot::ToTable() const {
  std::string out;
  char line[256];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterValue& c : counters) {
      std::snprintf(line, sizeof(line), "  %-40s %12llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeValue& g : gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %12.3f\n", g.name.c_str(),
                    g.value);
      out += line;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:                                       "
           "count      mean       p50       p95       max\n";
    for (const HistogramValue& h : histograms) {
      const double mean =
          h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
      std::snprintf(line, sizeof(line),
                    "  %-40s %9llu %9.2f %9.2f %9.2f %9.2f\n", h.name.c_str(),
                    static_cast<unsigned long long>(h.count), mean,
                    h.Quantile(0.50), h.Quantile(0.95), h.max);
      out += line;
    }
  }
  return out;
}

}  // namespace magneto::obs
