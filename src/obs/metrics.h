#ifndef MAGNETO_OBS_METRICS_H_
#define MAGNETO_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace magneto::obs {

class JsonWriter;

/// Process-wide metrics for the MAGNETO hot paths.
///
/// Design contract (DESIGN.md, "Telemetry"):
///   * Hot-path cost is one relaxed atomic RMW per event. Registration (name
///     lookup) happens once per call site through a function-local static
///     handle; after that no locks, no allocation, no string hashing.
///   * Everything is additive and thread-safe: concurrent increments from N
///     threads produce exact totals.
///   * Snapshots are deterministic for deterministic workloads: metrics are
///     emitted sorted by name, histogram bucket boundaries are fixed at
///     registration, and value sums accumulate in fixed-point (1/1000)
///     units so the total is independent of thread interleaving.
///
/// Idiomatic call site:
///
///   static obs::Counter* const windows =
///       obs::Registry::Global().GetCounter("pipeline.windows");
///   windows->Increment();

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (thread count, queue depth, last loss, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Note: floating-point addition order depends on thread interleaving;
  /// prefer `Set` where snapshot determinism across thread counts matters.
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket `i` counts values `<= bounds[i]`; one
/// overflow bucket catches the rest. Boundaries are fixed at registration, so
/// two runs of the same workload fill identical buckets regardless of thread
/// count. The value sum accumulates in integer 1/1000 units (exact,
/// order-independent); min/max are exact.
class Histogram {
 public:
  void Record(double value);

  /// Like `Record`, but additionally remembers (id, value) as the bucket's
  /// exemplar when `exemplar_id != 0`. Exemplars let a tail bucket name a
  /// concrete request: the id is the `RequestContext` id, which doubles as
  /// the trace flow id and the flight-recorder key. Last writer wins per
  /// bucket; the (id, value) pair is two relaxed atomics, so a concurrent
  /// read can pair an id with a neighbouring value — acceptable for a
  /// debugging breadcrumb, and why exemplars are excluded from snapshot
  /// equality (they depend on thread interleaving even for deterministic
  /// workloads).
  void Record(double value, uint64_t exemplar_id);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded values, quantised to 1/1000 units.
  double sum() const {
    return static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  double min() const;
  double max() const;
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }
  /// Exemplar id last stored for bucket `i` (0 = none).
  uint64_t exemplar_id(size_t i) const {
    return exemplar_ids_[i].load(std::memory_order_relaxed);
  }
  double exemplar_value(size_t i) const;

  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;  // strictly increasing, fixed for life
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  /// Per-bucket exemplars: last (request id, value bits) recorded into the
  /// bucket. Two separate relaxed atomics per bucket (see Record).
  std::unique_ptr<std::atomic<uint64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<uint64_t>[]> exemplar_bits_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_milli_{0};
  std::atomic<uint64_t> min_bits_;  // double bit pattern, CAS-updated
  std::atomic<uint64_t> max_bits_;
};

/// Default latency boundaries in microseconds: 1-2-5 decades from 1 us to
/// 10 s. Every latency histogram in the codebase uses these unless it
/// registers its own, so snapshots are comparable across subsystems.
const std::vector<double>& LatencyBucketsUs();

/// Same shape in milliseconds (0.01 ms .. 100 s) for coarse phases
/// (training epochs, incremental updates).
const std::vector<double>& LatencyBucketsMs();

/// Log-spaced boundaries in microseconds: 10^(k/4) for k = 0..28, i.e.
/// 1 µs .. 10 s with four buckets per decade (~78% ratio between adjacent
/// bounds). Preferred for microsecond-scale serving stages where the 1-2-5
/// series is too coarse to resolve p99 (a p99 answer is always a bucket
/// upper bound, so resolution IS accuracy).
const std::vector<double>& LogLatencyBucketsUs();

/// Point-in-time copy of every registered metric, sorted by name.
struct Snapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
    bool operator==(const CounterValue&) const = default;
  };
  struct GaugeValue {
    std::string name;
    double value;
    bool operator==(const GaugeValue&) const = default;
  };
  struct HistogramValue {
    /// A concrete sample representing one bucket: the request id recorded
    /// with `Histogram::Record(value, id)` that last landed there.
    struct Exemplar {
      size_t bucket = 0;
      uint64_t id = 0;
      double value = 0.0;
    };

    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
    std::vector<Exemplar> exemplars;  ///< only buckets with an exemplar
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Upper bucket boundary at which the cumulative count crosses `q`.
    double Quantile(double q) const;
    /// Exemplars are deliberately excluded: which request last hit a bucket
    /// depends on thread interleaving, and snapshot equality is the
    /// determinism contract (see tests/integration/determinism_test.cc).
    bool operator==(const HistogramValue& o) const {
      return name == o.name && bounds == o.bounds && buckets == o.buckets &&
             count == o.count && sum == o.sum && min == o.min && max == o.max;
    }
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// nullptr when the metric does not exist.
  const CounterValue* FindCounter(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;
  const GaugeValue* FindGauge(std::string_view name) const;

  /// {"schema_version": 2, "counters": {...}, "gauges": {...},
  ///  "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
  ///                        bounds, buckets[, exemplars]}}}
  /// `extra`, when set, is invoked with the writer positioned inside the
  /// root object so callers can append fields (e.g. an SLO "health" block)
  /// without re-parsing the document. Exemplars are emitted only for
  /// histograms that have at least one (deterministic workloads without
  /// exemplars produce byte-identical JSON across thread counts).
  std::string ToJson(bool pretty = true,
                     const std::function<void(JsonWriter&)>& extra = {}) const;

  /// Fixed-width text table for terminal output.
  std::string ToTable() const;
};

/// Owner of every metric. Metrics are created on first lookup and live for
/// the process (handles never dangle); `ResetAll` zeroes values but keeps
/// registrations, so static handles stay valid across bench repetitions.
class Registry {
 public:
  /// The process-wide registry (leaked, like ThreadPool::Global, so handles
  /// outlive static destructors).
  static Registry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` applies only to the creating call; later lookups of the same
  /// name return the existing histogram. Empty bounds = LatencyBucketsUs().
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  Snapshot TakeSnapshot() const;
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records the scope's wall time into a histogram on destruction, in the
/// unit the histogram was registered with (microseconds by default).
class ScopedTimer {
 public:
  /// `scale` converts seconds to the histogram's unit (1e6 = microseconds).
  explicit ScopedTimer(Histogram* histogram, double scale = 1e6)
      : histogram_(histogram),
        scale_(scale),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    const auto end = std::chrono::steady_clock::now();
    histogram_->Record(std::chrono::duration<double>(end - start_).count() *
                       scale_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  double scale_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace magneto::obs

#endif  // MAGNETO_OBS_METRICS_H_
