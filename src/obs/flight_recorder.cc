#include "obs/flight_recorder.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace magneto::obs {

namespace {

const char* OutcomeName(FlightRecord::Outcome outcome) {
  switch (outcome) {
    case FlightRecord::Outcome::kOk:
      return "ok";
    case FlightRecord::Outcome::kShed:
      return "shed";
    case FlightRecord::Outcome::kError:
      return "error";
  }
  return "unknown";
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity),
      seqs_(new std::atomic<uint64_t>[capacity_]),
      words_(new std::atomic<uint64_t>[capacity_ * kWordsPerSlot]) {
  for (size_t i = 0; i < capacity_; ++i) seqs_[i].store(0);
  for (size_t i = 0; i < capacity_ * kWordsPerSlot; ++i) words_[i].store(0);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder;  // leaked, like
  return *recorder;                                      // Registry::Global
}

void FlightRecorder::Record(const FlightRecord& record) {
  const size_t slot =
      cursor_.fetch_add(1, std::memory_order_relaxed) % capacity_;
  std::atomic<uint64_t>& seq = seqs_[slot];
  uint64_t s = seq.load(std::memory_order_relaxed);
  // A slot is claimed by bumping its sequence to odd. Losing the CAS means
  // another writer lapped the ring onto this slot mid-fill; that record is
  // about to be overwritten anyway, so dropping ours is harmless.
  if ((s & 1) != 0 ||
      !seq.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
    return;
  }
  std::atomic<uint64_t>* w = &words_[slot * kWordsPerSlot];
  w[kIdWord].store(record.id, std::memory_order_relaxed);
  w[kSessionWord].store(record.session, std::memory_order_relaxed);
  w[kBatchWord].store(record.batch_size, std::memory_order_relaxed);
  w[kVersionWord].store(record.deployment_version, std::memory_order_relaxed);
  w[kOutcomeWord].store(static_cast<uint64_t>(record.outcome),
                        std::memory_order_relaxed);
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    w[kStageWord0 + i].store(record.stage_ns[i], std::memory_order_relaxed);
  }
  seq.store(s + 2, std::memory_order_release);
}

void FlightRecorder::RecordShed(uint64_t id, uint32_t session) {
  FlightRecord record;
  record.id = id;
  record.session = session;
  record.outcome = FlightRecord::Outcome::kShed;
  record.stage_ns[static_cast<size_t>(RequestStage::kAdmit)] =
      RequestContext::NowNs();
  Record(record);
  const uint64_t streak = shed_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  // `==` not `>=`: a sustained burst dumps once at the threshold, not on
  // every subsequent shed; the streak re-arms when an admit goes through.
  if (streak == shed_burst_threshold_.load(std::memory_order_relaxed)) {
    NoteAnomaly("shed_burst");
  }
}

void FlightRecorder::NoteAdmit() {
  shed_streak_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::NoteAnomaly(const std::string& kind) {
  static Counter* const anomalies =
      Registry::Global().GetCounter("flight.anomalies");
  anomalies->Increment();
  // Per-kind counter: cold path, so the by-name lookup is fine here.
  Registry::Global().GetCounter("flight.anomaly." + kind)->Increment();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    last_anomaly_ = kind;
    path = auto_dump_path_;
  }
  if (!path.empty()) Dump(path);
}

void FlightRecorder::SetAutoDumpPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(config_mu_);
  auto_dump_path_ = path;
}

void FlightRecorder::SetShedBurstThreshold(uint64_t consecutive) {
  shed_burst_threshold_.store(consecutive == 0 ? 1 : consecutive,
                              std::memory_order_relaxed);
}

bool FlightRecorder::ReadSlot(size_t slot, FlightRecord* out) const {
  const std::atomic<uint64_t>* w = &words_[slot * kWordsPerSlot];
  for (int attempt = 0; attempt < 8; ++attempt) {
    const uint64_t s1 = seqs_[slot].load(std::memory_order_acquire);
    if ((s1 & 1) != 0) continue;  // writer mid-fill
    FlightRecord record;
    record.id = w[kIdWord].load(std::memory_order_relaxed);
    record.session =
        static_cast<uint32_t>(w[kSessionWord].load(std::memory_order_relaxed));
    record.batch_size =
        static_cast<uint32_t>(w[kBatchWord].load(std::memory_order_relaxed));
    record.deployment_version =
        w[kVersionWord].load(std::memory_order_relaxed);
    record.outcome = static_cast<FlightRecord::Outcome>(
        w[kOutcomeWord].load(std::memory_order_relaxed));
    for (size_t i = 0; i < kNumRequestStages; ++i) {
      record.stage_ns[i] = w[kStageWord0 + i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seqs_[slot].load(std::memory_order_relaxed) != s1) continue;
    if (record.id == 0) return false;  // never written (or cleared)
    *out = record;
    return true;
  }
  return false;  // persistently contended; skip rather than block
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> records;
  records.reserve(capacity_);
  for (size_t slot = 0; slot < capacity_; ++slot) {
    FlightRecord record;
    if (ReadSlot(slot, &record)) records.push_back(record);
  }
  // Request ids are allocated monotonically, so sorting by id is both the
  // arrival order and a deterministic dump order.
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.id < b.id;
            });
  return records;
}

std::string FlightRecorder::ToJson(bool pretty) const {
  const std::vector<FlightRecord> records = Snapshot();
  std::string last_anomaly;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    last_anomaly = last_anomaly_;
  }
  JsonWriter json(pretty);
  json.BeginObject();
  json.Field("schema_version", 1);
  json.Field("capacity", static_cast<uint64_t>(capacity_));
  json.Field("last_anomaly", last_anomaly);
  json.Key("records").BeginArray();
  for (const FlightRecord& r : records) {
    json.BeginObject();
    json.Field("id", r.id);
    json.Field("session", static_cast<uint64_t>(r.session));
    json.Field("outcome", OutcomeName(r.outcome));
    json.Field("batch_size", static_cast<uint64_t>(r.batch_size));
    json.Field("deployment_version", r.deployment_version);
    json.Field("admit_ns",
               r.stage_ns[static_cast<size_t>(RequestStage::kAdmit)]);
    json.Field("queue_us",
               r.StageUs(RequestStage::kAdmit, RequestStage::kDequeue));
    json.Field("batch_wait_us",
               r.StageUs(RequestStage::kDequeue, RequestStage::kEmbedStart));
    json.Field("embed_us",
               r.StageUs(RequestStage::kEmbedStart, RequestStage::kEmbedEnd));
    json.Field("classify_us", r.StageUs(RequestStage::kEmbedEnd,
                                        RequestStage::kClassifyEnd));
    json.Field("publish_us", r.StageUs(RequestStage::kClassifyEnd,
                                       RequestStage::kPublish));
    json.Field("e2e_us",
               r.StageUs(RequestStage::kAdmit, RequestStage::kPublish));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

bool FlightRecorder::Dump(const std::string& path) const {
  return WriteStringToFile(ToJson(), path);
}

void FlightRecorder::Clear() {
  for (size_t slot = 0; slot < capacity_; ++slot) {
    std::atomic<uint64_t>& seq = seqs_[slot];
    uint64_t s = seq.load(std::memory_order_relaxed);
    if ((s & 1) != 0 ||
        !seq.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      continue;  // a live writer owns the slot; it will overwrite anyway
    }
    std::atomic<uint64_t>* w = &words_[slot * kWordsPerSlot];
    for (size_t i = 0; i < kWordsPerSlot; ++i) {
      w[i].store(0, std::memory_order_relaxed);
    }
    seq.store(s + 2, std::memory_order_release);
  }
  shed_streak_.store(0, std::memory_order_relaxed);
}

}  // namespace magneto::obs
