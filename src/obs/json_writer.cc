#include "obs/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace magneto::obs {

void JsonEscape(std::string_view v, std::string* out) {
  for (char c : v) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void JsonWriter::Indent() {
  if (!pretty_) return;
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

/// Emits the comma/indent/colon that must precede the next value (or
/// container opening) in the current context.
void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was already emitted
  }
  if (!stack_.empty()) {
    Frame& top = stack_.back();
    if (top.count > 0) out_.push_back(',');
    ++top.count;
    Indent();
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back({true, 0});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  const bool had_members = !stack_.empty() && stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) Indent();
  out_.push_back('}');
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back({false, 0});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  const bool had_members = !stack_.empty() && stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) Indent();
  out_.push_back(']');
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!stack_.empty()) {
    Frame& top = stack_.back();
    if (top.count > 0) out_.push_back(',');
    ++top.count;
    Indent();
  }
  out_.push_back('"');
  JsonEscape(name, &out_);
  out_.append(pretty_ ? "\": " : "\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  out_.push_back('"');
  JsonEscape(v, &out_);
  out_.push_back('"');
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_.append("null");  // JSON has no NaN/Inf
  } else {
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, ptr);
  }
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_.append(v ? "true" : "false");
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, ptr);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, ptr);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

bool JsonWriter::WriteToFile(const std::string& path) const {
  return WriteStringToFile(out_, path);
}

bool WriteStringToFile(const std::string& content, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace magneto::obs
