#ifndef MAGNETO_MAGNETO_H_
#define MAGNETO_MAGNETO_H_

/// \file
/// Umbrella header for the MAGNETO Edge-AI HAR platform.
///
/// Typical flow (matching the paper's two steps):
///
///   // Offline, "cloud" side: pre-train on the initial corpus.
///   magneto::core::CloudInitializer cloud(config);
///   auto bundle = cloud.Initialize(corpus, registry);
///
///   // Transfer the serialised bundle to the device (the only cloud->edge
///   // artifact), then run everything locally:
///   auto device = magneto::platform::EdgeDevice::Provision(
///       bundle->SerializeToString(), {});
///   device->runtime().PushFrame(frame);            // real-time inference
///   device->runtime().StartRecording();            // capture new activity
///   device->runtime().FinishRecordingAndLearn("Gesture Hi");
///
/// See examples/ for complete programs.

#include "common/fft.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/qgemm.h"
#include "common/random.h"
#include "common/result.h"
#include "common/serial.h"
#include "common/svd.h"
#include "common/status.h"
#include "compress/compress.h"
#include "core/activity_journal.h"
#include "core/ann_index.h"
#include "core/async_updater.h"
#include "core/cloud_initializer.h"
#include "core/cross_validation.h"
#include "core/drift_monitor.h"
#include "core/edge_model.h"
#include "core/edge_runtime.h"
#include "core/embedder.h"
#include "core/incremental_learner.h"
#include "core/knn_classifier.h"
#include "core/model_bundle.h"
#include "core/ncm_classifier.h"
#include "core/smoother.h"
#include "core/support_set.h"
#include "learn/ewc.h"
#include "learn/metrics.h"
#include "learn/pair_sampler.h"
#include "learn/siamese_trainer.h"
#include "nn/activation.h"
#include "nn/dropout.h"
#include "nn/gradient_check.h"
#include "nn/layer.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/quantized_linear.h"
#include "nn/sequential.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/slo_monitor.h"
#include "obs/trace.h"
#include "platform/bundle_transport.h"
#include "platform/cloud_control_plane.h"
#include "platform/cloud_server.h"
#include "platform/edge_device.h"
#include "platform/edge_fleet.h"
#include "platform/energy.h"
#include "platform/fault_injector.h"
#include "platform/network_link.h"
#include "platform/privacy_auditor.h"
#include "platform/protocols.h"
#include "preprocess/denoise.h"
#include "preprocess/features.h"
#include "preprocess/normalization.h"
#include "preprocess/pipeline.h"
#include "preprocess/segmentation.h"
#include "preprocess/spectral_features.h"
#include "sensors/activity.h"
#include "sensors/context.h"
#include "sensors/dataset.h"
#include "sensors/faults.h"
#include "sensors/recording.h"
#include "sensors/recording_io.h"
#include "sensors/sensor_types.h"
#include "sensors/signal_model.h"
#include "sensors/synthetic_generator.h"
#include "sensors/user_profile.h"

#endif  // MAGNETO_MAGNETO_H_
