#ifndef MAGNETO_LEARN_SIAMESE_TRAINER_H_
#define MAGNETO_LEARN_SIAMESE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "learn/ewc.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "sensors/dataset.h"

namespace magneto::learn {

/// Which embedding objective to optimise.
enum class EmbeddingLoss : uint8_t {
  kPairwiseContrastive = 0,  ///< margin loss over Siamese pairs (default)
  kSupCon = 1,               ///< supervised contrastive over batches
};

/// Which distillation flavour to use against the frozen teacher.
enum class DistillationKind : uint8_t {
  kMse = 0,
  kCosine = 1,
};

enum class OptimizerKind : uint8_t {
  kAdam = 0,
  kSgd = 1,
};

/// Hyperparameters of one (pre-)training or incremental-update run.
struct TrainOptions {
  size_t epochs = 20;
  size_t batch_size = 64;
  /// Pair draws per epoch; 0 -> 2x dataset size.
  size_t pairs_per_epoch = 0;
  double learning_rate = 1e-3;
  /// Multiplicative learning-rate decay applied after each epoch (1 = none).
  double lr_decay = 1.0;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double weight_decay = 0.0;

  EmbeddingLoss embedding_loss = EmbeddingLoss::kPairwiseContrastive;
  /// Pairwise contrastive margin. Roomy margins (several units) preserve
  /// class structure much better than the textbook 1.0, which over-compresses
  /// the embedding and merges adjacent classes (ablated in bench_pretraining).
  double margin = 5.0;
  double supcon_temperature = 0.1;  ///< SupCon temperature

  /// Weight of the distillation term; 0 disables distillation (plain
  /// pre-training). The paper's incremental step uses a positive weight
  /// (§3.3 step 3: "combination of Contrastive and Distillation Loss").
  double distill_weight = 0.0;
  DistillationKind distillation = DistillationKind::kMse;

  /// Weight of the EWC penalty (0 disables). An alternative/complementary
  /// anti-forgetting mechanism to distillation; requires passing an
  /// `EwcRegularizer` to `Train`.
  double ewc_weight = 0.0;

  uint64_t seed = 42;
};

/// Per-epoch training telemetry.
struct EpochStats {
  double embedding_loss = 0.0;  ///< mean contrastive/SupCon loss
  double distill_loss = 0.0;    ///< mean distillation loss (0 if disabled)
};

/// Result of a training run.
struct TrainReport {
  std::vector<EpochStats> epochs;
  double final_embedding_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().embedding_loss;
  }
  double final_distill_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().distill_loss;
  }
};

/// Trains MAGNETO's Siamese embedding network.
///
/// Pre-training (cloud) and incremental updates (edge) run the *same* loop;
/// the only difference is that an update passes the frozen pre-update model
/// as `teacher` plus the old-class exemplars as `distill_data`, activating
/// the joint objective
///
///   L = L_contrastive(support pairs) + lambda * L_distill(student, teacher)
///
/// which is the paper's anti-catastrophic-forgetting mechanism (§3.3).
class SiameseTrainer {
 public:
  explicit SiameseTrainer(TrainOptions options) : options_(options) {}

  const TrainOptions& options() const { return options_; }

  /// Trains `net` in place on `data`.
  ///
  /// If `teacher` is non-null, `distill_data` must be non-null and non-empty:
  /// every step also pulls the student's embeddings of `distill_data` toward
  /// the teacher's (computed once, up front — the teacher is frozen).
  Result<TrainReport> Train(nn::Sequential* net,
                            const sensors::FeatureDataset& data,
                            const nn::Sequential* teacher = nullptr,
                            const sensors::FeatureDataset* distill_data =
                                nullptr,
                            const EwcRegularizer* ewc = nullptr) const;

 private:
  TrainOptions options_;
};

}  // namespace magneto::learn

#endif  // MAGNETO_LEARN_SIAMESE_TRAINER_H_
