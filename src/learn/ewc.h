#ifndef MAGNETO_LEARN_EWC_H_
#define MAGNETO_LEARN_EWC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "nn/sequential.h"
#include "sensors/dataset.h"

namespace magneto::learn {

/// Elastic Weight Consolidation (Kirkpatrick et al.), the classic
/// regularisation-based alternative to MAGNETO's rehearsal + distillation
/// recipe — one of the continual-learning families surveyed in the paper's
/// reference [3]. Implemented here so bench_incremental can ablate the
/// anti-forgetting mechanism itself.
///
/// At update time the old task's parameter importance is estimated as the
/// diagonal empirical Fisher information F (squared gradients of the old
/// task's loss), and training adds the penalty
///
///   L_ewc = (lambda / 2) * sum_i F_i (theta_i - theta*_i)^2
///
/// pulling each weight toward its pre-update value theta* proportionally to
/// how much the old task cared about it.
class EwcRegularizer {
 public:
  struct Options {
    size_t batches = 8;      ///< Fisher estimation batches
    size_t batch_size = 32;  ///< pairs per batch
    double margin = 5.0;     ///< contrastive margin of the old task's loss
    uint64_t seed = 77;
  };

  /// Estimates the diagonal Fisher of the contrastive loss on `old_data`
  /// and snapshots the current parameters as theta*. `net` is forwarded and
  /// backwarded during estimation but its parameters are left unchanged.
  static Result<EwcRegularizer> Estimate(nn::Sequential* net,
                                         const sensors::FeatureDataset& old_data,
                                         const Options& options);

  /// Adds lambda * F (theta - theta*) to `net`'s gradient buffers. Call
  /// between the task-loss backward and the optimizer step. `net` must have
  /// the same parameter shapes as at estimation time.
  void AccumulatePenaltyGradient(nn::Sequential* net, double lambda) const;

  /// Current penalty value (for telemetry).
  double Penalty(nn::Sequential* net, double lambda) const;

  size_t num_parameters() const;

 private:
  EwcRegularizer() = default;

  std::vector<Matrix> fisher_;      ///< diagonal Fisher per parameter tensor
  std::vector<Matrix> anchor_;      ///< theta*
};

}  // namespace magneto::learn

#endif  // MAGNETO_LEARN_EWC_H_
