#ifndef MAGNETO_LEARN_PAIR_SAMPLER_H_
#define MAGNETO_LEARN_PAIR_SAMPLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "sensors/dataset.h"

namespace magneto::learn {

/// One batch of Siamese training pairs.
struct PairBatch {
  Matrix a;                   ///< batch x dim, left branch inputs
  Matrix b;                   ///< batch x dim, right branch inputs
  std::vector<uint8_t> same;  ///< 1 if a[i] and b[i] share a class
  size_t size() const { return same.size(); }
};

/// Draws balanced positive/negative pairs from a labeled dataset.
///
/// Positives pair two distinct windows of one activity; negatives pair
/// windows of two different activities. The 50/50 balance keeps the
/// contrastive loss from collapsing when class counts are skewed — which is
/// exactly the situation during an edge update, where the freshly recorded
/// activity briefly dominates the support set.
class PairSampler {
 public:
  /// `data` must contain at least 2 classes and 2 examples in some class.
  /// The sampler keeps a reference; `data` must outlive it.
  PairSampler(const sensors::FeatureDataset& data, uint64_t seed);

  /// Samples `batch_size` pairs (half positive, half negative when possible).
  PairBatch Sample(size_t batch_size);

  /// True if the dataset supports positive pairs (some class has >= 2
  /// examples) and negative pairs (>= 2 classes).
  bool CanSamplePositives() const { return !positive_classes_.empty(); }
  bool CanSampleNegatives() const { return class_indices_.size() >= 2; }

 private:
  const sensors::FeatureDataset& data_;
  Rng rng_;
  std::vector<sensors::ActivityId> classes_;
  /// Classes with >= 2 examples, precomputed so positive sampling is one
  /// uniform draw. Rejection-sampling over `classes_` instead is unboundedly
  /// slow in the normal mid-incremental-learning state where most classes
  /// are singletons (one freshly captured exemplar each).
  std::vector<sensors::ActivityId> positive_classes_;
  std::map<sensors::ActivityId, std::vector<size_t>> class_indices_;
};

}  // namespace magneto::learn

#endif  // MAGNETO_LEARN_PAIR_SAMPLER_H_
