#include "learn/siamese_trainer.h"

#include <chrono>
#include <cstring>
#include <map>
#include <memory>

#include "common/parallel.h"
#include "common/random.h"
#include "learn/pair_sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::learn {

namespace {

struct TrainerMetrics {
  obs::Counter* epochs = obs::Registry::Global().GetCounter("train.epochs");
  obs::Counter* steps = obs::Registry::Global().GetCounter("train.steps");
  obs::Histogram* epoch_ms = obs::Registry::Global().GetHistogram(
      "train.epoch_ms", obs::LatencyBucketsMs());
  // Where an epoch's time goes: pair sampling / batch assembly vs the
  // forward+backward passes vs the distillation term vs the optimizer.
  obs::Histogram* sample_ms = obs::Registry::Global().GetHistogram(
      "train.sample_ms", obs::LatencyBucketsMs());
  obs::Histogram* forward_backward_ms = obs::Registry::Global().GetHistogram(
      "train.forward_backward_ms", obs::LatencyBucketsMs());
  obs::Histogram* distill_ms = obs::Registry::Global().GetHistogram(
      "train.distill_ms", obs::LatencyBucketsMs());
  obs::Histogram* optimizer_ms = obs::Registry::Global().GetHistogram(
      "train.optimizer_ms", obs::LatencyBucketsMs());
  obs::Gauge* last_embedding_loss =
      obs::Registry::Global().GetGauge("train.last_embedding_loss");
  obs::Gauge* last_distill_loss =
      obs::Registry::Global().GetGauge("train.last_distill_loss");
};

TrainerMetrics& Metrics() {
  static TrainerMetrics* metrics = new TrainerMetrics;
  return *metrics;
}

using TrainClock = std::chrono::steady_clock;

double MsSince(TrainClock::time_point start) {
  return std::chrono::duration<double>(TrainClock::now() - start).count() *
         1e3;
}

// Rows per chunk when gathering batch rows: pure memcpy, so chunks need to
// be large for the dispatch to pay off.
constexpr size_t kGatherGrain = 256;

/// Copies the dataset rows at `indices` into a batch matrix.
Matrix GatherRows(const sensors::FeatureDataset& data,
                  const std::vector<size_t>& indices) {
  Matrix out(indices.size(), data.dim());
  ParallelFor(0, indices.size(), kGatherGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::memcpy(out.RowPtr(i), data.Row(indices[i]),
                  data.dim() * sizeof(float));
    }
  });
  return out;
}

Matrix GatherRows(const Matrix& source, const std::vector<size_t>& indices) {
  Matrix out(indices.size(), source.cols());
  ParallelFor(0, indices.size(), kGatherGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::memcpy(out.RowPtr(i), source.RowPtr(indices[i]),
                  source.cols() * sizeof(float));
    }
  });
  return out;
}

std::unique_ptr<nn::Optimizer> MakeOptimizer(const TrainOptions& options,
                                             nn::Sequential* net) {
  if (options.optimizer == OptimizerKind::kSgd) {
    nn::Sgd::Options sgd;
    sgd.learning_rate = options.learning_rate;
    sgd.momentum = 0.9;
    sgd.weight_decay = options.weight_decay;
    return std::make_unique<nn::Sgd>(net->Params(), net->Grads(), sgd);
  }
  nn::Adam::Options adam;
  adam.learning_rate = options.learning_rate;
  adam.weight_decay = options.weight_decay;
  return std::make_unique<nn::Adam>(net->Params(), net->Grads(), adam);
}

}  // namespace

Result<TrainReport> SiameseTrainer::Train(
    nn::Sequential* net, const sensors::FeatureDataset& data,
    const nn::Sequential* teacher,
    const sensors::FeatureDataset* distill_data,
    const EwcRegularizer* ewc) const {
  if (net == nullptr) return Status::InvalidArgument("net must not be null");
  if (data.empty()) return Status::InvalidArgument("training data is empty");
  if (data.size() < 2) {
    return Status::InvalidArgument(
        "training data has a single example; no pair of any kind exists");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  if (options_.epochs == 0) {
    return Status::InvalidArgument("epochs must be > 0");
  }
  const bool distill = teacher != nullptr;
  if (distill && (distill_data == nullptr || distill_data->empty())) {
    return Status::InvalidArgument(
        "distillation requires non-empty distill_data");
  }
  if (distill && options_.distill_weight <= 0.0) {
    return Status::InvalidArgument(
        "teacher given but distill_weight is not positive");
  }
  if (options_.ewc_weight > 0.0 && ewc == nullptr) {
    return Status::InvalidArgument(
        "ewc_weight is positive but no EwcRegularizer was given");
  }

  // The teacher is frozen: compute its targets once. Forward is const, so
  // no defensive clone is needed — the teacher weights are never touched.
  Matrix teacher_targets;
  if (distill) {
    nn::ForwardWorkspace teacher_ws;
    teacher_targets = teacher->Forward(distill_data->ToMatrix(), &teacher_ws);
  }

  const size_t pairs_per_epoch = options_.pairs_per_epoch > 0
                                     ? options_.pairs_per_epoch
                                     : 2 * data.size();
  const size_t steps_per_epoch =
      std::max<size_t>(1, (pairs_per_epoch + options_.batch_size - 1) /
                              options_.batch_size);

  Rng rng(options_.seed);
  PairSampler sampler(data, rng.engine()());
  std::unique_ptr<nn::Optimizer> optimizer = MakeOptimizer(options_, net);

  // One workspace for the whole run: activation buffers reach their
  // high-water shape in the first step and are reused from then on, and the
  // dropout mask stream advances across steps exactly as a layer-owned RNG
  // would.
  nn::ForwardWorkspace ws;

  // SupCon needs dense integer labels.
  std::vector<int> dense_labels;
  if (options_.embedding_loss == EmbeddingLoss::kSupCon) {
    std::map<sensors::ActivityId, int> remap;
    for (sensors::ActivityId id : data.Classes()) {
      const int next = static_cast<int>(remap.size());
      remap[id] = next;
    }
    dense_labels.reserve(data.size());
    for (sensors::ActivityId id : data.labels()) {
      dense_labels.push_back(remap[id]);
    }
  }

  obs::TraceSpan train_span("SiameseTrainer::Train");

  TrainReport report;
  report.epochs.reserve(options_.epochs);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("SiameseTrainer::Epoch");
    const auto epoch_start = TrainClock::now();
    // Per-phase wall time accumulated over the epoch's steps and recorded
    // once per epoch; per-step clock reads are cheap relative to a
    // forward/backward pass but per-step histogram records would not be.
    double sample_ms = 0.0;
    double forward_backward_ms = 0.0;
    double distill_ms = 0.0;
    double optimizer_ms = 0.0;
    EpochStats stats;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      optimizer->ZeroGrad();

      // --- embedding objective ---
      if (options_.embedding_loss == EmbeddingLoss::kPairwiseContrastive) {
        const auto sample_start = TrainClock::now();
        PairBatch batch = sampler.Sample(options_.batch_size);
        // One forward over [a; b] keeps the two branches weight-tied by
        // construction (a Siamese network is one network applied twice).
        Matrix stacked = VStack(batch.a, batch.b);
        sample_ms += MsSince(sample_start);
        const auto fb_start = TrainClock::now();
        const Matrix& emb = net->Forward(stacked, &ws, /*training=*/true);
        const size_t b = batch.size();
        Matrix emb_a = emb.RowSlice(0, b);
        Matrix emb_b = emb.RowSlice(b, 2 * b);
        nn::PairLossResult pair =
            nn::ContrastiveLoss(emb_a, emb_b, batch.same, options_.margin);
        net->Backward(VStack(pair.grad_a, pair.grad_b), &ws);
        forward_backward_ms += MsSince(fb_start);
        stats.embedding_loss += pair.loss;
      } else {
        const auto sample_start = TrainClock::now();
        std::vector<size_t> idx(options_.batch_size);
        std::vector<int> labels(options_.batch_size);
        for (size_t i = 0; i < idx.size(); ++i) {
          idx[i] = rng.Index(data.size());
          labels[i] = dense_labels[idx[i]];
        }
        Matrix x = GatherRows(data, idx);
        sample_ms += MsSince(sample_start);
        const auto fb_start = TrainClock::now();
        const Matrix& emb = net->Forward(x, &ws, /*training=*/true);
        nn::LossResult loss =
            nn::SupConLoss(emb, labels, options_.supcon_temperature);
        net->Backward(loss.grad, &ws);
        forward_backward_ms += MsSince(fb_start);
        stats.embedding_loss += loss.loss;
      }

      // --- distillation objective (anti-forgetting) ---
      if (distill) {
        const auto distill_start = TrainClock::now();
        const size_t b =
            std::min(options_.batch_size, distill_data->size());
        std::vector<size_t> idx(b);
        for (size_t i = 0; i < b; ++i) idx[i] = rng.Index(distill_data->size());
        Matrix x = GatherRows(*distill_data, idx);
        Matrix targets = GatherRows(teacher_targets, idx);
        const Matrix& student = net->Forward(x, &ws, /*training=*/true);
        nn::LossResult dl =
            options_.distillation == DistillationKind::kCosine
                ? nn::DistillationCosine(student, targets)
                : nn::DistillationMse(student, targets);
        dl.grad.Scale(static_cast<float>(options_.distill_weight));
        net->Backward(dl.grad, &ws);
        stats.distill_loss += options_.distill_weight * dl.loss;
        distill_ms += MsSince(distill_start);
      }

      // --- EWC penalty (optional second anti-forgetting mechanism) ---
      if (ewc != nullptr && options_.ewc_weight > 0.0) {
        ewc->AccumulatePenaltyGradient(net, options_.ewc_weight);
      }

      const auto optimizer_start = TrainClock::now();
      optimizer->Step();
      optimizer_ms += MsSince(optimizer_start);
      Metrics().steps->Increment();
    }
    stats.embedding_loss /= static_cast<double>(steps_per_epoch);
    stats.distill_loss /= static_cast<double>(steps_per_epoch);
    report.epochs.push_back(stats);
    Metrics().epochs->Increment();
    Metrics().epoch_ms->Record(MsSince(epoch_start));
    Metrics().sample_ms->Record(sample_ms);
    Metrics().forward_backward_ms->Record(forward_backward_ms);
    if (distill) Metrics().distill_ms->Record(distill_ms);
    Metrics().optimizer_ms->Record(optimizer_ms);
    Metrics().last_embedding_loss->Set(stats.embedding_loss);
    Metrics().last_distill_loss->Set(stats.distill_loss);
    if (options_.lr_decay != 1.0) {
      if (auto* adam = dynamic_cast<nn::Adam*>(optimizer.get())) {
        adam->set_learning_rate(adam->learning_rate() * options_.lr_decay);
      } else if (auto* sgd = dynamic_cast<nn::Sgd*>(optimizer.get())) {
        sgd->set_learning_rate(sgd->learning_rate() * options_.lr_decay);
      }
    }
  }
  return report;
}

}  // namespace magneto::learn
