#include "learn/metrics.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace magneto::learn {

void ConfusionMatrix::Add(sensors::ActivityId truth,
                          sensors::ActivityId predicted) {
  ++counts_[{truth, predicted}];
  ++truth_totals_[truth];
  ++predicted_totals_[predicted];
  ++total_;
}

size_t ConfusionMatrix::Count(sensors::ActivityId truth,
                              sensors::ActivityId predicted) const {
  auto it = counts_.find({truth, predicted});
  return it == counts_.end() ? 0 : it->second;
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (const auto& [truth, n] : truth_totals_) {
    correct += Count(truth, truth);
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Recall(sensors::ActivityId cls) const {
  auto it = truth_totals_.find(cls);
  if (it == truth_totals_.end() || it->second == 0) return 0.0;
  return static_cast<double>(Count(cls, cls)) /
         static_cast<double>(it->second);
}

double ConfusionMatrix::Precision(sensors::ActivityId cls) const {
  auto it = predicted_totals_.find(cls);
  if (it == predicted_totals_.end() || it->second == 0) return 0.0;
  return static_cast<double>(Count(cls, cls)) /
         static_cast<double>(it->second);
}

double ConfusionMatrix::F1(sensors::ActivityId cls) const {
  const double p = Precision(cls);
  const double r = Recall(cls);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  if (truth_totals_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [cls, n] : truth_totals_) sum += F1(cls);
  return sum / static_cast<double>(truth_totals_.size());
}

std::map<sensors::ActivityId, double> ConfusionMatrix::PerClassRecall() const {
  std::map<sensors::ActivityId, double> out;
  for (const auto& [cls, n] : truth_totals_) out[cls] = Recall(cls);
  return out;
}

std::vector<sensors::ActivityId> ConfusionMatrix::Classes() const {
  std::vector<sensors::ActivityId> out;
  for (const auto& [cls, n] : truth_totals_) out.push_back(cls);
  return out;
}

std::string ConfusionMatrix::ToString(
    const sensors::ActivityRegistry& registry) const {
  // Columns cover every class that appears as truth or prediction.
  std::set<sensors::ActivityId> all;
  for (const auto& [cls, n] : truth_totals_) all.insert(cls);
  for (const auto& [cls, n] : predicted_totals_) all.insert(cls);

  auto name_of = [&](sensors::ActivityId id) {
    auto name = registry.NameOf(id);
    return name.ok() ? name.value() : ("#" + std::to_string(id));
  };

  std::ostringstream os;
  os << std::left << std::setw(14) << "truth\\pred";
  for (sensors::ActivityId c : all) os << std::setw(12) << name_of(c);
  os << std::setw(8) << "recall" << "\n";
  for (sensors::ActivityId t : all) {
    os << std::left << std::setw(14) << name_of(t);
    for (sensors::ActivityId p : all) os << std::setw(12) << Count(t, p);
    os << std::fixed << std::setprecision(3) << Recall(t) << "\n";
  }
  os << "accuracy=" << std::fixed << std::setprecision(4) << Accuracy()
     << " macro_f1=" << MacroF1() << " n=" << total_ << "\n";
  return os.str();
}

ForgettingReport ComputeForgetting(const ConfusionMatrix& before,
                                   const ConfusionMatrix& after,
                                   sensors::ActivityId new_class) {
  ForgettingReport report;
  const std::vector<sensors::ActivityId> old_classes = before.Classes();
  if (!old_classes.empty()) {
    double forget = 0.0, acc_after = 0.0, acc_before = 0.0;
    for (sensors::ActivityId cls : old_classes) {
      const double rb = before.Recall(cls);
      const double ra = after.Recall(cls);
      forget += std::max(0.0, rb - ra);
      acc_after += ra;
      acc_before += rb;
    }
    const double n = static_cast<double>(old_classes.size());
    report.mean_forgetting = forget / n;
    report.old_class_accuracy_after = acc_after / n;
    report.old_class_accuracy_before = acc_before / n;
  }
  report.new_class_accuracy = after.Recall(new_class);
  return report;
}

}  // namespace magneto::learn
