#ifndef MAGNETO_LEARN_METRICS_H_
#define MAGNETO_LEARN_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "sensors/activity.h"

namespace magneto::learn {

/// Multi-class confusion matrix keyed by activity id (so classes added
/// incrementally on the edge slot in without re-indexing).
class ConfusionMatrix {
 public:
  void Add(sensors::ActivityId truth, sensors::ActivityId predicted);

  size_t total() const { return total_; }
  size_t Count(sensors::ActivityId truth, sensors::ActivityId predicted) const;

  /// Overall fraction correct; 0 when empty.
  double Accuracy() const;

  /// Recall of one class; 0 if the class never appears as truth.
  double Recall(sensors::ActivityId cls) const;

  /// Precision of one class; 0 if the class is never predicted.
  double Precision(sensors::ActivityId cls) const;

  /// F1 of one class (harmonic mean of precision and recall).
  double F1(sensors::ActivityId cls) const;

  /// Unweighted mean F1 over all truth classes.
  double MacroF1() const;

  /// Per-class recall map (the "did it forget class X?" readout).
  std::map<sensors::ActivityId, double> PerClassRecall() const;

  /// Truth classes seen, ascending.
  std::vector<sensors::ActivityId> Classes() const;

  /// Multi-line table using `registry` for names.
  std::string ToString(const sensors::ActivityRegistry& registry) const;

 private:
  std::map<std::pair<sensors::ActivityId, sensors::ActivityId>, size_t>
      counts_;
  std::map<sensors::ActivityId, size_t> truth_totals_;
  std::map<sensors::ActivityId, size_t> predicted_totals_;
  size_t total_ = 0;
};

/// Catastrophic-forgetting readout for one incremental update: per-class
/// accuracy before vs after the update, over the classes that existed before.
struct ForgettingReport {
  /// Mean over old classes of max(0, recall_before - recall_after).
  double mean_forgetting = 0.0;
  /// Mean recall over old classes after the update.
  double old_class_accuracy_after = 0.0;
  /// Mean recall over old classes before the update.
  double old_class_accuracy_before = 0.0;
  /// Recall of the newly added class after the update.
  double new_class_accuracy = 0.0;
};

/// Computes the forgetting report from before/after evaluations.
/// `before` must have been evaluated on the old classes only; `after` on old
/// + new. `new_class` identifies the freshly learned activity.
ForgettingReport ComputeForgetting(const ConfusionMatrix& before,
                                   const ConfusionMatrix& after,
                                   sensors::ActivityId new_class);

}  // namespace magneto::learn

#endif  // MAGNETO_LEARN_METRICS_H_
