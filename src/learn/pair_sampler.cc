#include "learn/pair_sampler.h"

#include <cstring>

namespace magneto::learn {

PairSampler::PairSampler(const sensors::FeatureDataset& data, uint64_t seed)
    : data_(data), rng_(seed) {
  MAGNETO_CHECK(!data.empty());
  for (size_t i = 0; i < data.size(); ++i) {
    class_indices_[data.Label(i)].push_back(i);
  }
  for (const auto& [label, indices] : class_indices_) {
    classes_.push_back(label);
    if (indices.size() >= 2) positive_classes_.push_back(label);
  }
}

PairBatch PairSampler::Sample(size_t batch_size) {
  MAGNETO_CHECK(batch_size > 0);
  // A dataset with a single example admits no pair of either kind; sampling
  // would spin forever. Callers validate via CanSample*().
  MAGNETO_CHECK(CanSamplePositives() || CanSampleNegatives());
  const size_t dim = data_.dim();
  PairBatch batch;
  batch.a.Reset(batch_size, dim);
  batch.b.Reset(batch_size, dim);
  batch.same.resize(batch_size);

  for (size_t i = 0; i < batch_size; ++i) {
    // Alternate positive / negative for an exact 50/50 split, falling back
    // to whichever kind is available in degenerate datasets.
    bool want_positive = (i % 2 == 0);
    if (want_positive && !CanSamplePositives()) want_positive = false;
    if (!want_positive && !CanSampleNegatives()) want_positive = true;

    size_t ia = 0, ib = 0;
    if (want_positive) {
      // One uniform draw over the precomputed pair-capable classes. When
      // every class is pair-capable this consumes the same RNG stream as the
      // old rejection loop (which then never rejected), so seeded training
      // runs are unchanged; when most classes are singletons it replaces an
      // expected O(num_classes / num_pair_capable) spin per pair.
      const sensors::ActivityId cls =
          positive_classes_[rng_.Index(positive_classes_.size())];
      const std::vector<size_t>& idx = class_indices_[cls];
      ia = idx[rng_.Index(idx.size())];
      do {
        ib = idx[rng_.Index(idx.size())];
      } while (ib == ia);
      batch.same[i] = 1;
    } else {
      const size_t c1 = rng_.Index(classes_.size());
      size_t c2;
      do {
        c2 = rng_.Index(classes_.size());
      } while (c2 == c1);
      const std::vector<size_t>& idx1 = class_indices_[classes_[c1]];
      const std::vector<size_t>& idx2 = class_indices_[classes_[c2]];
      ia = idx1[rng_.Index(idx1.size())];
      ib = idx2[rng_.Index(idx2.size())];
      batch.same[i] = 0;
    }
    std::memcpy(batch.a.RowPtr(i), data_.Row(ia), dim * sizeof(float));
    std::memcpy(batch.b.RowPtr(i), data_.Row(ib), dim * sizeof(float));
  }
  return batch;
}

}  // namespace magneto::learn
