#include "learn/ewc.h"

#include "learn/pair_sampler.h"
#include "nn/loss.h"

namespace magneto::learn {

Result<EwcRegularizer> EwcRegularizer::Estimate(
    nn::Sequential* net, const sensors::FeatureDataset& old_data,
    const Options& options) {
  if (net == nullptr) return Status::InvalidArgument("net must not be null");
  if (old_data.empty()) {
    return Status::InvalidArgument("old-task data is empty");
  }
  if (options.batches == 0 || options.batch_size == 0) {
    return Status::InvalidArgument("batches and batch_size must be > 0");
  }

  EwcRegularizer ewc;
  std::vector<Matrix*> params = net->Params();
  std::vector<Matrix*> grads = net->Grads();
  ewc.anchor_.reserve(params.size());
  ewc.fisher_.reserve(params.size());
  for (Matrix* p : params) {
    ewc.anchor_.push_back(*p);
    ewc.fisher_.emplace_back(p->rows(), p->cols());
  }

  // Empirical Fisher: mean of squared *per-sample* gradients. Squaring a
  // batch-aggregated gradient instead couples the estimate to batch_size
  // (the cross-sample terms of (sum_i g_i)^2 scale with the batch), which
  // silently rescaled the effective ewc_weight whenever the batch size
  // changed — so each pair gets its own forward/backward here.
  PairSampler sampler(old_data, options.seed);
  size_t total_pairs = 0;
  std::vector<uint8_t> same_one(1);
  // Fisher wants inference behaviour (dropout off) but still needs the
  // backward pass — exactly the training=false, record=true split.
  nn::ForwardWorkspace ws;
  for (size_t b = 0; b < options.batches; ++b) {
    PairBatch batch = sampler.Sample(options.batch_size);
    for (size_t pair = 0; pair < batch.size(); ++pair) {
      net->ZeroGrad();
      Matrix stacked =
          VStack(batch.a.RowSlice(pair, pair + 1),
                 batch.b.RowSlice(pair, pair + 1));
      const Matrix& emb =
          net->Forward(stacked, &ws, /*training=*/false, /*record=*/true);
      same_one[0] = batch.same[pair];
      nn::PairLossResult loss =
          nn::ContrastiveLoss(emb.RowSlice(0, 1), emb.RowSlice(1, 2),
                              same_one, options.margin);
      net->Backward(VStack(loss.grad_a, loss.grad_b), &ws);
      for (size_t i = 0; i < grads.size(); ++i) {
        const Matrix& g = *grads[i];
        Matrix& f = ewc.fisher_[i];
        for (size_t j = 0; j < g.size(); ++j) {
          f.data()[j] += g.data()[j] * g.data()[j];
        }
      }
      ++total_pairs;
    }
  }
  net->ZeroGrad();
  const float inv_pairs = 1.0f / static_cast<float>(total_pairs);
  for (Matrix& f : ewc.fisher_) f.Scale(inv_pairs);
  return ewc;
}

void EwcRegularizer::AccumulatePenaltyGradient(nn::Sequential* net,
                                               double lambda) const {
  std::vector<Matrix*> params = net->Params();
  std::vector<Matrix*> grads = net->Grads();
  MAGNETO_CHECK(params.size() == fisher_.size());
  const float l = static_cast<float>(lambda);
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& p = *params[i];
    const Matrix& f = fisher_[i];
    const Matrix& a = anchor_[i];
    Matrix& g = *grads[i];
    MAGNETO_CHECK(p.SameShape(f));
    for (size_t j = 0; j < p.size(); ++j) {
      g.data()[j] += l * f.data()[j] * (p.data()[j] - a.data()[j]);
    }
  }
}

double EwcRegularizer::Penalty(nn::Sequential* net, double lambda) const {
  std::vector<Matrix*> params = net->Params();
  MAGNETO_CHECK(params.size() == fisher_.size());
  double penalty = 0.0;
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& p = *params[i];
    const Matrix& f = fisher_[i];
    const Matrix& a = anchor_[i];
    for (size_t j = 0; j < p.size(); ++j) {
      const double d = p.data()[j] - a.data()[j];
      penalty += f.data()[j] * d * d;
    }
  }
  return 0.5 * lambda * penalty;
}

size_t EwcRegularizer::num_parameters() const {
  size_t n = 0;
  for (const Matrix& f : fisher_) n += f.size();
  return n;
}

}  // namespace magneto::learn
