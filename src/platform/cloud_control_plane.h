#ifndef MAGNETO_PLATFORM_CLOUD_CONTROL_PLANE_H_
#define MAGNETO_PLATFORM_CLOUD_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/model_bundle.h"
#include "platform/bundle_transport.h"
#include "platform/cloud_server.h"
#include "platform/network_link.h"

namespace magneto::platform {

using TenantId = uint32_t;
using DeviceId = uint64_t;

/// One published model version of a tenant, in both wire encodings. Built
/// once (under the tenant registry lock) and immutable thereafter: every
/// in-flight delivery pins the artifact with a shared_ptr, so publishing new
/// versions never invalidates bytes already on the wire — the version-skew
/// rule that lets old and new bundles coexist during a rollout.
struct BundleArtifact {
  uint64_t version = 0;
  std::string fp32_bytes;  ///< wire v2, full-precision
  std::string int8_bytes;  ///< wire v3, quantized (~4x smaller)

  const std::string& bytes(bool quantized) const {
    return quantized ? int8_bytes : fp32_bytes;
  }
};

/// The deterministic traffic model of one simulated fleet. Every per-device
/// behaviour (arrival time, link fault rates, churn, encoding preference) is
/// a pure function of (seed, device id), so a fleet run is reproducible at
/// any worker count and any shard count.
struct FleetSpec {
  size_t num_devices = 10'000;
  uint64_t seed = 1;

  /// Heterogeneous arrival rates: devices split into eager / standard /
  /// laggard classes whose exponential arrival means are this base value
  /// x1, x4, and x16 respectively. Simulated seconds.
  double mean_arrival_s = 2.0;

  /// Fraction of devices on lossy links, and the fault rates those links
  /// inject per chunk frame (corruption splits evenly into truncations and
  /// bit-flips, like the CLI's --fault-corrupt-rate).
  double faulty_fraction = 0.2;
  double drop_rate = 0.2;
  double corrupt_rate = 0.05;

  /// Fraction of devices that churn: disconnect after `churn_after_chunks`
  /// chunks of their first session, then reconnect after
  /// `reconnect_delay_s` (simulated) and resume from the last good chunk.
  double churn_fraction = 0.1;
  size_t churn_after_chunks = 2;
  double reconnect_delay_s = 0.5;

  /// Fraction of devices provisioned with the wire-v3 int8 encoding (the
  /// bandwidth-constrained cohort); the rest take fp32 v2.
  double quantized_fraction = 0.5;

  /// Link shape shared by every device (per-device variation comes from the
  /// fault injector, not the latency/bandwidth model).
  double rtt_ms = 50.0;
  double bandwidth_mbps = 10.0;

  /// Every `decode_check_every`-th device fully deserializes its delivered
  /// bundle (`ModelBundle::FromString`) instead of only CRC/byte-comparing
  /// it — an end-to-end decode probe that stays affordable at 10^6 devices.
  /// 0 disables the probe.
  size_t decode_check_every = 256;
};

/// Staged (canary) rollout policy. `stages` are cumulative fleet fractions;
/// each stage re-provisions the devices whose deterministic hash bucket
/// falls inside the new slice. After every stage the plane compares the
/// stage's failure rate against `halt_failure_rate` and aborts the rollout
/// (state kHalted) when it is exceeded — devices not yet updated simply
/// keep the old version (version skew is a supported steady state).
struct RolloutPolicy {
  std::vector<double> stages = {0.01, 0.10, 0.50, 1.0};
  double halt_failure_rate = 0.25;
  /// A stage is only judged once it targeted at least this many devices
  /// (a 1-device canary failing should not read as a 100% failure rate).
  size_t min_sample = 8;
};

/// What provisioning one device cost and how it went.
struct ProvisionOutcome {
  bool installed = false;
  bool failed = false;    ///< permanently failed (reconnect budget exhausted)
  bool churned = false;   ///< disconnected mid-transfer at least once
  bool quantized = false; ///< took the wire-v3 int8 encoding
  size_t resumed_sessions = 0;  ///< sessions that started at chunk > 0
  size_t sessions = 0;
  size_t wire_bytes = 0;
  double sim_completion_s = 0.0;  ///< arrival -> installed, simulated
};

/// Aggregate of one `ProvisionFleet` (or one rollout stage) run.
struct FleetReport {
  uint64_t version = 0;  ///< version the fleet converged to
  size_t devices = 0;
  size_t provisioned = 0;
  size_t failed = 0;
  size_t resumed_sessions = 0;
  size_t churned_devices = 0;
  size_t fp32_devices = 0;
  size_t int8_devices = 0;
  size_t wire_bytes = 0;

  double wall_seconds = 0.0;  ///< real time for the whole concurrent run
  double devices_per_second = 0.0;

  /// Simulated per-device completion times (arrival -> installed), sorted
  /// ascending — the rollout-completion curve. Failed devices are excluded.
  std::vector<double> completion_sorted_s;
  /// Upper completion time at which a fraction `q` of successful devices
  /// were provisioned (0 when none were).
  double CompletionQuantile(double q) const;
};

enum class RolloutState : uint8_t { kCompleted = 0, kHalted = 1 };
const char* RolloutStateName(RolloutState state);

/// One stage of a staged rollout, with the version-skew evidence: how many
/// devices were still on an older version vs already on the target when the
/// stage began.
struct StageRecord {
  double fraction = 0.0;  ///< cumulative fleet fraction this stage covers
  size_t targeted = 0;
  size_t updated = 0;
  size_t failed = 0;
  size_t skew_old_before = 0;  ///< devices on a version != target at start
  size_t skew_new_before = 0;  ///< devices already on target at start
  double failure_rate = 0.0;
  double sim_end_s = 0.0;  ///< simulated time when the stage finished
  FleetReport report;
};

struct RolloutReport {
  uint64_t to_version = 0;
  RolloutState state = RolloutState::kCompleted;
  std::vector<StageRecord> stage_records;
  size_t devices_updated = 0;
  size_t devices_failed = 0;
  size_t devices_pinned = 0;    ///< skipped because pinned to a version
  size_t devices_skipped = 0;   ///< already on target / previously failed
  size_t resumed_sessions = 0;
  double sim_completion_s = 0.0;
  double wall_seconds = 0.0;
};

/// Sharded, multi-tenant control plane in front of `CloudServer`: the cloud
/// half of the ROADMAP's "serve a simulated million-device fleet" item.
///
/// ## Tenancy & sharding
///
/// Each tenant owns an immutable, versioned artifact registry (fp32 wire-v2
/// and int8 wire-v3 encodings of every published bundle) plus a device table
/// split across `num_shards` shards. A device id hashes to one shard; shard
/// mutexes are held only for table lookups/updates, never across a delivery,
/// so provisioning workers on different devices contend only when their
/// devices collide on a shard.
///
/// ## Provisioning
///
/// `ProvisionFleet` runs the deterministic traffic generator of a
/// `FleetSpec`: `provision_workers` threads drain the arrival-ordered device
/// list, each delivering the device's preferred encoding over its own
/// `NetworkLink` (per-device fault injector) via the chunked
/// `BundleTransport` — retries within a session, churn + reconnect + resume
/// across sessions, bounded by `max_reconnects`. Every outcome is a pure
/// function of (spec.seed, device id), so fleet-level counters and simulated
/// completion curves are bit-stable across worker counts.
///
/// ## Rollout state machine
///
///   kStaging --(stage ok)--> next stage --(last stage ok)--> kCompleted
///       \--(failure rate > halt threshold)--> kHalted
///
/// `RunRollout` walks `RolloutPolicy::stages`; each stage re-provisions the
/// hash-bucket slice of the fleet onto `to_version`. Old and new versions
/// are in flight simultaneously (each delivery pins its artifact), devices
/// pinned via `PinDevice` are never moved, and a halted rollout leaves the
/// remaining devices serving the old version indefinitely — mixed-version
/// fleets are the normal operating mode, not an error.
///
/// ## Thread safety
///
/// All public methods are safe to call concurrently. Registry reads take the
/// tenant mutex briefly to copy a shared_ptr; artifacts themselves are
/// immutable. `ProvisionFleet`/`RunRollout` may run concurrently for
/// different tenants; concurrent runs for the same tenant are serialized by
/// the tenant's fleet mutex (the device table is one fleet's ground truth).
class CloudControlPlane {
 public:
  struct Options {
    size_t num_shards = 16;
    size_t provision_workers = 8;
    /// Reconnect budget per device job: a delivery whose session dies this
    /// many times (beyond churn disconnects, which always reconnect) marks
    /// the device failed.
    size_t max_reconnects = 8;
    TransportOptions transport;
  };

  CloudControlPlane() : CloudControlPlane(Options{}) {}
  explicit CloudControlPlane(Options options);

  // -- Tenancy & registry -----------------------------------------------------

  /// Registers a tenant backed by `server` (which must be pretrained) and
  /// publishes its bundle as version 1 in both encodings. The server is only
  /// read during this call; it is not retained.
  Result<TenantId> RegisterTenant(std::string name, const CloudServer& server);

  /// Publishes a new version of `tenant`'s model from an fp32 (wire v2)
  /// bundle; the int8 wire-v3 encoding is built here, once, and both become
  /// immutable. Returns the new version number (monotonic per tenant).
  Result<uint64_t> PublishVersion(TenantId tenant,
                                  const core::ModelBundle& bundle);
  Result<uint64_t> PublishVersionBytes(TenantId tenant,
                                       const std::string& fp32_bytes);

  Result<std::shared_ptr<const BundleArtifact>> Artifact(
      TenantId tenant, uint64_t version) const;
  Result<uint64_t> LatestVersion(TenantId tenant) const;
  size_t NumTenants() const;

  // -- Fleet provisioning -----------------------------------------------------

  /// Provisions `spec.num_devices` simulated devices of `tenant` onto the
  /// latest published version. Devices persist in the tenant's shards, so a
  /// later `RunRollout` moves this same fleet.
  Result<FleetReport> ProvisionFleet(TenantId tenant, const FleetSpec& spec);

  /// Staged rollout of the fleet provisioned by the last `ProvisionFleet`
  /// onto `to_version`. `spec` must be the same traffic model (it determines
  /// per-device behaviour); the device population is taken from the shards.
  Result<RolloutReport> RunRollout(TenantId tenant, uint64_t to_version,
                                   const RolloutPolicy& policy,
                                   const FleetSpec& spec);

  // -- Device state -----------------------------------------------------------

  /// Pins `device` to `version`: rollouts skip it until unpinned (pass 0).
  Status PinDevice(TenantId tenant, DeviceId device, uint64_t version);

  /// Installed-version histogram over the tenant's devices — the version-skew
  /// observable (a mid-rollout fleet shows several nonzero buckets).
  Result<std::map<uint64_t, size_t>> VersionCounts(TenantId tenant) const;
  Result<uint64_t> InstalledVersion(TenantId tenant, DeviceId device) const;
  Result<size_t> DeviceCount(TenantId tenant) const;

 private:
  struct DeviceState {
    uint64_t installed_version = 0;  ///< 0 = never provisioned
    uint64_t pinned_version = 0;     ///< 0 = unpinned
    bool quantized = false;
    bool failed = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<DeviceId, DeviceState> devices;
  };

  struct Tenant {
    std::string name;
    mutable std::mutex registry_mu;  ///< guards `versions` (append-only)
    std::vector<std::shared_ptr<const BundleArtifact>> versions;
    std::mutex fleet_mu;  ///< serializes ProvisionFleet/RunRollout
    std::vector<std::unique_ptr<Shard>> shards;
    size_t fleet_size = 0;  ///< devices provisioned by the last fleet run
  };

  Tenant* FindTenant(TenantId tenant) const;
  Shard& ShardOf(Tenant& tenant, DeviceId device) const;

  /// Delivers `artifact` to one device (the churn / reconnect / resume loop)
  /// and updates its shard entry. Runs on a provisioning worker.
  ProvisionOutcome ProvisionDevice(
      Tenant& tenant, const std::shared_ptr<const BundleArtifact>& artifact,
      const FleetSpec& spec, DeviceId device, double arrival_s);

  /// Runs `fn(i)` for i in [0, n) on up to `provision_workers` threads.
  void RunJobs(size_t n, const std::function<void(size_t)>& fn) const;

  /// Aggregates per-device outcomes into a FleetReport (and the cloud.*
  /// metrics) after a concurrent run.
  FleetReport Aggregate(uint64_t version,
                        const std::vector<ProvisionOutcome>& outcomes,
                        double wall_seconds) const;

  Options options_;
  mutable std::mutex tenants_mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_CLOUD_CONTROL_PLANE_H_
