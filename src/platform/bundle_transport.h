#ifndef MAGNETO_PLATFORM_BUNDLE_TRANSPORT_H_
#define MAGNETO_PLATFORM_BUNDLE_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "platform/network_link.h"

namespace magneto::platform {

/// Tunables of the chunked transfer protocol.
struct TransportOptions {
  size_t chunk_bytes = 4096;  ///< payload bytes per chunk frame

  /// Bounded retries: a chunk that fails this many times in a row aborts the
  /// delivery with kResourceExhausted.
  size_t max_attempts_per_chunk = 16;

  /// Deterministic exponential backoff (simulated seconds) between attempts:
  /// wait = min(initial * multiplier^(attempt-1), max) * (1 + jitter), where
  /// jitter is uniform in [0, jitter_fraction) from `jitter_seed`.
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 2.0;
  double jitter_fraction = 0.1;
  uint64_t jitter_seed = 1;
};

/// What one delivery cost and how it went.
struct TransportReport {
  size_t payload_bytes = 0;  ///< bytes the caller asked to deliver
  size_t wire_bytes = 0;     ///< bytes put on the wire (incl. headers, retries)
  size_t chunks = 0;
  size_t attempts = 0;  ///< total chunk send attempts
  size_t retries = 0;   ///< attempts beyond the first per chunk
  bool delivered = false;

  double seconds = 0.0;          ///< simulated end-to-end delivery latency
  double backoff_seconds = 0.0;  ///< portion of `seconds` spent backing off

  /// Attempts per chunk, in order — the resume contract: a fault on chunk k
  /// bumps only `chunk_attempts[k]`; chunks before k are never re-sent.
  std::vector<size_t> chunk_attempts;

  /// Caller-payload bytes per simulated second of delivery.
  double goodput_bytes_per_s() const {
    return seconds > 0.0 ? static_cast<double>(payload_bytes) / seconds : 0.0;
  }
};

/// Fault-tolerant cloud->edge delivery of a serialized bundle (§3.2's one
/// artifact) over a lossy `NetworkLink`.
///
/// The payload is split into fixed-size chunks, each framed as
///   u32 magic "MCNK" | u32 chunk_index | u32 total_chunks |
///   u64 total_payload_bytes | u64 chunk_payload_bytes | payload |
///   u32 CRC-32(payload)
/// The receiver validates frame structure and per-chunk CRC; any fault
/// (drop, truncation, bit-flip — anywhere in the frame, header included)
/// fails that attempt only. The sender backs off deterministically and
/// re-sends the *same* chunk: delivery resumes from the last good chunk,
/// never from chunk 0. After reassembly the whole payload is CRC-verified
/// against the sender's copy, so a successful `Deliver` is byte-identical.
///
/// Timing model: chunk 0 and every retry pay the link's one-way latency
/// (stream [re-]establishment); back-to-back chunks on a healthy stream pay
/// serialization time only. Acks ride the return path implicitly — no
/// explicit uplink frames, so a downlink delivery stays downlink-only in the
/// privacy ledger.
class BundleTransport {
 public:
  BundleTransport(NetworkLink* link, TransportOptions options);

  /// Delivers `payload` over the link; returns the reassembled, CRC-verified
  /// receiver copy, or kResourceExhausted once a chunk exceeds its retry
  /// budget. `report()` is valid (and partially filled) either way.
  Result<std::string> Deliver(Direction direction, PayloadKind kind,
                              const std::string& payload);

  const TransportReport& report() const { return report_; }
  const TransportOptions& options() const { return options_; }

  /// Backoff before attempt `attempt` (1-based count of failures so far),
  /// jitter included. Exposed for tests and latency budgeting.
  double BackoffSeconds(size_t attempt);

 private:
  NetworkLink* link_;
  TransportOptions options_;
  TransportReport report_;
  Rng jitter_rng_;
};

/// Builds one chunk frame (see the format above).
std::string EncodeChunkFrame(uint32_t index, uint32_t total_chunks,
                             uint64_t total_payload_bytes,
                             const std::string& chunk_payload);

/// Receiver-side validation: parses `frame`, checks indices against what the
/// receiver expects next, and verifies the per-chunk CRC. Returns the chunk
/// payload or kCorruption.
Result<std::string> DecodeChunkFrame(const std::string& frame,
                                     uint32_t expected_index,
                                     uint32_t expected_total,
                                     uint64_t expected_payload_bytes);

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_BUNDLE_TRANSPORT_H_
