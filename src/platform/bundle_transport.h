#ifndef MAGNETO_PLATFORM_BUNDLE_TRANSPORT_H_
#define MAGNETO_PLATFORM_BUNDLE_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "platform/network_link.h"

namespace magneto::platform {

/// Tunables of the chunked transfer protocol.
struct TransportOptions {
  size_t chunk_bytes = 4096;  ///< payload bytes per chunk frame

  /// Bounded retries: a chunk that fails this many times in a row aborts the
  /// delivery with kResourceExhausted.
  size_t max_attempts_per_chunk = 16;

  /// Deterministic exponential backoff (simulated seconds) between attempts:
  /// wait = min(initial * multiplier^(attempt-1), max) * (1 + jitter), where
  /// jitter is uniform in [0, jitter_fraction) from `jitter_seed`.
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 2.0;
  double jitter_fraction = 0.1;
  uint64_t jitter_seed = 1;

  /// Chunks deliverable in one `Deliver` session before the (simulated)
  /// connection drops; 0 = unlimited. The fleet simulator uses this to model
  /// a device churning mid-transfer: `Deliver` returns Ok with the partial
  /// suffix and `report().next_chunk < report().total_chunks`, and the
  /// caller reconnects later with `resume_from_chunk = next_chunk`.
  size_t session_chunk_budget = 0;
};

/// What one delivery session cost and how it went.
struct TransportReport {
  size_t payload_bytes = 0;  ///< bytes the caller asked to deliver
  size_t wire_bytes = 0;     ///< bytes put on the wire (incl. headers, retries)
  size_t chunks = 0;    ///< chunks validated by the receiver this session
  size_t attempts = 0;  ///< total chunk send attempts
  size_t retries = 0;   ///< attempts beyond the first per chunk
  /// True once the *whole payload* has been delivered by this session, i.e.
  /// the session started at chunk 0 and reached `total_chunks`. A resumed or
  /// budget-limited session that ends cleanly but covers only a sub-range
  /// leaves this false; the caller owns cross-session reassembly.
  bool delivered = false;

  double seconds = 0.0;          ///< simulated end-to-end delivery latency
  double backoff_seconds = 0.0;  ///< portion of `seconds` spent backing off

  /// Chunking of the *full* payload this session is part of, and where the
  /// next session should resume: `first_chunk` is what the caller passed as
  /// `resume_from_chunk`, `next_chunk` is the first chunk NOT yet delivered
  /// (== total_chunks once everything arrived).
  uint32_t first_chunk = 0;
  uint32_t next_chunk = 0;
  uint32_t total_chunks = 0;

  /// Populated only when `Deliver` aborts with kResourceExhausted: the
  /// receiver-validated payload bytes that DID arrive before the abort, in
  /// chunk order, so a reconnecting caller never re-pays for them. Clean
  /// sessions return their bytes as `Deliver`'s value and leave this empty.
  std::string partial;

  /// Attempts per chunk of this session, indexed from `first_chunk` — the
  /// resume contract: a fault on chunk k bumps only
  /// `chunk_attempts[k - first_chunk]`; chunks before k are never re-sent.
  std::vector<size_t> chunk_attempts;

  /// Caller-payload bytes per simulated second of delivery.
  double goodput_bytes_per_s() const {
    return seconds > 0.0 ? static_cast<double>(payload_bytes) / seconds : 0.0;
  }
};

/// Fault-tolerant cloud->edge delivery of a serialized bundle (§3.2's one
/// artifact) over a lossy `NetworkLink`.
///
/// The payload is split into fixed-size chunks, each framed as
///   u32 magic "MCNK" | u32 chunk_index | u32 total_chunks |
///   u64 total_payload_bytes | u64 chunk_payload_bytes | payload |
///   u32 CRC-32(payload)
/// The receiver validates frame structure and per-chunk CRC; any fault
/// (drop, truncation, bit-flip — anywhere in the frame, header included)
/// fails that attempt only. The sender backs off deterministically and
/// re-sends the *same* chunk: delivery resumes from the last good chunk,
/// never from chunk 0. After reassembly the whole payload is CRC-verified
/// against the sender's copy, so a successful `Deliver` is byte-identical.
///
/// Timing model: chunk 0 and every retry pay the link's one-way latency
/// (stream [re-]establishment); back-to-back chunks on a healthy stream pay
/// serialization time only. Acks ride the return path implicitly — no
/// explicit uplink frames, so a downlink delivery stays downlink-only in the
/// privacy ledger.
class BundleTransport {
 public:
  BundleTransport(NetworkLink* link, TransportOptions options);

  /// Delivers `payload` over the link; returns the reassembled, CRC-verified
  /// receiver copy, or kResourceExhausted once a chunk exceeds its retry
  /// budget. `report()` is valid (and partially filled) either way.
  ///
  /// `resume_from_chunk` continues an interrupted delivery of the SAME
  /// payload: frames are indexed over the full payload, only chunks
  /// [resume_from_chunk, total) are sent, and the returned string is that
  /// suffix — the caller appends it to what earlier sessions delivered.
  /// With `options.session_chunk_budget` set, a session may also end cleanly
  /// before the last chunk (simulated disconnect); check
  /// `report().next_chunk` to tell a full delivery from a partial one.
  Result<std::string> Deliver(Direction direction, PayloadKind kind,
                              const std::string& payload,
                              uint32_t resume_from_chunk = 0);

  const TransportReport& report() const { return report_; }
  const TransportOptions& options() const { return options_; }

  /// Backoff before attempt `attempt` (1-based count of failures so far),
  /// jitter included. Exposed for tests and latency budgeting.
  double BackoffSeconds(size_t attempt);

 private:
  NetworkLink* link_;
  TransportOptions options_;
  TransportReport report_;
  Rng jitter_rng_;
};

/// Builds one chunk frame (see the format above).
std::string EncodeChunkFrame(uint32_t index, uint32_t total_chunks,
                             uint64_t total_payload_bytes,
                             const std::string& chunk_payload);

/// Receiver-side validation: parses `frame`, checks indices against what the
/// receiver expects next, and verifies the per-chunk CRC. Returns the chunk
/// payload or kCorruption.
Result<std::string> DecodeChunkFrame(const std::string& frame,
                                     uint32_t expected_index,
                                     uint32_t expected_total,
                                     uint64_t expected_payload_bytes);

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_BUNDLE_TRANSPORT_H_
