#include "platform/edge_device.h"

namespace magneto::platform {

Result<EdgeDevice> EdgeDevice::Provision(const std::string& bundle_bytes,
                                         core::IncrementalOptions options,
                                         double sample_rate_hz) {
  MAGNETO_ASSIGN_OR_RETURN(core::ModelBundle bundle,
                           core::ModelBundle::FromString(bundle_bytes));
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();
  auto runtime = std::make_unique<core::EdgeRuntime>(
      std::move(model), std::move(support), options, sample_rate_hz);
  return EdgeDevice(std::move(runtime), bundle_bytes.size());
}

}  // namespace magneto::platform
