#include "platform/network_link.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace magneto::platform {

namespace {

/// Byte counters keyed by direction x payload kind, e.g.
/// `net.uplink.user_data.bytes`. A static 2x4 handle table so Transfer only
/// does two array indexes plus an atomic add.
obs::Counter* BytesCounter(Direction direction, PayloadKind kind) {
  static obs::Counter* const table[2][4] = {
      {obs::Registry::Global().GetCounter("net.uplink.user_data.bytes"),
       obs::Registry::Global().GetCounter("net.uplink.model_artifact.bytes"),
       obs::Registry::Global().GetCounter("net.uplink.control.bytes"),
       obs::Registry::Global().GetCounter("net.uplink.result.bytes")},
      {obs::Registry::Global().GetCounter("net.downlink.user_data.bytes"),
       obs::Registry::Global().GetCounter("net.downlink.model_artifact.bytes"),
       obs::Registry::Global().GetCounter("net.downlink.control.bytes"),
       obs::Registry::Global().GetCounter("net.downlink.result.bytes")}};
  return table[static_cast<size_t>(direction)][static_cast<size_t>(kind)];
}

obs::Counter* TransferCounter() {
  static obs::Counter* const transfers =
      obs::Registry::Global().GetCounter("net.transfers");
  return transfers;
}

}  // namespace

NetworkLink::NetworkLink(double rtt_ms, double bandwidth_mbps)
    : rtt_ms_(rtt_ms), bandwidth_mbps_(bandwidth_mbps) {
  MAGNETO_CHECK(rtt_ms >= 0.0);
  MAGNETO_CHECK(bandwidth_mbps > 0.0);
}

double NetworkLink::EstimateSeconds(size_t bytes) const {
  const double one_way_s = rtt_ms_ / 2.0 / 1000.0;
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1e6);
  return one_way_s + serialize_s;
}

double NetworkLink::Transfer(Direction direction, PayloadKind kind,
                             size_t bytes) {
  const double seconds = EstimateSeconds(bytes);
  records_.push_back({direction, kind, bytes, seconds});
  TransferCounter()->Increment();
  BytesCounter(direction, kind)->Increment(bytes);
  return seconds;
}

size_t NetworkLink::TotalBytes(Direction direction) const {
  size_t total = 0;
  for (const TransferRecord& r : records_) {
    if (r.direction == direction) total += r.bytes;
  }
  return total;
}

size_t NetworkLink::TotalBytes(Direction direction, PayloadKind kind) const {
  size_t total = 0;
  for (const TransferRecord& r : records_) {
    if (r.direction == direction && r.kind == kind) total += r.bytes;
  }
  return total;
}

double NetworkLink::TotalSeconds() const {
  double total = 0.0;
  for (const TransferRecord& r : records_) total += r.seconds;
  return total;
}

}  // namespace magneto::platform
