#include "platform/network_link.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace magneto::platform {

namespace {

/// Byte counters keyed by direction x payload kind, e.g.
/// `net.uplink.user_data.bytes`. A static 2x4 handle table so Transfer only
/// does two array indexes plus an atomic add.
obs::Counter* BytesCounter(Direction direction, PayloadKind kind) {
  static obs::Counter* const table[2][4] = {
      {obs::Registry::Global().GetCounter("net.uplink.user_data.bytes"),
       obs::Registry::Global().GetCounter("net.uplink.model_artifact.bytes"),
       obs::Registry::Global().GetCounter("net.uplink.control.bytes"),
       obs::Registry::Global().GetCounter("net.uplink.result.bytes")},
      {obs::Registry::Global().GetCounter("net.downlink.user_data.bytes"),
       obs::Registry::Global().GetCounter("net.downlink.model_artifact.bytes"),
       obs::Registry::Global().GetCounter("net.downlink.control.bytes"),
       obs::Registry::Global().GetCounter("net.downlink.result.bytes")}};
  return table[static_cast<size_t>(direction)][static_cast<size_t>(kind)];
}

obs::Counter* TransferCounter() {
  static obs::Counter* const transfers =
      obs::Registry::Global().GetCounter("net.transfers");
  return transfers;
}

/// Injected-fault counters keyed by what the injector did (kNone excluded).
obs::Counter* FaultCounter(FaultKind kind) {
  static obs::Counter* const table[4] = {
      obs::Registry::Global().GetCounter("net.faults.drop"),
      obs::Registry::Global().GetCounter("net.faults.truncate"),
      obs::Registry::Global().GetCounter("net.faults.bit_flip"),
      obs::Registry::Global().GetCounter("net.faults.delay")};
  return table[static_cast<size_t>(kind) - 1];
}

}  // namespace

NetworkLink::NetworkLink(double rtt_ms, double bandwidth_mbps)
    : rtt_ms_(rtt_ms), bandwidth_mbps_(bandwidth_mbps) {
  MAGNETO_CHECK(rtt_ms >= 0.0);
  MAGNETO_CHECK(bandwidth_mbps > 0.0);
}

double NetworkLink::EstimateSeconds(size_t bytes) const {
  const double one_way_s = rtt_ms_ / 2.0 / 1000.0;
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1e6);
  return one_way_s + serialize_s;
}

double NetworkLink::Transfer(Direction direction, PayloadKind kind,
                             size_t bytes) {
  const double seconds = EstimateSeconds(bytes);
  records_.push_back({direction, kind, bytes, seconds});
  TransferCounter()->Increment();
  BytesCounter(direction, kind)->Increment(bytes);
  return seconds;
}

Delivery NetworkLink::SendPayload(Direction direction, PayloadKind kind,
                                  std::string payload, bool pay_latency) {
  Delivery delivery;
  const double serialize_s = static_cast<double>(payload.size()) * 8.0 /
                             (bandwidth_mbps_ * 1e6);
  delivery.seconds =
      serialize_s + (pay_latency ? rtt_ms_ / 2.0 / 1000.0 : 0.0);

  FaultDecision decision;
  if (injector_ != nullptr) decision = injector_->Decide(payload.size());
  delivery.fault = decision.kind;
  delivery.seconds += decision.extra_seconds;

  // The ledger and byte counters record what the sender put on the wire:
  // the radio cost is paid whether or not the payload survives.
  records_.push_back({direction, kind, payload.size(), delivery.seconds});
  TransferCounter()->Increment();
  BytesCounter(direction, kind)->Increment(payload.size());
  if (decision.kind != FaultKind::kNone) FaultCounter(decision.kind)->Increment();

  delivery.delivered = FaultInjector::Apply(decision, &payload);
  delivery.payload = std::move(payload);
  if (!delivery.delivered) delivery.payload.clear();
  return delivery;
}

void NetworkLink::SetFaultInjector(std::unique_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
}

size_t NetworkLink::TotalBytes(Direction direction) const {
  size_t total = 0;
  for (const TransferRecord& r : records_) {
    if (r.direction == direction) total += r.bytes;
  }
  return total;
}

size_t NetworkLink::TotalBytes(Direction direction, PayloadKind kind) const {
  size_t total = 0;
  for (const TransferRecord& r : records_) {
    if (r.direction == direction && r.kind == kind) total += r.bytes;
  }
  return total;
}

double NetworkLink::TotalSeconds() const {
  double total = 0.0;
  for (const TransferRecord& r : records_) total += r.seconds;
  return total;
}

}  // namespace magneto::platform
