#ifndef MAGNETO_PLATFORM_PROTOCOLS_H_
#define MAGNETO_PLATFORM_PROTOCOLS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/edge_runtime.h"
#include "platform/cloud_server.h"
#include "platform/edge_device.h"
#include "platform/network_link.h"
#include "sensors/synthetic_generator.h"

namespace magneto::platform {

/// What one protocol run cost, in the dimensions Figure 1 contrasts.
struct ProtocolMetrics {
  std::string protocol;
  size_t windows = 0;
  double accuracy = 0.0;
  /// Mean end-to-end seconds from "window captured" to "label available on
  /// the device", including simulated network time and real compute time.
  double mean_window_latency_s = 0.0;
  double total_latency_s = 0.0;
  /// Byte counters are read off the `NetworkLink`'s cumulative ledger at the
  /// end of `Run`, so a link reused across runs WITHOUT `Reset()` reports
  /// the ledger total up to that run (run k's value = sum of runs 1..k) —
  /// exact, deterministic, and pinned by ProtocolMetricsInvariants tests.
  size_t uplink_user_bytes = 0;   ///< the privacy cost
  size_t downlink_bytes = 0;      ///< provisioning + results
  /// One-time setup latency (bundle download for the edge protocol).
  double setup_latency_s = 0.0;

  /// Device-side energy split (paper challenge iii), via `EnergyModel`.
  double compute_seconds = 0.0;
  double network_seconds = 0.0;
  double cpu_joules = 0.0;
  double radio_joules = 0.0;
  double total_joules() const { return cpu_joules + radio_joules; }
};

/// Figure 1, left: the conventional cloud-based deployment. Every captured
/// window's features are uplinked, classified server-side, and the label
/// downlinked. Constant user-data exfiltration, per-window network latency.
class CloudProtocol {
 public:
  CloudProtocol(CloudServer* server, NetworkLink* link)
      : server_(server), link_(link) {}

  /// Streams every window of `stream` through the cloud loop.
  /// The edge still runs the (cheap) preprocessing locally; the 80-float
  /// feature vector is what goes up — the *favourable* variant for the
  /// baseline. Pass `uplink_raw_windows = true` to ship raw windows instead.
  Result<ProtocolMetrics> Run(
      const std::vector<sensors::LabeledRecording>& stream,
      const preprocess::Pipeline& edge_pipeline,
      bool uplink_raw_windows = false);

 private:
  CloudServer* server_;
  NetworkLink* link_;
};

/// Figure 1, right: the MAGNETO deployment. One model-artifact download at
/// setup; all inference local; zero uplink.
class EdgeProtocol {
 public:
  /// `quantized_bundle` provisions with the wire-v3 int8 bundle
  /// (`CloudServer::ServeQuantizedBundleBytes`) instead of the fp32 v2 one:
  /// ~4x fewer downlink bytes and int8 inference on the device.
  EdgeProtocol(CloudServer* server, NetworkLink* link,
               bool quantized_bundle = false)
      : server_(server), link_(link), quantized_bundle_(quantized_bundle) {}

  /// Provisions a device over the link, then classifies `stream` locally.
  Result<ProtocolMetrics> Run(
      const std::vector<sensors::LabeledRecording>& stream);

 private:
  CloudServer* server_;
  NetworkLink* link_;
  bool quantized_bundle_ = false;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_PROTOCOLS_H_
