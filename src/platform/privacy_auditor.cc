#include "platform/privacy_auditor.h"

#include <sstream>

namespace magneto::platform {

namespace {
const char* KindName(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kUserData:
      return "user_data";
    case PayloadKind::kModelArtifact:
      return "model_artifact";
    case PayloadKind::kControl:
      return "control";
    case PayloadKind::kResult:
      return "result";
  }
  return "?";
}
}  // namespace

size_t PrivacyAuditor::UserBytesUplinked() const {
  return link_->TotalBytes(Direction::kUplink, PayloadKind::kUserData);
}

size_t PrivacyAuditor::BundleBytesDownlinked() const {
  return link_->TotalBytes(Direction::kDownlink, PayloadKind::kModelArtifact);
}

Status PrivacyAuditor::Verify() const {
  const size_t leaked = UserBytesUplinked();
  if (leaked > 0) {
    return Status::PermissionDenied(
        "privacy violation: " + std::to_string(leaked) +
        " bytes of user data were sent from edge to cloud");
  }
  return Status::Ok();
}

std::string PrivacyAuditor::Report() const {
  std::ostringstream os;
  os << "privacy audit: uplink user bytes = " << UserBytesUplinked()
     << (UserBytesUplinked() == 0 ? " (PASS)" : " (VIOLATION)") << "\n";
  os << "  bundle downlink bytes = " << BundleBytesDownlinked() << "\n";
  const PayloadKind kinds[] = {PayloadKind::kUserData,
                               PayloadKind::kModelArtifact,
                               PayloadKind::kControl, PayloadKind::kResult};
  for (Direction d : {Direction::kUplink, Direction::kDownlink}) {
    os << (d == Direction::kUplink ? "  uplink  " : "  downlink");
    for (PayloadKind k : kinds) {
      os << "  " << KindName(k) << "=" << link_->TotalBytes(d, k);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace magneto::platform
