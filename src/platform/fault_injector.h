#ifndef MAGNETO_PLATFORM_FAULT_INJECTOR_H_
#define MAGNETO_PLATFORM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"

namespace magneto::platform {

/// What the injector decided to do to one transfer.
enum class FaultKind : uint8_t {
  kNone = 0,
  kDrop = 1,      ///< the transfer never arrives
  kTruncate = 2,  ///< the payload arrives cut short
  kBitFlip = 3,   ///< one bit of the payload arrives flipped
  kDelay = 4,     ///< arrives intact but late
};

std::string_view FaultKindToString(FaultKind kind);

/// Per-transfer fault probabilities for a simulated lossy link. Rates are
/// independent probabilities of mutually exclusive outcomes, evaluated in
/// declaration order from a single uniform draw (their sum must be <= 1;
/// the remainder is a clean delivery).
struct FaultPolicy {
  double drop_rate = 0.0;
  double truncate_rate = 0.0;
  double bit_flip_rate = 0.0;
  double delay_rate = 0.0;
  double delay_seconds = 0.25;  ///< extra simulated latency when delayed
  uint64_t seed = 0;

  double total_rate() const {
    return drop_rate + truncate_rate + bit_flip_rate + delay_rate;
  }
};

/// One concrete fault, positioned within a specific payload.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  size_t offset = 0;          ///< truncation length / byte to flip
  uint8_t bit = 0;            ///< bit index within the flipped byte
  double extra_seconds = 0.0;  ///< added latency (kDelay)
};

/// Deterministic, seeded fault source for `NetworkLink`. Every transfer asks
/// the injector for a decision; the same seed and transfer sequence always
/// produce the same faults, so lossy-link tests and benches are exactly
/// reproducible. Virtual so tests can script exact fault sequences.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPolicy policy);
  virtual ~FaultInjector() = default;

  /// Draws the fault (if any) for the next transfer of `payload_bytes`.
  /// Advances the seeded stream; call exactly once per transfer.
  virtual FaultDecision Decide(size_t payload_bytes);

  /// Applies `decision` to `payload` in place. Returns false when the
  /// transfer is dropped entirely (payload content is then meaningless).
  static bool Apply(const FaultDecision& decision, std::string* payload);

  const FaultPolicy& policy() const { return policy_; }

 protected:
  /// For scripted test subclasses that bypass the random stream.
  FaultInjector() : rng_(0) {}

 private:
  FaultPolicy policy_;
  Rng rng_{0};
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_FAULT_INJECTOR_H_
