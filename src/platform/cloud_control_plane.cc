#include "platform/cloud_control_plane.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"
#include "platform/fault_injector.h"

namespace magneto::platform {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// SplitMix64: the per-device randomness primitive. Every behavioural draw
/// of a device is a fixed chain of these starting from (seed, device id), so
/// outcomes are independent of worker count, shard count, and job order.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double U01(uint64_t h) {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The deterministic per-device behaviour profile: what a device will do
/// when provisioned, derived purely from (spec.seed, device id).
struct DeviceProfile {
  double arrival_s = 0.0;   ///< exponential arrival offset (class-weighted)
  bool faulty = false;      ///< lossy link?
  bool churns = false;      ///< disconnects after churn_after_chunks?
  bool quantized = false;   ///< wants wire-v3 int8 instead of fp32 v2
  uint64_t link_seed = 1;   ///< fault injector / jitter seed
};

DeviceProfile ProfileOf(const FleetSpec& spec, DeviceId device) {
  uint64_t h = SplitMix64(spec.seed ^ (device + 0x2545F4914F6CDD1Dull));
  const uint64_t h_class = (h = SplitMix64(h));
  const uint64_t h_arrival = (h = SplitMix64(h));
  const uint64_t h_faulty = (h = SplitMix64(h));
  const uint64_t h_churn = (h = SplitMix64(h));
  const uint64_t h_quant = (h = SplitMix64(h));
  const uint64_t h_link = (h = SplitMix64(h));

  DeviceProfile profile;
  // Arrival classes: 60% eager (x1), 30% standard (x4), 10% laggard (x16).
  const double u_class = U01(h_class);
  const double mean = spec.mean_arrival_s *
                      (u_class < 0.6 ? 1.0 : (u_class < 0.9 ? 4.0 : 16.0));
  // Inverse-CDF exponential draw; clamp the uniform away from 1 so the log
  // stays finite.
  const double u = std::min(U01(h_arrival), 1.0 - 1e-12);
  profile.arrival_s = -mean * std::log(1.0 - u);
  profile.faulty = U01(h_faulty) < spec.faulty_fraction;
  profile.churns = U01(h_churn) < spec.churn_fraction;
  profile.quantized = U01(h_quant) < spec.quantized_fraction;
  profile.link_seed = h_link | 1;  // seeds must not be 0
  return profile;
}

/// Hash bucket in [0, 1) that decides which rollout stage a device belongs
/// to. Salted by target version so consecutive rollouts canary on different
/// devices.
double RolloutBucket(uint64_t seed, uint64_t to_version, DeviceId device) {
  return U01(SplitMix64(SplitMix64(seed ^ (to_version * 0xA24BAED4963EE407ull)) ^
                        device));
}

struct PlaneMetrics {
  obs::Counter* provisioned;
  obs::Counter* failures;
  obs::Counter* resumed;
  obs::Counter* churns;
  obs::Counter* tenants;
  obs::Counter* versions;
  obs::Counter* rollouts;
  obs::Counter* rollout_stages;
  obs::Counter* rollout_halts;
  obs::Counter* pins;
  obs::Gauge* fleet_devices;
  obs::Histogram* provision_sim_ms;
};

const PlaneMetrics& Metrics() {
  static const PlaneMetrics m = [] {
    obs::Registry& r = obs::Registry::Global();
    PlaneMetrics pm;
    pm.provisioned = r.GetCounter("cloud.provisioned");
    pm.failures = r.GetCounter("cloud.provision_failures");
    pm.resumed = r.GetCounter("cloud.resumed");
    pm.churns = r.GetCounter("cloud.churn_disconnects");
    pm.tenants = r.GetCounter("cloud.tenants");
    pm.versions = r.GetCounter("cloud.versions");
    pm.rollouts = r.GetCounter("cloud.rollouts");
    pm.rollout_stages = r.GetCounter("cloud.rollout_stages");
    pm.rollout_halts = r.GetCounter("cloud.rollout_halts");
    pm.pins = r.GetCounter("cloud.pins");
    pm.fleet_devices = r.GetGauge("cloud.fleet_devices");
    pm.provision_sim_ms =
        r.GetHistogram("cloud.provision_sim_ms", obs::LatencyBucketsMs());
    return pm;
  }();
  return m;
}

}  // namespace

double FleetReport::CompletionQuantile(double q) const {
  if (completion_sorted_s.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(completion_sorted_s.size() - 1) + 0.5);
  return completion_sorted_s[index];
}

const char* RolloutStateName(RolloutState state) {
  switch (state) {
    case RolloutState::kCompleted:
      return "completed";
    case RolloutState::kHalted:
      return "halted";
  }
  return "unknown";
}

CloudControlPlane::CloudControlPlane(Options options)
    : options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.provision_workers == 0) options_.provision_workers = 1;
}

Result<TenantId> CloudControlPlane::RegisterTenant(std::string name,
                                                   const CloudServer& server) {
  MAGNETO_ASSIGN_OR_RETURN(std::string fp32, server.ServeBundleBytes());
  MAGNETO_ASSIGN_OR_RETURN(std::string int8, server.ServeQuantizedBundleBytes());

  auto artifact = std::make_shared<BundleArtifact>();
  artifact->version = 1;
  artifact->fp32_bytes = std::move(fp32);
  artifact->int8_bytes = std::move(int8);

  auto tenant = std::make_unique<Tenant>();
  tenant->name = std::move(name);
  tenant->versions.push_back(std::move(artifact));
  tenant->shards.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    tenant->shards.push_back(std::make_unique<Shard>());
  }

  std::lock_guard<std::mutex> lock(tenants_mu_);
  tenants_.push_back(std::move(tenant));
  Metrics().tenants->Increment();
  Metrics().versions->Increment();
  return static_cast<TenantId>(tenants_.size() - 1);
}

Result<uint64_t> CloudControlPlane::PublishVersion(
    TenantId tenant, const core::ModelBundle& bundle) {
  return PublishVersionBytes(tenant, bundle.SerializeToString());
}

Result<uint64_t> CloudControlPlane::PublishVersionBytes(
    TenantId tenant, const std::string& fp32_bytes) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  // Validate + build both encodings OUTSIDE the registry lock (quantization
  // is the expensive part); only the append is serialized.
  MAGNETO_ASSIGN_OR_RETURN(core::ModelBundle parsed,
                           core::ModelBundle::FromString(fp32_bytes));
  if (parsed.wire_version != core::kBundleWireV2) {
    return Status::InvalidArgument(
        "PublishVersion wants an fp32 wire-v2 bundle, got wire v" +
        std::to_string(parsed.wire_version));
  }
  MAGNETO_ASSIGN_OR_RETURN(std::string int8,
                           CloudServer::EncodeQuantizedBundle(fp32_bytes));

  auto artifact = std::make_shared<BundleArtifact>();
  artifact->fp32_bytes = fp32_bytes;
  artifact->int8_bytes = std::move(int8);

  std::lock_guard<std::mutex> lock(t->registry_mu);
  artifact->version = t->versions.size() + 1;
  const uint64_t version = artifact->version;
  t->versions.push_back(std::move(artifact));
  Metrics().versions->Increment();
  return version;
}

Result<std::shared_ptr<const BundleArtifact>> CloudControlPlane::Artifact(
    TenantId tenant, uint64_t version) const {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  std::lock_guard<std::mutex> lock(t->registry_mu);
  if (version == 0 || version > t->versions.size()) {
    return Status::NotFound("tenant " + std::to_string(tenant) +
                            " has no version " + std::to_string(version));
  }
  return t->versions[version - 1];
}

Result<uint64_t> CloudControlPlane::LatestVersion(TenantId tenant) const {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  std::lock_guard<std::mutex> lock(t->registry_mu);
  return static_cast<uint64_t>(t->versions.size());
}

size_t CloudControlPlane::NumTenants() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_.size();
}

CloudControlPlane::Tenant* CloudControlPlane::FindTenant(
    TenantId tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (tenant >= tenants_.size()) return nullptr;
  return tenants_[tenant].get();
}

CloudControlPlane::Shard& CloudControlPlane::ShardOf(Tenant& tenant,
                                                     DeviceId device) const {
  return *tenant.shards[SplitMix64(device) % tenant.shards.size()];
}

ProvisionOutcome CloudControlPlane::ProvisionDevice(
    Tenant& tenant, const std::shared_ptr<const BundleArtifact>& artifact,
    const FleetSpec& spec, DeviceId device, double arrival_s) {
  const DeviceProfile profile = ProfileOf(spec, device);
  ProvisionOutcome out;
  out.quantized = profile.quantized;
  const std::string& payload = artifact->bytes(profile.quantized);

  // Each device job owns its link: no cross-device contention on the wire
  // model, and the fault stream is the device's own.
  NetworkLink link(spec.rtt_ms, spec.bandwidth_mbps);
  if (profile.faulty &&
      (spec.drop_rate > 0.0 || spec.corrupt_rate > 0.0)) {
    FaultPolicy policy;
    policy.drop_rate = spec.drop_rate;
    policy.truncate_rate = spec.corrupt_rate / 2.0;
    policy.bit_flip_rate = spec.corrupt_rate / 2.0;
    policy.seed = profile.link_seed;
    link.SetFaultInjector(std::make_unique<FaultInjector>(policy));
  }

  double sim_s = arrival_s;
  uint32_t next_chunk = 0;
  size_t reconnects = 0;
  bool first_session = true;
  std::string assembled;
  assembled.reserve(payload.size());

  while (true) {
    TransportOptions topt = options_.transport;
    topt.jitter_seed = profile.link_seed ^ 0x5BF03635F0C5B2F1ull;
    // Churn model: the device's FIRST session dies after a few chunks; the
    // reconnect then resumes from the last validated chunk.
    if (first_session && profile.churns && spec.churn_after_chunks > 0) {
      topt.session_chunk_budget = spec.churn_after_chunks;
    }
    BundleTransport transport(&link, topt);
    ++out.sessions;
    if (next_chunk > 0) {
      ++out.resumed_sessions;
      Metrics().resumed->Increment();
    }

    Result<std::string> got = transport.Deliver(
        Direction::kDownlink, PayloadKind::kModelArtifact, payload, next_chunk);
    const TransportReport& report = transport.report();
    sim_s += report.seconds;
    out.wire_bytes += report.wire_bytes;
    first_session = false;

    if (got.ok()) {
      assembled += got.value();
      next_chunk = report.next_chunk;
      if (next_chunk >= report.total_chunks) break;  // fully delivered
      // Clean partial session: the simulated disconnect (churn).
      out.churned = true;
      Metrics().churns->Increment();
      sim_s += spec.reconnect_delay_s;
      continue;
    }

    // Session aborted (chunk retry budget exhausted). Keep what the receiver
    // validated and reconnect, up to the per-device budget.
    assembled += report.partial;
    next_chunk = report.next_chunk;
    if (reconnects >= options_.max_reconnects) {
      out.failed = true;
      break;
    }
    ++reconnects;
    sim_s += spec.reconnect_delay_s;
  }

  if (!out.failed) {
    bool ok = assembled == payload;
    if (ok && spec.decode_check_every > 0 &&
        device % spec.decode_check_every == 0) {
      // End-to-end decode probe on a deterministic subset of the fleet.
      ok = core::ModelBundle::FromString(assembled).ok();
    }
    if (ok) {
      out.installed = true;
      out.sim_completion_s = sim_s;
      Metrics().provision_sim_ms->Record((sim_s - arrival_s) * 1e3);
    } else {
      out.failed = true;
    }
  }

  Shard& shard = ShardOf(tenant, device);
  std::lock_guard<std::mutex> lock(shard.mu);
  DeviceState& state = shard.devices[device];
  if (out.installed) {
    state.installed_version = artifact->version;
    state.quantized = profile.quantized;
    state.failed = false;
  } else {
    state.failed = true;
  }
  return out;
}

void CloudControlPlane::RunJobs(size_t n,
                                const std::function<void(size_t)>& fn) const {
  const size_t workers =
      std::max<size_t>(1, std::min(options_.provision_workers, n));
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

FleetReport CloudControlPlane::Aggregate(
    uint64_t version, const std::vector<ProvisionOutcome>& outcomes,
    double wall_seconds) const {
  FleetReport report;
  report.version = version;
  report.devices = outcomes.size();
  report.wall_seconds = wall_seconds;
  report.completion_sorted_s.reserve(outcomes.size());
  for (const ProvisionOutcome& out : outcomes) {
    if (out.installed) {
      ++report.provisioned;
      (out.quantized ? report.int8_devices : report.fp32_devices) += 1;
      report.completion_sorted_s.push_back(out.sim_completion_s);
    }
    if (out.failed) ++report.failed;
    if (out.churned) ++report.churned_devices;
    report.resumed_sessions += out.resumed_sessions;
    report.wire_bytes += out.wire_bytes;
  }
  std::sort(report.completion_sorted_s.begin(),
            report.completion_sorted_s.end());
  if (wall_seconds > 0.0) {
    report.devices_per_second =
        static_cast<double>(report.devices) / wall_seconds;
  }
  Metrics().provisioned->Increment(report.provisioned);
  Metrics().failures->Increment(report.failed);
  return report;
}

Result<FleetReport> CloudControlPlane::ProvisionFleet(TenantId tenant,
                                                      const FleetSpec& spec) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  if (spec.num_devices == 0) {
    return Status::InvalidArgument("fleet must have at least one device");
  }
  std::lock_guard<std::mutex> fleet_lock(t->fleet_mu);

  std::shared_ptr<const BundleArtifact> latest;
  {
    std::lock_guard<std::mutex> lock(t->registry_mu);
    if (t->versions.empty()) {
      return Status::FailedPrecondition("tenant has no published versions");
    }
    latest = t->versions.back();
  }

  // Arrival-ordered job list: workers drain devices in the order they come
  // online, like a real provisioning queue.
  struct Job {
    DeviceId device;
    double arrival_s;
  };
  std::vector<Job> jobs;
  jobs.reserve(spec.num_devices);
  for (DeviceId id = 0; id < spec.num_devices; ++id) {
    jobs.push_back({id, ProfileOf(spec, id).arrival_s});
  }
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.arrival_s < b.arrival_s ||
           (a.arrival_s == b.arrival_s && a.device < b.device);
  });

  std::vector<ProvisionOutcome> outcomes(jobs.size());
  const double wall0 = NowSeconds();
  RunJobs(jobs.size(), [&](size_t i) {
    const Job& job = jobs[i];
    std::shared_ptr<const BundleArtifact> target = latest;
    // Honour pins surviving from earlier runs: a pinned device re-provisions
    // its pinned version, not the latest.
    {
      Shard& shard = ShardOf(*t, job.device);
      uint64_t pinned = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.devices.find(job.device);
        if (it != shard.devices.end()) pinned = it->second.pinned_version;
      }
      if (pinned != 0) {
        auto artifact = Artifact(tenant, pinned);
        if (artifact.ok()) target = artifact.value();
      }
    }
    outcomes[i] = ProvisionDevice(*t, target, spec, job.device, job.arrival_s);
  });
  const double wall_seconds = NowSeconds() - wall0;

  t->fleet_size = spec.num_devices;
  Metrics().fleet_devices->Set(static_cast<double>(spec.num_devices));
  return Aggregate(latest->version, outcomes, wall_seconds);
}

Result<RolloutReport> CloudControlPlane::RunRollout(TenantId tenant,
                                                    uint64_t to_version,
                                                    const RolloutPolicy& policy,
                                                    const FleetSpec& spec) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  MAGNETO_ASSIGN_OR_RETURN(std::shared_ptr<const BundleArtifact> target,
                           Artifact(tenant, to_version));
  if (policy.stages.empty()) {
    return Status::InvalidArgument("rollout policy has no stages");
  }
  double prev_fraction = 0.0;
  for (double fraction : policy.stages) {
    if (fraction <= prev_fraction || fraction > 1.0) {
      return Status::InvalidArgument(
          "rollout stages must be strictly increasing fractions in (0, 1]");
    }
    prev_fraction = fraction;
  }
  std::lock_guard<std::mutex> fleet_lock(t->fleet_mu);
  if (t->fleet_size == 0) {
    return Status::FailedPrecondition(
        "no fleet provisioned; call ProvisionFleet first");
  }

  RolloutReport rollout;
  rollout.to_version = to_version;
  const double wall0 = NowSeconds();
  double sim_now = 0.0;
  prev_fraction = 0.0;

  for (double fraction : policy.stages) {
    StageRecord stage;
    stage.fraction = fraction;

    // Version-skew evidence at stage start: who is already on the target vs
    // still serving an older version. Mixed counts mid-rollout are the
    // normal, supported state.
    for (const std::unique_ptr<Shard>& shard : t->shards) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [id, state] : shard->devices) {
        if (state.installed_version == to_version) {
          ++stage.skew_new_before;
        } else {
          ++stage.skew_old_before;
        }
      }
    }

    // This stage's slice: hash buckets in [prev_fraction, fraction) — each
    // stage targets a disjoint slice, so no device is retried across stages.
    struct Job {
      DeviceId device;
      double arrival_s;
    };
    std::vector<Job> jobs;
    for (DeviceId id = 0; id < t->fleet_size; ++id) {
      const double bucket = RolloutBucket(spec.seed, to_version, id);
      if (bucket < prev_fraction || bucket >= fraction) continue;
      uint64_t pinned = 0;
      uint64_t installed = 0;
      bool failed = false;
      {
        Shard& shard = ShardOf(*t, id);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.devices.find(id);
        if (it != shard.devices.end()) {
          pinned = it->second.pinned_version;
          installed = it->second.installed_version;
          failed = it->second.failed;
        }
      }
      if (pinned != 0 && pinned != to_version) {
        ++rollout.devices_pinned;
        continue;
      }
      if (installed == to_version || failed) {
        ++rollout.devices_skipped;
        continue;
      }
      jobs.push_back({id, sim_now + ProfileOf(spec, id).arrival_s});
    }
    stage.targeted = jobs.size();

    std::vector<ProvisionOutcome> outcomes(jobs.size());
    const double stage_wall0 = NowSeconds();
    RunJobs(jobs.size(), [&](size_t i) {
      outcomes[i] =
          ProvisionDevice(*t, target, spec, jobs[i].device, jobs[i].arrival_s);
    });
    const double stage_wall = NowSeconds() - stage_wall0;

    stage.report = Aggregate(to_version, outcomes, stage_wall);
    stage.updated = stage.report.provisioned;
    stage.failed = stage.report.failed;
    stage.failure_rate =
        stage.targeted > 0
            ? static_cast<double>(stage.failed) /
                  static_cast<double>(stage.targeted)
            : 0.0;
    stage.sim_end_s = stage.report.completion_sorted_s.empty()
                          ? sim_now
                          : stage.report.completion_sorted_s.back();
    sim_now = std::max(sim_now, stage.sim_end_s);

    rollout.devices_updated += stage.updated;
    rollout.devices_failed += stage.failed;
    rollout.resumed_sessions += stage.report.resumed_sessions;
    rollout.stage_records.push_back(std::move(stage));
    Metrics().rollout_stages->Increment();

    const StageRecord& done = rollout.stage_records.back();
    if (done.targeted >= policy.min_sample &&
        done.failure_rate > policy.halt_failure_rate) {
      rollout.state = RolloutState::kHalted;
      Metrics().rollout_halts->Increment();
      break;
    }
    prev_fraction = fraction;
  }

  rollout.sim_completion_s = sim_now;
  rollout.wall_seconds = NowSeconds() - wall0;
  Metrics().rollouts->Increment();
  return rollout;
}

Status CloudControlPlane::PinDevice(TenantId tenant, DeviceId device,
                                    uint64_t version) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  if (version != 0) {
    std::lock_guard<std::mutex> lock(t->registry_mu);
    if (version > t->versions.size()) {
      return Status::NotFound("tenant has no version " +
                              std::to_string(version));
    }
  }
  Shard& shard = ShardOf(*t, device);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.devices[device].pinned_version = version;
  if (version != 0) Metrics().pins->Increment();
  return Status::Ok();
}

Result<std::map<uint64_t, size_t>> CloudControlPlane::VersionCounts(
    TenantId tenant) const {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  std::map<uint64_t, size_t> counts;
  for (const std::unique_ptr<Shard>& shard : t->shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, state] : shard->devices) {
      ++counts[state.installed_version];
    }
  }
  return counts;
}

Result<uint64_t> CloudControlPlane::InstalledVersion(TenantId tenant,
                                                     DeviceId device) const {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  Shard& shard = ShardOf(*t, device);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.devices.find(device);
  if (it == shard.devices.end()) {
    return Status::NotFound("device " + std::to_string(device) +
                            " never provisioned");
  }
  return it->second.installed_version;
}

Result<size_t> CloudControlPlane::DeviceCount(TenantId tenant) const {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(tenant));
  }
  size_t count = 0;
  for (const std::unique_ptr<Shard>& shard : t->shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    count += shard->devices.size();
  }
  return count;
}

}  // namespace magneto::platform
