#include "platform/cloud_server.h"

#include "compress/compress.h"
#include "core/model_bundle.h"

namespace magneto::platform {

Status CloudServer::Pretrain(
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry) {
  core::CloudReport report;
  auto bundle = initializer_.Initialize(corpus, registry, &report);
  if (!bundle.ok()) return bundle.status();
  bundle_bytes_ = bundle.value().SerializeToString();
  model_ = std::make_unique<core::EdgeModel>(
      std::move(bundle).value().ToEdgeModel());
  return Status::Ok();
}

Result<std::string> CloudServer::ServeBundleBytes() const {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  return bundle_bytes_;
}

Result<std::string> CloudServer::ServeQuantizedBundleBytes() {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  if (!quantized_bundle_bytes_.empty()) return quantized_bundle_bytes_;

  // Same flow as the CLI's `compress --method int8`: quantize the backbone,
  // rebuild the prototypes through the quantized embedding (they must match
  // what the device will compute), switch the classifier to int8 scans, and
  // ship the whole thing on wire v3.
  MAGNETO_ASSIGN_OR_RETURN(core::ModelBundle bundle,
                           core::ModelBundle::FromString(bundle_bytes_));
  MAGNETO_ASSIGN_OR_RETURN(bundle.backbone,
                           compress::QuantizeBackbone(bundle.backbone));
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();
  MAGNETO_RETURN_IF_ERROR(model.RebuildPrototypes(support));

  core::ModelBundle quantized;
  quantized.wire_version = core::kBundleWireV3;
  quantized.pipeline = model.pipeline();
  quantized.classifier = model.classifier();
  MAGNETO_RETURN_IF_ERROR(quantized.classifier.QuantizePrototypes());
  quantized.registry = model.registry();
  quantized.support = std::move(support);
  quantized.backbone = std::move(model.backbone());
  quantized_bundle_bytes_ = quantized.SerializeToString();
  return quantized_bundle_bytes_;
}

Result<core::NamedPrediction> CloudServer::RemoteInfer(
    const std::vector<float>& features) {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  return model_->InferFeatures(features);
}

}  // namespace magneto::platform
