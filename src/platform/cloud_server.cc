#include "platform/cloud_server.h"

#include "compress/compress.h"
#include "core/model_bundle.h"
#include "nn/workspace.h"

namespace magneto::platform {

Status CloudServer::Pretrain(
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry) {
  core::CloudReport report;
  auto bundle = initializer_.Initialize(corpus, registry, &report);
  if (!bundle.ok()) return bundle.status();
  return AdoptBundle(std::move(bundle).value());
}

Status CloudServer::AdoptBundle(core::ModelBundle bundle) {
  if (pretrained()) {
    return Status::FailedPrecondition("server already holds a model");
  }
  if (!bundle.pipeline.fitted()) {
    return Status::InvalidArgument("adopted bundle has an unfitted pipeline");
  }
  bundle_bytes_ = bundle.SerializeToString();
  model_ = std::make_unique<core::EdgeModel>(std::move(bundle).ToEdgeModel());
  return Status::Ok();
}

Result<std::string> CloudServer::ServeBundleBytes() const {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  return bundle_bytes_;
}

Result<std::string> CloudServer::EncodeQuantizedBundle(
    const std::string& fp32_bytes) {
  // Same flow as the CLI's `compress --method int8`: quantize the backbone,
  // rebuild the prototypes through the quantized embedding (they must match
  // what the device will compute), switch the classifier to int8 scans, and
  // ship the whole thing on wire v3.
  MAGNETO_ASSIGN_OR_RETURN(core::ModelBundle bundle,
                           core::ModelBundle::FromString(fp32_bytes));
  MAGNETO_ASSIGN_OR_RETURN(bundle.backbone,
                           compress::QuantizeBackbone(bundle.backbone));
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();
  MAGNETO_RETURN_IF_ERROR(model.RebuildPrototypes(support));

  core::ModelBundle quantized;
  quantized.wire_version = core::kBundleWireV3;
  quantized.pipeline = model.pipeline();
  quantized.classifier = model.classifier();
  MAGNETO_RETURN_IF_ERROR(quantized.classifier.QuantizePrototypes());
  quantized.registry = model.registry();
  quantized.support = std::move(support);
  quantized.backbone = std::move(model.backbone());
  return quantized.SerializeToString();
}

Result<std::string> CloudServer::ServeQuantizedBundleBytes() const {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  // Exactly one caller builds the encoding; concurrent first callers block
  // here until it is cached, then everyone reads the immutable bytes. (The
  // previous unguarded lazy cache let one thread write the string while
  // another moved it out — the PR 9 regression test races this path.)
  std::call_once(quant_once_, [this] {
    auto encoded = EncodeQuantizedBundle(bundle_bytes_);
    if (encoded.ok()) {
      quantized_bundle_bytes_ = std::move(encoded).value();
    } else {
      quant_status_ = encoded.status();
    }
  });
  if (!quant_status_.ok()) return quant_status_;
  return quantized_bundle_bytes_;
}

Result<core::NamedPrediction> CloudServer::RemoteInfer(
    const std::vector<float>& features) const {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  // One scratch workspace per serving thread: the shared model's weights are
  // read-only, so concurrent requests never synchronize. The workspace
  // resizes to whatever model it last served, making it safe to share across
  // CloudServer instances on the same thread.
  thread_local nn::ForwardWorkspace workspace;
  return model_->InferFeatures(features, &workspace);
}

}  // namespace magneto::platform
