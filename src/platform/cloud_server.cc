#include "platform/cloud_server.h"

#include "core/model_bundle.h"

namespace magneto::platform {

Status CloudServer::Pretrain(
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry) {
  core::CloudReport report;
  auto bundle = initializer_.Initialize(corpus, registry, &report);
  if (!bundle.ok()) return bundle.status();
  bundle_bytes_ = bundle.value().SerializeToString();
  model_ = std::make_unique<core::EdgeModel>(
      std::move(bundle).value().ToEdgeModel());
  return Status::Ok();
}

Result<std::string> CloudServer::ServeBundleBytes() const {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  return bundle_bytes_;
}

Result<core::NamedPrediction> CloudServer::RemoteInfer(
    const std::vector<float>& features) {
  if (!pretrained()) {
    return Status::FailedPrecondition("server has not pretrained a model");
  }
  return model_->InferFeatures(features);
}

}  // namespace magneto::platform
