#ifndef MAGNETO_PLATFORM_ENERGY_H_
#define MAGNETO_PLATFORM_ENERGY_H_

namespace magneto::platform {

/// First-order energy model of a phone-class device — the paper's challenge
/// (iii): "Energy consumption, constraining the training process to be very
/// efficient without excessive power consumption" (§1).
///
/// Energy = power x time, with separate budgets for CPU-bound work (compute)
/// and radio-bound work (transfers). Defaults are representative of a
/// mid-range smartphone: ~2 W sustained big-core compute, ~0.8 W active
/// radio, against a ~12 Wh (43 kJ) battery.
struct EnergyModel {
  double cpu_active_watts = 2.0;
  double radio_active_watts = 0.8;
  double battery_joules = 43200.0;  ///< ~12 Wh

  double ComputeJoules(double cpu_seconds) const {
    return cpu_active_watts * cpu_seconds;
  }
  double RadioJoules(double radio_seconds) const {
    return radio_active_watts * radio_seconds;
  }
  /// Fraction of the battery consumed by `joules`.
  double BatteryFraction(double joules) const {
    return battery_joules > 0.0 ? joules / battery_joules : 0.0;
  }
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_ENERGY_H_
