#include "platform/bundle_transport.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/serial.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"

namespace magneto::platform {

namespace {

constexpr char kChunkMagic[4] = {'M', 'C', 'N', 'K'};

struct TransportMetrics {
  obs::Counter* chunks = obs::Registry::Global().GetCounter("net.chunks");
  obs::Counter* retries = obs::Registry::Global().GetCounter("net.retries");
  obs::Counter* deliveries =
      obs::Registry::Global().GetCounter("net.transport.deliveries");
  obs::Counter* failures =
      obs::Registry::Global().GetCounter("net.transport.failures");
  obs::Counter* corrupt_chunks =
      obs::Registry::Global().GetCounter("net.transport.corrupt_chunks");
  /// Attempts needed per delivered chunk (1 = clean).
  obs::Histogram* chunk_attempts = obs::Registry::Global().GetHistogram(
      "net.chunk_attempts", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32});
  /// Simulated end-to-end delivery latency per bundle, in milliseconds.
  obs::Histogram* delivery_ms = obs::Registry::Global().GetHistogram(
      "net.delivery_ms", obs::LatencyBucketsMs());
};

TransportMetrics& Metrics() {
  static TransportMetrics* metrics = new TransportMetrics;
  return *metrics;
}

}  // namespace

std::string EncodeChunkFrame(uint32_t index, uint32_t total_chunks,
                             uint64_t total_payload_bytes,
                             const std::string& chunk_payload) {
  BinaryWriter frame;
  frame.WriteBytes(kChunkMagic, sizeof(kChunkMagic));
  frame.WriteU32(index);
  frame.WriteU32(total_chunks);
  frame.WriteU64(total_payload_bytes);
  frame.WriteU64(chunk_payload.size());
  frame.WriteBytes(chunk_payload.data(), chunk_payload.size());
  frame.WriteU32(Crc32(chunk_payload.data(), chunk_payload.size()));
  return frame.TakeBuffer();
}

Result<std::string> DecodeChunkFrame(const std::string& frame,
                                     uint32_t expected_index,
                                     uint32_t expected_total,
                                     uint64_t expected_payload_bytes) {
  BinaryReader reader(frame);
  if (frame.size() < sizeof(kChunkMagic)) {
    return Status::Corruption("chunk frame too small");
  }
  if (std::memcmp(frame.data(), kChunkMagic, sizeof(kChunkMagic)) != 0) {
    return Status::Corruption("bad chunk magic");
  }
  BinaryReader header(frame.data() + sizeof(kChunkMagic),
                      frame.size() - sizeof(kChunkMagic));
  MAGNETO_ASSIGN_OR_RETURN(uint32_t index, header.ReadU32());
  MAGNETO_ASSIGN_OR_RETURN(uint32_t total, header.ReadU32());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t total_payload, header.ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t chunk_len, header.ReadU64());
  if (index != expected_index || total != expected_total ||
      total_payload != expected_payload_bytes) {
    return Status::Corruption("chunk header mismatch");
  }
  // Subtraction form: `chunk_len` is untrusted and must not be added to
  // anything that could wrap.
  if (header.remaining() < sizeof(uint32_t) ||
      chunk_len != header.remaining() - sizeof(uint32_t)) {
    return Status::Corruption("chunk length mismatch");
  }
  const char* payload = frame.data() + (frame.size() - header.remaining());
  BinaryReader crc_reader(payload + chunk_len, sizeof(uint32_t));
  MAGNETO_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.ReadU32());
  if (Crc32(payload, chunk_len) != stored_crc) {
    return Status::Corruption("chunk checksum mismatch");
  }
  return std::string(payload, chunk_len);
}

BundleTransport::BundleTransport(NetworkLink* link, TransportOptions options)
    : link_(link), options_(options), jitter_rng_(options.jitter_seed) {
  MAGNETO_CHECK(link != nullptr);
  MAGNETO_CHECK(options.chunk_bytes > 0);
  MAGNETO_CHECK(options.max_attempts_per_chunk > 0);
}

double BundleTransport::BackoffSeconds(size_t attempt) {
  double wait = options_.backoff_initial_s;
  for (size_t i = 1; i < attempt; ++i) {
    wait *= options_.backoff_multiplier;
    if (wait >= options_.backoff_max_s) break;
  }
  wait = std::min(wait, options_.backoff_max_s);
  return wait * (1.0 + jitter_rng_.Uniform(0.0, options_.jitter_fraction));
}

/// Flow-event name linking one delivery's provision -> chunk/retry -> commit
/// chain. The id comes from the same monotonic space as serving requests,
/// so a delivery and a window can never alias in the same trace.
constexpr const char* kDeliveryFlow = "net.delivery";

Result<std::string> BundleTransport::Deliver(Direction direction,
                                             PayloadKind kind,
                                             const std::string& payload,
                                             uint32_t resume_from_chunk) {
  obs::TraceSpan span("BundleTransport::Deliver");
  const uint64_t flow_id = obs::NextRequestId();
  obs::TraceFlowBegin(kDeliveryFlow, flow_id);
  report_ = TransportReport{};
  const uint32_t total_chunks = static_cast<uint32_t>(
      (payload.size() + options_.chunk_bytes - 1) / options_.chunk_bytes);
  if (resume_from_chunk > total_chunks) {
    obs::TraceFlowEnd(kDeliveryFlow, flow_id);
    return Status::InvalidArgument(
        "resume_from_chunk " + std::to_string(resume_from_chunk) +
        " beyond total " + std::to_string(total_chunks));
  }
  const size_t resume_offset =
      static_cast<size_t>(resume_from_chunk) * options_.chunk_bytes;
  report_.payload_bytes = payload.size() - resume_offset;
  report_.first_chunk = resume_from_chunk;
  report_.next_chunk = resume_from_chunk;
  report_.total_chunks = total_chunks;
  report_.chunk_attempts.assign(total_chunks - resume_from_chunk, 0);

  // A session that disconnects (budget) or aborts (retry exhaustion) ends at
  // `last_chunk`; the caller resumes from report_.next_chunk later.
  uint32_t last_chunk = total_chunks;
  if (options_.session_chunk_budget > 0 &&
      resume_from_chunk + options_.session_chunk_budget < total_chunks) {
    last_chunk = resume_from_chunk +
                 static_cast<uint32_t>(options_.session_chunk_budget);
  }

  std::string received;
  received.reserve(payload.size() - resume_offset);
  // Resume-from-last-good-chunk is structural: `received` only ever grows by
  // validated chunks, and a failed attempt re-sends the current chunk only.
  for (uint32_t index = resume_from_chunk; index < last_chunk; ++index) {
    obs::TraceSpan chunk_span("BundleTransport::Chunk");
    obs::TraceFlowStep(kDeliveryFlow, flow_id);
    const size_t begin = static_cast<size_t>(index) * options_.chunk_bytes;
    const std::string chunk = payload.substr(
        begin, std::min(options_.chunk_bytes, payload.size() - begin));
    const std::string frame =
        EncodeChunkFrame(index, total_chunks, payload.size(), chunk);

    bool chunk_delivered = false;
    for (size_t attempt = 1; attempt <= options_.max_attempts_per_chunk;
         ++attempt) {
      ++report_.attempts;
      ++report_.chunk_attempts[index - resume_from_chunk];
      report_.wire_bytes += frame.size();
      if (attempt > 1) {
        ++report_.retries;
        Metrics().retries->Increment();
        const double wait = BackoffSeconds(attempt - 1);
        report_.backoff_seconds += wait;
        report_.seconds += wait;
      }
      // The session's first chunk and every retry (re-)establish the stream
      // (pay latency); healthy back-to-back chunks pay serialization only.
      const bool pay_latency = index == resume_from_chunk || attempt > 1;
      Delivery delivery = link_->SendPayload(direction, kind, frame,
                                             pay_latency);
      report_.seconds += delivery.seconds;
      if (!delivery.delivered) continue;
      auto decoded = DecodeChunkFrame(delivery.payload, index, total_chunks,
                                      payload.size());
      if (!decoded.ok()) {
        Metrics().corrupt_chunks->Increment();
        continue;
      }
      received.append(decoded.value());
      Metrics().chunks->Increment();
      Metrics().chunk_attempts->Record(static_cast<double>(
          report_.chunk_attempts[index - resume_from_chunk]));
      chunk_delivered = true;
      ++report_.chunks;
      report_.next_chunk = index + 1;
      break;
    }
    if (!chunk_delivered) {
      Metrics().failures->Increment();
      // Validated chunks survive the abort so a reconnect can resume from
      // report_.next_chunk without re-paying for them.
      report_.partial = std::move(received);
      // The flow ends on failure too: a dangling `s` with no `f` would make
      // the exported trace fail validation (tools/validate_trace.py).
      obs::TraceFlowEnd(kDeliveryFlow, flow_id);
      return Status::ResourceExhausted(
          "bundle delivery failed: chunk " + std::to_string(index) + "/" +
          std::to_string(total_chunks) + " exceeded " +
          std::to_string(options_.max_attempts_per_chunk) + " attempts");
    }
  }

  // Belt and braces: the per-chunk CRCs already guarantee integrity, but the
  // whole-session check makes a clean return synonymous with byte-identical
  // delivery of the chunk range this session covered.
  const size_t covered = std::min(
      payload.size() - resume_offset,
      static_cast<size_t>(last_chunk - resume_from_chunk) *
          options_.chunk_bytes);
  if (received.size() != covered ||
      Crc32(received.data(), received.size()) !=
          Crc32(payload.data() + resume_offset, covered)) {
    Metrics().failures->Increment();
    obs::TraceFlowEnd(kDeliveryFlow, flow_id);
    return Status::Corruption("reassembled bundle does not match source");
  }
  // On a clean session the return value already carries the suffix;
  // `partial` is only populated on the abort path above.
  if (resume_from_chunk == 0 && last_chunk == total_chunks) {
    report_.delivered = true;
    Metrics().deliveries->Increment();
    Metrics().delivery_ms->Record(report_.seconds * 1e3);
  }
  obs::TraceFlowEnd(kDeliveryFlow, flow_id);
  return received;
}

}  // namespace magneto::platform
