#include "platform/edge_fleet.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo_monitor.h"
#include "obs/trace.h"

namespace magneto::platform {

namespace {

struct FleetMetrics {
  obs::Counter* requests =
      obs::Registry::Global().GetCounter("fleet.requests");
  obs::Counter* frames = obs::Registry::Global().GetCounter("fleet.frames");
  obs::Counter* windows = obs::Registry::Global().GetCounter("fleet.windows");
  obs::Counter* predictions =
      obs::Registry::Global().GetCounter("fleet.predictions");
  obs::Counter* batches = obs::Registry::Global().GetCounter("fleet.batches");
  obs::Counter* promotions =
      obs::Registry::Global().GetCounter("fleet.promotions");
  obs::Counter* update_failures =
      obs::Registry::Global().GetCounter("fleet.update_failures");
  obs::Counter* session_resets =
      obs::Registry::Global().GetCounter("fleet.session_resets");
  obs::Counter* rejected = obs::Registry::Global().GetCounter("fleet.rejected");
  obs::Gauge* sessions = obs::Registry::Global().GetGauge("fleet.sessions");
  obs::Gauge* queue_depth =
      obs::Registry::Global().GetGauge("fleet.queue_depth");
  obs::Histogram* batch_size = obs::Registry::Global().GetHistogram(
      "fleet.batch_size", {1, 2, 4, 8, 16, 32, 64});
  obs::Histogram* classify_us = obs::Registry::Global().GetHistogram(
      "fleet.classify_us", obs::LatencyBucketsUs());
  // Queue wait and the per-stage attribution histograms live on the
  // log-spaced preset: serving stages are microseconds-scale and a p99 is
  // only as accurate as its bucket. Tail buckets carry request-id exemplars.
  obs::Histogram* queue_wait_us = obs::Registry::Global().GetHistogram(
      "fleet.queue_wait_us", obs::LogLatencyBucketsUs());
  // Adjacent-stage intervals of one open-loop request; recorded together at
  // publish, so all five histograms have identical counts and their means
  // sum exactly to the end-to-end mean.
  obs::Histogram* stage_queue_us = obs::Registry::Global().GetHistogram(
      "fleet.stage.queue_us", obs::LogLatencyBucketsUs());
  obs::Histogram* stage_batch_wait_us = obs::Registry::Global().GetHistogram(
      "fleet.stage.batch_wait_us", obs::LogLatencyBucketsUs());
  obs::Histogram* stage_embed_us = obs::Registry::Global().GetHistogram(
      "fleet.stage.embed_us", obs::LogLatencyBucketsUs());
  obs::Histogram* stage_classify_us = obs::Registry::Global().GetHistogram(
      "fleet.stage.classify_us", obs::LogLatencyBucketsUs());
  obs::Histogram* stage_publish_us = obs::Registry::Global().GetHistogram(
      "fleet.stage.publish_us", obs::LogLatencyBucketsUs());
  obs::Histogram* e2e_us = obs::Registry::Global().GetHistogram(
      "fleet.e2e_us", obs::LogLatencyBucketsUs());
};

FleetMetrics& Metrics() {
  static FleetMetrics* metrics = new FleetMetrics;
  return *metrics;
}

obs::FlightRecorder& Recorder(const FleetOptions& options) {
  return options.flight_recorder != nullptr ? *options.flight_recorder
                                            : obs::FlightRecorder::Global();
}

/// Flow-event name shared by every s/t/f marker of one request's life.
constexpr const char* kRequestFlow = "fleet.request";

core::NamedPrediction Nameify(const sensors::ActivityRegistry& registry,
                              const core::Prediction& prediction) {
  core::NamedPrediction named;
  named.prediction = prediction;
  if (prediction.is_unknown()) {
    named.name = "Unknown";
    return named;
  }
  auto name = registry.NameOf(prediction.activity);
  named.name =
      name.ok() ? name.value() : ("#" + std::to_string(prediction.activity));
  return named;
}

}  // namespace

// -- Deployment ---------------------------------------------------------------

EdgeFleet::Deployment::Deployment(core::ModelBundle bundle, uint64_t ver,
                                  const core::AnnOptions& ann)
    : pipeline(std::move(bundle.pipeline)),
      backbone(std::move(bundle.backbone)),
      classifier(std::move(bundle.classifier)),
      registry(std::move(bundle.registry)),
      support(std::move(bundle.support)),
      version(ver) {
  input_dim = backbone.InputDim();
  if (ann.enable) {
    // Built here, while this deployment is still private to the promoting
    // thread — the shared pointer flips only once the index is complete.
    // EnableAnn on a consistent non-empty classifier cannot fail (a small
    // vocabulary just falls back to exact scans).
    MAGNETO_CHECK(classifier.EnableAnn(ann).ok());
  }
}

core::EdgeModel EdgeFleet::Deployment::SnapshotModel() const {
  return core::EdgeModel(pipeline, backbone.Clone(), classifier, registry);
}

// -- Construction -------------------------------------------------------------

EdgeFleet::EdgeFleet(core::ModelBundle bundle, size_t num_sessions,
                     FleetOptions options)
    : options_(std::move(options)) {
  deployment_ = std::make_shared<const Deployment>(std::move(bundle),
                                                   /*version=*/1,
                                                   options_.ann);
  const auto& seg = deployment_->pipeline.config().segmentation;
  const double journal_window_s =
      options_.sample_rate_hz > 0
          ? static_cast<double>(seg.stride) / options_.sample_rate_hz
          : 1.0;
  sessions_.reserve(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    auto session = std::make_unique<Session>();
    session->deployment_version = deployment_->version;
    if (options_.enable_smoothing) {
      session->smoother =
          std::make_unique<core::PredictionSmoother>(options_.smoother);
    }
    if (options_.enable_drift_monitoring) {
      session->drift = std::make_unique<core::DriftMonitor>(options_.drift);
      session->drift->SetBaselineDistance(options_.drift_baseline_distance);
    }
    if (options_.enable_journal) {
      session->journal =
          std::make_unique<core::ActivityJournal>(journal_window_s);
    }
    sessions_.push_back(std::move(session));
  }
  Metrics().sessions->Set(static_cast<double>(num_sessions));
  workers_.reserve(options_.serve_threads);
  for (size_t i = 0; i < options_.serve_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EdgeFleet::~EdgeFleet() {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    stopping_ = true;
  }
  admit_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Result<std::unique_ptr<EdgeFleet>> EdgeFleet::Create(core::ModelBundle bundle,
                                                     size_t num_sessions,
                                                     FleetOptions options) {
  if (num_sessions == 0) {
    return Status::InvalidArgument("a fleet needs at least one session");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (options.max_concurrent_batches == 0) {
    return Status::InvalidArgument("max_concurrent_batches must be >= 1");
  }
  if (options.serve_threads > 0 && options.admission_capacity == 0) {
    return Status::InvalidArgument(
        "admission_capacity must be >= 1 when serve_threads > 0");
  }
  if (!bundle.pipeline.fitted()) {
    return Status::FailedPrecondition("bundle pipeline is not fitted");
  }
  if (bundle.classifier.num_classes() == 0) {
    return Status::FailedPrecondition("bundle classifier has no classes");
  }
  return std::unique_ptr<EdgeFleet>(
      new EdgeFleet(std::move(bundle), num_sessions, std::move(options)));
}

// -- Deployment management ----------------------------------------------------

std::shared_ptr<const EdgeFleet::Deployment> EdgeFleet::CurrentDeployment()
    const {
  std::lock_guard<std::mutex> lock(deploy_mu_);
  return deployment_;
}

void EdgeFleet::InstallDeployment(
    std::shared_ptr<const Deployment> deployment) {
  std::lock_guard<std::mutex> lock(deploy_mu_);
  deployment_ = std::move(deployment);
}

uint64_t EdgeFleet::deployment_version() const {
  return CurrentDeployment()->version;
}

Status EdgeFleet::PromoteBundle(core::ModelBundle bundle) {
  if (!bundle.pipeline.fitted()) {
    return Status::FailedPrecondition("bundle pipeline is not fitted");
  }
  if (bundle.classifier.num_classes() == 0) {
    return Status::FailedPrecondition("bundle classifier has no classes");
  }
  // Copy-on-swap: the new deployment is fully built before the pointer
  // flips, so no reader ever sees a half-initialized model, and in-flight
  // classifications keep their pinned snapshot alive through the shared_ptr.
  auto next = std::make_shared<const Deployment>(
      std::move(bundle), next_version_.fetch_add(1), options_.ann);
  InstallDeployment(std::move(next));
  Metrics().promotions->Increment();
  return Status::Ok();
}

Status EdgeFleet::BeginLearn(const std::string& name,
                             std::vector<sensors::Recording> recordings) {
  std::shared_ptr<const Deployment> dep = CurrentDeployment();
  core::EdgeModel snapshot = dep->SnapshotModel();
  core::AsyncUpdater* updater = nullptr;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (updater_ == nullptr) {
      updater_ = std::make_unique<core::AsyncUpdater>(options_.update_options);
    }
    updater = updater_.get();
  }
  return updater->StartLearn(snapshot, dep->support, name,
                             std::move(recordings));
}

bool EdgeFleet::UpdatePending() const {
  std::lock_guard<std::mutex> lock(update_mu_);
  return updater_ != nullptr && updater_->busy();
}

bool EdgeFleet::UpdateReady() const {
  std::lock_guard<std::mutex> lock(update_mu_);
  return updater_ != nullptr && updater_->ready();
}

Result<core::UpdateReport> EdgeFleet::PromoteUpdate() {
  core::AsyncUpdater* updater = nullptr;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    updater = updater_.get();
  }
  if (updater == nullptr) {
    return Status::FailedPrecondition("no update was started");
  }
  // Take() blocks for the trainer; the sessions keep classifying on the
  // current deployment the whole time (update_mu_ is not held here).
  // A failed update rolled back inside the learner's transaction and
  // surfaces as an error Outcome — it stops here, before PromoteBundle, so
  // a failed update can never reach a serving session and the deployment
  // version does not advance.
  Result<core::AsyncUpdater::Outcome> taken = updater->Take();
  if (!taken.ok()) {
    Metrics().update_failures->Increment();
    return taken.status();
  }
  core::AsyncUpdater::Outcome outcome = std::move(taken).value();
  core::ModelBundle bundle;
  bundle.pipeline = outcome.model.pipeline();
  bundle.backbone = std::move(outcome.model.backbone());
  bundle.classifier = outcome.model.classifier();
  bundle.registry = outcome.model.registry();
  bundle.support = std::move(outcome.support);
  MAGNETO_RETURN_IF_ERROR(PromoteBundle(std::move(bundle)));
  return std::move(outcome.report);
}

core::ModelBundle EdgeFleet::ToBundle() const {
  std::shared_ptr<const Deployment> dep = CurrentDeployment();
  core::ModelBundle bundle;
  bundle.pipeline = dep->pipeline;
  bundle.backbone = dep->backbone.Clone();
  bundle.classifier = dep->classifier;
  bundle.registry = dep->registry;
  bundle.support = dep->support;
  return bundle;
}

// -- Micro-batched classification ---------------------------------------------

void EdgeFleet::ServeBatch(const std::vector<PendingRequest*>& batch) {
  Metrics().batches->Increment();
  Metrics().batch_size->Record(static_cast<double>(batch.size()));
  const Deployment& dep = *batch.front()->deployment;

  // Validate dims first so a malformed request degrades to a per-request
  // error, never a malformed stack.
  std::vector<PendingRequest*> valid;
  valid.reserve(batch.size());
  for (PendingRequest* req : batch) {
    if (dep.input_dim > 0 && req->features->size() != dep.input_dim) {
      req->status = Status::InvalidArgument(
          "feature vector has dim " + std::to_string(req->features->size()) +
          ", backbone expects " + std::to_string(dep.input_dim));
      continue;
    }
    valid.push_back(req);
  }
  if (valid.empty()) return;

  // Stack into one matrix and run a single forward — the same trick
  // NcmClassifier::FromSupportSet uses to re-embed a whole support set.
  // Row-independent kernels keep each row's result identical to a
  // batch-of-one forward, so batch composition never changes a prediction.
  const size_t dim = valid.front()->features->size();
  Matrix stacked(valid.size(), dim);
  for (size_t r = 0; r < valid.size(); ++r) {
    std::memcpy(stacked.RowPtr(r), valid[r]->features->data(),
                dim * sizeof(float));
  }
  // The flow chain hops onto the combiner thread here: this batch may be
  // served by a different worker (or a closed-loop caller) than the one
  // that popped the requests off the admission queue. The embed-start stamp
  // doubles as the span begin and the step timestamps.
  const uint64_t embed_start_ns = obs::RequestContext::NowNs();
  obs::TraceSpan span("EdgeFleet::ServeBatch", embed_start_ns);
  for (PendingRequest* req : valid) {
    if (req->ctx == nullptr) continue;
    obs::TraceFlowStepAt(kRequestFlow, req->ctx->id, embed_start_ns);
    req->ctx->StampAt(obs::RequestStage::kEmbedStart, embed_start_ns);
    req->batch_size = static_cast<uint32_t>(valid.size());
  }
  // One workspace per serving thread: the backbone is immutable and its
  // Forward is const, so concurrent leaders (same deployment or old pinned
  // + newly promoted) embed in parallel with zero shared mutable state. The
  // workspace reaches its high-water shape once and is reused thereafter.
  static thread_local nn::ForwardWorkspace ws;
  const Matrix& embeddings = dep.backbone.Forward(stacked, &ws);
  const uint64_t embed_end_ns = obs::RequestContext::NowNs();
  for (PendingRequest* req : valid) {
    if (req->ctx != nullptr) {
      req->ctx->StampAt(obs::RequestStage::kEmbedEnd, embed_end_ns);
    }
  }
  // Like the forward workspace above: one classifier scratch per serving
  // thread keeps the NCM scan (distance buffer + int8 query + ANN probe
  // state) allocation-free in steady state. The classifier is immutable
  // and per-call state lives entirely in the scratch, so concurrent
  // leaders — including ones pinning different deployments across a
  // promotion — share nothing.
  static thread_local core::NcmClassifier::Scratch ncm_scratch;
  for (size_t r = 0; r < valid.size(); ++r) {
    Result<core::Prediction> pred =
        options_.rejection_threshold > 0.0
            ? dep.classifier.ClassifyWithRejection(
                  embeddings.RowPtr(r), embeddings.cols(),
                  options_.rejection_threshold, &ncm_scratch)
            : dep.classifier.Classify(embeddings.RowPtr(r),
                                      embeddings.cols(), &ncm_scratch);
    if (pred.ok()) {
      valid[r]->prediction = pred.value();
    } else {
      valid[r]->status = pred.status();
    }
    if (valid[r]->ctx != nullptr) {
      valid[r]->ctx->Stamp(obs::RequestStage::kClassifyEnd);
    }
  }
}

Result<core::Prediction> EdgeFleet::ClassifyBatched(
    std::shared_ptr<const Deployment> deployment,
    const std::vector<float>& features) {
  Metrics().requests->Increment();
  PendingRequest req;
  req.features = &features;
  req.deployment = std::move(deployment);
  EnqueueAndServe({&req});
  if (!req.status.ok()) return req.status;
  return req.prediction;
}

void EdgeFleet::EnqueueAndServe(
    const std::vector<PendingRequest*>& requests) {
  std::unique_lock<std::mutex> lock(batch_mu_);
  for (PendingRequest* req : requests) batch_queue_.push_back(req);
  const auto all_done = [&requests] {
    for (const PendingRequest* req : requests) {
      if (!req->done) return false;
    }
    return true;
  };
  while (!all_done()) {
    if (active_leaders_ < options_.max_concurrent_batches &&
        !batch_queue_.empty()) {
      // Combining leader: serve FIFO batches until our own requests have
      // been classified (usually the first batch — it contains us), then
      // step down and wake a successor for anything still queued. With
      // max_concurrent_batches > 1 several leaders drain disjoint batches
      // at once; another leader may serve our requests, in which case the
      // inner loop exits on done without leading a batch.
      ++active_leaders_;
      while (!all_done() && !batch_queue_.empty()) {
        std::vector<PendingRequest*> batch;
        batch.reserve(std::min(options_.max_batch, batch_queue_.size()));
        const Deployment* pinned = batch_queue_.front()->deployment.get();
        while (!batch_queue_.empty() && batch.size() < options_.max_batch &&
               batch_queue_.front()->deployment.get() == pinned) {
          batch.push_back(batch_queue_.front());
          batch_queue_.pop_front();
        }
        lock.unlock();
        ServeBatch(batch);
        lock.lock();
        for (PendingRequest* served : batch) served->done = true;
        batch_cv_.notify_all();
      }
      --active_leaders_;
      if (!batch_queue_.empty()) batch_cv_.notify_all();
    } else {
      batch_cv_.wait(lock);
    }
  }
}

// -- Open-loop admission ------------------------------------------------------

bool EdgeFleet::SubmitWindow(size_t session, std::vector<float> features) {
  if (workers_.empty()) {
    MAGNETO_LOG(Fatal)
        << "SubmitWindow requires FleetOptions::serve_threads > 0";
  }
  if (session >= sessions_.size()) return false;
  Submission sub;
  sub.session = session;
  sub.features = std::move(features);
  sub.ctx.id = obs::NextRequestId();
  sub.ctx.session = static_cast<uint32_t>(session);
  sub.ctx.Stamp(obs::RequestStage::kAdmit);
  const uint64_t request_id = sub.ctx.id;
  // The admit stamp doubles as the span begin and the flow-begin timestamp:
  // tracing adds no clock reads on this path beyond the stamps the latency
  // histograms need anyway.
  const uint64_t admit_ns = sub.ctx.At(obs::RequestStage::kAdmit);
  obs::TraceSpan span("EdgeFleet::SubmitWindow", admit_ns);
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (admit_queue_.size() < options_.admission_capacity) {
      admit_queue_.push_back(std::move(sub));
      Metrics().queue_depth->Set(static_cast<double>(admit_queue_.size()));
      admitted = true;
    }
  }
  // Session stats outside admit_mu_: never hold the admission lock while
  // taking a session mutex (workers take them in the same order).
  Session& s = *sessions_[session];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (admitted) {
      ++s.stats.submitted;
    } else {
      ++s.stats.rejected;
    }
  }
  if (admitted) {
    // The flow starts only for requests that actually enter the system; a
    // shed window leaves a flight record instead of a dangling flow `s`.
    obs::TraceFlowBeginAt(kRequestFlow, request_id, admit_ns);
    Recorder(options_).NoteAdmit();
    admit_cv_.notify_one();
  } else {
    Metrics().rejected->Increment();
    Recorder(options_).RecordShed(request_id,
                                  static_cast<uint32_t>(session));
    if (options_.slo_monitor != nullptr) options_.slo_monitor->ObserveShed();
  }
  return admitted;
}

void EdgeFleet::DrainSubmitted() {
  std::unique_lock<std::mutex> lock(admit_mu_);
  drain_cv_.wait(lock,
                 [&] { return admit_queue_.empty() && serving_now_ == 0; });
}

void EdgeFleet::WorkerLoop() {
  for (;;) {
    std::vector<Submission> chunk;
    {
      std::unique_lock<std::mutex> lock(admit_mu_);
      admit_cv_.wait(lock,
                     [&] { return stopping_ || !admit_queue_.empty(); });
      if (stopping_) return;  // backlog abandoned; we are being destroyed
      // Bulk-pop up to max_batch: under backlog the chunk IS the batch, so
      // batch size tracks queue depth deterministically instead of relying
      // on workers colliding inside the combiner (which never happens on a
      // single-core host).
      const size_t take = std::min(options_.max_batch, admit_queue_.size());
      chunk.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        chunk.push_back(std::move(admit_queue_.front()));
        admit_queue_.pop_front();
      }
      serving_now_ += chunk.size();
      Metrics().queue_depth->Set(static_cast<double>(admit_queue_.size()));
    }
    const uint64_t dequeue_ns = obs::RequestContext::NowNs();
    for (Submission& sub : chunk) {
      sub.ctx.StampAt(obs::RequestStage::kDequeue, dequeue_ns);
      Metrics().queue_wait_us->Record(
          sub.ctx.StageUs(obs::RequestStage::kAdmit,
                          obs::RequestStage::kDequeue),
          sub.ctx.id);
    }
    const size_t served = chunk.size();
    ServeChunk(std::move(chunk));
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      serving_now_ -= served;
      if (admit_queue_.empty() && serving_now_ == 0) drain_cv_.notify_all();
    }
  }
}

void EdgeFleet::ServeChunk(std::vector<Submission> chunk) {
  // The span opens at the chunk's shared dequeue stamp so the per-request
  // flow steps (also stamped at dequeue) land inside the slice.
  const uint64_t dequeue_ns =
      chunk.empty() ? obs::RequestContext::NowNs()
                    : chunk.front().ctx.At(obs::RequestStage::kDequeue);
  obs::TraceSpan span("EdgeFleet::ServeChunk", dequeue_ns);
  // One deployment pinned for the whole chunk: all its requests share it,
  // so the combiner's same-deployment FIFO prefix rule stacks them into a
  // single batched forward (possibly merged with other callers' requests).
  std::shared_ptr<const Deployment> dep = CurrentDeployment();
  std::vector<PendingRequest> requests(chunk.size());
  std::vector<PendingRequest*> pointers;
  pointers.reserve(chunk.size());
  for (size_t i = 0; i < chunk.size(); ++i) {
    Metrics().requests->Increment();
    requests[i].features = &chunk[i].features;
    requests[i].deployment = dep;
    requests[i].ctx = &chunk[i].ctx;
    // No flow step here: the dequeue hop is already visible as this
    // ServeChunk slice (opened at the dequeue stamp) on the worker's track,
    // and the same worker emits the flow finish at publish. One marker per
    // thread role keeps the per-request trace cost inside the 2% budget.
    pointers.push_back(&requests[i]);
  }
  {
    obs::ScopedTimer classify_timer(Metrics().classify_us);
    EnqueueAndServe(pointers);
  }
  // Classification-only path: stats and last_prediction update, but the
  // smoother / drift monitor / journal are stream-ordered consumers — an
  // open-loop window has no position in the session's frame stream, so
  // feeding them here would corrupt their temporal semantics.
  for (size_t i = 0; i < chunk.size(); ++i) {
    Session& s = *sessions_[chunk[i].session];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      ++s.stats.windows;
      Metrics().windows->Increment();
      if (requests[i].status.ok()) {
        ++s.stats.predictions;
        Metrics().predictions->Increment();
        s.last = Nameify(dep->registry, requests[i].prediction);
      }
    }
    PublishObservability(chunk[i].ctx, requests[i], dep->version);
  }
}

// Stamps publish, records the five adjacent stage intervals (with the
// request id as the bucket exemplar), closes the trace flow, leaves a
// flight record, and feeds the SLO monitor. Runs outside the session mutex.
void EdgeFleet::PublishObservability(obs::RequestContext& ctx,
                                     const PendingRequest& request,
                                     uint64_t deployment_version) {
  using obs::RequestStage;
  ctx.Stamp(RequestStage::kPublish);
  const bool ok = request.status.ok();
  if (ok) {
    FleetMetrics& m = Metrics();
    m.stage_queue_us->Record(
        ctx.StageUs(RequestStage::kAdmit, RequestStage::kDequeue), ctx.id);
    m.stage_batch_wait_us->Record(
        ctx.StageUs(RequestStage::kDequeue, RequestStage::kEmbedStart),
        ctx.id);
    m.stage_embed_us->Record(
        ctx.StageUs(RequestStage::kEmbedStart, RequestStage::kEmbedEnd),
        ctx.id);
    m.stage_classify_us->Record(
        ctx.StageUs(RequestStage::kEmbedEnd, RequestStage::kClassifyEnd),
        ctx.id);
    m.stage_publish_us->Record(
        ctx.StageUs(RequestStage::kClassifyEnd, RequestStage::kPublish),
        ctx.id);
    m.e2e_us->Record(ctx.EndToEndUs(), ctx.id);
  }
  obs::TraceFlowEndAt(kRequestFlow, ctx.id,
                      ctx.At(RequestStage::kPublish));

  obs::FlightRecord record;
  record.id = ctx.id;
  record.session = ctx.session;
  record.batch_size = request.batch_size;
  record.deployment_version = deployment_version;
  record.outcome = ok ? obs::FlightRecord::Outcome::kOk
                      : obs::FlightRecord::Outcome::kError;
  record.stage_ns = ctx.stage_ns;
  Recorder(options_).Record(record);

  if (options_.slo_monitor != nullptr) {
    if (ok) {
      options_.slo_monitor->ObserveLatency(ctx.EndToEndUs());
    } else {
      options_.slo_monitor->ObserveError();
    }
  }
}

// -- Streaming ----------------------------------------------------------------

Result<std::optional<core::NamedPrediction>> EdgeFleet::PushFrame(
    size_t session, const sensors::Frame& frame) {
  if (session >= sessions_.size()) {
    return Status::InvalidArgument("no such session: " +
                                   std::to_string(session));
  }
  Session& s = *sessions_[session];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.stats.frames;
  Metrics().frames->Increment();

  std::shared_ptr<const Deployment> dep = CurrentDeployment();
  if (s.deployment_version != dep->version) {
    // A promotion landed since this session's last frame: stale stream
    // context (a half-filled window, smoother votes, drift evidence) would
    // straddle two models. Same semantics as EdgeRuntime::CommitUpdate; the
    // journal intentionally survives — it is a user-facing ledger.
    s.stream.clear();
    s.pending_skip = 0;
    if (s.smoother != nullptr) s.smoother->Reset();
    if (s.drift != nullptr) s.drift->Reset();
    s.deployment_version = dep->version;
    Metrics().session_resets->Increment();
  }

  if (s.pending_skip > 0) {
    --s.pending_skip;
    return std::optional<core::NamedPrediction>{};
  }
  s.stream.push_back(frame);
  const auto& seg = dep->pipeline.config().segmentation;
  if (s.stream.size() < seg.window_samples) {
    return std::optional<core::NamedPrediction>{};
  }

  Matrix window(seg.window_samples, sensors::kNumChannels);
  for (size_t r = 0; r < seg.window_samples; ++r) {
    const sensors::Frame& f = s.stream[r];
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      window.At(r, c) = f[c];
    }
  }
  const size_t advance = std::min<size_t>(seg.stride, s.stream.size());
  s.stream.erase(s.stream.begin(), s.stream.begin() + advance);
  s.pending_skip = seg.stride - advance;
  ++s.stats.windows;
  Metrics().windows->Increment();

  // Featurization is const and thread-safe: it runs right here on the
  // session thread. Only the backbone forward goes through the batcher.
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> features,
                           dep->pipeline.ProcessWindow(window));
  core::Prediction prediction;
  {
    obs::ScopedTimer classify_timer(Metrics().classify_us);
    MAGNETO_ASSIGN_OR_RETURN(prediction,
                             ClassifyBatched(dep, features));
  }
  ++s.stats.predictions;
  Metrics().predictions->Increment();

  core::NamedPrediction named = Nameify(dep->registry, prediction);
  if (s.smoother != nullptr) named = s.smoother->Push(named);
  if (s.drift != nullptr) s.drift->Observe(named.prediction);
  if (s.journal != nullptr) s.journal->Record(named);
  s.last = named;
  return std::optional<core::NamedPrediction>(std::move(named));
}

// -- Introspection ------------------------------------------------------------

FleetSessionStats EdgeFleet::session_stats(size_t session) const {
  const Session& s = *sessions_[session];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

std::optional<core::NamedPrediction> EdgeFleet::last_prediction(
    size_t session) const {
  const Session& s = *sessions_[session];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.last;
}

const core::ActivityJournal* EdgeFleet::journal(size_t session) const {
  return sessions_[session]->journal.get();
}

bool EdgeFleet::Drifting(size_t session) const {
  const Session& s = *sessions_[session];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.drift != nullptr && s.drift->drifting();
}

}  // namespace magneto::platform
