#ifndef MAGNETO_PLATFORM_NETWORK_LINK_H_
#define MAGNETO_PLATFORM_NETWORK_LINK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "platform/fault_injector.h"

namespace magneto::platform {

/// Transfer direction, from the edge device's point of view.
enum class Direction : uint8_t {
  kUplink = 0,    ///< edge -> cloud
  kDownlink = 1,  ///< cloud -> edge
};

/// What a transfer carries — the privacy auditor keys on this.
enum class PayloadKind : uint8_t {
  kUserData = 0,       ///< raw or derived user sensor data
  kModelArtifact = 1,  ///< pre-trained bundle, weights, prototypes
  kControl = 2,        ///< requests, acks
  kResult = 3,         ///< inference results
};

/// One simulated transfer.
struct TransferRecord {
  Direction direction;
  PayloadKind kind;
  size_t bytes;
  double seconds;  ///< simulated wall time of this transfer
};

/// What arrived at the far end of one payload-carrying send.
struct Delivery {
  bool delivered = false;              ///< false: dropped entirely
  FaultKind fault = FaultKind::kNone;  ///< what the injector did
  std::string payload;                 ///< possibly truncated / bit-flipped
  double seconds = 0.0;  ///< simulated time spent (paid even on a drop)
};

/// A deterministic latency/bandwidth model of the user-cloud connection.
///
/// Transfer time = one-way latency + bytes / bandwidth. Every transfer is
/// logged so the `PrivacyAuditor` can verify Definition 1 (no user data from
/// edge to cloud) and the Figure-1 benchmark can report exact byte counts.
///
/// An optional `FaultInjector` makes the link lossy: `SendPayload` runs each
/// payload through the injector's per-transfer decision (drop / truncate /
/// bit-flip / delay). The byte-count-only `Transfer` is unaffected by faults.
///
/// Counter semantics: `Reset()` clears only this link's transfer ledger
/// (`records()` and the `TotalBytes`/`TotalSeconds` sums derived from it).
/// The process-wide obs counters (`net.*`) are cumulative across every link
/// and are NOT reset — use `obs::Registry::ResetAll()` for that.
class NetworkLink {
 public:
  /// `rtt_ms`: round-trip time; `bandwidth_mbps`: megabits/second, shared by
  /// both directions.
  NetworkLink(double rtt_ms, double bandwidth_mbps);

  /// Simulates one transfer and returns its duration in seconds.
  double Transfer(Direction direction, PayloadKind kind, size_t bytes);

  /// Simulates sending a concrete payload, applying the configured fault
  /// injector (if any). `pay_latency = false` models a frame streamed over
  /// an already-open connection: it pays serialization time only, not the
  /// one-way latency (the chunked transport uses this for back-to-back
  /// chunks; a retry re-opens the stream and pays latency again).
  Delivery SendPayload(Direction direction, PayloadKind kind,
                       std::string payload, bool pay_latency = true);

  /// Transfer duration without recording (for what-if probes).
  double EstimateSeconds(size_t bytes) const;

  /// Makes the link lossy (nullptr restores a clean link).
  void SetFaultInjector(std::unique_ptr<FaultInjector> injector);
  FaultInjector* fault_injector() const { return injector_.get(); }

  double rtt_ms() const { return rtt_ms_; }
  double bandwidth_mbps() const { return bandwidth_mbps_; }

  const std::vector<TransferRecord>& records() const { return records_; }
  size_t TotalBytes(Direction direction) const;
  size_t TotalBytes(Direction direction, PayloadKind kind) const;
  double TotalSeconds() const;

  /// Clears the per-link ledger only; see the class comment for how this
  /// relates to the cumulative `net.*` obs counters.
  void Reset() { records_.clear(); }

 private:
  double rtt_ms_;
  double bandwidth_mbps_;
  std::vector<TransferRecord> records_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_NETWORK_LINK_H_
