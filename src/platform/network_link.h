#ifndef MAGNETO_PLATFORM_NETWORK_LINK_H_
#define MAGNETO_PLATFORM_NETWORK_LINK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace magneto::platform {

/// Transfer direction, from the edge device's point of view.
enum class Direction : uint8_t {
  kUplink = 0,    ///< edge -> cloud
  kDownlink = 1,  ///< cloud -> edge
};

/// What a transfer carries — the privacy auditor keys on this.
enum class PayloadKind : uint8_t {
  kUserData = 0,       ///< raw or derived user sensor data
  kModelArtifact = 1,  ///< pre-trained bundle, weights, prototypes
  kControl = 2,        ///< requests, acks
  kResult = 3,         ///< inference results
};

/// One simulated transfer.
struct TransferRecord {
  Direction direction;
  PayloadKind kind;
  size_t bytes;
  double seconds;  ///< simulated wall time of this transfer
};

/// A deterministic latency/bandwidth model of the user-cloud connection.
///
/// Transfer time = one-way latency + bytes / bandwidth. Every transfer is
/// logged so the `PrivacyAuditor` can verify Definition 1 (no user data from
/// edge to cloud) and the Figure-1 benchmark can report exact byte counts.
class NetworkLink {
 public:
  /// `rtt_ms`: round-trip time; `bandwidth_mbps`: megabits/second, shared by
  /// both directions.
  NetworkLink(double rtt_ms, double bandwidth_mbps);

  /// Simulates one transfer and returns its duration in seconds.
  double Transfer(Direction direction, PayloadKind kind, size_t bytes);

  /// Transfer duration without recording (for what-if probes).
  double EstimateSeconds(size_t bytes) const;

  double rtt_ms() const { return rtt_ms_; }
  double bandwidth_mbps() const { return bandwidth_mbps_; }

  const std::vector<TransferRecord>& records() const { return records_; }
  size_t TotalBytes(Direction direction) const;
  size_t TotalBytes(Direction direction, PayloadKind kind) const;
  double TotalSeconds() const;
  void Reset() { records_.clear(); }

 private:
  double rtt_ms_;
  double bandwidth_mbps_;
  std::vector<TransferRecord> records_;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_NETWORK_LINK_H_
