#include "platform/protocols.h"

#include <chrono>

#include "obs/trace.h"
#include "platform/bundle_transport.h"
#include "platform/energy.h"
#include "sensors/sensor_types.h"

namespace magneto::platform {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<ProtocolMetrics> CloudProtocol::Run(
    const std::vector<sensors::LabeledRecording>& stream,
    const preprocess::Pipeline& edge_pipeline, bool uplink_raw_windows) {
  if (!server_->pretrained()) {
    return Status::FailedPrecondition("cloud server not pretrained");
  }
  ProtocolMetrics metrics;
  metrics.protocol = uplink_raw_windows ? "cloud(raw)" : "cloud(features)";

  const size_t window_samples =
      edge_pipeline.config().segmentation.window_samples;
  const size_t raw_window_bytes =
      window_samples * sensors::kNumChannels * sizeof(float);

  size_t correct = 0;
  for (const sensors::LabeledRecording& labeled : stream) {
    // The edge still pays for preprocessing locally even in the cloud
    // baseline — it is device compute and burns device joules. (Leaving it
    // untimed kept cpu_joules at exactly 0 and silently flattered the cloud
    // column of the Figure-1 energy comparison.)
    const double pre0 = NowSeconds();
    MAGNETO_ASSIGN_OR_RETURN(std::vector<std::vector<float>> windows,
                             edge_pipeline.Process(labeled.recording));
    const double pre_s = NowSeconds() - pre0;
    metrics.compute_seconds += pre_s;
    metrics.total_latency_s += pre_s;
    for (const std::vector<float>& features : windows) {
      const size_t uplink_bytes = uplink_raw_windows
                                      ? raw_window_bytes
                                      : features.size() * sizeof(float);
      const double up_s =
          link_->Transfer(Direction::kUplink, PayloadKind::kUserData,
                          uplink_bytes);
      const double t0 = NowSeconds();
      MAGNETO_ASSIGN_OR_RETURN(core::NamedPrediction pred,
                               server_->RemoteInfer(features));
      const double server_s = NowSeconds() - t0;
      const double down_s = link_->Transfer(
          Direction::kDownlink, PayloadKind::kResult,
          CloudServer::kResultBytes);
      metrics.network_seconds += up_s + down_s;
      metrics.total_latency_s += up_s + server_s + down_s;
      ++metrics.windows;
      if (pred.prediction.activity == labeled.label) ++correct;
    }
  }
  if (metrics.windows > 0) {
    metrics.mean_window_latency_s =
        metrics.total_latency_s / static_cast<double>(metrics.windows);
    metrics.accuracy =
        static_cast<double>(correct) / static_cast<double>(metrics.windows);
  }
  metrics.uplink_user_bytes =
      link_->TotalBytes(Direction::kUplink, PayloadKind::kUserData);
  metrics.downlink_bytes = link_->TotalBytes(Direction::kDownlink);
  const EnergyModel energy;
  metrics.cpu_joules = energy.ComputeJoules(metrics.compute_seconds);
  metrics.radio_joules = energy.RadioJoules(metrics.network_seconds);
  return metrics;
}

Result<ProtocolMetrics> EdgeProtocol::Run(
    const std::vector<sensors::LabeledRecording>& stream) {
  obs::TraceSpan span("EdgeProtocol::Run");
  MAGNETO_ASSIGN_OR_RETURN(std::string bundle_bytes,
                           quantized_bundle_
                               ? server_->ServeQuantizedBundleBytes()
                               : server_->ServeBundleBytes());
  ProtocolMetrics metrics;
  metrics.protocol = quantized_bundle_ ? "edge(int8)" : "edge";
  // Provisioning goes through the fault-tolerant chunked transport: on a
  // clean link it costs one latency hit plus serialization (like a single
  // transfer, modulo chunk-header bytes); on a lossy link it retries with
  // backoff until the device holds a byte-identical bundle. The transport
  // emits a `net.delivery` flow (begin -> chunk steps -> commit/fail), which
  // this span encloses together with the device-side decode.
  BundleTransport transport(link_, TransportOptions{});
  MAGNETO_ASSIGN_OR_RETURN(
      std::string delivered,
      transport.Deliver(Direction::kDownlink, PayloadKind::kModelArtifact,
                        bundle_bytes));
  metrics.setup_latency_s = transport.report().seconds;
  metrics.network_seconds += metrics.setup_latency_s;

  MAGNETO_ASSIGN_OR_RETURN(
      EdgeDevice device,
      EdgeDevice::Provision(delivered, core::IncrementalOptions{}));
  core::EdgeModel& model = device.runtime().model();

  size_t correct = 0;
  for (const sensors::LabeledRecording& labeled : stream) {
    // Same accounting as the cloud loop: preprocessing is device compute.
    const double pre0 = NowSeconds();
    MAGNETO_ASSIGN_OR_RETURN(std::vector<std::vector<float>> windows,
                             model.pipeline().Process(labeled.recording));
    const double pre_s = NowSeconds() - pre0;
    metrics.compute_seconds += pre_s;
    metrics.total_latency_s += pre_s;
    for (const std::vector<float>& features : windows) {
      const double t0 = NowSeconds();
      MAGNETO_ASSIGN_OR_RETURN(core::NamedPrediction pred,
                               model.InferFeatures(features));
      const double compute_s = NowSeconds() - t0;
      metrics.compute_seconds += compute_s;
      metrics.total_latency_s += compute_s;
      ++metrics.windows;
      if (pred.prediction.activity == labeled.label) ++correct;
    }
  }
  if (metrics.windows > 0) {
    metrics.mean_window_latency_s =
        metrics.total_latency_s / static_cast<double>(metrics.windows);
    metrics.accuracy =
        static_cast<double>(correct) / static_cast<double>(metrics.windows);
  }
  metrics.uplink_user_bytes =
      link_->TotalBytes(Direction::kUplink, PayloadKind::kUserData);
  metrics.downlink_bytes = link_->TotalBytes(Direction::kDownlink);
  const EnergyModel energy;
  metrics.cpu_joules = energy.ComputeJoules(metrics.compute_seconds);
  metrics.radio_joules = energy.RadioJoules(metrics.network_seconds);
  return metrics;
}

}  // namespace magneto::platform
