#include "platform/fault_injector.h"

#include "common/logging.h"

namespace magneto::platform {

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kDelay:
      return "delay";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPolicy policy)
    : policy_(policy), rng_(policy.seed) {
  MAGNETO_CHECK(policy.drop_rate >= 0.0);
  MAGNETO_CHECK(policy.truncate_rate >= 0.0);
  MAGNETO_CHECK(policy.bit_flip_rate >= 0.0);
  MAGNETO_CHECK(policy.delay_rate >= 0.0);
  MAGNETO_CHECK(policy.total_rate() <= 1.0);
}

FaultDecision FaultInjector::Decide(size_t payload_bytes) {
  // One uniform draw selects the outcome; two more position it. Always
  // drawing all three keeps the stream alignment independent of which branch
  // fires, so changing one rate does not reshuffle every later decision.
  const double u = rng_.Uniform();
  const size_t offset = payload_bytes > 0 ? rng_.Index(payload_bytes) : 0;
  const uint8_t bit = static_cast<uint8_t>(rng_.UniformInt(0, 7));

  FaultDecision decision;
  double threshold = policy_.drop_rate;
  if (u < threshold) {
    decision.kind = FaultKind::kDrop;
    return decision;
  }
  threshold += policy_.truncate_rate;
  if (u < threshold) {
    decision.kind = FaultKind::kTruncate;
    decision.offset = offset;
    return decision;
  }
  threshold += policy_.bit_flip_rate;
  if (u < threshold) {
    decision.kind = FaultKind::kBitFlip;
    decision.offset = offset;
    decision.bit = bit;
    return decision;
  }
  threshold += policy_.delay_rate;
  if (u < threshold) {
    decision.kind = FaultKind::kDelay;
    decision.extra_seconds = policy_.delay_seconds;
    return decision;
  }
  return decision;
}

bool FaultInjector::Apply(const FaultDecision& decision, std::string* payload) {
  switch (decision.kind) {
    case FaultKind::kDrop:
      return false;
    case FaultKind::kTruncate:
      if (!payload->empty()) {
        payload->resize(decision.offset % payload->size());
      }
      return true;
    case FaultKind::kBitFlip:
      if (!payload->empty()) {
        (*payload)[decision.offset % payload->size()] ^=
            static_cast<char>(1u << (decision.bit & 7));
      }
      return true;
    case FaultKind::kNone:
    case FaultKind::kDelay:
      return true;
  }
  return true;
}

}  // namespace magneto::platform
