#ifndef MAGNETO_PLATFORM_PRIVACY_AUDITOR_H_
#define MAGNETO_PLATFORM_PRIVACY_AUDITOR_H_

#include <string>

#include "common/status.h"
#include "platform/network_link.h"

namespace magneto::platform {

/// Checks Definition 1 of the paper against a link's transfer log:
/// "no user data is allowed to be transferred from Edge to Cloud. However,
/// it is less restrict to pull data from Cloud to Edge."
class PrivacyAuditor {
 public:
  explicit PrivacyAuditor(const NetworkLink* link) : link_(link) {}

  /// Bytes of user data that crossed edge -> cloud. Must be zero for an
  /// edge-protocol deployment.
  size_t UserBytesUplinked() const;

  /// Bytes of model artifact (bundle) delivered cloud -> edge — the
  /// provisioning cost a quantized wire-v3 bundle shrinks ~4x. Includes
  /// transport retries/chunk overhead, i.e. what actually crossed the link.
  size_t BundleBytesDownlinked() const;

  /// kPermissionDenied with a byte count if any user data went uplink.
  Status Verify() const;

  /// Human-readable audit summary (per direction / payload kind).
  std::string Report() const;

 private:
  const NetworkLink* link_;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_PRIVACY_AUDITOR_H_
