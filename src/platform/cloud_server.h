#ifndef MAGNETO_PLATFORM_CLOUD_SERVER_H_
#define MAGNETO_PLATFORM_CLOUD_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cloud_initializer.h"
#include "core/edge_model.h"
#include "core/model_bundle.h"
#include "sensors/activity.h"
#include "sensors/synthetic_generator.h"

namespace magneto::platform {

/// The cloud side of both Figure-1 protocols.
///
/// For the *edge* protocol it plays its one legitimate role: run the offline
/// initialization and serve the resulting bundle bytes. For the *cloud*
/// (baseline) protocol it additionally hosts the model and answers per-window
/// inference requests — the architecture MAGNETO argues against.
///
/// ## Thread-safety contract
///
/// `Pretrain` / `AdoptBundle` are the single-writer phase: call exactly one
/// of them, once, before publishing the server to other threads. Every
/// serving method after that point is const and safe to call from any number
/// of threads concurrently:
///   * `ServeBundleBytes` reads the immutable fp32 encoding.
///   * `ServeQuantizedBundleBytes` builds the wire-v3 encoding exactly once
///     under a `std::once_flag` (concurrent first callers block until the
///     winner finishes) and serves the immutable cached bytes thereafter.
///   * `RemoteInfer` runs the server-side model through a thread-local
///     forward workspace — the backbone's `Forward` is const (PR 6), so N
///     inference requests share the weights with zero locks.
/// This is the contract the `CloudControlPlane` relies on when many
/// provisioning workers and inference frontends hit one tenant server.
class CloudServer {
 public:
  explicit CloudServer(core::CloudConfig config)
      : initializer_(std::move(config)) {}

  /// Offline step: trains on `corpus` and retains the model server-side.
  Status Pretrain(const std::vector<sensors::LabeledRecording>& corpus,
                  const sensors::ActivityRegistry& registry);

  /// Adopts an already-trained bundle (e.g. loaded from disk) instead of
  /// pretraining — the control-plane path where training happened earlier
  /// or elsewhere. Same single-writer rules as `Pretrain`.
  Status AdoptBundle(core::ModelBundle bundle);

  bool pretrained() const { return model_ != nullptr; }

  /// Serialised bundle for the cloud -> edge transfer. Requires Pretrain.
  Result<std::string> ServeBundleBytes() const;

  /// Wire-v3 quantized variant for bandwidth-constrained delivery: int8
  /// backbone (`compress::QuantizeBackbone`), NCM prototypes rebuilt through
  /// the quantized embedding and switched to int8 scans, support set shipped
  /// as int8 rows — roughly a quarter of the fp32 bundle's bytes. Built
  /// exactly once on first call (thread-safe), then served from the
  /// immutable cache. Requires Pretrain.
  Result<std::string> ServeQuantizedBundleBytes() const;

  /// Re-encodes a serialized fp32 (wire v2) bundle as the quantized wire-v3
  /// variant. Pure function of the bytes; the control plane uses it to build
  /// per-tenant registry artifacts without a live server.
  static Result<std::string> EncodeQuantizedBundle(
      const std::string& fp32_bytes);

  /// Cloud-protocol inference endpoint: classifies one preprocessed feature
  /// vector that the edge uplinked. Requires Pretrain. Thread-safe: the
  /// shared model is read-only here and scratch state is thread-local.
  Result<core::NamedPrediction> RemoteInfer(
      const std::vector<float>& features) const;

  /// Size in bytes of an inference reply (activity id + confidence).
  static constexpr size_t kResultBytes = 16;

 private:
  core::CloudInitializer initializer_;
  std::string bundle_bytes_;
  /// Lazy wire-v3 cache. `quant_once_` guards the one-time build; after the
  /// `call_once` both fields are immutable, so readers need no lock.
  mutable std::once_flag quant_once_;
  mutable std::string quantized_bundle_bytes_;
  mutable Status quant_status_ = Status::Ok();
  std::unique_ptr<core::EdgeModel> model_;  ///< server-side inference copy
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_CLOUD_SERVER_H_
