#ifndef MAGNETO_PLATFORM_CLOUD_SERVER_H_
#define MAGNETO_PLATFORM_CLOUD_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cloud_initializer.h"
#include "core/edge_model.h"
#include "sensors/activity.h"
#include "sensors/synthetic_generator.h"

namespace magneto::platform {

/// The cloud side of both Figure-1 protocols.
///
/// For the *edge* protocol it plays its one legitimate role: run the offline
/// initialization and serve the resulting bundle bytes. For the *cloud*
/// (baseline) protocol it additionally hosts the model and answers per-window
/// inference requests — the architecture MAGNETO argues against.
class CloudServer {
 public:
  explicit CloudServer(core::CloudConfig config)
      : initializer_(std::move(config)) {}

  /// Offline step: trains on `corpus` and retains the model server-side.
  Status Pretrain(const std::vector<sensors::LabeledRecording>& corpus,
                  const sensors::ActivityRegistry& registry);

  bool pretrained() const { return model_ != nullptr; }

  /// Serialised bundle for the cloud -> edge transfer. Requires Pretrain.
  Result<std::string> ServeBundleBytes() const;

  /// Wire-v3 quantized variant for bandwidth-constrained delivery: int8
  /// backbone (`compress::QuantizeBackbone`), NCM prototypes rebuilt through
  /// the quantized embedding and switched to int8 scans, support set shipped
  /// as int8 rows — roughly a quarter of the fp32 bundle's bytes. Built
  /// lazily on first call, then cached. Requires Pretrain.
  Result<std::string> ServeQuantizedBundleBytes();

  /// Cloud-protocol inference endpoint: classifies one preprocessed feature
  /// vector that the edge uplinked. Requires Pretrain.
  Result<core::NamedPrediction> RemoteInfer(const std::vector<float>& features);

  /// Size in bytes of an inference reply (activity id + confidence).
  static constexpr size_t kResultBytes = 16;

 private:
  core::CloudInitializer initializer_;
  std::string bundle_bytes_;
  std::string quantized_bundle_bytes_;      ///< lazy wire-v3 cache
  std::unique_ptr<core::EdgeModel> model_;  ///< server-side inference copy
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_CLOUD_SERVER_H_
