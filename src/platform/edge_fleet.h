#ifndef MAGNETO_PLATFORM_EDGE_FLEET_H_
#define MAGNETO_PLATFORM_EDGE_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/activity_journal.h"
#include "core/async_updater.h"
#include "core/drift_monitor.h"
#include "core/edge_model.h"
#include "core/incremental_learner.h"
#include "core/model_bundle.h"
#include "core/ncm_classifier.h"
#include "core/smoother.h"
#include "core/support_set.h"
#include "sensors/recording.h"
#include "sensors/sensor_types.h"

namespace magneto::platform {

/// Tuning knobs of the multi-session serving layer.
struct FleetOptions {
  /// Micro-batch cap: up to this many pending windows (across sessions) are
  /// stacked into one backbone forward. 1 disables cross-request batching.
  size_t max_batch = 8;
  double sample_rate_hz = sensors::kDefaultSampleRateHz;
  /// Open-set rejection threshold applied at classification (0 = off).
  double rejection_threshold = 0.0;
  /// Per-session temporal smoothing of the prediction stream.
  bool enable_smoothing = false;
  core::PredictionSmoother::Options smoother;
  /// Per-session drift monitoring of the emitted predictions.
  bool enable_drift_monitoring = false;
  core::DriftMonitor::Options drift;
  double drift_baseline_distance = 0.0;
  /// Per-session activity journals.
  bool enable_journal = false;
  /// Options for background incremental updates started via BeginLearn.
  core::IncrementalOptions update_options;
};

/// Per-session lifetime counters (mirror of core::RuntimeStats).
struct FleetSessionStats {
  size_t frames = 0;
  size_t windows = 0;
  size_t predictions = 0;
};

/// Multi-session edge serving: one process hosts N independent user sessions
/// over a single shared, immutable deployed bundle and the global ThreadPool
/// — the shape the paper's deployment implies once "all inference happens
/// on-device" meets a simulator (or an edge gateway) that must drive many
/// users at once.
///
/// ## Threading model & concurrency contract
///
/// Three kinds of state, three rules:
///
///  1. **Shared immutable deployment** — pipeline, backbone, NCM classifier,
///     registry, support set. Held as `shared_ptr<const Deployment>` and
///     never mutated after construction; every reader works off a snapshot
///     it pins with its own reference. The one asterisk is the backbone:
///     `nn::Sequential::Forward` caches activations for backward, so raw
///     forwards are not concurrently callable. The fleet therefore funnels
///     *all* embedding forwards through the micro-batcher below, which runs
///     one stacked forward at a time (guarded by the deployment's own
///     mutex) while the GEMM inside fans out across the global ThreadPool.
///  2. **Per-session mutable state** — stream buffer, smoother, drift
///     monitor, journal, stats. Guarded by a per-session mutex; sessions
///     never touch each other's state, so S sessions classify concurrently
///     with zero shared-state contention outside the batcher handoff.
///  3. **Copy-on-swap promotion** — `PromoteBundle` (or `PromoteUpdate`,
///     which takes an `AsyncUpdater` outcome) builds a complete new
///     deployment and swaps the shared pointer. In-flight classifications
///     keep the snapshot they pinned and finish on the old model; no
///     request ever observes a half-updated deployment and nothing stalls.
///     A session notices the new version on its next `PushFrame` and resets
///     its stream context (same semantics as `EdgeRuntime::CommitUpdate`).
///
/// ## Cross-request micro-batching
///
/// A session thread that completes a window featurizes it (thread-safe,
/// const pipeline), enqueues the feature vector, and the first thread to
/// find no active leader becomes the batch leader: it drains up to
/// `max_batch` pending requests, stacks them into one matrix, runs a single
/// `Embed` forward (the same stacking trick `NcmClassifier::FromSupportSet`
/// uses for support-set re-embedding), classifies each row, publishes the
/// results, and steps down once its own request is served. Row-independent
/// kernels (the PR 1 determinism contract) make every per-window result
/// bit-identical regardless of which batch it landed in — so per-session
/// prediction streams are reproducible at any thread count and batch size.
///
/// Calls on *different* sessions may race freely. Calls on the *same*
/// session are serialized by the session mutex; drive each session from one
/// logical producer for meaningful frame ordering.
class EdgeFleet {
 public:
  /// Boots `num_sessions` sessions over the deployed bundle. Fails on an
  /// unfitted pipeline, an empty classifier, or zero sessions.
  static Result<std::unique_ptr<EdgeFleet>> Create(core::ModelBundle bundle,
                                                   size_t num_sessions,
                                                   FleetOptions options = {});

  ~EdgeFleet();
  EdgeFleet(const EdgeFleet&) = delete;
  EdgeFleet& operator=(const EdgeFleet&) = delete;

  size_t num_sessions() const { return sessions_.size(); }

  /// Feeds one frame into `session`'s stream. Returns a prediction whenever
  /// the frame completes a window; otherwise nullopt. Blocks while the
  /// window's embedding rides a micro-batch.
  Result<std::optional<core::NamedPrediction>> PushFrame(
      size_t session, const sensors::Frame& frame);

  // -- Bundle promotion (copy-on-swap) ----------------------------------------

  /// Atomically replaces the shared deployment. In-flight classifications
  /// finish on the deployment they pinned; subsequent windows use the new
  /// one. Sessions reset their stream context on their next PushFrame.
  Status PromoteBundle(core::ModelBundle bundle);

  /// Snapshots the current deployment and learns `name` on a background
  /// thread (the sessions keep serving the current model meanwhile).
  Status BeginLearn(const std::string& name,
                    std::vector<sensors::Recording> recordings);

  /// True while a background update is in flight or awaiting promotion.
  bool UpdatePending() const;
  /// True once the background update finished and PromoteUpdate won't block.
  bool UpdateReady() const;

  /// Blocks for the background update if needed and promotes its result.
  /// On training failure the current deployment stays live.
  Result<core::UpdateReport> PromoteUpdate();

  // -- Introspection ----------------------------------------------------------

  /// Monotone deployment version; starts at 1, +1 per promotion.
  uint64_t deployment_version() const;

  FleetSessionStats session_stats(size_t session) const;
  std::optional<core::NamedPrediction> last_prediction(size_t session) const;
  /// The session's journal, or nullptr when journals are disabled.
  const core::ActivityJournal* journal(size_t session) const;
  /// True while the session's armed drift monitor recommends calibration.
  bool Drifting(size_t session) const;

  /// Deep-copies the current shared deployment into a transferable bundle.
  core::ModelBundle ToBundle() const;

 private:
  /// The immutable-shared half of the fleet. Logically const; the backbone
  /// is `mutable` behind `embed_mu_` only because `Forward` caches
  /// activations (see the class comment).
  struct Deployment {
    Deployment(core::ModelBundle bundle, uint64_t version);

    /// One stacked forward, serialized per deployment. Concurrent batches
    /// against *different* deployments (old pinned + newly promoted) do not
    /// block each other.
    Matrix Embed(const Matrix& features) const;

    /// Deep copy for background-update snapshots.
    core::EdgeModel SnapshotModel() const;

    /// Deep copy of the backbone weights (for ToBundle).
    nn::Sequential CloneBackbone() const;

    preprocess::Pipeline pipeline;
    core::NcmClassifier classifier;
    sensors::ActivityRegistry registry;
    core::SupportSet support{200, core::SelectionStrategy::kHerding};
    size_t input_dim = 0;  ///< backbone input width, for batch validation
    uint64_t version = 0;

   private:
    mutable std::mutex embed_mu_;
    mutable nn::Sequential backbone_;
  };

  /// One pending classification handed to the micro-batcher. The request
  /// pins the deployment that featurized its window, so a window is always
  /// classified by the matching backbone even when a promotion lands while
  /// it queues.
  struct PendingRequest {
    const std::vector<float>* features = nullptr;
    std::shared_ptr<const Deployment> deployment;
    core::Prediction prediction;
    Status status = Status::Ok();
    bool done = false;  ///< guarded by batch_mu_
  };

  struct Session {
    mutable std::mutex mu;
    std::deque<sensors::Frame> stream;
    size_t pending_skip = 0;
    std::unique_ptr<core::PredictionSmoother> smoother;
    std::unique_ptr<core::DriftMonitor> drift;
    std::unique_ptr<core::ActivityJournal> journal;
    FleetSessionStats stats;
    std::optional<core::NamedPrediction> last;
    uint64_t deployment_version = 0;  ///< last version this session saw
  };

  EdgeFleet(core::ModelBundle bundle, size_t num_sessions,
            FleetOptions options);

  std::shared_ptr<const Deployment> CurrentDeployment() const;
  void InstallDeployment(std::shared_ptr<const Deployment> deployment);

  /// Enqueues `features` (pinned to `deployment`) and blocks until a
  /// micro-batch (possibly led by this thread) classifies it.
  Result<core::Prediction> ClassifyBatched(
      std::shared_ptr<const Deployment> deployment,
      const std::vector<float>& features);

  /// Embeds + classifies one drained batch (all pinned to the same
  /// deployment). Runs without batch_mu_ held.
  void ServeBatch(const std::vector<PendingRequest*>& batch);

  FleetOptions options_;
  std::vector<std::unique_ptr<Session>> sessions_;

  mutable std::mutex deploy_mu_;
  std::shared_ptr<const Deployment> deployment_;  ///< guarded by deploy_mu_
  std::atomic<uint64_t> next_version_{2};  ///< version 1 = the Create bundle

  mutable std::mutex update_mu_;               ///< guards updater_ creation
  std::unique_ptr<core::AsyncUpdater> updater_;  ///< lazily created

  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<PendingRequest*> batch_queue_;  ///< guarded by batch_mu_
  bool leader_active_ = false;               ///< guarded by batch_mu_
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_EDGE_FLEET_H_
