#ifndef MAGNETO_PLATFORM_EDGE_FLEET_H_
#define MAGNETO_PLATFORM_EDGE_FLEET_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/request_context.h"
#include "core/activity_journal.h"
#include "core/async_updater.h"
#include "core/drift_monitor.h"
#include "core/edge_model.h"
#include "core/incremental_learner.h"
#include "core/model_bundle.h"
#include "core/ncm_classifier.h"
#include "core/smoother.h"
#include "core/support_set.h"
#include "sensors/recording.h"
#include "sensors/sensor_types.h"

namespace magneto::obs {
class FlightRecorder;
class SloMonitor;
}  // namespace magneto::obs

namespace magneto::platform {

/// Tuning knobs of the multi-session serving layer.
struct FleetOptions {
  /// Micro-batch cap: up to this many pending windows (across sessions) are
  /// stacked into one backbone forward. 1 disables cross-request batching.
  size_t max_batch = 8;
  /// Micro-batches allowed in flight simultaneously. Each in-flight batch
  /// runs on its own leader thread with its own forward workspace — the
  /// backbone is immutable and its Forward is const, so >1 trades batch
  /// size for embed parallelism. 1 reproduces strictly serial batching.
  size_t max_concurrent_batches = 1;
  /// Bound of the open-loop admission queue (`SubmitWindow`). Arrivals past
  /// capacity are shed (rejected), never queued — an open-loop generator
  /// does not slow down, so an unbounded queue would grow without limit
  /// whenever offered load exceeds service capacity.
  size_t admission_capacity = 256;
  /// Worker threads draining the admission queue into the micro-batcher.
  /// 0 disables the open-loop path (`SubmitWindow` then check-fails).
  size_t serve_threads = 0;
  double sample_rate_hz = sensors::kDefaultSampleRateHz;
  /// Open-set rejection threshold applied at classification (0 = off).
  double rejection_threshold = 0.0;
  /// Approximate prototype index applied to each deployment's classifier
  /// (enable = false keeps exact scans). Promotion builds the new
  /// deployment's index *before* the copy-on-swap pointer flip, so serving
  /// threads never observe a half-built index — and in-flight requests keep
  /// scanning the index of the deployment they pinned.
  core::AnnOptions ann;
  /// Per-session temporal smoothing of the prediction stream.
  bool enable_smoothing = false;
  core::PredictionSmoother::Options smoother;
  /// Per-session drift monitoring of the emitted predictions.
  bool enable_drift_monitoring = false;
  core::DriftMonitor::Options drift;
  double drift_baseline_distance = 0.0;
  /// Per-session activity journals.
  bool enable_journal = false;
  /// Options for background incremental updates started via BeginLearn.
  core::IncrementalOptions update_options;
  /// Flight recorder receiving one record per open-loop request (published,
  /// shed, or errored). nullptr = the process-wide
  /// `obs::FlightRecorder::Global()`; tests inject their own.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Optional SLO monitor fed from the open-loop publish path
  /// (latency / shed / error observations). nullptr = disabled.
  obs::SloMonitor* slo_monitor = nullptr;
};

/// Per-session lifetime counters (mirror of core::RuntimeStats).
struct FleetSessionStats {
  size_t frames = 0;
  size_t windows = 0;
  size_t predictions = 0;
  /// Open-loop path only: windows admitted via SubmitWindow, and windows
  /// shed because the admission queue was full.
  size_t submitted = 0;
  size_t rejected = 0;
};

/// Multi-session edge serving: one process hosts N independent user sessions
/// over a single shared, immutable deployed bundle and the global ThreadPool
/// — the shape the paper's deployment implies once "all inference happens
/// on-device" meets a simulator (or an edge gateway) that must drive many
/// users at once.
///
/// ## Threading model & concurrency contract
///
/// Three kinds of state, three rules:
///
///  1. **Shared immutable deployment** — pipeline, backbone, NCM classifier,
///     registry, support set. Held as `shared_ptr<const Deployment>` and
///     never mutated after construction; every reader works off a snapshot
///     it pins with its own reference. The backbone included: all
///     forward-pass state lives in a caller-owned `nn::ForwardWorkspace`,
///     so `Sequential::Forward` is const and any number of threads embed
///     through the same weights concurrently, each with its own
///     (thread-local) workspace. There is no embedding mutex anywhere in
///     the fleet.
///  2. **Per-session mutable state** — stream buffer, smoother, drift
///     monitor, journal, stats. Guarded by a per-session mutex; sessions
///     never touch each other's state, so S sessions classify concurrently
///     with zero shared-state contention outside the batcher handoff.
///  3. **Copy-on-swap promotion** — `PromoteBundle` (or `PromoteUpdate`,
///     which takes an `AsyncUpdater` outcome) builds a complete new
///     deployment and swaps the shared pointer. In-flight classifications
///     keep the snapshot they pinned and finish on the old model; no
///     request ever observes a half-updated deployment and nothing stalls.
///     A session notices the new version on its next `PushFrame` and resets
///     its stream context (same semantics as `EdgeRuntime::CommitUpdate`).
///
/// ## Cross-request micro-batching
///
/// A thread that needs a classification enqueues its feature vector and the
/// first thread to find a free leader slot becomes a batch leader: it
/// drains up to `max_batch` pending requests, stacks them into one matrix,
/// runs a single stacked forward through its own workspace (the same
/// stacking trick `NcmClassifier::FromSupportSet` uses for support-set
/// re-embedding), classifies each row, publishes the results, and steps
/// down once its own request is served. Up to `max_concurrent_batches`
/// leaders embed in parallel — the const backbone makes the stacked
/// forwards lock-free. Row-independent kernels (the PR 1 determinism
/// contract) make every per-window result bit-identical regardless of
/// which batch it landed in — so per-session prediction streams are
/// reproducible at any thread count and batch size.
///
/// ## Open-loop admission (load generation)
///
/// `PushFrame` is closed-loop: the caller blocks for its prediction, so
/// offered load can never exceed service capacity and micro-batches rarely
/// form unless many session threads collide. `SubmitWindow` is the
/// open-loop half: a non-blocking admission of one pre-featurized window
/// into a bounded queue drained by `serve_threads` workers. When arrivals
/// outpace service the queue fills and further arrivals are shed
/// (`false`, `fleet.rejected`) — and the backlog is exactly what lets the
/// workers drain multi-window micro-batches. Submitted windows take the
/// classification-only path: session stats and `last_prediction` update,
/// but the smoother / drift monitor / journal are stream-ordered consumers
/// and stay untouched. Metrics: `fleet.queue_depth` (gauge),
/// `fleet.queue_wait_us` (histogram), `fleet.rejected` (counter).
///
/// ## Request-scoped observability (open-loop path)
///
/// Every admitted window carries an `obs::RequestContext`: a monotonic id
/// plus per-stage steady-clock stamps (admit / dequeue / embed start+end /
/// classify / publish). The id threads one request through three sinks —
/// trace flow events (`fleet.request` s/t/f markers across the admission,
/// worker, combiner, and publish threads), `fleet.stage.*` histograms whose
/// bucket exemplars carry the id, and one `obs::FlightRecord` per request
/// (including sheds, which also drive the recorder's shed-burst anomaly).
/// Adjacent stages partition the end-to-end latency exactly, so the stage
/// histograms' means sum to the e2e mean. See DESIGN.md "Request tracing,
/// flight recorder & SLOs".
///
/// Calls on *different* sessions may race freely. Calls on the *same*
/// session are serialized by the session mutex; drive each session from one
/// logical producer for meaningful frame ordering.
class EdgeFleet {
 public:
  /// Boots `num_sessions` sessions over the deployed bundle. Fails on an
  /// unfitted pipeline, an empty classifier, or zero sessions.
  static Result<std::unique_ptr<EdgeFleet>> Create(core::ModelBundle bundle,
                                                   size_t num_sessions,
                                                   FleetOptions options = {});

  ~EdgeFleet();
  EdgeFleet(const EdgeFleet&) = delete;
  EdgeFleet& operator=(const EdgeFleet&) = delete;

  size_t num_sessions() const { return sessions_.size(); }

  /// Feeds one frame into `session`'s stream. Returns a prediction whenever
  /// the frame completes a window; otherwise nullopt. Blocks while the
  /// window's embedding rides a micro-batch.
  Result<std::optional<core::NamedPrediction>> PushFrame(
      size_t session, const sensors::Frame& frame);

  // -- Open-loop admission ------------------------------------------------------

  /// Admits one pre-featurized window for `session` into the bounded
  /// queue. Never blocks: returns false (and sheds the window) when the
  /// queue is at `admission_capacity` or `session` is out of range.
  /// Requires `serve_threads > 0`. See the class comment for what the
  /// served path does and does not update.
  bool SubmitWindow(size_t session, std::vector<float> features);

  /// Blocks until every admitted window has been served (queue empty and
  /// no submission in flight).
  void DrainSubmitted();

  // -- Bundle promotion (copy-on-swap) ----------------------------------------

  /// Atomically replaces the shared deployment. In-flight classifications
  /// finish on the deployment they pinned; subsequent windows use the new
  /// one. Sessions reset their stream context on their next PushFrame.
  Status PromoteBundle(core::ModelBundle bundle);

  /// Snapshots the current deployment and learns `name` on a background
  /// thread (the sessions keep serving the current model meanwhile).
  Status BeginLearn(const std::string& name,
                    std::vector<sensors::Recording> recordings);

  /// True while a background update is in flight or awaiting promotion.
  bool UpdatePending() const;
  /// True once the background update finished and PromoteUpdate won't block.
  bool UpdateReady() const;

  /// Blocks for the background update if needed and promotes its result.
  /// On training failure the current deployment stays live.
  Result<core::UpdateReport> PromoteUpdate();

  // -- Introspection ----------------------------------------------------------

  /// Monotone deployment version; starts at 1, +1 per promotion.
  uint64_t deployment_version() const;

  FleetSessionStats session_stats(size_t session) const;
  std::optional<core::NamedPrediction> last_prediction(size_t session) const;
  /// The session's journal, or nullptr when journals are disabled.
  const core::ActivityJournal* journal(size_t session) const;
  /// True while the session's armed drift monitor recommends calibration.
  bool Drifting(size_t session) const;

  /// Deep-copies the current shared deployment into a transferable bundle.
  core::ModelBundle ToBundle() const;

 private:
  /// The immutable-shared half of the fleet. Genuinely const after
  /// construction — the backbone's Forward is const (state lives in the
  /// caller's workspace), so no mutex or `mutable` is needed anywhere.
  struct Deployment {
    Deployment(core::ModelBundle bundle, uint64_t version,
               const core::AnnOptions& ann);

    /// Deep copy for background-update snapshots.
    core::EdgeModel SnapshotModel() const;

    preprocess::Pipeline pipeline;
    nn::Sequential backbone;
    core::NcmClassifier classifier;
    sensors::ActivityRegistry registry;
    core::SupportSet support{200, core::SelectionStrategy::kHerding};
    size_t input_dim = 0;  ///< backbone input width, for batch validation
    uint64_t version = 0;
  };

  /// One pending classification handed to the micro-batcher. The request
  /// pins the deployment that featurized its window, so a window is always
  /// classified by the matching backbone even when a promotion lands while
  /// it queues.
  struct PendingRequest {
    const std::vector<float>* features = nullptr;
    std::shared_ptr<const Deployment> deployment;
    core::Prediction prediction;
    Status status = Status::Ok();
    bool done = false;  ///< guarded by batch_mu_
    /// Request-scoped tracing context (open-loop path only; closed-loop
    /// PushFrame requests carry none). Owned by the worker's chunk; the
    /// serving leader stamps embed/classify stages through this pointer.
    obs::RequestContext* ctx = nullptr;
    /// Size of the micro-batch this request was embedded in (set by
    /// ServeBatch; 0 = never reached a batch).
    uint32_t batch_size = 0;
  };

  /// One admitted open-loop window waiting for a worker. Timing lives in
  /// `ctx` (the kAdmit stamp is the enqueue time).
  struct Submission {
    size_t session = 0;
    std::vector<float> features;
    obs::RequestContext ctx;
  };

  struct Session {
    mutable std::mutex mu;
    std::deque<sensors::Frame> stream;
    size_t pending_skip = 0;
    std::unique_ptr<core::PredictionSmoother> smoother;
    std::unique_ptr<core::DriftMonitor> drift;
    std::unique_ptr<core::ActivityJournal> journal;
    FleetSessionStats stats;
    std::optional<core::NamedPrediction> last;
    uint64_t deployment_version = 0;  ///< last version this session saw
  };

  EdgeFleet(core::ModelBundle bundle, size_t num_sessions,
            FleetOptions options);

  std::shared_ptr<const Deployment> CurrentDeployment() const;
  void InstallDeployment(std::shared_ptr<const Deployment> deployment);

  /// Enqueues `features` (pinned to `deployment`) and blocks until a
  /// micro-batch (possibly led by this thread) classifies it.
  Result<core::Prediction> ClassifyBatched(
      std::shared_ptr<const Deployment> deployment,
      const std::vector<float>& features);

  /// Pushes `requests` into the micro-batcher and blocks until every one is
  /// classified, leading batches whenever a leader slot is free. The shared
  /// combining core of both serving paths: closed-loop callers bring one
  /// request, open-loop workers bring a whole backlog chunk, and requests
  /// from different callers coalesce into the same stacked forwards.
  void EnqueueAndServe(const std::vector<PendingRequest*>& requests);

  /// Embeds + classifies one drained batch (all pinned to the same
  /// deployment). Runs without batch_mu_ held; concurrent calls are safe
  /// (each serving thread embeds through its own workspace).
  void ServeBatch(const std::vector<PendingRequest*>& batch);

  /// Worker body: pops admitted windows — up to `max_batch` per pop, so a
  /// backlog turns directly into multi-window batches — and classifies them.
  void WorkerLoop();
  void ServeChunk(std::vector<Submission> chunk);

  /// Retires one open-loop request against every observability sink (stage
  /// histograms + exemplars, trace flow end, flight record, SLO monitor).
  void PublishObservability(obs::RequestContext& ctx,
                            const PendingRequest& request,
                            uint64_t deployment_version);

  FleetOptions options_;
  std::vector<std::unique_ptr<Session>> sessions_;

  mutable std::mutex deploy_mu_;
  std::shared_ptr<const Deployment> deployment_;  ///< guarded by deploy_mu_
  std::atomic<uint64_t> next_version_{2};  ///< version 1 = the Create bundle

  mutable std::mutex update_mu_;               ///< guards updater_ creation
  std::unique_ptr<core::AsyncUpdater> updater_;  ///< lazily created

  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<PendingRequest*> batch_queue_;  ///< guarded by batch_mu_
  size_t active_leaders_ = 0;                ///< guarded by batch_mu_

  std::mutex admit_mu_;
  std::condition_variable admit_cv_;  ///< workers wait for arrivals
  std::condition_variable drain_cv_;  ///< DrainSubmitted waits for quiesce
  std::deque<Submission> admit_queue_;  ///< guarded by admit_mu_
  size_t serving_now_ = 0;              ///< popped, not yet served
  bool stopping_ = false;               ///< guarded by admit_mu_
  std::vector<std::thread> workers_;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_EDGE_FLEET_H_
