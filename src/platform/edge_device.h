#ifndef MAGNETO_PLATFORM_EDGE_DEVICE_H_
#define MAGNETO_PLATFORM_EDGE_DEVICE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/edge_runtime.h"
#include "core/model_bundle.h"

namespace magneto::platform {

/// The device side of the deployment fabric: a phone-shaped wrapper that
/// provisions an `EdgeRuntime` from the bytes it pulled over the link.
class EdgeDevice {
 public:
  /// Deserialises the bundle and boots the runtime.
  static Result<EdgeDevice> Provision(
      const std::string& bundle_bytes, core::IncrementalOptions options,
      double sample_rate_hz = sensors::kDefaultSampleRateHz);

  core::EdgeRuntime& runtime() { return *runtime_; }
  const core::EdgeRuntime& runtime() const { return *runtime_; }

  /// Bytes of the bundle this device was provisioned from.
  size_t provisioned_bytes() const { return provisioned_bytes_; }

 private:
  explicit EdgeDevice(std::unique_ptr<core::EdgeRuntime> runtime,
                      size_t provisioned_bytes)
      : runtime_(std::move(runtime)), provisioned_bytes_(provisioned_bytes) {}

  std::unique_ptr<core::EdgeRuntime> runtime_;
  size_t provisioned_bytes_;
};

}  // namespace magneto::platform

#endif  // MAGNETO_PLATFORM_EDGE_DEVICE_H_
