#ifndef MAGNETO_COMMON_QGEMM_H_
#define MAGNETO_COMMON_QGEMM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace magneto {

/// Integer GEMM for the quantized edge path (§2.1: "quantizing weights to
/// reduce resource costs"). Activations are quantized dynamically — symmetric
/// per-row int8, scale = max|x| / 127 — then multiplied against int8
/// per-output-channel-scaled weights with int8×int8→int32 inner loops. The
/// scales fold back out once per output element:
///
///   out[r][j] = float(sum_i qx[r][i] * qw[i][j]) * (sx[r] * sw[j]) + bias[j]
///
/// Integer accumulation is exact and order-independent, so the parallel
/// kernel and the serial reference produce bit-identical outputs at any
/// `MAGNETO_THREADS` setting — the property the bit-comparison tests pin.

/// Largest inner dimension the int32 accumulators tolerate: every int8×int8
/// product has magnitude ≤ 127·127, so k products stay below 2^31 as long as
/// k ≤ 2^31 / 127². Callers with a larger k must use a widening path.
inline constexpr size_t kQGemmMaxK = (size_t{1} << 31) / (127 * 127);

/// A row-major int8 matrix with one symmetric scale per row; the dynamic
/// activation-side counterpart of the per-column `nn::QuantizedMatrix`.
/// Buffers are reused across calls to `QuantizeRowsInt8`.
struct QuantizedRows {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<int8_t> data;   ///< row-major, rows x cols
  std::vector<float> scales;  ///< per row
};

/// Quantizes `x` row by row: scale_r = max|x[r]| / 127 (1.0 for an all-zero
/// row), q = round(x / scale_r) clamped to [-127, 127]. Non-finite inputs
/// quantize deterministically rather than invoking UB: ±inf clamps to ±127,
/// NaN maps to 0, and neither contributes to the row scale.
void QuantizeRowsInt8(const Matrix& x, QuantizedRows* out);

/// Single-row form of `QuantizeRowsInt8` (classifier queries, prototypes).
/// Writes n int8 values to `q` and returns the symmetric scale.
float QuantizeRowInt8(const float* x, size_t n, int8_t* q);

/// out[r][j] = float(Σ_i a.data[r][i]·b[i][j]) · (a.scales[r]·b_scales[j]),
/// plus bias[j] when `bias` is non-null. `b` is row-major k×n (the layout
/// `nn::QuantizedMatrix` stores), `b_scales` has n entries. Partitioned over
/// output rows through the shared `ParallelFor` with the same flops-per-chunk
/// grain policy as the fp32 GEMM family. Requires a.cols == k ≤ kQGemmMaxK.
void QGemmInt8(const QuantizedRows& a, const int8_t* b, size_t k, size_t n,
               const float* b_scales, const float* bias, Matrix* out);

/// Serial scalar reference with the same quantized semantics — what fp32
/// arithmetic on the dequantized operands computes, with the scales hoisted
/// out of the exact integer sum. Bit-identical to `QGemmInt8` (shared
/// scale-folding epilogue); this is the `MAGNETO_QGEMM=off` path.
void QGemmInt8Reference(const QuantizedRows& a, const int8_t* b, size_t k,
                        size_t n, const float* b_scales, const float* bias,
                        Matrix* out);

/// Whether the parallel int8 kernel is active. Defaults to on; the
/// environment variable `MAGNETO_QGEMM=off` (read once, at first use) or
/// `SetQGemmEnabled(false)` selects the serial dequant reference instead.
bool QGemmEnabled();

/// Overrides the kernel selection (tests, benchmarks). Takes precedence over
/// the environment variable from the moment it is called.
void SetQGemmEnabled(bool enabled);

/// Exact int32 dot product of two int8 vectors (classifier scans). Requires
/// n ≤ kQGemmMaxK.
int32_t DotInt8(const int8_t* a, const int8_t* b, size_t n);

/// Exact Σ v[i]² for an int8 vector (precomputed exemplar norms). Requires
/// n ≤ kQGemmMaxK.
int32_t SquaredNormInt8(const int8_t* v, size_t n);

}  // namespace magneto

#endif  // MAGNETO_COMMON_QGEMM_H_
