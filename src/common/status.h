#ifndef MAGNETO_COMMON_STATUS_H_
#define MAGNETO_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace magneto {

/// Canonical error codes for the MAGNETO platform.
///
/// The set is intentionally small; most call sites only need to distinguish
/// "it worked" from a handful of actionable failure categories.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kIoError = 7,
  kResourceExhausted = 8,
  kUnimplemented = 9,
  kInternal = 10,
  kPermissionDenied = 11,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.
///
/// MAGNETO never throws exceptions across public API boundaries; fallible
/// operations return `Status` (or `Result<T>`, see result.h). The class is
/// cheap to copy in the common OK case (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define MAGNETO_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::magneto::Status _magneto_status_ = (expr);      \
    if (!_magneto_status_.ok()) return _magneto_status_; \
  } while (false)

}  // namespace magneto

#endif  // MAGNETO_COMMON_STATUS_H_
