#ifndef MAGNETO_COMMON_PARALLEL_H_
#define MAGNETO_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace magneto {

/// Shared intra-op parallel runtime.
///
/// One lazily-initialised global pool serves every hot path (GEMM, the
/// preprocessing pipeline, trainer batch assembly, classifier construction).
/// Work is expressed through `ParallelFor`, which splits [begin, end) into
/// chunks of at most `grain` indices. The chunk decomposition depends only on
/// (begin, end, grain) — never on the worker count — and every chunk covers a
/// disjoint index range, so any kernel whose per-index output is independent
/// of the partitioning produces bit-identical results at every thread count.
/// The serial fallback walks the exact same chunk sequence.
///
/// Thread count resolution, in priority order:
///   1. `SetParallelThreads(n)` (tests and benchmarks; takes effect on the
///      next ParallelFor),
///   2. the `MAGNETO_THREADS` environment variable, read once at first use,
///   3. `std::thread::hardware_concurrency()`.
///
/// Nested `ParallelFor` calls (from inside a worker) run serially inline —
/// the outer loop already owns the pool. Exceptions thrown by `fn` are
/// captured and rethrown on the calling thread after all chunks finish.
class ThreadPool {
 public:
  /// The process-wide pool. First call reads MAGNETO_THREADS and spawns
  /// workers; subsequent calls are a plain atomic load.
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the calling thread).
  size_t thread_count() const;

  /// Resizes the pool to `n` total lanes (min 1). Joins existing workers
  /// first; safe to call between parallel regions, not from inside one.
  void SetThreadCount(size_t n);

  /// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks of
  /// at most `grain` indices (grain 0 is treated as 1). Blocks until every
  /// chunk is done. The caller participates in the work. Empty ranges return
  /// immediately without invoking `fn`.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  explicit ThreadPool(size_t threads);

  struct Impl;
  Impl* impl_;
};

/// Convenience wrappers over ThreadPool::Global().
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);
size_t ParallelThreads();
void SetParallelThreads(size_t n);

}  // namespace magneto

#endif  // MAGNETO_COMMON_PARALLEL_H_
