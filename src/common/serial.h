#ifndef MAGNETO_COMMON_SERIAL_H_
#define MAGNETO_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace magneto {

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
uint32_t Crc32(const void* data, size_t size);

/// Appends little-endian binary encodings to an in-memory buffer.
///
/// This is the wire/disk format used for the `.magneto` model bundle — the
/// single artifact the cloud ships to the edge device. Format rules:
/// fixed-width little-endian primitives, u64 length-prefixed strings/blobs,
/// no padding. The writer is append-only; call `buffer()` to take the bytes.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// u64 length + raw bytes.
  void WriteString(const std::string& s);

  /// u64 count + packed f32 payload.
  void WriteF32Vector(const std::vector<float>& v);

  /// u64 count + packed i64 payload.
  void WriteI64Vector(const std::vector<int64_t>& v);

  /// u64 count + packed i8 payload (quantized weights).
  void WriteI8Vector(const std::vector<int8_t>& v);

  /// Raw bytes, no length prefix.
  void WriteBytes(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Consumes little-endian binary encodings from a byte buffer.
///
/// All readers return `Result<...>` and fail with `kCorruption` on truncated
/// input rather than reading out of bounds.
class BinaryReader {
 public:
  /// Does not own `data`; the buffer must outlive the reader.
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size), pos_(0) {}

  explicit BinaryReader(const std::string& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadF32Vector();
  Result<std::vector<int64_t>> ReadI64Vector();
  Result<std::vector<int8_t>> ReadI8Vector();

  /// Validate-before-allocate vector reads for untrusted payloads whose
  /// element count the caller already knows (e.g. from validated layer
  /// dimensions). The length prefix is compared against `expected` *before*
  /// any allocation; a mismatch returns Corruption without touching the
  /// heap, so a corrupt length field can never drive an oversized
  /// allocation.
  Result<std::vector<float>> ReadF32VectorExpected(uint64_t expected);
  Result<std::vector<int8_t>> ReadI8VectorExpected(uint64_t expected);

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Require(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Writes `contents` to `path` directly (open with trunc + write + flush).
/// NOT crash-safe: a crash or I/O fault mid-write destroys any previous
/// contents of `path`. Prefer `WriteFileAtomic` for anything irreplaceable.
Status WriteFile(const std::string& path, const std::string& contents);

/// Crash-safe file replacement: writes `contents` to `<path>.tmp`, flushes,
/// then renames over `path` (atomic on POSIX filesystems). A crash or fault
/// mid-write leaves the previous `path` intact — at worst a stale temp file
/// remains, which the next atomic write overwrites.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// The temp path `WriteFileAtomic(path, ...)` stages into.
std::string AtomicTempPath(const std::string& path);

/// Reads the whole file at `path`.
Result<std::string> ReadFile(const std::string& path);

namespace testing_internal {
/// Fault hook for persistence tests: `WriteFileAtomic` stops after writing
/// `n` bytes of content and returns kIoError, leaving the partial temp file
/// behind exactly as a power loss would. `SIZE_MAX` (the default) disables.
void SetMaxWriteBytesForTest(size_t n);
}  // namespace testing_internal

}  // namespace magneto

#endif  // MAGNETO_COMMON_SERIAL_H_
