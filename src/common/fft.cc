#include "common/fft.h"

#include <cmath>

#include "common/logging.h"

namespace magneto {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

size_t NextPowerOfTwo(size_t n) {
  MAGNETO_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  std::vector<std::complex<double>>& a = *data;
  const size_t n = a.size();
  MAGNETO_CHECK(n > 0 && (n & (n - 1)) == 0);

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (std::complex<double>& x : a) x /= static_cast<double>(n);
  }
}

namespace {

std::vector<std::complex<double>> PaddedComplex(const float* x, size_t n) {
  const size_t padded = NextPowerOfTwo(n);
  std::vector<std::complex<double>> data(padded);
  for (size_t i = 0; i < n; ++i) data[i] = x[i];
  return data;
}

}  // namespace

std::vector<double> MagnitudeSpectrum(const float* x, size_t n) {
  std::vector<std::complex<double>> data = PaddedComplex(x, n);
  Fft(&data);
  std::vector<double> mag(data.size() / 2 + 1);
  for (size_t k = 0; k < mag.size(); ++k) mag[k] = std::abs(data[k]);
  return mag;
}

std::vector<double> PowerSpectrum(const float* x, size_t n) {
  std::vector<std::complex<double>> data = PaddedComplex(x, n);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  Fft(&data);
  std::vector<double> power(data.size() / 2 + 1);
  for (size_t k = 0; k < power.size(); ++k) {
    power[k] = std::norm(data[k]) * inv_n;
  }
  return power;
}

namespace spectral {

double DominantFrequency(const std::vector<double>& power, double sample_rate,
                         size_t n_padded) {
  if (power.size() < 2) return 0.0;
  size_t best = 1;
  for (size_t k = 2; k < power.size(); ++k) {
    if (power[k] > power[best]) best = k;
  }
  return static_cast<double>(best) * sample_rate /
         static_cast<double>(n_padded);
}

double BandPower(const std::vector<double>& power, double sample_rate,
                 size_t n_padded, double lo_hz, double hi_hz) {
  double total = 0.0;
  for (size_t k = 1; k < power.size(); ++k) {
    const double freq = static_cast<double>(k) * sample_rate /
                        static_cast<double>(n_padded);
    if (freq >= lo_hz && freq < hi_hz) total += power[k];
  }
  return total;
}

double SpectralEntropy(const std::vector<double>& power) {
  double total = 0.0;
  for (size_t k = 1; k < power.size(); ++k) total += power[k];
  if (total <= 1e-20) return 0.0;
  double entropy = 0.0;
  for (size_t k = 1; k < power.size(); ++k) {
    const double p = power[k] / total;
    if (p > 1e-20) entropy -= p * std::log2(p);
  }
  return entropy;
}

double SpectralCentroid(const std::vector<double>& power, double sample_rate,
                        size_t n_padded) {
  double total = 0.0, weighted = 0.0;
  for (size_t k = 1; k < power.size(); ++k) {
    const double freq = static_cast<double>(k) * sample_rate /
                        static_cast<double>(n_padded);
    total += power[k];
    weighted += freq * power[k];
  }
  return total > 1e-20 ? weighted / total : 0.0;
}

}  // namespace spectral

}  // namespace magneto
