#include "common/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/parallel.h"

namespace magneto {

namespace {
std::atomic<uint64_t> g_matrix_allocations{0};
}  // namespace

void Matrix::BumpAllocations() {
  g_matrix_allocations.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Matrix::AllocationCount() {
  return g_matrix_allocations.load(std::memory_order_relaxed);
}

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  MAGNETO_CHECK(data_.size() == rows_ * cols_);
}

std::vector<float> Matrix::Row(size_t r) const {
  MAGNETO_CHECK(r < rows_);
  return std::vector<float>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<float>& values) {
  MAGNETO_CHECK(r < rows_);
  MAGNETO_CHECK(values.size() == cols_);
  std::memcpy(RowPtr(r), values.data(), cols_ * sizeof(float));
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Reset(size_t rows, size_t cols) {
  if (rows * cols > data_.capacity()) BumpAllocations();
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::ResetForOverwrite(size_t rows, size_t cols) {
  if (rows * cols > data_.capacity()) BumpAllocations();
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::CopyFrom(const Matrix& src) {
  MAGNETO_CHECK(this != &src);
  ResetForOverwrite(src.rows_, src.cols_);
  std::memcpy(data_.data(), src.data_.data(), data_.size() * sizeof(float));
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::Axpy(float s, const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  ParallelFor(0, data_.size(), size_t{1} << 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) dst[i] += s * src[i];
  });
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out.data()[c * rows_ + r] = src[c];
  }
  return out;
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  MAGNETO_CHECK(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::memcpy(out.data(), data_.data() + begin * cols_,
              (end - begin) * cols_ * sizeof(float));
  return out;
}

float Matrix::SumOfSquares() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Matrix::AbsMax() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::ColMean() const {
  Matrix out = ColSum();
  if (rows_ > 0) out.Scale(1.0f / static_cast<float>(rows_));
  return out;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = RowPtr(r);
    float* dst = out.data();
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  return out;
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

namespace {
// Tile edge chosen so three float tiles fit comfortably in L1.
constexpr size_t kTile = 64;

// Target multiply-adds per ParallelFor chunk. Grain sizes derived from this
// depend only on the problem shape (never the worker count), which keeps the
// chunk decomposition — and therefore the results — identical at any thread
// count.
constexpr size_t kFlopsPerChunk = 1u << 21;

/// Rows per chunk so one chunk is roughly kFlopsPerChunk multiply-adds.
size_t RowGrain(size_t flops_per_row) {
  return std::max<size_t>(1, kFlopsPerChunk / (flops_per_row + 1));
}

/// Tiled ikj kernel over the output-row range [row0, row1). The kk loop is
/// 4-way unrolled into independent axpy streams: branch-free bodies with
/// contiguous float accumulation that auto-vectorize cleanly. Accumulation
/// order per output row depends only on the k tiling, so row partitioning
/// never changes results.
void MatMulRows(const Matrix& a, const Matrix& b, Matrix* out, size_t row0,
                size_t row1) {
  const size_t k = a.cols(), n = b.cols();
  for (size_t i0 = row0; i0 < row1; i0 += kTile) {
    const size_t i1 = std::min(i0 + kTile, row1);
    for (size_t k0 = 0; k0 < k; k0 += kTile) {
      const size_t k1 = std::min(k0 + kTile, k);
      for (size_t i = i0; i < i1; ++i) {
        const float* arow = a.RowPtr(i);
        float* orow = out->RowPtr(i);
        size_t kk = k0;
        for (; kk + 4 <= k1; kk += 4) {
          const float a0 = arow[kk], a1 = arow[kk + 1];
          const float a2 = arow[kk + 2], a3 = arow[kk + 3];
          const float* b0 = b.RowPtr(kk);
          const float* b1 = b.RowPtr(kk + 1);
          const float* b2 = b.RowPtr(kk + 2);
          const float* b3 = b.RowPtr(kk + 3);
          for (size_t j = 0; j < n; ++j) {
            orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; kk < k1; ++kk) {
          const float av = arow[kk];
          const float* brow = b.RowPtr(kk);
          for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  MAGNETO_CHECK(a.cols() == b.rows());
  MAGNETO_CHECK(out != &a && out != &b);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  out->Reset(m, n);  // the ikj kernel accumulates, so it needs zeros
  ParallelFor(0, m, RowGrain(k * n), [&](size_t row0, size_t row1) {
    MatMulRows(a, b, out, row0, row1);
  });
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  MAGNETO_CHECK(a.rows() == b.rows());
  MAGNETO_CHECK(out != &a && out != &b);
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  out->Reset(m, n);
  // Partitioned over output rows (columns of a): each row of the result is
  // accumulated over kk by exactly one chunk, in the same order as the serial
  // loop, so results are bit-identical at any thread count. b's rows stream
  // through each chunk once per kk, as in the serial kernel.
  ParallelFor(0, m, RowGrain(k * n), [&](size_t i0, size_t i1) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.RowPtr(kk);
      const float* brow = b.RowPtr(kk);
      for (size_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        float* orow = out->RowPtr(i);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransAInto(a, b, &out);
  return out;
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  MAGNETO_CHECK(a.cols() == b.cols());
  MAGNETO_CHECK(out != &a && out != &b);
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  out->ResetForOverwrite(m, n);  // every element is assigned below
  ParallelFor(0, m, RowGrain(k * n), [&](size_t row0, size_t row1) {
    for (size_t i = row0; i < row1; ++i) {
      const float* arow = a.RowPtr(i);
      float* orow = out->RowPtr(i);
      for (size_t j = 0; j < n; ++j) orow[j] = Dot(arow, b.RowPtr(j), k);
    }
  });
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransBInto(a, b, &out);
  return out;
}

Matrix VStack(const Matrix& top, const Matrix& bottom) {
  if (top.rows() == 0) return bottom;
  if (bottom.rows() == 0) return top;
  MAGNETO_CHECK(top.cols() == bottom.cols());
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::memcpy(out.data(), top.data(), top.size() * sizeof(float));
  std::memcpy(out.RowPtr(top.rows()), bottom.data(),
              bottom.size() * sizeof(float));
  return out;
}

// Dot and SquaredL2 use four independent float accumulators: the streams
// break the loop-carried dependency so the compiler can keep one vector
// register per stream, and the fixed combine order keeps results identical
// for a given n regardless of the calling context.

float SquaredL2(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float Dot(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace magneto
