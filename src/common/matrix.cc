#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

namespace magneto {

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  MAGNETO_CHECK(data_.size() == rows_ * cols_);
}

std::vector<float> Matrix::Row(size_t r) const {
  MAGNETO_CHECK(r < rows_);
  return std::vector<float>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<float>& values) {
  MAGNETO_CHECK(r < rows_);
  MAGNETO_CHECK(values.size() == cols_);
  std::memcpy(RowPtr(r), values.data(), cols_ * sizeof(float));
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::Axpy(float s, const Matrix& other) {
  MAGNETO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out.data()[c * rows_ + r] = src[c];
  }
  return out;
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  MAGNETO_CHECK(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::memcpy(out.data(), data_.data() + begin * cols_,
              (end - begin) * cols_ * sizeof(float));
  return out;
}

float Matrix::SumOfSquares() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Matrix::AbsMax() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::ColMean() const {
  Matrix out = ColSum();
  if (rows_ > 0) out.Scale(1.0f / static_cast<float>(rows_));
  return out;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = RowPtr(r);
    float* dst = out.data();
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  return out;
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

namespace {
// Tile edge chosen so three float tiles fit comfortably in L1.
constexpr size_t kTile = 64;

// Work below this many multiply-adds is not worth spawning threads for.
constexpr size_t kParallelFlopThreshold = 4u << 20;

/// Tiled ikj kernel over the output-row range [row0, row1).
void MatMulRows(const Matrix& a, const Matrix& b, Matrix* out, size_t row0,
                size_t row1) {
  const size_t k = a.cols(), n = b.cols();
  for (size_t i0 = row0; i0 < row1; i0 += kTile) {
    const size_t i1 = std::min(i0 + kTile, row1);
    for (size_t k0 = 0; k0 < k; k0 += kTile) {
      const size_t k1 = std::min(k0 + kTile, k);
      for (size_t i = i0; i < i1; ++i) {
        const float* arow = a.RowPtr(i);
        float* orow = out->RowPtr(i);
        for (size_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b.RowPtr(kk);
          for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

/// Runs `work(row0, row1)` over [0, rows) on up to hardware_concurrency
/// threads when the problem is large enough. Row-partitioned: each output
/// row is written by exactly one thread, so results are bit-identical to
/// the serial kernel.
template <typename Work>
void ParallelOverRows(size_t rows, size_t flops, const Work& work) {
  size_t threads = std::thread::hardware_concurrency();
  threads = std::min<size_t>({threads == 0 ? 1 : threads, 8, rows});
  if (threads <= 1 || flops < kParallelFlopThreshold) {
    work(0, rows);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const size_t chunk = (rows + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t row0 = t * chunk;
    const size_t row1 = std::min(rows, row0 + chunk);
    if (row0 >= row1) break;
    pool.emplace_back([&work, row0, row1] { work(row0, row1); });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  MAGNETO_CHECK(a.cols() == b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix out(m, n);
  ParallelOverRows(m, m * k * n, [&](size_t row0, size_t row1) {
    MatMulRows(a, b, &out, row0, row1);
  });
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  MAGNETO_CHECK(a.rows() == b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  for (size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.RowPtr(kk);
    const float* brow = b.RowPtr(kk);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  MAGNETO_CHECK(a.cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix out(m, n);
  ParallelOverRows(m, m * k * n, [&](size_t row0, size_t row1) {
    for (size_t i = row0; i < row1; ++i) {
      const float* arow = a.RowPtr(i);
      float* orow = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) orow[j] = Dot(arow, b.RowPtr(j), k);
    }
  });
  return out;
}

Matrix VStack(const Matrix& top, const Matrix& bottom) {
  if (top.rows() == 0) return bottom;
  if (bottom.rows() == 0) return top;
  MAGNETO_CHECK(top.cols() == bottom.cols());
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::memcpy(out.data(), top.data(), top.size() * sizeof(float));
  std::memcpy(out.RowPtr(top.rows()), bottom.data(),
              bottom.size() * sizeof(float));
  return out;
}

float SquaredL2(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

float Dot(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

}  // namespace magneto
