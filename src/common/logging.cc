#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace magneto {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void LogConfig::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel LogConfig::min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               static_cast<int>(LogConfig::min_level())) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace magneto
