#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace magneto {

namespace {

constexpr int kLevelUnset = -1;

/// kLevelUnset until the first read latches MAGNETO_LOG_LEVEL.
std::atomic<int> g_min_level{kLevelUnset};

/// Guards g_sink; log emission is not a hot path.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = stderr default

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

int LatchLevelFromEnv() {
  int level = static_cast<int>(LogLevel::kInfo);
  if (const char* env = std::getenv("MAGNETO_LOG_LEVEL")) {
    if (auto parsed = LogConfig::ParseLevel(env)) {
      level = static_cast<int>(*parsed);
    }
  }
  int expected = kLevelUnset;
  g_min_level.compare_exchange_strong(expected, level,
                                      std::memory_order_relaxed);
  return g_min_level.load(std::memory_order_relaxed);
}

obs::Counter* LineCounter(LogLevel level) {
  static obs::Counter* const debug =
      obs::Registry::Global().GetCounter("log.debug");
  static obs::Counter* const info =
      obs::Registry::Global().GetCounter("log.info");
  static obs::Counter* const warning =
      obs::Registry::Global().GetCounter("log.warning");
  static obs::Counter* const error =
      obs::Registry::Global().GetCounter("log.error");
  switch (level) {
    case LogLevel::kDebug:
      return debug;
    case LogLevel::kInfo:
      return info;
    case LogLevel::kWarning:
      return warning;
    default:
      return error;  // kError and kFatal both count as errors
  }
}

}  // namespace

void LogConfig::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel LogConfig::min_level() {
  const int level = g_min_level.load(std::memory_order_relaxed);
  return static_cast<LogLevel>(level == kLevelUnset ? LatchLevelFromEnv()
                                                    : level);
}

std::optional<LogLevel> LogConfig::ParseLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "fatal" || lower == "4") return LogLevel::kFatal;
  return std::nullopt;
}

void LogConfig::SetSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      file_(file),
      line_(line),
      enabled_(static_cast<int>(level) >=
               static_cast<int>(LogConfig::min_level())) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    LineCounter(level_)->Increment();
    const std::string message = stream_.str();
    LogSink sink;
    {
      std::lock_guard<std::mutex> lock(g_sink_mutex);
      sink = g_sink;  // copy so a slow sink doesn't serialize all logging
    }
    if (sink) {
      sink(level_, file_, line_, message);
    } else {
      std::fprintf(stderr, "%s\n", message.c_str());
      std::fflush(stderr);
    }
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace magneto
