#ifndef MAGNETO_COMMON_RANDOM_H_
#define MAGNETO_COMMON_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace magneto {

/// Deterministic pseudo-random source used throughout MAGNETO.
///
/// Every stochastic component (signal synthesis, weight init, pair sampling,
/// reservoir updates, ...) takes an explicit seed so that tests and benchmarks
/// are exactly reproducible. Wraps `std::mt19937_64`.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MAGNETO_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n).
  size_t Index(size_t n) {
    MAGNETO_DCHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Gaussian sample.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  /// Requires k <= n. Order of the returned indices is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child RNG; useful for giving each subcomponent
  /// its own stream without correlated draws.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace magneto

#endif  // MAGNETO_COMMON_RANDOM_H_
