#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto {

namespace {

/// Static handles: registry lookup happens once per process, the hot path
/// only touches the atomics behind the pointers.
struct PoolMetrics {
  obs::Counter* regions =
      obs::Registry::Global().GetCounter("parallel.regions");
  obs::Counter* serial_regions =
      obs::Registry::Global().GetCounter("parallel.regions_serial");
  obs::Counter* chunks = obs::Registry::Global().GetCounter("parallel.chunks");
  obs::Counter* worker_chunks =
      obs::Registry::Global().GetCounter("parallel.chunks_worker");
  obs::Counter* submitter_chunks =
      obs::Registry::Global().GetCounter("parallel.chunks_submitter");
  obs::Histogram* region_us =
      obs::Registry::Global().GetHistogram("parallel.region_us");
  obs::Histogram* submit_wait_us =
      obs::Registry::Global().GetHistogram("parallel.submit_wait_us");
  obs::Gauge* threads = obs::Registry::Global().GetGauge("parallel.threads");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics;
  return *metrics;
}

/// True while the current thread is executing chunks (worker threads always,
/// the submitting thread for the duration of a region). Nested ParallelFor
/// calls see it and run inline instead of deadlocking on the shared job slot.
thread_local bool t_inside_pool = false;

struct InsidePoolGuard {
  bool saved = t_inside_pool;
  InsidePoolGuard() { t_inside_pool = true; }
  ~InsidePoolGuard() { t_inside_pool = saved; }
};

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("MAGNETO_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

/// One in-flight parallel region. Workers pull chunk indices from an atomic
/// counter; the last finished chunk wakes the submitting thread. The job is
/// heap-held (shared_ptr) because a late-waking worker may still poke the
/// chunk counter after the submitter has already observed completion.
struct ThreadPool::Impl {
  struct Job {
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t num_chunks = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done_chunks{0};
    std::exception_ptr error;  // first captured exception, under error_mutex
    std::mutex error_mutex;
  };

  std::mutex mutex;                 // guards job/epoch/stop and cv waits
  std::condition_variable work_cv;  // workers wait here for a new epoch
  std::condition_variable done_cv;  // the submitter waits here
  std::shared_ptr<Job> job;
  uint64_t epoch = 0;
  bool stop = false;
  std::vector<std::thread> workers;
  // Serialises external submitters; nested calls never take this path.
  std::mutex submit_mutex;

  /// `chunk_counter` attributes executed chunks to worker vs submitter
  /// lanes (the per-worker utilization split in the metrics snapshot).
  void RunChunks(Job* j, obs::Counter* chunk_counter) {
    for (;;) {
      const size_t c = j->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= j->num_chunks) return;
      chunk_counter->Increment();
      const size_t b = j->begin + c * j->grain;
      const size_t e = std::min(j->end, b + j->grain);
      try {
        (*j->fn)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(j->error_mutex);
        if (!j->error) j->error = std::current_exception();
      }
      if (j->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          j->num_chunks) {
        // Last chunk: wake the submitter. Take the pool mutex so the wake
        // cannot race ahead of the submitter's wait.
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    t_inside_pool = true;
    uint64_t seen_epoch = 0;
    for (;;) {
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] {
          return stop || (job != nullptr && epoch != seen_epoch);
        });
        if (stop) return;
        seen_epoch = epoch;
        j = job;
      }
      RunChunks(j.get(), Metrics().worker_chunks);
    }
  }

  void StartWorkers(size_t n) {
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
    std::lock_guard<std::mutex> lock(mutex);
    stop = false;
  }
};

ThreadPool::ThreadPool(size_t threads) : impl_(new Impl) {
  impl_->StartWorkers(threads > 0 ? threads - 1 : 0);
  Metrics().threads->Set(static_cast<double>(thread_count()));
}

ThreadPool::~ThreadPool() {
  impl_->StopWorkers();
  delete impl_;
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads must outlive static destructors of
  // translation units that might still issue ParallelFor during teardown.
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

size_t ThreadPool::thread_count() const { return impl_->workers.size() + 1; }

void ThreadPool::SetThreadCount(size_t n) {
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  impl_->StopWorkers();
  impl_->StartWorkers(n > 0 ? n - 1 : 0);
  Metrics().threads->Set(static_cast<double>(thread_count()));
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (end - begin + grain - 1) / grain;

  // Serial path: nested call, single-lane pool, or a range that fits in one
  // chunk. Walk the identical chunk sequence so per-chunk kernels see the
  // same subranges as the threaded path.
  if (t_inside_pool || impl_->workers.empty() || num_chunks == 1) {
    // Counter-only telemetry here: this branch also serves nested calls from
    // inside workers, which are far too hot for clocks or spans.
    Metrics().serial_regions->Increment();
    Metrics().chunks->Increment(num_chunks);
    InsidePoolGuard guard;
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t b = begin + c * grain;
      const size_t e = std::min(end, b + grain);
      fn(b, e);
    }
    return;
  }

  Metrics().regions->Increment();
  Metrics().chunks->Increment(num_chunks);
  obs::TraceSpan span("ParallelFor");
  obs::ScopedTimer region_timer(Metrics().region_us);

  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  auto job = std::make_shared<Impl::Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->epoch;
  }
  impl_->work_cv.notify_all();
  {
    InsidePoolGuard guard;
    impl_->RunChunks(job.get(), Metrics().submitter_chunks);
  }
  {
    // Time the submitter's idle tail: how long it waits for straggler
    // workers after running out of chunks itself (load-imbalance signal).
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return job->done_chunks.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
    impl_->job.reset();
    Metrics().submit_wait_us->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count() *
        1e6);
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

size_t ParallelThreads() { return ThreadPool::Global().thread_count(); }

void SetParallelThreads(size_t n) { ThreadPool::Global().SetThreadCount(n); }

}  // namespace magneto
