#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace magneto {
namespace stats {

double Mean(const float* x, size_t n) {
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i];
  return acc / static_cast<double>(n);
}

double Variance(const float* x, size_t n) {
  if (n == 0) return 0.0;
  const double mu = Mean(x, n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

double StdDev(const float* x, size_t n) { return std::sqrt(Variance(x, n)); }

double Min(const float* x, size_t n) {
  if (n == 0) return 0.0;
  return *std::min_element(x, x + n);
}

double Max(const float* x, size_t n) {
  if (n == 0) return 0.0;
  return *std::max_element(x, x + n);
}

double Quantile(std::vector<float> x, double p) {
  if (x.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(x.begin(), x.end());
  const double idx = p * static_cast<double>(x.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (1.0 - frac) * x[lo] + frac * x[hi];
}

double Median(const std::vector<float>& x) { return Quantile(x, 0.5); }

double Skewness(const float* x, size_t n) {
  if (n < 2) return 0.0;
  const double mu = Mean(x, n);
  double m2 = 0.0, m3 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - mu;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 1e-20) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double Kurtosis(const float* x, size_t n) {
  if (n < 2) return 0.0;
  const double mu = Mean(x, n);
  double m2 = 0.0, m4 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - mu;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 1e-20) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double Energy(const float* x, size_t n) {
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * x[i];
  return acc / static_cast<double>(n);
}

double RootMeanSquare(const float* x, size_t n) {
  return std::sqrt(Energy(x, n));
}

double MeanAbsDeviation(const float* x, size_t n) {
  if (n == 0) return 0.0;
  const double mu = Mean(x, n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += std::fabs(x[i] - mu);
  return acc / static_cast<double>(n);
}

double ZeroCrossingRate(const float* x, size_t n) {
  if (n < 2) return 0.0;
  const double mu = Mean(x, n);
  size_t crossings = 0;
  for (size_t i = 1; i < n; ++i) {
    const bool prev = (x[i - 1] - mu) >= 0.0;
    const bool cur = (x[i] - mu) >= 0.0;
    if (prev != cur) ++crossings;
  }
  return static_cast<double>(crossings) / static_cast<double>(n - 1);
}

double Autocorrelation(const float* x, size_t n, size_t lag) {
  if (n <= lag || n < 2) return 0.0;
  const double mu = Mean(x, n);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - mu;
    den += d * d;
  }
  if (den <= 1e-20) return 0.0;
  for (size_t i = lag; i < n; ++i) {
    num += (x[i] - mu) * (x[i - lag] - mu);
  }
  return num / den;
}

double PearsonCorrelation(const float* x, const float* y, size_t n) {
  if (n < 2) return 0.0;
  const double mx = Mean(x, n), my = Mean(y, n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 1e-20 || syy <= 1e-20) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double MeanAbsDiff(const float* x, size_t n) {
  if (n < 2) return 0.0;
  double acc = 0.0;
  for (size_t i = 1; i < n; ++i) acc += std::fabs(x[i] - x[i - 1]);
  return acc / static_cast<double>(n - 1);
}

double Iqr(const std::vector<float>& x) {
  return Quantile(x, 0.75) - Quantile(x, 0.25);
}

}  // namespace stats

double LogSumExp(const double* x, size_t n) {
  if (n == 0) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(x, x + n);
  if (!std::isfinite(m)) return m;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += std::exp(x[i] - m);
  return m + std::log(acc);
}

void SoftmaxInPlace(float* x, size_t n) {
  if (n == 0) return;
  const float m = *std::max_element(x, x + n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    acc += x[i];
  }
  const float inv = static_cast<float>(1.0 / acc);
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

float Clamp(float v, float lo, float hi) { return std::clamp(v, lo, hi); }

}  // namespace magneto
