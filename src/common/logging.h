#ifndef MAGNETO_COMMON_LOGGING_H_
#define MAGNETO_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace magneto {

/// Severity levels for the MAGNETO logger, ordered by increasing severity.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Receives every emitted log line. `message` is the full formatted line
/// ("[LEVEL file:line] text"). Must be thread-safe: log statements come from
/// worker threads too.
using LogSink = std::function<void(LogLevel level, const char* file, int line,
                                   const std::string& message)>;

/// Global log configuration. Thread-safe.
class LogConfig {
 public:
  /// Messages below `level` are discarded.
  static void SetMinLevel(LogLevel level);

  /// The active threshold. The first call latches `MAGNETO_LOG_LEVEL` from
  /// the environment (name or number, see `ParseLevel`); default kInfo.
  static LogLevel min_level();

  /// "debug"/"info"/"warn"/"warning"/"error"/"fatal" (any case) or "0".."4".
  static std::optional<LogLevel> ParseLevel(std::string_view text);

  /// Routes log lines somewhere other than stderr (e.g. a test capture).
  /// An empty sink restores the stderr default. `kFatal` still aborts after
  /// the sink runs.
  static void SetSink(LogSink sink);
};

namespace internal_logging {

/// Accumulates one log line and emits it (to the configured sink, stderr by
/// default) on destruction. `kFatal` messages abort the process after
/// emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a log statement that is compiled in but disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define MAGNETO_LOG(level)                                        \
  ::magneto::internal_logging::LogMessage(                        \
      ::magneto::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// MAGNETO uses it to guard API invariants whose violation would otherwise
/// corrupt memory (e.g. dimension mismatches in matrix kernels).
#define MAGNETO_CHECK(cond)                                              \
  (cond) ? (void)0                                                       \
         : (void)(::magneto::internal_logging::LogMessage(               \
                      ::magneto::LogLevel::kFatal, __FILE__, __LINE__)   \
                  << "Check failed: " #cond " ")

#define MAGNETO_DCHECK(cond) MAGNETO_CHECK(cond)

}  // namespace magneto

#endif  // MAGNETO_COMMON_LOGGING_H_
