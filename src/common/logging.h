#ifndef MAGNETO_COMMON_LOGGING_H_
#define MAGNETO_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace magneto {

/// Severity levels for the MAGNETO logger, ordered by increasing severity.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global log configuration. Thread-compatible: set the level once at startup.
class LogConfig {
 public:
  /// Messages below `level` are discarded.
  static void SetMinLevel(LogLevel level);
  static LogLevel min_level();
};

namespace internal_logging {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// `kFatal` messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a log statement that is compiled in but disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define MAGNETO_LOG(level)                                        \
  ::magneto::internal_logging::LogMessage(                        \
      ::magneto::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// MAGNETO uses it to guard API invariants whose violation would otherwise
/// corrupt memory (e.g. dimension mismatches in matrix kernels).
#define MAGNETO_CHECK(cond)                                              \
  (cond) ? (void)0                                                       \
         : (void)(::magneto::internal_logging::LogMessage(               \
                      ::magneto::LogLevel::kFatal, __FILE__, __LINE__)   \
                  << "Check failed: " #cond " ")

#define MAGNETO_DCHECK(cond) MAGNETO_CHECK(cond)

}  // namespace magneto

#endif  // MAGNETO_COMMON_LOGGING_H_
