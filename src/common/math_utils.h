#ifndef MAGNETO_COMMON_MATH_UTILS_H_
#define MAGNETO_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace magneto {

/// Scalar statistics over float spans. These back the hand-crafted feature
/// extractor (`preprocess::FeatureExtractor`); all are single-pass or
/// two-pass, i.e. linear time, matching the paper's "linear processing time"
/// claim for the preprocessing function.
namespace stats {

double Mean(const float* x, size_t n);
double Variance(const float* x, size_t n);     ///< Population variance.
double StdDev(const float* x, size_t n);
double Min(const float* x, size_t n);
double Max(const float* x, size_t n);
/// p in [0,1]; linear interpolation between order statistics. O(n log n).
double Quantile(std::vector<float> x, double p);
double Median(const std::vector<float>& x);
/// Fisher skewness; 0 for n < 2 or zero variance.
double Skewness(const float* x, size_t n);
/// Excess kurtosis; 0 for n < 2 or zero variance.
double Kurtosis(const float* x, size_t n);
/// Mean of squares ("signal energy" per sample).
double Energy(const float* x, size_t n);
double RootMeanSquare(const float* x, size_t n);
/// Mean absolute deviation around the mean.
double MeanAbsDeviation(const float* x, size_t n);
/// Number of sign changes of (x - mean), normalised by n-1.
double ZeroCrossingRate(const float* x, size_t n);
/// Lag-k autocorrelation (Pearson, population normalisation); 0 if degenerate.
double Autocorrelation(const float* x, size_t n, size_t lag);
/// Pearson correlation between two spans; 0 if either is degenerate.
double PearsonCorrelation(const float* x, const float* y, size_t n);
/// Mean absolute first difference ("jerk" magnitude proxy).
double MeanAbsDiff(const float* x, size_t n);
/// Interquartile range (q75 - q25).
double Iqr(const std::vector<float>& x);

}  // namespace stats

/// Numerically stable log(sum(exp(x))) over a span.
double LogSumExp(const double* x, size_t n);

/// In-place softmax over a span (double precision accumulate).
void SoftmaxInPlace(float* x, size_t n);

/// Clamps v to [lo, hi].
float Clamp(float v, float lo, float hi);

}  // namespace magneto

#endif  // MAGNETO_COMMON_MATH_UTILS_H_
