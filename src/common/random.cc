#include "common/random.h"

#include <numeric>

namespace magneto {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  MAGNETO_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) swaps.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace magneto
