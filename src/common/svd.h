#ifndef MAGNETO_COMMON_SVD_H_
#define MAGNETO_COMMON_SVD_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace magneto {

/// Thin singular value decomposition A = U * diag(S) * V^T.
struct SvdResult {
  Matrix u;                    ///< m x r, orthonormal columns
  std::vector<float> s;        ///< r singular values, descending
  Matrix vt;                   ///< r x n, orthonormal rows
  size_t rank() const { return s.size(); }
};

/// One-sided Jacobi SVD of an m x n matrix (any shape; r = min(m, n)).
///
/// Accurate for the small-to-medium dense matrices MAGNETO compresses
/// (backbone layers up to 1024 wide). `sweeps` bounds the Jacobi iterations;
/// convergence is checked against `tolerance` on column orthogonality.
Result<SvdResult> Svd(const Matrix& a, size_t max_sweeps = 30,
                      double tolerance = 1e-10);

/// Reconstructs U_k * diag(S_k) * Vt_k using the top `k` components.
Matrix LowRankReconstruct(const SvdResult& svd, size_t k);

/// Smallest k whose top-k singular values capture `energy_fraction` of the
/// total squared spectrum.
size_t RankForEnergy(const SvdResult& svd, double energy_fraction);

}  // namespace magneto

#endif  // MAGNETO_COMMON_SVD_H_
