#include "common/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace magneto {

namespace {

/// One-sided Jacobi: orthogonalise the columns of a working copy W (m x n,
/// double precision). On convergence W = U * diag(S) and the accumulated
/// rotations give V.
struct Workspace {
  size_t m, n;
  std::vector<double> w;  ///< m x n column-major for cache-friendly columns
  std::vector<double> v;  ///< n x n, V accumulator (column-major)

  double* Col(size_t j) { return w.data() + j * m; }
  double* VCol(size_t j) { return v.data() + j * n; }
};

}  // namespace

Result<SvdResult> Svd(const Matrix& a, size_t max_sweeps, double tolerance) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("cannot decompose an empty matrix");
  }
  // Work on the tall orientation so columns are the short dimension.
  const bool transposed = a.cols() > a.rows();
  const Matrix& src_ref = a;
  Matrix src_t;
  if (transposed) src_t = a.Transposed();
  const Matrix& src = transposed ? src_t : src_ref;

  Workspace ws;
  ws.m = src.rows();
  ws.n = src.cols();
  ws.w.assign(ws.m * ws.n, 0.0);
  ws.v.assign(ws.n * ws.n, 0.0);
  for (size_t i = 0; i < ws.m; ++i) {
    for (size_t j = 0; j < ws.n; ++j) {
      ws.Col(j)[i] = src.At(i, j);
    }
  }
  for (size_t j = 0; j < ws.n; ++j) ws.VCol(j)[j] = 1.0;

  // Jacobi sweeps.
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_off = 0.0;
    for (size_t p = 0; p + 1 < ws.n; ++p) {
      for (size_t q = p + 1; q < ws.n; ++q) {
        double* cp = ws.Col(p);
        double* cq = ws.Col(q);
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (size_t i = 0; i < ws.m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        const double denom = std::sqrt(app * aqq);
        if (denom < 1e-300) continue;
        const double off = std::fabs(apq) / denom;
        max_off = std::max(max_off, off);
        if (off < tolerance) continue;

        // Jacobi rotation that zeroes the (p, q) inner product.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < ws.m; ++i) {
          const double wp = cp[i];
          const double wq = cq[i];
          cp[i] = c * wp - s * wq;
          cq[i] = s * wp + c * wq;
        }
        double* vp = ws.VCol(p);
        double* vq = ws.VCol(q);
        for (size_t i = 0; i < ws.n; ++i) {
          const double xp = vp[i];
          const double xq = vq[i];
          vp[i] = c * xp - s * xq;
          vq[i] = s * xp + c * xq;
        }
      }
    }
    if (max_off < tolerance) break;
  }

  // Extract singular values (column norms) and sort descending.
  std::vector<double> norms(ws.n);
  for (size_t j = 0; j < ws.n; ++j) {
    double acc = 0.0;
    const double* col = ws.Col(j);
    for (size_t i = 0; i < ws.m; ++i) acc += col[i] * col[i];
    norms[j] = std::sqrt(acc);
  }
  std::vector<size_t> order(ws.n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return norms[x] > norms[y]; });

  SvdResult result;
  result.u.Reset(ws.m, ws.n);
  result.vt.Reset(ws.n, ws.n);
  result.s.resize(ws.n);
  for (size_t jj = 0; jj < ws.n; ++jj) {
    const size_t j = order[jj];
    result.s[jj] = static_cast<float>(norms[j]);
    const double inv = norms[j] > 1e-300 ? 1.0 / norms[j] : 0.0;
    const double* col = ws.Col(j);
    for (size_t i = 0; i < ws.m; ++i) {
      result.u.At(i, jj) = static_cast<float>(col[i] * inv);
    }
    const double* vcol = ws.VCol(j);
    for (size_t i = 0; i < ws.n; ++i) {
      result.vt.At(jj, i) = static_cast<float>(vcol[i]);
    }
  }

  if (transposed) {
    // a^T = U S V^T  =>  a = V S U^T.
    Matrix u = result.vt.Transposed();
    Matrix vt = result.u.Transposed();
    result.u = std::move(u);
    result.vt = std::move(vt);
  }
  return result;
}

Matrix LowRankReconstruct(const SvdResult& svd, size_t k) {
  k = std::min(k, svd.rank());
  Matrix us(svd.u.rows(), k);
  for (size_t i = 0; i < svd.u.rows(); ++i) {
    for (size_t j = 0; j < k; ++j) {
      us.At(i, j) = svd.u.At(i, j) * svd.s[j];
    }
  }
  return MatMul(us, svd.vt.RowSlice(0, k));
}

size_t RankForEnergy(const SvdResult& svd, double energy_fraction) {
  double total = 0.0;
  for (float s : svd.s) total += static_cast<double>(s) * s;
  if (total <= 0.0) return 1;
  double acc = 0.0;
  for (size_t k = 0; k < svd.s.size(); ++k) {
    acc += static_cast<double>(svd.s[k]) * svd.s[k];
    if (acc >= energy_fraction * total) return k + 1;
  }
  return svd.s.size();
}

}  // namespace magneto
