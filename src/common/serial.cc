#include "common/serial.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

namespace magneto {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void AppendRaw(std::string* buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf->append(bytes, sizeof(T));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// NOTE: the implementation assumes a little-endian host (x86/ARM in practice),
// which keeps primitive writes to a single memcpy.

void BinaryWriter::WriteU8(uint8_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU32(uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI64(int64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF32(float v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF64(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.append(s);
}

void BinaryWriter::WriteF32Vector(const std::vector<float>& v) {
  WriteU64(v.size());
  if (!v.empty()) {
    buffer_.append(reinterpret_cast<const char*>(v.data()),
                   v.size() * sizeof(float));
  }
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  if (!v.empty()) {
    buffer_.append(reinterpret_cast<const char*>(v.data()),
                   v.size() * sizeof(int64_t));
  }
}

void BinaryWriter::WriteI8Vector(const std::vector<int8_t>& v) {
  WriteU64(v.size());
  if (!v.empty()) {
    buffer_.append(reinterpret_cast<const char*>(v.data()), v.size());
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status BinaryReader::Require(size_t n) const {
  // Compare against the remaining length, never `pos_ + n` — a hostile
  // length prefix near 2^64 would wrap the addition and pass the check.
  if (n > size_ - pos_) {
    return Status::Corruption("truncated buffer: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_) +
                              ", have " + std::to_string(size_ - pos_));
  }
  return Status::Ok();
}

namespace {
template <typename T>
Result<T> ReadRaw(const uint8_t* data, size_t* pos) {
  T v;
  std::memcpy(&v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}
}  // namespace

Result<uint8_t> BinaryReader::ReadU8() {
  MAGNETO_RETURN_IF_ERROR(Require(sizeof(uint8_t)));
  return ReadRaw<uint8_t>(data_, &pos_);
}

Result<uint32_t> BinaryReader::ReadU32() {
  MAGNETO_RETURN_IF_ERROR(Require(sizeof(uint32_t)));
  return ReadRaw<uint32_t>(data_, &pos_);
}

Result<uint64_t> BinaryReader::ReadU64() {
  MAGNETO_RETURN_IF_ERROR(Require(sizeof(uint64_t)));
  return ReadRaw<uint64_t>(data_, &pos_);
}

Result<int64_t> BinaryReader::ReadI64() {
  MAGNETO_RETURN_IF_ERROR(Require(sizeof(int64_t)));
  return ReadRaw<int64_t>(data_, &pos_);
}

Result<float> BinaryReader::ReadF32() {
  MAGNETO_RETURN_IF_ERROR(Require(sizeof(float)));
  return ReadRaw<float>(data_, &pos_);
}

Result<double> BinaryReader::ReadF64() {
  MAGNETO_RETURN_IF_ERROR(Require(sizeof(double)));
  return ReadRaw<double>(data_, &pos_);
}

Result<bool> BinaryReader::ReadBool() {
  MAGNETO_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  return v != 0;
}

Result<std::string> BinaryReader::ReadString() {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  MAGNETO_RETURN_IF_ERROR(Require(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<std::vector<float>> BinaryReader::ReadF32Vector() {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > remaining() / sizeof(float)) {
    return Status::Corruption("f32 vector count exceeds buffer: " +
                              std::to_string(n));
  }
  std::vector<float> v(n);
  if (n > 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return v;
}

Result<std::vector<int64_t>> BinaryReader::ReadI64Vector() {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > remaining() / sizeof(int64_t)) {
    return Status::Corruption("i64 vector count exceeds buffer: " +
                              std::to_string(n));
  }
  std::vector<int64_t> v(n);
  if (n > 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(int64_t));
  pos_ += n * sizeof(int64_t);
  return v;
}

Result<std::vector<int8_t>> BinaryReader::ReadI8Vector() {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  MAGNETO_RETURN_IF_ERROR(Require(n));
  std::vector<int8_t> v(n);
  if (n > 0) std::memcpy(v.data(), data_ + pos_, n);
  pos_ += n;
  return v;
}

Result<std::vector<float>> BinaryReader::ReadF32VectorExpected(
    uint64_t expected) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n != expected) {
    return Status::Corruption("f32 vector count " + std::to_string(n) +
                              " != expected " + std::to_string(expected));
  }
  MAGNETO_RETURN_IF_ERROR(Require(n * sizeof(float)));
  std::vector<float> v(n);
  if (n > 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return v;
}

Result<std::vector<int8_t>> BinaryReader::ReadI8VectorExpected(
    uint64_t expected) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n != expected) {
    return Status::Corruption("i8 vector count " + std::to_string(n) +
                              " != expected " + std::to_string(expected));
  }
  MAGNETO_RETURN_IF_ERROR(Require(n));
  std::vector<int8_t> v(n);
  if (n > 0) std::memcpy(v.data(), data_ + pos_, n);
  pos_ += n;
  return v;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

namespace {
std::atomic<size_t> g_max_write_bytes{std::numeric_limits<size_t>::max()};
}  // namespace

namespace testing_internal {
void SetMaxWriteBytesForTest(size_t n) {
  g_max_write_bytes.store(n, std::memory_order_relaxed);
}
}  // namespace testing_internal

std::string AtomicTempPath(const std::string& path) { return path + ".tmp"; }

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = AtomicTempPath(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    const size_t limit = g_max_write_bytes.load(std::memory_order_relaxed);
    if (contents.size() > limit) {
      // Fault hook fired: emulate power loss mid-write — the partial temp
      // stays behind and `path` is untouched, exactly the state the
      // last-known-good recovery path must handle.
      out.write(contents.data(), static_cast<std::streamsize>(limit));
      out.flush();
      return Status::IoError("simulated partial write: " + tmp);
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return contents;
}

}  // namespace magneto
