#ifndef MAGNETO_COMMON_FFT_H_
#define MAGNETO_COMMON_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace magneto {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. Forward transform; pass `inverse = true` for the inverse
/// (including the 1/N scaling).
void Fft(std::vector<std::complex<double>>* data, bool inverse = false);

/// Magnitude spectrum of a real signal: returns |X_k| for k in [0, n/2],
/// where n is `x.size()` rounded *up* to a power of two (zero-padded).
/// Bin k corresponds to frequency k * sample_rate / n_padded.
std::vector<double> MagnitudeSpectrum(const float* x, size_t n);

/// Power spectral density estimate (|X_k|^2 / n) over the same bins.
std::vector<double> PowerSpectrum(const float* x, size_t n);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

namespace spectral {

/// Frequency (Hz) of the strongest non-DC bin.
double DominantFrequency(const std::vector<double>& power, double sample_rate,
                         size_t n_padded);

/// Sum of power in [lo_hz, hi_hz).
double BandPower(const std::vector<double>& power, double sample_rate,
                 size_t n_padded, double lo_hz, double hi_hz);

/// Shannon entropy of the normalised non-DC power distribution; 0 for a pure
/// tone, log2(bins) for white noise.
double SpectralEntropy(const std::vector<double>& power);

/// Power-weighted mean frequency (Hz) over non-DC bins.
double SpectralCentroid(const std::vector<double>& power, double sample_rate,
                        size_t n_padded);

}  // namespace spectral

}  // namespace magneto

#endif  // MAGNETO_COMMON_FFT_H_
