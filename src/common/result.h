#ifndef MAGNETO_COMMON_RESULT_H_
#define MAGNETO_COMMON_RESULT_H_

#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace magneto {

/// A value-or-error discriminated union, in the spirit of
/// `arrow::Result` / `absl::StatusOr`.
///
/// A `Result<T>` holds either a `T` (and an OK status) or a non-OK `Status`.
/// Accessing the value of an errored result aborts the process — callers must
/// check `ok()` first (or use `ValueOrDie()` in tests where the invariant is
/// established by construction).
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::Ok()) {  // NOLINT(runtime/explicit)
    new (&storage_) T(std::move(value));
  }

  Result(const Result& other) : status_(other.status_) {
    if (status_.ok()) new (&storage_) T(other.value());
  }

  Result(Result&& other) noexcept : status_(std::move(other.status_)) {
    if (status_.ok()) new (&storage_) T(std::move(other.MutableValue()));
  }

  Result& operator=(const Result& other) {
    if (this == &other) return *this;
    Destroy();
    status_ = other.status_;
    if (status_.ok()) new (&storage_) T(other.value());
    return *this;
  }

  Result& operator=(Result&& other) noexcept {
    if (this == &other) return *this;
    Destroy();
    status_ = std::move(other.status_);
    if (status_.ok()) new (&storage_) T(std::move(other.MutableValue()));
    return *this;
  }

  ~Result() { Destroy(); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value. Aborts if `!ok()`.
  const T& value() const& {
    CheckOk();
    return *std::launder(reinterpret_cast<const T*>(&storage_));
  }

  T& value() & {
    CheckOk();
    return MutableValue();
  }

  /// Moves the held value out. Aborts if `!ok()`.
  T&& value() && {
    CheckOk();
    return std::move(MutableValue());
  }

  /// Alias for `value()` that reads better in tests.
  T& ValueOrDie() & { return value(); }
  const T& ValueOrDie() const& { return value(); }
  T&& ValueOrDie() && { return std::move(*this).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      // Deliberate hard stop: dereferencing an errored Result is a programming
      // error, equivalent to dereferencing a null pointer.
      std::abort();
    }
  }

  T& MutableValue() { return *std::launder(reinterpret_cast<T*>(&storage_)); }

  void Destroy() {
    if (status_.ok()) MutableValue().~T();
  }

  Status status_;
  alignas(T) unsigned char storage_[sizeof(T)];
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define MAGNETO_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  MAGNETO_ASSIGN_OR_RETURN_IMPL_(                             \
      MAGNETO_CONCAT_(_magneto_result_, __LINE__), lhs, rexpr)

#define MAGNETO_CONCAT_INNER_(a, b) a##b
#define MAGNETO_CONCAT_(a, b) MAGNETO_CONCAT_INNER_(a, b)

#define MAGNETO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace magneto

#endif  // MAGNETO_COMMON_RESULT_H_
