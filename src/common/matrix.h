#ifndef MAGNETO_COMMON_MATRIX_H_
#define MAGNETO_COMMON_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace magneto {

/// Dense row-major float matrix.
///
/// This is the numeric workhorse under `magneto::nn`. Single precision is a
/// deliberate choice: the paper sizes its Edge payload in "32-bit precision"
/// (200 observations/class ~= 0.5 MB), so the on-device numeric type is
/// float32. All heavy kernels (GEMM, Axpy) are cache-tiled, branch-free in
/// the inner loop, and run on the shared `ThreadPool` (common/parallel.h)
/// partitioned by output row — results are bit-identical at any thread
/// count.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a `rows` x `cols` matrix, zero-initialised.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
    if (!data_.empty()) BumpAllocations();
  }

  /// Creates a matrix from row-major data. `data.size()` must be rows*cols.
  Matrix(size_t rows, size_t cols, std::vector<float> data);

  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    if (!data_.empty()) BumpAllocations();
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      if (other.data_.size() > data_.capacity()) BumpAllocations();
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
    }
    return *this;
  }
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Process-wide count of float-buffer heap allocations caused by Matrix
  /// construction, copies, and capacity growth. Monotone; read deltas to
  /// measure the allocation cost of a code path (see bench_parallel_scaling's
  /// forward-pass workload).
  static uint64_t AllocationCount();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    MAGNETO_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    MAGNETO_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float& operator()(size_t r, size_t c) { return At(r, c); }
  float operator()(size_t r, size_t c) const { return At(r, c); }

  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& storage() const { return data_; }

  /// Copies row `r` into a new vector.
  std::vector<float> Row(size_t r) const;

  /// Overwrites row `r` with `values` (size must equal cols()).
  void SetRow(size_t r, const std::vector<float>& values);

  void Fill(float value);

  /// Resizes to rows x cols, discarding contents (zero-filled). Keeps the
  /// existing capacity, so a buffer reused at a stable shape never
  /// reallocates.
  void Reset(size_t rows, size_t cols);

  /// Resizes to rows x cols without the zero-fill guarantee: elements carry
  /// arbitrary values and every one must be written before it is read. For
  /// reusable output buffers whose kernel overwrites the full matrix.
  void ResetForOverwrite(size_t rows, size_t cols);

  /// Overwrites this matrix with a copy of `src`, reusing capacity.
  void CopyFrom(const Matrix& src);

  // -- Elementwise / scalar ops (in place) -----------------------------------

  Matrix& AddInPlace(const Matrix& other);
  Matrix& SubInPlace(const Matrix& other);
  Matrix& MulInPlace(const Matrix& other);  ///< Hadamard product.
  Matrix& Scale(float s);

  /// this += s * other  (AXPY). Shapes must match.
  Matrix& Axpy(float s, const Matrix& other);

  // -- Producers --------------------------------------------------------------

  Matrix Transposed() const;

  /// Returns rows [begin, end) as a new (end-begin) x cols matrix.
  Matrix RowSlice(size_t begin, size_t end) const;

  // -- Reductions --------------------------------------------------------------

  float SumOfSquares() const;
  float AbsMax() const;

  /// Column means as a 1 x cols matrix.
  Matrix ColMean() const;

  /// Sum over rows as a 1 x cols matrix.
  Matrix ColSum() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  static void BumpAllocations();

  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). Cache-tiled ikj kernel.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n), without
/// materialising the transpose.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n), without
/// materialising the transpose.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

// Allocation-free variants of the three GEMMs: identical kernels and chunk
// decomposition (so results are bit-identical to the producer forms), but the
// result lands in a caller-owned buffer that is resized in place — a buffer
// reused at a stable shape never touches the allocator. `out` must not alias
// `a` or `b`.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Stacks `top` above `bottom` (column counts must match).
Matrix VStack(const Matrix& top, const Matrix& bottom);

/// Squared L2 distance between two equal-length float spans.
float SquaredL2(const float* a, const float* b, size_t n);

/// Dot product of two equal-length float spans.
float Dot(const float* a, const float* b, size_t n);

}  // namespace magneto

#endif  // MAGNETO_COMMON_MATRIX_H_
