#include "common/qgemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/logging.h"
#include "common/parallel.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace magneto {
namespace {

// Target multiply-adds per ParallelFor chunk, matching the fp32 GEMM grain
// policy so quantized and float layers schedule alike on the shared pool.
constexpr size_t kIntOpsPerChunk = size_t{1} << 21;

size_t RowGrain(size_t ops_per_row) {
  return std::max<size_t>(1, kIntOpsPerChunk / (ops_per_row + 1));
}

// Shared scale-folding epilogue. Both kernels funnel their exact integer
// accumulators through this one function so the float operation sequence —
// int32→float conversion, scale product, multiply, bias add — is compiled
// exactly once and the two paths stay bit-identical even under FP
// contraction.
void FoldScales(const int32_t* acc, float a_scale, const float* b_scales,
                const float* bias, size_t n, float* y) {
  if (bias != nullptr) {
    for (size_t j = 0; j < n; ++j) {
      y[j] = static_cast<float>(acc[j]) * (a_scale * b_scales[j]) + bias[j];
    }
  } else {
    for (size_t j = 0; j < n; ++j) {
      y[j] = static_cast<float>(acc[j]) * (a_scale * b_scales[j]);
    }
  }
}

// One output row: acc[j] = Σ_i qx[i]·b[i][j]. The activation row is first
// compacted to its nonzero positions (`nz`, caller scratch of size >= k) —
// post-ReLU activations quantize to exact zeros, so skipping them element-
// wise beats any fixed unroll on real embedding traffic — then streamed two
// weight rows per pass. Integer adds are exact and order-free, so the
// compaction cannot change the accumulator values.
void QGemmRow(const int8_t* qx, const int8_t* b, size_t k, size_t n,
              int32_t* acc, uint32_t* nz) {
  for (size_t j = 0; j < n; ++j) acc[j] = 0;
  size_t nnz = 0;
  for (size_t i = 0; i < k; ++i) {
    if (qx[i] != 0) nz[nnz++] = static_cast<uint32_t>(i);
  }
  size_t t = 0;
#if defined(__SSE2__)
  // Two activation streams per pass through pmaddwd: each 32-bit lane of
  // `xv` holds the int16 pair [x0, x1]; interleaving the two sign-extended
  // weight rows as [w0_j, w1_j] makes one madd produce x0*w0_j + x1*w1_j for
  // four j at a time. Products are <= 2*127^2, the int32 accumulators are
  // covered by the kQGemmMaxK bound, so this is exact — identical bytes to
  // the scalar fallback and the serial reference.
  for (; t + 2 <= nnz; t += 2) {
    const size_t i0 = nz[t], i1 = nz[t + 1];
    const int32_t x0 = qx[i0], x1 = qx[i1];
    const int8_t* w0 = b + i0 * n;
    const int8_t* w1 = b + i1 * n;
    const __m128i xv =
        _mm_set1_epi32((x1 << 16) | (x0 & 0xFFFF));
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m128i w0b = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(w0 + j));
      const __m128i w1b = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(w1 + j));
      // Sign-extend 8 int8 -> 8 int16 (duplicate bytes, arithmetic shift).
      const __m128i w0w = _mm_srai_epi16(_mm_unpacklo_epi8(w0b, w0b), 8);
      const __m128i w1w = _mm_srai_epi16(_mm_unpacklo_epi8(w1b, w1b), 8);
      const __m128i lo = _mm_unpacklo_epi16(w0w, w1w);  // j .. j+3
      const __m128i hi = _mm_unpackhi_epi16(w0w, w1w);  // j+4 .. j+7
      __m128i a0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(acc + j));
      __m128i a1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(acc + j + 4));
      a0 = _mm_add_epi32(a0, _mm_madd_epi16(lo, xv));
      a1 = _mm_add_epi32(a1, _mm_madd_epi16(hi, xv));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + j), a0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + j + 4), a1);
    }
    for (; j < n; ++j) acc[j] += x0 * w0[j] + x1 * w1[j];
  }
#else
  for (; t + 4 <= nnz; t += 4) {
    const size_t i0 = nz[t], i1 = nz[t + 1], i2 = nz[t + 2], i3 = nz[t + 3];
    const int32_t x0 = qx[i0], x1 = qx[i1], x2 = qx[i2], x3 = qx[i3];
    const int8_t* w0 = b + i0 * n;
    const int8_t* w1 = b + i1 * n;
    const int8_t* w2 = b + i2 * n;
    const int8_t* w3 = b + i3 * n;
    for (size_t j = 0; j < n; ++j) {
      acc[j] += x0 * w0[j] + x1 * w1[j] + x2 * w2[j] + x3 * w3[j];
    }
  }
#endif
  for (; t < nnz; ++t) {
    const size_t i0 = nz[t];
    const int32_t x0 = qx[i0];
    const int8_t* w = b + i0 * n;
    for (size_t j = 0; j < n; ++j) acc[j] += x0 * w[j];
  }
}

// -1 unset, 0 forced off, 1 forced on. Set once by SetQGemmEnabled.
std::atomic<int> g_qgemm_override{-1};

bool QGemmEnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("MAGNETO_QGEMM");
    return env == nullptr || std::string_view(env) != "off";
  }();
  return enabled;
}

}  // namespace

float QuantizeRowInt8(const float* x, size_t n, int8_t* q) {
  float max_abs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float v = std::fabs(x[i]);
    // Finite elements only: one inf (or NaN) must not zero out the rest of
    // the row through an unbounded scale.
    if (v <= std::numeric_limits<float>::max() && v > max_abs) max_abs = v;
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < n; ++i) {
    float scaled = x[i] * inv;
    if (!(std::fabs(scaled) <= 127.0f)) {
      // Out of range or non-finite: ±inf saturates, NaN maps to 0.
      scaled = scaled > 0.0f ? 127.0f : (scaled < 0.0f ? -127.0f : 0.0f);
    }
    // Round half away from zero, same as lround but branch-cheap: `scaled`
    // is already clamped to [-127, 127] so the cast cannot overflow.
    q[i] = static_cast<int8_t>(
        static_cast<int32_t>(scaled + (scaled >= 0.0f ? 0.5f : -0.5f)));
  }
  return scale;
}

void QuantizeRowsInt8(const Matrix& x, QuantizedRows* out) {
  out->rows = x.rows();
  out->cols = x.cols();
  out->data.resize(x.size());
  out->scales.resize(x.rows());
  const size_t cols = x.cols();
  // Rows quantize independently, so chunking cannot change any output byte.
  ParallelFor(0, x.rows(), RowGrain(cols * 4), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      out->scales[r] =
          QuantizeRowInt8(x.RowPtr(r), cols, out->data.data() + r * cols);
    }
  });
}

void QGemmInt8(const QuantizedRows& a, const int8_t* b, size_t k, size_t n,
               const float* b_scales, const float* bias, Matrix* out) {
  MAGNETO_CHECK(a.cols == k);
  MAGNETO_CHECK(k <= kQGemmMaxK);
  const size_t m = a.rows;
  out->ResetForOverwrite(m, n);
  ParallelFor(0, m, RowGrain(k * n), [&](size_t row0, size_t row1) {
    std::vector<int32_t> acc(n);
    std::vector<uint32_t> nz(k);
    for (size_t r = row0; r < row1; ++r) {
      QGemmRow(a.data.data() + r * k, b, k, n, acc.data(), nz.data());
      FoldScales(acc.data(), a.scales[r], b_scales, bias, n, out->RowPtr(r));
    }
  });
}

void QGemmInt8Reference(const QuantizedRows& a, const int8_t* b, size_t k,
                        size_t n, const float* b_scales, const float* bias,
                        Matrix* out) {
  MAGNETO_CHECK(a.cols == k);
  MAGNETO_CHECK(k <= kQGemmMaxK);
  const size_t m = a.rows;
  out->ResetForOverwrite(m, n);
  std::vector<int32_t> acc(n);
  for (size_t r = 0; r < m; ++r) {
    const int8_t* qx = a.data.data() + r * k;
    for (size_t j = 0; j < n; ++j) acc[j] = 0;
    for (size_t i = 0; i < k; ++i) {
      const int32_t xi = qx[i];
      if (xi == 0) continue;
      const int8_t* w = b + i * n;
      for (size_t j = 0; j < n; ++j) acc[j] += xi * w[j];
    }
    FoldScales(acc.data(), a.scales[r], b_scales, bias, n, out->RowPtr(r));
  }
}

bool QGemmEnabled() {
  const int forced = g_qgemm_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return QGemmEnvEnabled();
}

void SetQGemmEnabled(bool enabled) {
  g_qgemm_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

int32_t DotInt8(const int8_t* a, const int8_t* b, size_t n) {
  MAGNETO_CHECK(n <= kQGemmMaxK);
  int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += int32_t{a[i]} * b[i];
    s1 += int32_t{a[i + 1]} * b[i + 1];
    s2 += int32_t{a[i + 2]} * b[i + 2];
    s3 += int32_t{a[i + 3]} * b[i + 3];
  }
  for (; i < n; ++i) s0 += int32_t{a[i]} * b[i];
  return (s0 + s1) + (s2 + s3);
}

int32_t SquaredNormInt8(const int8_t* v, size_t n) { return DotInt8(v, v, n); }

}  // namespace magneto
