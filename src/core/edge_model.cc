#include "core/edge_model.h"

#include "common/math_utils.h"

namespace magneto::core {

EdgeModel::EdgeModel(preprocess::Pipeline pipeline, nn::Sequential backbone,
                     NcmClassifier classifier,
                     sensors::ActivityRegistry registry)
    : pipeline_(std::move(pipeline)),
      backbone_(std::move(backbone)),
      classifier_(std::move(classifier)),
      registry_(std::move(registry)) {}

Matrix EdgeModel::Embed(const Matrix& features) {
  return backbone_.Forward(features, &embed_ws_);
}

size_t EdgeModel::embedding_dim() const {
  size_t dim = pipeline_.feature_dim();
  for (size_t i = 0; i < backbone_.num_layers(); ++i) {
    dim = backbone_.layer(i).output_dim(dim);
  }
  return dim;
}

NamedPrediction EdgeModel::WithName(const Prediction& prediction) const {
  NamedPrediction named;
  named.prediction = prediction;
  if (prediction.is_unknown()) {
    named.name = "Unknown";
    return named;
  }
  auto name = registry_.NameOf(prediction.activity);
  named.name = name.ok() ? name.value()
                         : ("#" + std::to_string(prediction.activity));
  return named;
}

Result<NamedPrediction> EdgeModel::InferFeatures(
    const std::vector<float>& features) {
  return static_cast<const EdgeModel*>(this)->InferFeatures(
      features, &embed_ws_, &classify_scratch_);
}

Result<NamedPrediction> EdgeModel::InferFeatures(
    const std::vector<float>& features,
    nn::ForwardWorkspace* workspace) const {
  NcmClassifier::Scratch local;
  return InferFeatures(features, workspace, &local);
}

Result<NamedPrediction> EdgeModel::InferFeatures(
    const std::vector<float>& features, nn::ForwardWorkspace* workspace,
    NcmClassifier::Scratch* scratch) const {
  const size_t expected = backbone_.InputDim();
  if (expected > 0 && features.size() != expected) {
    return Status::InvalidArgument(
        "feature vector has dim " + std::to_string(features.size()) +
        ", backbone expects " + std::to_string(expected));
  }
  Matrix batch(1, features.size(), features);
  const Matrix& emb =
      backbone_.Forward(batch, workspace, /*training=*/false);
  Result<Prediction> pred =
      rejection_threshold_ > 0.0
          ? classifier_.ClassifyWithRejection(emb.RowPtr(0), emb.cols(),
                                              rejection_threshold_, scratch)
          : classifier_.Classify(emb.RowPtr(0), emb.cols(), scratch);
  if (!pred.ok()) return pred.status();
  return WithName(pred.value());
}

Result<NamedPrediction> EdgeModel::InferWindow(const Matrix& raw_window) {
  MAGNETO_ASSIGN_OR_RETURN(std::vector<float> features,
                           pipeline_.ProcessWindow(raw_window));
  return InferFeatures(features);
}

Result<std::vector<NamedPrediction>> EdgeModel::InferRecording(
    const sensors::Recording& recording) {
  MAGNETO_ASSIGN_OR_RETURN(std::vector<std::vector<float>> windows,
                           pipeline_.Process(recording));
  std::vector<NamedPrediction> out;
  out.reserve(windows.size());
  for (const std::vector<float>& features : windows) {
    MAGNETO_ASSIGN_OR_RETURN(NamedPrediction pred, InferFeatures(features));
    out.push_back(std::move(pred));
  }
  return out;
}

Result<std::vector<std::pair<sensors::ActivityId, sensors::ActivityId>>>
EdgeModel::Predict(const sensors::FeatureDataset& data) {
  std::vector<std::pair<sensors::ActivityId, sensors::ActivityId>> out;
  out.reserve(data.size());
  if (data.empty()) return out;
  Matrix embeddings = Embed(data.ToMatrix());
  for (size_t i = 0; i < data.size(); ++i) {
    MAGNETO_ASSIGN_OR_RETURN(
        Prediction pred,
        classifier_.Classify(embeddings.RowPtr(i), embeddings.cols(),
                             &classify_scratch_));
    out.emplace_back(data.Label(i), pred.activity);
  }
  return out;
}

Status EdgeModel::RebuildPrototypes(const SupportSet& support) {
  MAGNETO_ASSIGN_OR_RETURN(NcmClassifier rebuilt,
                           NcmClassifier::FromSupportSet(support, this));
  // ANN is runtime serving configuration, not derived from the support set:
  // carry it across the rebuild so an incremental update can never silently
  // drop the index (rebuild-on-mutation contract).
  if (classifier_.ann_enabled()) {
    MAGNETO_RETURN_IF_ERROR(rebuilt.EnableAnn(classifier_.ann_options()));
  }
  classifier_ = std::move(rebuilt);
  return Status::Ok();
}

EdgeModel::Snapshot EdgeModel::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.backbone = backbone_.Clone();
  snapshot.classifier = classifier_;
  snapshot.registry = registry_;
  snapshot.rejection_threshold = rejection_threshold_;
  return snapshot;
}

void EdgeModel::Restore(Snapshot&& snapshot) {
  backbone_ = std::move(snapshot.backbone);
  classifier_ = std::move(snapshot.classifier);
  registry_ = std::move(snapshot.registry);
  rejection_threshold_ = snapshot.rejection_threshold;
}

size_t EdgeModel::BackboneBytes() const {
  return backbone_.NumParameters() * sizeof(float);
}

Result<double> CalibrateRejectionThreshold(
    EdgeModel* model, const std::vector<sensors::Recording>& recordings,
    double percentile, double headroom) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (percentile < 0.0 || percentile > 1.0) {
    return Status::InvalidArgument("percentile must be in [0, 1]");
  }
  if (headroom <= 0.0) {
    return Status::InvalidArgument("headroom must be positive");
  }
  // Distances must be measured with rejection off.
  const double saved_threshold = model->rejection_threshold();
  model->set_rejection_threshold(0.0);
  std::vector<float> distances;
  for (const sensors::Recording& rec : recordings) {
    auto preds = model->InferRecording(rec);
    if (!preds.ok()) {
      model->set_rejection_threshold(saved_threshold);
      return preds.status();
    }
    for (const NamedPrediction& p : preds.value()) {
      distances.push_back(static_cast<float>(p.prediction.distance));
    }
  }
  model->set_rejection_threshold(saved_threshold);
  if (distances.empty()) {
    return Status::InvalidArgument(
        "recordings yielded no complete windows to calibrate on");
  }
  return headroom * stats::Quantile(std::move(distances), percentile);
}

}  // namespace magneto::core
