#ifndef MAGNETO_CORE_CLOUD_INITIALIZER_H_
#define MAGNETO_CORE_CLOUD_INITIALIZER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/model_bundle.h"
#include "learn/siamese_trainer.h"
#include "preprocess/pipeline.h"
#include "sensors/activity.h"
#include "sensors/synthetic_generator.h"

namespace magneto::core {

/// Configuration of the offline cloud step.
struct CloudConfig {
  preprocess::PipelineConfig pipeline;

  /// Backbone hidden widths, last entry = embedding dim. Defaults to the
  /// paper's FC dims [1024 x 512 x 128 x 64 x 128] (§3.2 item 2).
  std::vector<size_t> backbone_dims = {1024, 512, 128, 64, 128};
  double dropout = 0.0;

  /// Pre-training hyperparameters (no distillation here — there is no prior
  /// model to preserve).
  learn::TrainOptions train;

  /// Support exemplars kept per class; the paper's example figure is 200.
  size_t support_capacity = 200;
  SelectionStrategy selection = SelectionStrategy::kHerding;

  uint64_t seed = 7;
};

/// Report of a cloud initialization run.
struct CloudReport {
  learn::TrainReport train;
  size_t training_windows = 0;
  size_t bundle_bytes = 0;
};

/// The paper's offline step (§3.2): pre-trains the whole platform on the
/// initial corpus and packages every transferable item into a `ModelBundle`.
///
/// Runs "in the cloud" only in the deployment sense — it is ordinary library
/// code, executed wherever the open initial dataset lives. No user data is
/// involved (Definition 1).
class CloudInitializer {
 public:
  explicit CloudInitializer(CloudConfig config) : config_(std::move(config)) {}

  const CloudConfig& config() const { return config_; }

  /// Full offline pipeline over the initial corpus:
  ///   1. fit the preprocessing function (freeze normaliser stats),
  ///   2. train the Siamese embedding backbone with contrastive loss,
  ///   3. select support exemplars per class,
  ///   4. compute NCM prototypes,
  ///   5. assemble the transferable bundle.
  /// `registry` must name every label appearing in `corpus`.
  Result<ModelBundle> Initialize(
      const std::vector<sensors::LabeledRecording>& corpus,
      const sensors::ActivityRegistry& registry,
      CloudReport* report = nullptr) const;

 private:
  CloudConfig config_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_CLOUD_INITIALIZER_H_
