#ifndef MAGNETO_CORE_INCREMENTAL_LEARNER_H_
#define MAGNETO_CORE_INCREMENTAL_LEARNER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/edge_model.h"
#include "core/support_set.h"
#include "core/update_transaction.h"
#include "learn/siamese_trainer.h"
#include "sensors/recording.h"

namespace magneto::core {

/// The steps of one incremental update (§3.3), in execution order. Step
/// boundaries of the update transaction; used by the failure-injection hook.
enum class UpdateStep : uint8_t {
  kPreprocess = 0,  ///< (1) featurize the capture with the frozen pipeline
  kTrain = 1,       ///< (2)+(3) distillation teacher + joint retraining
  kSupportSet = 2,  ///< (4) fold/replace exemplars in the support set
  kPrototypes = 3,  ///< (5) rebuild every NCM prototype
};

/// Hyperparameters of an on-device update.
struct IncrementalOptions {
  /// Edge retraining config. `distill_weight` > 0 activates the paper's
  /// anti-forgetting term; set to 0 to reproduce the catastrophic-forgetting
  /// baseline (ablated in bench_incremental).
  learn::TrainOptions train = [] {
    learn::TrainOptions t;
    t.epochs = 15;
    t.batch_size = 32;
    t.learning_rate = 5e-4;
    t.distill_weight = 1.0;
    return t;
  }();

  /// Weight of the EWC penalty against the pre-update parameters (0 =
  /// disabled). Ablated in bench_incremental as the regularisation-based
  /// alternative to the paper's rehearsal + distillation.
  double ewc_weight = 0.0;

  /// If true (the paper's recipe, §3.3 step 3), the retraining set is the
  /// support set plus the fresh windows. If false, training sees only the
  /// fresh windows — naive fine-tuning, the catastrophic-forgetting baseline
  /// ablated in bench_incremental.
  bool rehearse_support = true;

  uint64_t seed = 99;

  /// Test-only failure injection: invoked after each update step has run
  /// against the *staged* transaction state; returning an error makes the
  /// step fail as if the step itself had errored. Production leaves this
  /// unset. Used to prove the all-or-nothing guarantee at every boundary.
  std::function<Status(UpdateStep)> failure_hook;
};

/// Outcome of one on-device update.
struct UpdateReport {
  sensors::ActivityId activity = -1;
  size_t new_windows = 0;       ///< windows extracted from the recordings
  learn::TrainReport train;
  size_t support_bytes = 0;     ///< support-set payload after the update
};

/// Definition 2 of the paper, executed entirely on the edge device:
/// enriches the model with the user's personal data, either by learning a
/// brand-new activity or by re-calibrating an existing one, without
/// forgetting what the cloud model knew.
///
/// The update recipe (§3.3):
///   1. preprocess the user's fresh recording into feature windows,
///   2. freeze a copy of the current backbone as the distillation teacher,
///   3. retrain on {old support set} U {new windows} with the joint
///      contrastive + distillation objective,
///   4. fold the new windows into the support set (herding),
///   5. recompute all NCM prototypes through the updated backbone.
///
/// Every update is transactional: steps (1)-(5) run against an
/// `UpdateTransaction`'s staged copies and commit with a single swap only
/// when all of them succeed. An error at *any* step — including a failed
/// registration of the new name — leaves the model, support set,
/// prototypes and registry byte-identical to before the call, so a failed
/// capture is always safely retryable.
class IncrementalLearner {
 public:
  explicit IncrementalLearner(IncrementalOptions options)
      : options_(options) {}

  const IncrementalOptions& options() const { return options_; }

  /// Learns a new activity named `name` from the user's recordings. Registers
  /// the name in the model's registry and returns the update report.
  Result<UpdateReport> LearnNewActivity(
      EdgeModel* model, SupportSet* support, const std::string& name,
      const std::vector<sensors::Recording>& recordings) const;

  /// Re-calibrates the existing activity `id` to the user's personal style:
  /// identical to re-training, except the activity's support data is
  /// *replaced* by the newly acquired data (§3.3, final paragraph).
  Result<UpdateReport> Calibrate(
      EdgeModel* model, SupportSet* support, sensors::ActivityId id,
      const std::vector<sensors::Recording>& recordings) const;

 private:
  /// Runs steps (1)-(5) against the transaction's staged state and commits
  /// on success. `pipeline` and `teacher` belong to the live (read-only
  /// during the update) model.
  Result<UpdateReport> Update(
      UpdateTransaction* tx, const preprocess::Pipeline& pipeline,
      nn::Sequential* teacher, sensors::ActivityId id,
      const std::vector<sensors::Recording>& recordings,
      bool is_new_class) const;

  IncrementalOptions options_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_INCREMENTAL_LEARNER_H_
