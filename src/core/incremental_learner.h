#ifndef MAGNETO_CORE_INCREMENTAL_LEARNER_H_
#define MAGNETO_CORE_INCREMENTAL_LEARNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/edge_model.h"
#include "core/support_set.h"
#include "learn/siamese_trainer.h"
#include "sensors/recording.h"

namespace magneto::core {

/// Hyperparameters of an on-device update.
struct IncrementalOptions {
  /// Edge retraining config. `distill_weight` > 0 activates the paper's
  /// anti-forgetting term; set to 0 to reproduce the catastrophic-forgetting
  /// baseline (ablated in bench_incremental).
  learn::TrainOptions train = [] {
    learn::TrainOptions t;
    t.epochs = 15;
    t.batch_size = 32;
    t.learning_rate = 5e-4;
    t.distill_weight = 1.0;
    return t;
  }();

  /// Weight of the EWC penalty against the pre-update parameters (0 =
  /// disabled). Ablated in bench_incremental as the regularisation-based
  /// alternative to the paper's rehearsal + distillation.
  double ewc_weight = 0.0;

  /// If true (the paper's recipe, §3.3 step 3), the retraining set is the
  /// support set plus the fresh windows. If false, training sees only the
  /// fresh windows — naive fine-tuning, the catastrophic-forgetting baseline
  /// ablated in bench_incremental.
  bool rehearse_support = true;

  uint64_t seed = 99;
};

/// Outcome of one on-device update.
struct UpdateReport {
  sensors::ActivityId activity = -1;
  size_t new_windows = 0;       ///< windows extracted from the recordings
  learn::TrainReport train;
  size_t support_bytes = 0;     ///< support-set payload after the update
};

/// Definition 2 of the paper, executed entirely on the edge device:
/// enriches the model with the user's personal data, either by learning a
/// brand-new activity or by re-calibrating an existing one, without
/// forgetting what the cloud model knew.
///
/// The update recipe (§3.3):
///   1. preprocess the user's fresh recording into feature windows,
///   2. freeze a copy of the current backbone as the distillation teacher,
///   3. retrain on {old support set} U {new windows} with the joint
///      contrastive + distillation objective,
///   4. fold the new windows into the support set (herding),
///   5. recompute all NCM prototypes through the updated backbone.
class IncrementalLearner {
 public:
  explicit IncrementalLearner(IncrementalOptions options)
      : options_(options) {}

  const IncrementalOptions& options() const { return options_; }

  /// Learns a new activity named `name` from the user's recordings. Registers
  /// the name in the model's registry and returns the update report.
  Result<UpdateReport> LearnNewActivity(
      EdgeModel* model, SupportSet* support, const std::string& name,
      const std::vector<sensors::Recording>& recordings) const;

  /// Re-calibrates the existing activity `id` to the user's personal style:
  /// identical to re-training, except the activity's support data is
  /// *replaced* by the newly acquired data (§3.3, final paragraph).
  Result<UpdateReport> Calibrate(
      EdgeModel* model, SupportSet* support, sensors::ActivityId id,
      const std::vector<sensors::Recording>& recordings) const;

 private:
  Result<UpdateReport> Update(
      EdgeModel* model, SupportSet* support, sensors::ActivityId id,
      const std::vector<sensors::Recording>& recordings,
      bool is_new_class) const;

  IncrementalOptions options_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_INCREMENTAL_LEARNER_H_
