#include "core/edge_runtime.h"

#include <filesystem>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::core {

namespace {

struct EdgeMetrics {
  obs::Counter* frames = obs::Registry::Global().GetCounter("edge.frames");
  obs::Counter* windows = obs::Registry::Global().GetCounter("edge.windows");
  obs::Counter* predictions =
      obs::Registry::Global().GetCounter("edge.predictions");
  obs::Counter* rejections =
      obs::Registry::Global().GetCounter("edge.rejections");
  obs::Counter* smoother_overrides =
      obs::Registry::Global().GetCounter("edge.smoother_overrides");
  obs::Counter* updates = obs::Registry::Global().GetCounter("edge.updates");
  obs::Histogram* classify_us =
      obs::Registry::Global().GetHistogram("edge.classify_us");
};

EdgeMetrics& Metrics() {
  static EdgeMetrics* metrics = new EdgeMetrics;
  return *metrics;
}

}  // namespace

EdgeRuntime::EdgeRuntime(EdgeModel model, SupportSet support,
                         IncrementalOptions options, double sample_rate_hz)
    : model_(std::move(model)),
      support_(std::move(support)),
      update_options_(options),
      learner_(options),
      sample_rate_hz_(sample_rate_hz) {}

Matrix EdgeRuntime::TakeWindow() {
  const auto& seg = model_.pipeline().config().segmentation;
  Matrix window(seg.window_samples, sensors::kNumChannels);
  for (size_t r = 0; r < seg.window_samples; ++r) {
    const sensors::Frame& f = stream_buffer_[r];
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      window.At(r, c) = f[c];
    }
  }
  // Advance by the stride. With stride > window (gapped sampling) the
  // surplus frames have not arrived yet; remember how many to discard.
  const size_t advance = std::min(seg.stride, stream_buffer_.size());
  stream_buffer_.erase(stream_buffer_.begin(),
                       stream_buffer_.begin() + advance);
  pending_skip_ = seg.stride - advance;
  return window;
}

Result<std::optional<NamedPrediction>> EdgeRuntime::PushFrame(
    const sensors::Frame& frame) {
  ++stats_.frames;
  Metrics().frames->Increment();
  if (mode_ == RuntimeMode::kRecording) {
    capture_buffer_.push_back(frame);
    return std::optional<NamedPrediction>{};
  }
  if (pending_skip_ > 0) {
    --pending_skip_;
    return std::optional<NamedPrediction>{};
  }
  stream_buffer_.push_back(frame);
  const auto& seg = model_.pipeline().config().segmentation;
  if (stream_buffer_.size() < seg.window_samples) {
    return std::optional<NamedPrediction>{};
  }
  Matrix window = TakeWindow();
  ++stats_.windows;
  Metrics().windows->Increment();
  obs::TraceSpan span("EdgeRuntime::Classify");
  obs::ScopedTimer classify_timer(Metrics().classify_us);
  MAGNETO_ASSIGN_OR_RETURN(NamedPrediction pred, model_.InferWindow(window));
  ++stats_.predictions;
  Metrics().predictions->Increment();
  if (pred.prediction.is_unknown()) Metrics().rejections->Increment();
  if (smoother_ != nullptr) {
    const sensors::ActivityId raw_activity = pred.prediction.activity;
    pred = smoother_->Push(pred);
    if (pred.prediction.activity != raw_activity) {
      Metrics().smoother_overrides->Increment();
    }
  }
  if (drift_monitor_ != nullptr) drift_monitor_->Observe(pred.prediction);
  if (journal_ != nullptr) journal_->Record(pred);
  last_prediction_ = pred;
  return std::optional<NamedPrediction>(std::move(pred));
}

Status EdgeRuntime::StartRecording() {
  if (mode_ == RuntimeMode::kRecording) {
    return Status::FailedPrecondition("already recording");
  }
  mode_ = RuntimeMode::kRecording;
  capture_buffer_.clear();
  stream_buffer_.clear();  // stale inference context would straddle modes
  if (smoother_ != nullptr) smoother_->Reset();
  if (drift_monitor_ != nullptr) drift_monitor_->Reset();
  return Status::Ok();
}

sensors::Recording EdgeRuntime::FinishCapture() {
  sensors::Recording rec;
  rec.sample_rate_hz = sample_rate_hz_;
  rec.samples.Reset(capture_buffer_.size(), sensors::kNumChannels);
  for (size_t r = 0; r < capture_buffer_.size(); ++r) {
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      rec.samples.At(r, c) = capture_buffer_[r][c];
    }
  }
  capture_buffer_.clear();
  mode_ = RuntimeMode::kInference;
  return rec;
}

Result<UpdateReport> EdgeRuntime::FinishRecordingAndLearn(
    const std::string& name) {
  if (mode_ != RuntimeMode::kRecording) {
    return Status::FailedPrecondition("not recording");
  }
  sensors::Recording rec = FinishCapture();
  MAGNETO_ASSIGN_OR_RETURN(
      UpdateReport report,
      learner_.LearnNewActivity(&model_, &support_, name, {rec}));
  OnUpdateCommitted();
  return report;
}

Result<UpdateReport> EdgeRuntime::FinishRecordingAndCalibrate(
    const std::string& name) {
  if (mode_ != RuntimeMode::kRecording) {
    return Status::FailedPrecondition("not recording");
  }
  MAGNETO_ASSIGN_OR_RETURN(sensors::ActivityId id,
                           model_.registry().IdOf(name));
  sensors::Recording rec = FinishCapture();
  MAGNETO_ASSIGN_OR_RETURN(
      UpdateReport report, learner_.Calibrate(&model_, &support_, id, {rec}));
  OnUpdateCommitted();
  return report;
}

void EdgeRuntime::OnUpdateCommitted() {
  ++stats_.updates;
  Metrics().updates->Increment();
  if (auto_checkpoint_path_.empty()) return;
  // The learner only returns success once the staged state is fully
  // committed, so what is persisted here is exactly the post-update model.
  // A rolled-back update never reaches this point and the previous
  // checkpoint (the pre-update model) stays authoritative on disk.
  Status saved = SaveCheckpoint(auto_checkpoint_path_);
  if (!saved.ok()) {
    MAGNETO_LOG(Warning) << "auto-checkpoint failed: " << saved.ToString();
  }
}

void EdgeRuntime::EnableAutoCheckpoint(std::string path) {
  auto_checkpoint_path_ = std::move(path);
}

void EdgeRuntime::DisableAutoCheckpoint() { auto_checkpoint_path_.clear(); }

void EdgeRuntime::CancelRecording() {
  capture_buffer_.clear();
  mode_ = RuntimeMode::kInference;
}

Status EdgeRuntime::FinishRecordingAndLearnAsync(const std::string& name) {
  if (mode_ != RuntimeMode::kRecording) {
    return Status::FailedPrecondition("not recording");
  }
  if (UpdatePending()) {
    return Status::FailedPrecondition("an update is already in flight");
  }
  sensors::Recording rec = FinishCapture();
  if (updater_ == nullptr) {
    updater_ = std::make_unique<AsyncUpdater>(update_options_);
  }
  return updater_->StartLearn(model_, support_, name, {std::move(rec)});
}

Status EdgeRuntime::FinishRecordingAndCalibrateAsync(const std::string& name) {
  if (mode_ != RuntimeMode::kRecording) {
    return Status::FailedPrecondition("not recording");
  }
  if (UpdatePending()) {
    return Status::FailedPrecondition("an update is already in flight");
  }
  MAGNETO_ASSIGN_OR_RETURN(sensors::ActivityId id,
                           model_.registry().IdOf(name));
  sensors::Recording rec = FinishCapture();
  if (updater_ == nullptr) {
    updater_ = std::make_unique<AsyncUpdater>(update_options_);
  }
  return updater_->StartCalibrate(model_, support_, id, {std::move(rec)});
}

bool EdgeRuntime::UpdatePending() const {
  return updater_ != nullptr && updater_->busy();
}

bool EdgeRuntime::UpdateReady() const {
  return updater_ != nullptr && updater_->ready();
}

Result<UpdateReport> EdgeRuntime::CommitUpdate() {
  if (updater_ == nullptr) {
    return Status::FailedPrecondition("no update was started");
  }
  MAGNETO_ASSIGN_OR_RETURN(AsyncUpdater::Outcome outcome, updater_->Take());
  // Atomic from the caller's perspective: between PushFrame calls.
  model_ = std::move(outcome.model);
  support_ = std::move(outcome.support);
  stream_buffer_.clear();
  if (smoother_ != nullptr) smoother_->Reset();
  if (drift_monitor_ != nullptr) drift_monitor_->Reset();
  OnUpdateCommitted();
  return std::move(outcome.report);
}

ModelBundle EdgeRuntime::ToBundle() const {
  ModelBundle bundle;
  bundle.pipeline = model_.pipeline();
  bundle.backbone = model_.backbone().Clone();
  bundle.classifier = model_.classifier();
  bundle.registry = model_.registry();
  bundle.support = support_;
  return bundle;
}

std::string EdgeRuntime::LastKnownGoodPath(const std::string& path) {
  return path + ".lkg";
}

Status EdgeRuntime::SaveCheckpoint(const std::string& path) const {
  // Rotate the current checkpoint (whatever its health — it was the last
  // state this code accepted) to the fallback slot, then atomically write
  // the new one. A crash between the two steps leaves the .lkg loadable; a
  // crash mid-write leaves the temp behind and the rotation intact.
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, LastKnownGoodPath(path), ec);
    if (ec) {
      return Status::IoError("checkpoint rotation failed: " + path + ": " +
                             ec.message());
    }
  }
  MAGNETO_RETURN_IF_ERROR(ToBundle().SaveToFile(path));
  static obs::Counter* const saves =
      obs::Registry::Global().GetCounter("edge.checkpoint.saves");
  saves->Increment();
  return Status::Ok();
}

Result<EdgeRuntime> EdgeRuntime::FromCheckpoint(const std::string& path,
                                                IncrementalOptions options,
                                                double sample_rate_hz) {
  bool used_fallback = false;
  MAGNETO_ASSIGN_OR_RETURN(
      ModelBundle bundle,
      ModelBundle::LoadFromFileWithFallback(path, LastKnownGoodPath(path),
                                            &used_fallback));
  if (used_fallback) {
    MAGNETO_LOG(Warning) << "checkpoint " << path
                         << " unusable; restored last-known-good "
                         << LastKnownGoodPath(path);
  }
  SupportSet support = std::move(bundle.support);
  return EdgeRuntime(std::move(bundle).ToEdgeModel(), std::move(support),
                     options, sample_rate_hz);
}

void EdgeRuntime::EnableSmoothing(PredictionSmoother::Options options) {
  smoother_ = std::make_unique<PredictionSmoother>(options);
}

void EdgeRuntime::DisableSmoothing() { smoother_.reset(); }

void EdgeRuntime::EnableDriftMonitoring(DriftMonitor::Options options,
                                        double baseline_distance) {
  drift_monitor_ = std::make_unique<DriftMonitor>(options);
  drift_monitor_->SetBaselineDistance(baseline_distance);
}

void EdgeRuntime::DisableDriftMonitoring() { drift_monitor_.reset(); }

bool EdgeRuntime::Drifting() const {
  return drift_monitor_ != nullptr && drift_monitor_->drifting();
}

void EdgeRuntime::EnableJournal() {
  const auto& seg = model_.pipeline().config().segmentation;
  journal_ = std::make_unique<ActivityJournal>(
      sample_rate_hz_ > 0
          ? static_cast<double>(seg.stride) / sample_rate_hz_
          : 1.0);
}

double EdgeRuntime::recorded_seconds() const {
  return sample_rate_hz_ > 0
             ? static_cast<double>(capture_buffer_.size()) / sample_rate_hz_
             : 0.0;
}

}  // namespace magneto::core
