#include "core/cloud_initializer.h"

#include "common/random.h"
#include "nn/sequential.h"

namespace magneto::core {

Result<ModelBundle> CloudInitializer::Initialize(
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry, CloudReport* report) const {
  if (corpus.empty()) {
    return Status::InvalidArgument("initial corpus is empty");
  }
  for (const sensors::LabeledRecording& rec : corpus) {
    if (!registry.Contains(rec.label)) {
      return Status::InvalidArgument("corpus label not in registry: " +
                                     std::to_string(rec.label));
    }
  }

  Rng rng(config_.seed);
  ModelBundle bundle;
  bundle.registry = registry;

  // (1) Preprocessing function, normaliser frozen on the corpus.
  bundle.pipeline = preprocess::Pipeline(config_.pipeline);
  MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset features,
                           bundle.pipeline.Fit(corpus));

  // (2) Siamese pre-training with contrastive loss.
  Rng net_rng = rng.Fork();
  bundle.backbone = nn::BuildMlp(features.dim(), config_.backbone_dims,
                                 &net_rng, config_.dropout);
  learn::TrainOptions train = config_.train;
  train.distill_weight = 0.0;  // nothing to distil from
  learn::SiameseTrainer trainer(train);
  MAGNETO_ASSIGN_OR_RETURN(learn::TrainReport train_report,
                           trainer.Train(&bundle.backbone, features));

  // (3) Support-set selection per class. The temporary edge model gives the
  // herding strategy its embedding space.
  EdgeModel embedder(preprocess::Pipeline(config_.pipeline),
                     bundle.backbone.Clone(), NcmClassifier{}, registry);
  bundle.support = SupportSet(config_.support_capacity, config_.selection);
  Rng select_rng = rng.Fork();
  for (sensors::ActivityId id : features.Classes()) {
    MAGNETO_RETURN_IF_ERROR(bundle.support.SetClass(
        id, features.FilterByClass(id), &embedder, &select_rng));
  }

  // (4) NCM prototypes from the support exemplars.
  MAGNETO_ASSIGN_OR_RETURN(
      bundle.classifier, NcmClassifier::FromSupportSet(bundle.support,
                                                       &embedder));

  // (5) Done — the bundle is the transfer artifact.
  if (report != nullptr) {
    report->train = std::move(train_report);
    report->training_windows = features.size();
    report->bundle_bytes = bundle.SerializedBytes();
  }
  return bundle;
}

}  // namespace magneto::core
