#ifndef MAGNETO_CORE_UPDATE_TRANSACTION_H_
#define MAGNETO_CORE_UPDATE_TRANSACTION_H_

#include "common/result.h"
#include "core/edge_model.h"
#include "core/support_set.h"
#include "nn/sequential.h"

namespace magneto::core {

/// All-or-nothing staging for one incremental update (§3.3).
///
/// The learner's five steps used to mutate the live deployment in place, so
/// a failure in step (4) or (5) left the backbone retrained while the
/// support set / prototypes / registry described the pre-update world — a
/// silently diverged model. The transaction closes that hole: every step
/// runs against private copies of `{backbone weights, support set,
/// prototypes, registry}` and `Commit()` installs them with a single swap.
/// Until then the live model and support set are never written, so any
/// error (or a crash) leaves them byte-identical to before the call.
///
/// The staging is cheap: the backbone copy is the same `Clone()` the
/// distillation recipe already paid for — the staged backbone is trained as
/// the student while the untouched *live* backbone serves as the frozen
/// teacher, so no second weight copy exists.
///
/// Not committing (destruction, early return, error) is a rollback.
/// Counters: `learner.commits`, `learner.rollbacks`; the
/// `learner.staged_bytes` gauge reports the transaction's staged payload.
class UpdateTransaction {
 public:
  /// Snapshots `model` + `support`. Neither is written before `Commit`.
  UpdateTransaction(EdgeModel* model, SupportSet* support);

  /// Rolls back (drops the staged state) unless `Commit` ran.
  ~UpdateTransaction();

  UpdateTransaction(const UpdateTransaction&) = delete;
  UpdateTransaction& operator=(const UpdateTransaction&) = delete;

  // -- Staged state (what the update steps mutate) -----------------------------

  nn::Sequential& backbone() { return staged_.backbone; }
  SupportSet& support() { return support_; }
  sensors::ActivityRegistry& registry() { return staged_.registry; }

  /// Embeds through the *staged* backbone — hand this to support-set
  /// herding so exemplars are selected in the post-update embedding space.
  Embedder& embedder() { return embedder_; }

  /// Rebuilds every NCM prototype from the staged support set through the
  /// staged backbone (step (5) against staged state).
  Status RebuildPrototypes();

  /// Bytes of staged state held by this transaction (backbone weights +
  /// support exemplars + prototypes).
  size_t StagedBytes() const;

  // -- Commit ------------------------------------------------------------------

  /// Installs the staged state into the live model and support set with a
  /// single swap. Call only after every step succeeded.
  void Commit();

  bool committed() const { return committed_; }

 private:
  /// Embedder facade over the staged backbone (inference-mode forwards
  /// through the transaction's own workspace).
  class StagedEmbedder : public Embedder {
   public:
    explicit StagedEmbedder(nn::Sequential* backbone) : backbone_(backbone) {}
    Matrix Embed(const Matrix& features) override {
      return backbone_->Forward(features, &ws_);
    }
    size_t embedding_dim() const override;

   private:
    nn::Sequential* backbone_;
    nn::ForwardWorkspace ws_;
  };

  EdgeModel* model_;
  SupportSet* live_support_;
  EdgeModel::Snapshot staged_;
  SupportSet support_;
  StagedEmbedder embedder_;
  bool committed_ = false;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_UPDATE_TRANSACTION_H_
