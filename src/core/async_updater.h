#ifndef MAGNETO_CORE_ASYNC_UPDATER_H_
#define MAGNETO_CORE_ASYNC_UPDATER_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/edge_model.h"
#include "core/incremental_learner.h"
#include "core/support_set.h"
#include "sensors/recording.h"

namespace magneto::core {

/// Runs an incremental update on a background thread against a *snapshot* of
/// the deployment, so the foreground keeps classifying with the current model
/// until the new one is ready — exactly what a responsive phone app needs
/// during the paper's Figure 3(d) "Updating the Edge model" step.
///
/// Protocol: `StartLearn`/`StartCalibrate` (fails if an update is running) ->
/// poll `ready()` (or just call `Take`, which blocks) -> `Take()` returns the
/// updated model + support set for an atomic swap by the owner.
///
/// Thread-safe: Start*/busy/ready/Take may race from any threads. All state,
/// including the worker handle, is guarded by `mu_`; the lock order is
/// fixed — the handle of a finished worker is moved out under `mu_` and
/// joined *outside* it (the worker's tail takes `mu_` to publish its
/// outcome, so joining under the lock would deadlock). Destruction must not
/// race with other calls (usual C++ object lifetime rule).
class AsyncUpdater {
 public:
  /// The updated deployment produced by a background update.
  struct Outcome {
    EdgeModel model;
    SupportSet support;
    UpdateReport report;
  };

  explicit AsyncUpdater(IncrementalOptions options) : options_(options) {}

  /// Joins any in-flight update (its result is discarded).
  ~AsyncUpdater();

  AsyncUpdater(const AsyncUpdater&) = delete;
  AsyncUpdater& operator=(const AsyncUpdater&) = delete;

  /// Snapshots `model` + `support` and learns `name` in the background.
  Status StartLearn(const EdgeModel& model, const SupportSet& support,
                    std::string name,
                    std::vector<sensors::Recording> recordings);

  /// Snapshots and re-calibrates activity `id` in the background.
  Status StartCalibrate(const EdgeModel& model, const SupportSet& support,
                        sensors::ActivityId id,
                        std::vector<sensors::Recording> recordings);

  /// True between a successful Start* and the matching Take().
  bool busy() const;

  /// True when the background work has finished and Take() will not block.
  bool ready() const;

  /// Waits for completion and returns the outcome (or the update's error).
  /// Fails with kFailedPrecondition if no update was started.
  Result<Outcome> Take();

 private:
  enum class State { kIdle, kRunning, kDone };

  void Launch(EdgeModel snapshot_model, SupportSet snapshot_support,
              std::function<Result<UpdateReport>(EdgeModel*, SupportSet*)>
                  update);

  /// Moves the worker handle out under `mu_` and joins it outside. The only
  /// way any code path reaps a worker thread.
  void ReapWorker();

  IncrementalOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signalled when state_ becomes kDone
  State state_ = State::kIdle;
  std::thread worker_;  ///< guarded by mu_; joined only via ReapWorker
  std::unique_ptr<Result<Outcome>> outcome_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_ASYNC_UPDATER_H_
