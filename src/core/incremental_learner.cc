#include "core/incremental_learner.h"

#include <chrono>

#include "common/random.h"
#include "learn/ewc.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::core {

namespace {

struct LearnerMetrics {
  obs::Counter* updates =
      obs::Registry::Global().GetCounter("learner.updates");
  obs::Histogram* update_ms = obs::Registry::Global().GetHistogram(
      "learner.update_ms", obs::LatencyBucketsMs());
  // Cost split of one incremental update: frozen-pipeline featurization of
  // the capture vs backbone retraining (distillation + contrastive) vs the
  // support-set / prototype refresh.
  obs::Histogram* preprocess_ms = obs::Registry::Global().GetHistogram(
      "learner.preprocess_ms", obs::LatencyBucketsMs());
  obs::Histogram* train_ms = obs::Registry::Global().GetHistogram(
      "learner.train_ms", obs::LatencyBucketsMs());
  obs::Histogram* support_ms = obs::Registry::Global().GetHistogram(
      "learner.support_ms", obs::LatencyBucketsMs());
};

LearnerMetrics& Metrics() {
  static LearnerMetrics* metrics = new LearnerMetrics;
  return *metrics;
}

using UpdateClock = std::chrono::steady_clock;

double MsSince(UpdateClock::time_point start) {
  return std::chrono::duration<double>(UpdateClock::now() - start).count() *
         1e3;
}

/// Test-only injection point: pretends the step that just ran failed.
Status CheckStep(const IncrementalOptions& options, UpdateStep step) {
  if (options.failure_hook) return options.failure_hook(step);
  return Status::Ok();
}

}  // namespace

Result<UpdateReport> IncrementalLearner::LearnNewActivity(
    EdgeModel* model, SupportSet* support, const std::string& name,
    const std::vector<sensors::Recording>& recordings) const {
  if (model == nullptr || support == nullptr) {
    return Status::InvalidArgument("model and support must not be null");
  }
  UpdateTransaction tx(model, support);
  // Registration happens on the staged registry: a failure anywhere below
  // (or of the registration itself) drops the staged copy, the live
  // registry is never written, and the name stays free for a retry.
  MAGNETO_ASSIGN_OR_RETURN(sensors::ActivityId id, tx.registry().Register(name));
  return Update(&tx, model->pipeline(), &model->backbone(), id, recordings,
                /*is_new_class=*/true);
}

Result<UpdateReport> IncrementalLearner::Calibrate(
    EdgeModel* model, SupportSet* support, sensors::ActivityId id,
    const std::vector<sensors::Recording>& recordings) const {
  if (model == nullptr || support == nullptr) {
    return Status::InvalidArgument("model and support must not be null");
  }
  if (!model->registry().Contains(id)) {
    return Status::NotFound("cannot calibrate unknown activity: " +
                            std::to_string(id));
  }
  if (!support->HasClass(id)) {
    return Status::FailedPrecondition(
        "activity has no support data to replace: " + std::to_string(id));
  }
  UpdateTransaction tx(model, support);
  return Update(&tx, model->pipeline(), &model->backbone(), id, recordings,
                /*is_new_class=*/false);
}

Result<UpdateReport> IncrementalLearner::Update(
    UpdateTransaction* tx, const preprocess::Pipeline& pipeline,
    nn::Sequential* teacher, sensors::ActivityId id,
    const std::vector<sensors::Recording>& recordings,
    bool is_new_class) const {
  obs::TraceSpan span("IncrementalLearner::Update");
  obs::ScopedTimer update_timer(Metrics().update_ms, /*scale=*/1e3);
  Metrics().updates->Increment();

  // (1) Preprocess the user's capture with the frozen pipeline.
  const auto preprocess_start = UpdateClock::now();
  std::vector<sensors::LabeledRecording> labeled;
  labeled.reserve(recordings.size());
  for (const sensors::Recording& rec : recordings) {
    labeled.push_back({rec, id});
  }
  MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset new_data,
                           pipeline.ProcessLabeled(labeled));
  Metrics().preprocess_ms->Record(MsSince(preprocess_start));
  if (new_data.empty()) {
    return Status::InvalidArgument(
        "recordings yielded no complete windows; record for longer");
  }
  MAGNETO_RETURN_IF_ERROR(CheckStep(options_, UpdateStep::kPreprocess));

  // (2) The *live* backbone — untouched until commit — is the frozen
  // distillation teacher; the staged clone is the student being retrained.
  // The distillation targets are the embeddings of the retained knowledge:
  // every support class except the one being (re)learned.
  const sensors::FeatureDataset retained = is_new_class
                                               ? tx->support().AsDataset()
                                               : tx->support().DatasetExcluding(id);

  // (3) Joint retraining on old exemplars + fresh windows (or, with
  // rehearsal disabled, the naive fine-tuning baseline).
  sensors::FeatureDataset train_data =
      options_.rehearse_support ? retained : sensors::FeatureDataset{};
  train_data.Merge(new_data);

  learn::TrainOptions train_options = options_.train;
  const bool distill =
      train_options.distill_weight > 0.0 && !retained.empty();
  const bool use_ewc = options_.ewc_weight > 0.0 && !retained.empty();
  train_options.ewc_weight = use_ewc ? options_.ewc_weight : 0.0;

  // EWC importance is measured on the *pre-update* weights against the
  // retained knowledge, before any weight moves — the staged backbone still
  // carries them at this point.
  std::unique_ptr<learn::EwcRegularizer> ewc;
  if (use_ewc) {
    learn::EwcRegularizer::Options ewc_options;
    ewc_options.margin = train_options.margin;
    ewc_options.seed = options_.seed ^ 0x5757;
    MAGNETO_ASSIGN_OR_RETURN(
        learn::EwcRegularizer estimated,
        learn::EwcRegularizer::Estimate(&tx->backbone(), retained,
                                        ewc_options));
    ewc = std::make_unique<learn::EwcRegularizer>(std::move(estimated));
  }

  learn::SiameseTrainer trainer(train_options);
  learn::TrainReport train_report;
  const auto train_start = UpdateClock::now();
  if (distill) {
    MAGNETO_ASSIGN_OR_RETURN(
        train_report,
        trainer.Train(&tx->backbone(), train_data, teacher, &retained,
                      ewc.get()));
  } else {
    MAGNETO_ASSIGN_OR_RETURN(
        train_report,
        trainer.Train(&tx->backbone(), train_data, nullptr, nullptr,
                      ewc.get()));
  }
  Metrics().train_ms->Record(MsSince(train_start));
  MAGNETO_RETURN_IF_ERROR(CheckStep(options_, UpdateStep::kTrain));

  // (4) Support-set update: fold in (or, for calibration, replace with) the
  // fresh windows, herded through the *updated* (staged) embedding space.
  const auto support_start = UpdateClock::now();
  Rng rng(options_.seed ^ static_cast<uint64_t>(id));
  MAGNETO_RETURN_IF_ERROR(
      tx->support().SetClass(id, new_data, &tx->embedder(), &rng));
  MAGNETO_RETURN_IF_ERROR(CheckStep(options_, UpdateStep::kSupportSet));

  // (5) All prototypes move when the backbone moves — rebuild every class.
  MAGNETO_RETURN_IF_ERROR(tx->RebuildPrototypes());
  Metrics().support_ms->Record(MsSince(support_start));
  MAGNETO_RETURN_IF_ERROR(CheckStep(options_, UpdateStep::kPrototypes));

  UpdateReport report;
  report.activity = id;
  report.new_windows = new_data.size();
  report.train = std::move(train_report);
  report.support_bytes = tx->support().MemoryBytes();

  // Every step succeeded against the staged state: install it with one
  // swap. Nothing before this line has written to the live deployment.
  tx->Commit();
  return report;
}

}  // namespace magneto::core
