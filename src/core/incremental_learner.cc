#include "core/incremental_learner.h"

#include <chrono>

#include "common/random.h"
#include "learn/ewc.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::core {

namespace {

struct LearnerMetrics {
  obs::Counter* updates =
      obs::Registry::Global().GetCounter("learner.updates");
  obs::Histogram* update_ms = obs::Registry::Global().GetHistogram(
      "learner.update_ms", obs::LatencyBucketsMs());
  // Cost split of one incremental update: frozen-pipeline featurization of
  // the capture vs backbone retraining (distillation + contrastive) vs the
  // support-set / prototype refresh.
  obs::Histogram* preprocess_ms = obs::Registry::Global().GetHistogram(
      "learner.preprocess_ms", obs::LatencyBucketsMs());
  obs::Histogram* train_ms = obs::Registry::Global().GetHistogram(
      "learner.train_ms", obs::LatencyBucketsMs());
  obs::Histogram* support_ms = obs::Registry::Global().GetHistogram(
      "learner.support_ms", obs::LatencyBucketsMs());
};

LearnerMetrics& Metrics() {
  static LearnerMetrics* metrics = new LearnerMetrics;
  return *metrics;
}

using UpdateClock = std::chrono::steady_clock;

double MsSince(UpdateClock::time_point start) {
  return std::chrono::duration<double>(UpdateClock::now() - start).count() *
         1e3;
}

}  // namespace

Result<UpdateReport> IncrementalLearner::LearnNewActivity(
    EdgeModel* model, SupportSet* support, const std::string& name,
    const std::vector<sensors::Recording>& recordings) const {
  if (model == nullptr || support == nullptr) {
    return Status::InvalidArgument("model and support must not be null");
  }
  MAGNETO_ASSIGN_OR_RETURN(sensors::ActivityId id,
                           model->registry().Register(name));
  auto report = Update(model, support, id, recordings, /*is_new_class=*/true);
  if (!report.ok()) {
    // Roll back the registration so a failed capture can be retried under
    // the same name.
    // (Registry has no unregister; re-register would collide.)
    // NOTE: ids are never reused, so simply removing the name is safe.
    // We reconstruct the registry without the failed entry.
    sensors::ActivityRegistry cleaned;
    for (sensors::ActivityId existing : model->registry().Ids()) {
      if (existing == id) continue;
      auto existing_name = model->registry().NameOf(existing);
      MAGNETO_CHECK(existing_name.ok());
      MAGNETO_CHECK(
          cleaned.RegisterWithId(existing, existing_name.value()).ok());
    }
    model->registry() = std::move(cleaned);
  }
  return report;
}

Result<UpdateReport> IncrementalLearner::Calibrate(
    EdgeModel* model, SupportSet* support, sensors::ActivityId id,
    const std::vector<sensors::Recording>& recordings) const {
  if (model == nullptr || support == nullptr) {
    return Status::InvalidArgument("model and support must not be null");
  }
  if (!model->registry().Contains(id)) {
    return Status::NotFound("cannot calibrate unknown activity: " +
                            std::to_string(id));
  }
  if (!support->HasClass(id)) {
    return Status::FailedPrecondition(
        "activity has no support data to replace: " + std::to_string(id));
  }
  return Update(model, support, id, recordings, /*is_new_class=*/false);
}

Result<UpdateReport> IncrementalLearner::Update(
    EdgeModel* model, SupportSet* support, sensors::ActivityId id,
    const std::vector<sensors::Recording>& recordings,
    bool is_new_class) const {
  obs::TraceSpan span("IncrementalLearner::Update");
  obs::ScopedTimer update_timer(Metrics().update_ms, /*scale=*/1e3);
  Metrics().updates->Increment();

  // (1) Preprocess the user's capture with the frozen pipeline.
  const auto preprocess_start = UpdateClock::now();
  std::vector<sensors::LabeledRecording> labeled;
  labeled.reserve(recordings.size());
  for (const sensors::Recording& rec : recordings) {
    labeled.push_back({rec, id});
  }
  MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset new_data,
                           model->pipeline().ProcessLabeled(labeled));
  Metrics().preprocess_ms->Record(MsSince(preprocess_start));
  if (new_data.empty()) {
    return Status::InvalidArgument(
        "recordings yielded no complete windows; record for longer");
  }

  // (2) Freeze the pre-update backbone as the distillation teacher. The
  // distillation targets are the embeddings of the *retained* knowledge:
  // every support class except the one being (re)learned.
  const sensors::FeatureDataset retained =
      is_new_class ? support->AsDataset() : support->DatasetExcluding(id);

  // (3) Joint retraining on old exemplars + fresh windows (or, with
  // rehearsal disabled, the naive fine-tuning baseline).
  sensors::FeatureDataset train_data =
      options_.rehearse_support ? retained : sensors::FeatureDataset{};
  train_data.Merge(new_data);

  learn::TrainOptions train_options = options_.train;
  const bool distill =
      train_options.distill_weight > 0.0 && !retained.empty();
  const bool use_ewc = options_.ewc_weight > 0.0 && !retained.empty();
  train_options.ewc_weight = use_ewc ? options_.ewc_weight : 0.0;

  // EWC importance is measured on the *pre-update* model against the
  // retained knowledge, before any weight moves.
  std::unique_ptr<learn::EwcRegularizer> ewc;
  if (use_ewc) {
    learn::EwcRegularizer::Options ewc_options;
    ewc_options.margin = train_options.margin;
    ewc_options.seed = options_.seed ^ 0x5757;
    MAGNETO_ASSIGN_OR_RETURN(
        learn::EwcRegularizer estimated,
        learn::EwcRegularizer::Estimate(&model->backbone(), retained,
                                        ewc_options));
    ewc = std::make_unique<learn::EwcRegularizer>(std::move(estimated));
  }

  learn::SiameseTrainer trainer(train_options);
  learn::TrainReport train_report;
  const auto train_start = UpdateClock::now();
  if (distill) {
    nn::Sequential teacher = model->backbone().Clone();
    MAGNETO_ASSIGN_OR_RETURN(
        train_report,
        trainer.Train(&model->backbone(), train_data, &teacher, &retained,
                      ewc.get()));
  } else {
    MAGNETO_ASSIGN_OR_RETURN(
        train_report,
        trainer.Train(&model->backbone(), train_data, nullptr, nullptr,
                      ewc.get()));
  }
  Metrics().train_ms->Record(MsSince(train_start));

  // (4) Support-set update: fold in (or, for calibration, replace with) the
  // fresh windows, herded through the *updated* embedding space.
  const auto support_start = UpdateClock::now();
  Rng rng(options_.seed ^ static_cast<uint64_t>(id));
  MAGNETO_RETURN_IF_ERROR(support->SetClass(id, new_data, model, &rng));

  // (5) All prototypes move when the backbone moves — rebuild every class.
  MAGNETO_RETURN_IF_ERROR(model->RebuildPrototypes(*support));
  Metrics().support_ms->Record(MsSince(support_start));

  UpdateReport report;
  report.activity = id;
  report.new_windows = new_data.size();
  report.train = std::move(train_report);
  report.support_bytes = support->MemoryBytes();
  return report;
}

}  // namespace magneto::core
