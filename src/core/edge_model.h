#ifndef MAGNETO_CORE_EDGE_MODEL_H_
#define MAGNETO_CORE_EDGE_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/embedder.h"
#include "core/ncm_classifier.h"
#include "core/support_set.h"
#include "nn/sequential.h"
#include "preprocess/pipeline.h"
#include "sensors/activity.h"
#include "sensors/recording.h"

namespace magneto::core {

/// A prediction enriched with the human-readable activity name.
struct NamedPrediction {
  Prediction prediction;
  std::string name;
};

/// The complete on-device model: preprocessing function + embedding backbone
/// + NCM classifier + activity registry. Exactly the set of items §3.2 lists
/// as "transferred into the Edge device".
///
/// Move-only (owns the backbone). Implements `Embedder` so support-set
/// herding and prototype building can use it directly.
class EdgeModel : public Embedder {
 public:
  EdgeModel(preprocess::Pipeline pipeline, nn::Sequential backbone,
            NcmClassifier classifier, sensors::ActivityRegistry registry);

  EdgeModel(EdgeModel&&) noexcept = default;
  EdgeModel& operator=(EdgeModel&&) noexcept = default;

  /// Deep copy (backbone weights included). Used to snapshot the model for
  /// background updates while the original keeps serving inference.
  EdgeModel Clone() const {
    EdgeModel copy(pipeline_, backbone_.Clone(), classifier_, registry_);
    copy.rejection_threshold_ = rejection_threshold_;
    return copy;
  }

  // -- Embedder ---------------------------------------------------------------

  /// Embeds preprocessed feature vectors (inference mode) through the
  /// model's own workspace. Single-owner semantics, like the rest of
  /// EdgeModel; concurrent serving goes through EdgeFleet, which forwards
  /// the shared backbone with per-thread workspaces.
  Matrix Embed(const Matrix& features) override;
  size_t embedding_dim() const override;

  // -- Inference --------------------------------------------------------------

  /// Full path for one raw window (window_samples x 22): denoise ->
  /// featurise -> normalise -> embed -> NCM.
  Result<NamedPrediction> InferWindow(const Matrix& raw_window);

  /// Segments a recording and predicts each complete window.
  Result<std::vector<NamedPrediction>> InferRecording(
      const sensors::Recording& recording);

  /// Classifies an already-preprocessed feature vector.
  Result<NamedPrediction> InferFeatures(const std::vector<float>& features);

  /// Concurrent-serving variant: embeds through `workspace` instead of the
  /// model's own scratch, leaving the model untouched — `Forward` is const
  /// (PR 6), so N threads may call this on one shared model, each with its
  /// own workspace. `CloudServer::RemoteInfer` serves through this path.
  /// The overload taking a `NcmClassifier::Scratch` additionally keeps the
  /// classifier scan allocation-free (same ownership rule as the
  /// workspace: one instance per thread).
  Result<NamedPrediction> InferFeatures(const std::vector<float>& features,
                                        nn::ForwardWorkspace* workspace) const;
  Result<NamedPrediction> InferFeatures(const std::vector<float>& features,
                                        nn::ForwardWorkspace* workspace,
                                        NcmClassifier::Scratch* scratch) const;

  /// Evaluates on a labeled feature dataset; returns (truth, predicted)
  /// pairs for metric computation.
  Result<std::vector<std::pair<sensors::ActivityId, sensors::ActivityId>>>
  Predict(const sensors::FeatureDataset& data);

  // -- Open-set rejection --------------------------------------------------------

  /// Enables open-set rejection: windows whose embedding is farther than
  /// `threshold` from every prototype predict "Unknown" instead of the
  /// nearest known activity. Pass 0 to disable (the default).
  void set_rejection_threshold(double threshold) {
    rejection_threshold_ = threshold;
  }
  double rejection_threshold() const { return rejection_threshold_; }

  // -- Model surgery (used by the incremental learner) -------------------------

  /// Recomputes every NCM prototype from `support` through the current
  /// backbone. Call after any backbone update.
  Status RebuildPrototypes(const SupportSet& support);

  /// Turns the classifier's approximate prototype index on for this model
  /// (runtime serving config, never serialized). The setting survives
  /// `RebuildPrototypes` and transactional updates — both re-train the
  /// index on the fresh prototypes before the swap.
  Status EnableAnn(AnnOptions options) {
    return classifier_.EnableAnn(options);
  }
  void DisableAnn() { classifier_.DisableAnn(); }

  // -- Transactional weight state -----------------------------------------------

  /// The mutable knowledge of the model — everything an incremental update
  /// may change. An `UpdateTransaction` stages its work on a snapshot and
  /// installs it with a single `Restore` only once every step succeeded, so
  /// a failed update can never leave the live model half-mutated.
  struct Snapshot {
    nn::Sequential backbone;
    NcmClassifier classifier;
    sensors::ActivityRegistry registry;
    double rejection_threshold = 0.0;
  };

  /// Deep copy of the mutable state (backbone weights included).
  Snapshot TakeSnapshot() const;

  /// Installs a snapshot with a single swap (no partial visibility).
  void Restore(Snapshot&& snapshot);

  // -- Accessors ---------------------------------------------------------------

  const preprocess::Pipeline& pipeline() const { return pipeline_; }
  nn::Sequential& backbone() { return backbone_; }
  const nn::Sequential& backbone() const { return backbone_; }
  const NcmClassifier& classifier() const { return classifier_; }
  sensors::ActivityRegistry& registry() { return registry_; }
  const sensors::ActivityRegistry& registry() const { return registry_; }

  /// Serialised size of backbone parameters in bytes (fp32), for the
  /// footprint benchmarks.
  size_t BackboneBytes() const;

 private:
  NamedPrediction WithName(const Prediction& prediction) const;

  preprocess::Pipeline pipeline_;
  nn::Sequential backbone_;
  NcmClassifier classifier_;
  sensors::ActivityRegistry registry_;
  double rejection_threshold_ = 0.0;
  nn::ForwardWorkspace embed_ws_;  ///< reused across Embed calls
  /// Reused by the single-owner inference paths (InferFeatures / Predict),
  /// keeping the classifier scan allocation-free like embed_ws_ does for
  /// the forward pass. The concurrent const path takes a caller-owned one.
  NcmClassifier::Scratch classify_scratch_;
};

/// Computes an open-set rejection threshold empirically: the `percentile`
/// (in [0, 1]) of nearest-prototype distances over known-activity
/// `recordings`, scaled by `headroom`. Typical use: percentile 1.0 (the max
/// known distance) with headroom 1.5, right after provisioning or any
/// update. Fails if the recordings yield no complete windows.
Result<double> CalibrateRejectionThreshold(
    EdgeModel* model, const std::vector<sensors::Recording>& recordings,
    double percentile = 1.0, double headroom = 1.5);

}  // namespace magneto::core

#endif  // MAGNETO_CORE_EDGE_MODEL_H_
