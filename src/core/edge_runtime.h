#ifndef MAGNETO_CORE_EDGE_RUNTIME_H_
#define MAGNETO_CORE_EDGE_RUNTIME_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/activity_journal.h"
#include "core/async_updater.h"
#include "core/edge_model.h"
#include "core/incremental_learner.h"
#include "core/drift_monitor.h"
#include "core/model_bundle.h"
#include "core/smoother.h"
#include "core/support_set.h"
#include "sensors/recording.h"
#include "sensors/sensor_types.h"

namespace magneto::core {

/// What the runtime is currently doing with incoming frames.
enum class RuntimeMode : uint8_t {
  kInference = 0,  ///< classify every completed window
  kRecording = 1,  ///< accumulate frames for a new-activity capture
};

/// Lifetime counters of the runtime.
struct RuntimeStats {
  size_t frames = 0;
  size_t windows = 0;
  size_t predictions = 0;
  size_t updates = 0;
};

/// The online half of MAGNETO: a streaming state machine that mirrors the
/// Android app's behaviour (Figure 3).
///
/// Sensor frames are pushed one at a time. In inference mode every completed
/// window (per the pipeline's segmentation config) produces a prediction —
/// the "(a)/(b) real-time inference" panels. Switching to recording mode
/// buffers frames for a new-activity capture — panel (c); finishing the
/// recording triggers the on-device incremental update — panel (d); the
/// runtime then resumes inference with the enriched model — panel (e).
class EdgeRuntime {
 public:
  /// Takes ownership of the deployed model and support set (both came out of
  /// the cloud bundle).
  EdgeRuntime(EdgeModel model, SupportSet support, IncrementalOptions options,
              double sample_rate_hz = sensors::kDefaultSampleRateHz);

  // -- Streaming ---------------------------------------------------------------

  /// Feeds one frame. In inference mode, returns a prediction whenever the
  /// frame completes a window; otherwise nullopt.
  Result<std::optional<NamedPrediction>> PushFrame(const sensors::Frame& frame);

  // -- Recording / learning ----------------------------------------------------

  Status StartRecording();

  /// Ends the capture and learns it as the new activity `name` (§3.3).
  Result<UpdateReport> FinishRecordingAndLearn(const std::string& name);

  /// Ends the capture and re-calibrates the existing activity `name`.
  Result<UpdateReport> FinishRecordingAndCalibrate(const std::string& name);

  /// Discards the capture and returns to inference.
  void CancelRecording();

  // -- Background learning (model hot-swap) -------------------------------------

  /// Ends the capture and learns it in the background: inference resumes
  /// immediately on the *current* model; call `CommitUpdate` once
  /// `UpdateReady()` to swap in the retrained one.
  Status FinishRecordingAndLearnAsync(const std::string& name);

  /// Same, but re-calibrating the existing activity `name`.
  Status FinishRecordingAndCalibrateAsync(const std::string& name);

  /// True while a background update is in flight or awaiting commit.
  bool UpdatePending() const;

  /// True once the background update finished and CommitUpdate won't block.
  bool UpdateReady() const;

  /// Blocks for the background update if needed, swaps the retrained model
  /// and support set in, and returns the report. On training failure the
  /// current model stays in place and the error is returned.
  Result<UpdateReport> CommitUpdate();

  // -- Crash-safe persistence ---------------------------------------------------

  /// Deep-copies the current model + support set into a transferable bundle
  /// (the exact artifact a fresh provisioning would ship).
  ModelBundle ToBundle() const;

  /// `<path>.lkg` — where `SaveCheckpoint` rotates the previous checkpoint.
  static std::string LastKnownGoodPath(const std::string& path);

  /// Crash-safe checkpoint: rotates any existing file at `path` to
  /// `LastKnownGoodPath(path)`, then atomically writes the current state.
  /// A crash at any point leaves at least one loadable checkpoint on disk.
  Status SaveCheckpoint(const std::string& path) const;

  /// Boots a runtime from a checkpoint, falling back to the last-known-good
  /// file when the primary is missing or corrupt (counted under
  /// `edge.checkpoint.fallbacks`) instead of failing closed.
  static Result<EdgeRuntime> FromCheckpoint(
      const std::string& path, IncrementalOptions options,
      double sample_rate_hz = sensors::kDefaultSampleRateHz);

  /// Arms commit-point checkpointing: `SaveCheckpoint(path)` runs after
  /// every *committed* update (FinishRecordingAndLearn/-Calibrate and
  /// CommitUpdate). A failed or rolled-back update writes nothing, so the
  /// on-disk checkpoint always holds the last committed model and a crash
  /// mid-update recovers to the pre-update state via the `.lkg` path.
  void EnableAutoCheckpoint(std::string path);
  void DisableAutoCheckpoint();

  // -- Output smoothing ----------------------------------------------------------

  /// Turns on temporal majority smoothing of the prediction stream.
  void EnableSmoothing(PredictionSmoother::Options options);
  void DisableSmoothing();

  // -- Drift monitoring ------------------------------------------------------------

  /// Arms the drift monitor on the emitted prediction stream. Pass the
  /// healthy nearest-prototype distance (e.g. from
  /// `CalibrateRejectionThreshold` without headroom) as `baseline_distance`,
  /// or 0 to alarm on confidence only.
  void EnableDriftMonitoring(DriftMonitor::Options options,
                             double baseline_distance = 0.0);
  void DisableDriftMonitoring();

  /// True while the armed monitor recommends calibration.
  bool Drifting() const;

  // -- Activity journal ---------------------------------------------------------------

  /// Starts accumulating the on-device activity ledger.
  void EnableJournal();

  /// The ledger, or nullptr if not enabled.
  const ActivityJournal* journal() const { return journal_.get(); }

  // -- Introspection -----------------------------------------------------------

  RuntimeMode mode() const { return mode_; }
  const RuntimeStats& stats() const { return stats_; }
  double recorded_seconds() const;
  const std::optional<NamedPrediction>& last_prediction() const {
    return last_prediction_;
  }
  EdgeModel& model() { return model_; }
  const EdgeModel& model() const { return model_; }
  const SupportSet& support() const { return support_; }

 private:
  /// Pops a full window off the stream buffer as a matrix, advancing by the
  /// segmentation stride.
  Matrix TakeWindow();

  sensors::Recording FinishCapture();

  /// Commit point of a successful update: bumps the update counters and,
  /// when auto-checkpointing is armed, persists the committed state.
  void OnUpdateCommitted();

  EdgeModel model_;
  SupportSet support_;
  IncrementalOptions update_options_;
  IncrementalLearner learner_;
  double sample_rate_hz_;
  std::unique_ptr<AsyncUpdater> updater_;
  std::unique_ptr<PredictionSmoother> smoother_;
  std::unique_ptr<DriftMonitor> drift_monitor_;
  std::unique_ptr<ActivityJournal> journal_;

  std::string auto_checkpoint_path_;  ///< empty = auto-checkpointing off

  RuntimeMode mode_ = RuntimeMode::kInference;
  std::deque<sensors::Frame> stream_buffer_;
  size_t pending_skip_ = 0;  ///< frames to drop (stride > window configs)
  std::vector<sensors::Frame> capture_buffer_;
  std::optional<NamedPrediction> last_prediction_;
  RuntimeStats stats_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_EDGE_RUNTIME_H_
