#include "core/smoother.h"

#include <map>

#include "common/logging.h"

namespace magneto::core {

PredictionSmoother::PredictionSmoother(Options options) : options_(options) {
  MAGNETO_CHECK(options_.window >= 1);
}

NamedPrediction PredictionSmoother::Push(const NamedPrediction& raw) {
  ++ticks_;
  if (raw.prediction.confidence >= options_.min_confidence) {
    history_.push_back({raw, ticks_});
    while (history_.size() > options_.window) history_.pop_front();
  }
  // Age out votes regardless of whether this push was accepted: an entry may
  // vote for the `window` pushes that follow it, after which it expires even
  // if rejected pushes kept it from being displaced. This is what lets the
  // smoother recover from an activity change that arrives as a run of
  // low-confidence windows instead of reporting the stale winner forever.
  while (!history_.empty() && ticks_ - history_.front().tick > options_.window) {
    history_.pop_front();
  }
  if (history_.empty()) return raw;

  // Confidence-weighted vote over the history.
  std::map<sensors::ActivityId, double> votes;
  double total = 0.0;
  for (const Entry& e : history_) {
    votes[e.prediction.prediction.activity] += e.prediction.prediction.confidence;
    total += e.prediction.prediction.confidence;
  }
  sensors::ActivityId winner = raw.prediction.activity;
  double best = -1.0;
  for (const auto& [label, vote] : votes) {
    if (vote > best) {
      best = vote;
      winner = label;
    }
  }

  // Report the most recent raw prediction of the winning class (name and
  // distance stay meaningful), with the smoothed confidence.
  NamedPrediction out = raw;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->prediction.prediction.activity == winner) {
      out = it->prediction;
      break;
    }
  }
  out.prediction.confidence = total > 0.0 ? best / total : 0.0;
  return out;
}

void PredictionSmoother::Reset() {
  history_.clear();
  ticks_ = 0;
}

}  // namespace magneto::core
