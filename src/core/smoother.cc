#include "core/smoother.h"

#include <map>

#include "common/logging.h"

namespace magneto::core {

PredictionSmoother::PredictionSmoother(Options options) : options_(options) {
  MAGNETO_CHECK(options_.window >= 1);
}

NamedPrediction PredictionSmoother::Push(const NamedPrediction& raw) {
  if (raw.prediction.confidence >= options_.min_confidence) {
    history_.push_back(raw);
    while (history_.size() > options_.window) history_.pop_front();
  }
  if (history_.empty()) return raw;

  // Confidence-weighted vote over the history.
  std::map<sensors::ActivityId, double> votes;
  double total = 0.0;
  for (const NamedPrediction& p : history_) {
    votes[p.prediction.activity] += p.prediction.confidence;
    total += p.prediction.confidence;
  }
  sensors::ActivityId winner = raw.prediction.activity;
  double best = -1.0;
  for (const auto& [label, vote] : votes) {
    if (vote > best) {
      best = vote;
      winner = label;
    }
  }

  // Report the most recent raw prediction of the winning class (name and
  // distance stay meaningful), with the smoothed confidence.
  NamedPrediction out = raw;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->prediction.activity == winner) {
      out = *it;
      break;
    }
  }
  out.prediction.confidence = total > 0.0 ? best / total : 0.0;
  return out;
}

void PredictionSmoother::Reset() { history_.clear(); }

}  // namespace magneto::core
