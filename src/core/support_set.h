#ifndef MAGNETO_CORE_SUPPORT_SET_H_
#define MAGNETO_CORE_SUPPORT_SET_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/serial.h"
#include "core/embedder.h"
#include "sensors/dataset.h"

namespace magneto::core {

/// Exemplar-selection policy for the support set.
enum class SelectionStrategy : uint8_t {
  kRandom = 0,     ///< uniform subsample
  kHerding = 1,    ///< iCaRL-style: greedily match the class-mean embedding
  kReservoir = 2,  ///< streaming reservoir (for AddStreamingSample)
};

/// The paper's support set (§3.2 item 3): a capacity-bounded store of
/// representative feature vectors per class, shipped from cloud to edge.
///
/// Its two missions, quoted from the paper: (i) computing the class
/// prototypes for the NCM classifier, (ii) forming the retraining set (mixed
/// with freshly captured data) during incremental updates. The default
/// capacity of 200 observations/class costs ~0.5 MB per class in fp32 —
/// `MemoryBytes()` reports the exact figure for the memory benchmarks.
class SupportSet {
 public:
  SupportSet(size_t capacity_per_class, SelectionStrategy strategy)
      : capacity_per_class_(capacity_per_class), strategy_(strategy) {}

  size_t capacity_per_class() const { return capacity_per_class_; }
  SelectionStrategy strategy() const { return strategy_; }

  /// Selects up to `capacity_per_class` exemplars from `class_data` (which
  /// must be single-class) and stores them, replacing any previous exemplars
  /// of that class — replacement is exactly the paper's calibration move.
  /// `embedder` is required for kHerding (may be null otherwise; if null with
  /// kHerding, herding falls back to feature-space means).
  Status SetClass(sensors::ActivityId id,
                  const sensors::FeatureDataset& class_data,
                  Embedder* embedder, Rng* rng);

  /// Streaming insertion for the reservoir strategy: keeps a uniform sample
  /// of everything ever offered for the class.
  Status AddStreamingSample(sensors::ActivityId id,
                            const std::vector<float>& feature, Rng* rng);

  Status RemoveClass(sensors::ActivityId id);

  bool HasClass(sensors::ActivityId id) const {
    return exemplars_.count(id) > 0;
  }
  std::vector<sensors::ActivityId> Classes() const;
  size_t NumClasses() const { return exemplars_.size(); }

  /// Exemplar count of one class (0 if absent).
  size_t ClassSize(sensors::ActivityId id) const;

  /// Total exemplars across classes.
  size_t TotalSize() const;

  /// Exemplars of one class as a (count x dim) matrix.
  Result<Matrix> ClassExemplars(sensors::ActivityId id) const;

  /// All exemplars as one labeled dataset (the retraining set).
  sensors::FeatureDataset AsDataset() const;

  /// All exemplars except class `excluded` (the distillation set when
  /// calibrating `excluded`).
  sensors::FeatureDataset DatasetExcluding(sensors::ActivityId excluded) const;

  /// Exact bytes of exemplar payload (fp32), the paper's C2 metric.
  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<SupportSet> Deserialize(BinaryReader* reader);

  /// Bundle wire v3 payload: identical section layout to `Serialize`, but
  /// each exemplar row ships as a symmetric int8 vector plus one f32 scale —
  /// ~4x fewer bytes over the cloud→edge link. Rows are dequantized to fp32
  /// on load, so everything downstream of `DeserializeQuantized` sees a
  /// normal support set (with per-element error ≤ scale/2).
  void SerializeQuantized(BinaryWriter* writer) const;
  static Result<SupportSet> DeserializeQuantized(BinaryReader* reader);

 private:
  size_t capacity_per_class_;
  SelectionStrategy strategy_;
  size_t dim_ = 0;
  std::map<sensors::ActivityId, std::vector<std::vector<float>>> exemplars_;
  /// Total samples ever offered per class (reservoir bookkeeping).
  std::map<sensors::ActivityId, uint64_t> stream_counts_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_SUPPORT_SET_H_
