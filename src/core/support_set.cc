#include "core/support_set.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/qgemm.h"

namespace magneto::core {

namespace {

/// Greedy herding (Welling 2009, as used by iCaRL): pick exemplars whose
/// running embedding mean tracks the true class mean as closely as possible.
/// `embeddings` is (n x d); returns `k` distinct row indices in pick order.
std::vector<size_t> HerdingSelect(const Matrix& embeddings, size_t k) {
  const size_t n = embeddings.rows();
  const size_t d = embeddings.cols();
  Matrix mean = embeddings.ColMean();

  std::vector<size_t> picked;
  picked.reserve(k);
  std::vector<bool> used(n, false);
  std::vector<double> running_sum(d, 0.0);

  for (size_t step = 0; step < k; ++step) {
    double best_dist = std::numeric_limits<double>::max();
    size_t best = n;
    const double inv = 1.0 / static_cast<double>(step + 1);
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const float* e = embeddings.RowPtr(i);
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double candidate_mean = (running_sum[j] + e[j]) * inv;
        const double diff = candidate_mean - mean.data()[j];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    if (best == n) break;
    used[best] = true;
    picked.push_back(best);
    const float* e = embeddings.RowPtr(best);
    for (size_t j = 0; j < d; ++j) running_sum[j] += e[j];
  }
  return picked;
}

}  // namespace

Status SupportSet::SetClass(sensors::ActivityId id,
                            const sensors::FeatureDataset& class_data,
                            Embedder* embedder, Rng* rng) {
  if (class_data.empty()) {
    return Status::InvalidArgument("class data is empty");
  }
  for (sensors::ActivityId label : class_data.labels()) {
    if (label != id) {
      return Status::InvalidArgument(
          "class data contains a foreign label: " + std::to_string(label));
    }
  }
  if (class_data.dim() == 0) {
    // A 0-dim class would poison `dim_` (and the set's row invariants) for
    // every later well-formed insertion.
    return Status::InvalidArgument("class data has empty feature rows");
  }
  if (dim_ == 0) {
    dim_ = class_data.dim();
  } else if (class_data.dim() != dim_) {
    return Status::InvalidArgument("feature dim mismatch: expected " +
                                   std::to_string(dim_) + ", got " +
                                   std::to_string(class_data.dim()));
  }

  const size_t keep = std::min(capacity_per_class_, class_data.size());
  std::vector<size_t> selected;
  switch (strategy_) {
    case SelectionStrategy::kHerding: {
      // Herd in embedding space when a model is available; the class mean in
      // that space is exactly the NCM prototype we want the exemplars to
      // reconstruct. Without a model, feature space is the best proxy.
      Matrix space = embedder != nullptr
                         ? embedder->Embed(class_data.ToMatrix())
                         : class_data.ToMatrix();
      selected = HerdingSelect(space, keep);
      break;
    }
    case SelectionStrategy::kRandom:
    case SelectionStrategy::kReservoir: {
      if (rng == nullptr) {
        return Status::InvalidArgument("random selection requires an rng");
      }
      selected = rng->SampleWithoutReplacement(class_data.size(), keep);
      break;
    }
  }

  std::vector<std::vector<float>> rows;
  rows.reserve(selected.size());
  for (size_t i : selected) rows.push_back(class_data.RowVector(i));
  exemplars_[id] = std::move(rows);
  stream_counts_[id] = class_data.size();
  return Status::Ok();
}

Status SupportSet::AddStreamingSample(sensors::ActivityId id,
                                      const std::vector<float>& feature,
                                      Rng* rng) {
  if (strategy_ != SelectionStrategy::kReservoir) {
    return Status::FailedPrecondition(
        "streaming insertion requires the reservoir strategy");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("reservoir sampling requires an rng");
  }
  if (feature.empty()) {
    // Accepting one empty feature while dim_ == 0 would pin the set's
    // dimension to 0 and plant a zero-width exemplar row.
    return Status::InvalidArgument("feature is empty");
  }
  if (dim_ == 0) {
    dim_ = feature.size();
  } else if (feature.size() != dim_) {
    return Status::InvalidArgument("feature dim mismatch");
  }
  std::vector<std::vector<float>>& rows = exemplars_[id];
  const uint64_t seen = ++stream_counts_[id];
  if (rows.size() < capacity_per_class_) {
    rows.push_back(feature);
  } else {
    // Classic reservoir: replace with probability capacity/seen.
    const uint64_t slot = static_cast<uint64_t>(
        rng->UniformInt(0, static_cast<int64_t>(seen) - 1));
    if (slot < capacity_per_class_) rows[slot] = feature;
  }
  return Status::Ok();
}

Status SupportSet::RemoveClass(sensors::ActivityId id) {
  if (exemplars_.erase(id) == 0) {
    return Status::NotFound("class not in support set: " + std::to_string(id));
  }
  stream_counts_.erase(id);
  return Status::Ok();
}

std::vector<sensors::ActivityId> SupportSet::Classes() const {
  std::vector<sensors::ActivityId> out;
  out.reserve(exemplars_.size());
  for (const auto& [id, rows] : exemplars_) out.push_back(id);
  return out;
}

size_t SupportSet::ClassSize(sensors::ActivityId id) const {
  auto it = exemplars_.find(id);
  return it == exemplars_.end() ? 0 : it->second.size();
}

size_t SupportSet::TotalSize() const {
  size_t n = 0;
  for (const auto& [id, rows] : exemplars_) n += rows.size();
  return n;
}

Result<Matrix> SupportSet::ClassExemplars(sensors::ActivityId id) const {
  auto it = exemplars_.find(id);
  if (it == exemplars_.end()) {
    return Status::NotFound("class not in support set: " + std::to_string(id));
  }
  const std::vector<std::vector<float>>& rows = it->second;
  Matrix out(rows.size(), dim_);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(out.RowPtr(i), rows[i].data(), dim_ * sizeof(float));
  }
  return out;
}

sensors::FeatureDataset SupportSet::AsDataset() const {
  sensors::FeatureDataset out;
  for (const auto& [id, rows] : exemplars_) {
    for (const std::vector<float>& row : rows) out.Append(row, id);
  }
  return out;
}

sensors::FeatureDataset SupportSet::DatasetExcluding(
    sensors::ActivityId excluded) const {
  sensors::FeatureDataset out;
  for (const auto& [id, rows] : exemplars_) {
    if (id == excluded) continue;
    for (const std::vector<float>& row : rows) out.Append(row, id);
  }
  return out;
}

size_t SupportSet::MemoryBytes() const {
  return TotalSize() * dim_ * sizeof(float);
}

void SupportSet::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(capacity_per_class_);
  writer->WriteU8(static_cast<uint8_t>(strategy_));
  writer->WriteU64(dim_);
  writer->WriteU64(exemplars_.size());
  for (const auto& [id, rows] : exemplars_) {
    writer->WriteI64(id);
    writer->WriteU64(stream_counts_.count(id) ? stream_counts_.at(id) : 0);
    writer->WriteU64(rows.size());
    for (const std::vector<float>& row : rows) writer->WriteF32Vector(row);
  }
}

void SupportSet::SerializeQuantized(BinaryWriter* writer) const {
  writer->WriteU64(capacity_per_class_);
  writer->WriteU8(static_cast<uint8_t>(strategy_));
  writer->WriteU64(dim_);
  writer->WriteU64(exemplars_.size());
  std::vector<int8_t> q(dim_);
  for (const auto& [id, rows] : exemplars_) {
    writer->WriteI64(id);
    writer->WriteU64(stream_counts_.count(id) ? stream_counts_.at(id) : 0);
    writer->WriteU64(rows.size());
    for (const std::vector<float>& row : rows) {
      const float scale = QuantizeRowInt8(row.data(), dim_, q.data());
      writer->WriteF32(scale);
      writer->WriteI8Vector(q);
    }
  }
}

Result<SupportSet> SupportSet::DeserializeQuantized(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t capacity, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint8_t strategy, reader->ReadU8());
  if (strategy > static_cast<uint8_t>(SelectionStrategy::kReservoir)) {
    return Status::Corruption("bad selection strategy: " +
                              std::to_string(strategy));
  }
  SupportSet set(capacity, static_cast<SelectionStrategy>(strategy));
  MAGNETO_ASSIGN_OR_RETURN(set.dim_, reader->ReadU64());
  constexpr uint64_t kMaxDim = 1 << 20;
  if (set.dim_ > kMaxDim) {
    return Status::Corruption("support dim out of range");
  }
  MAGNETO_ASSIGN_OR_RETURN(uint64_t num_classes, reader->ReadU64());
  for (uint64_t c = 0; c < num_classes; ++c) {
    MAGNETO_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    MAGNETO_ASSIGN_OR_RETURN(uint64_t seen, reader->ReadU64());
    MAGNETO_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
    std::vector<std::vector<float>> data;
    // `rows` comes off the wire: cap the reservation so a hostile count
    // cannot force a giant allocation before the per-row reads fail.
    data.reserve(std::min<uint64_t>(rows, 4096));
    for (uint64_t r = 0; r < rows; ++r) {
      MAGNETO_ASSIGN_OR_RETURN(float scale, reader->ReadF32());
      if (!std::isfinite(scale) || scale <= 0.0f) {
        return Status::Corruption("support row scale not finite-positive");
      }
      // Bounded by the already-validated dim: a corrupt length field fails
      // before allocating.
      MAGNETO_ASSIGN_OR_RETURN(std::vector<int8_t> q,
                               reader->ReadI8VectorExpected(set.dim_));
      std::vector<float> row(set.dim_);
      for (size_t i = 0; i < row.size(); ++i) {
        row[i] = static_cast<float>(q[i]) * scale;
      }
      data.push_back(std::move(row));
    }
    set.exemplars_[id] = std::move(data);
    set.stream_counts_[id] = seen;
  }
  return set;
}

Result<SupportSet> SupportSet::Deserialize(BinaryReader* reader) {
  MAGNETO_ASSIGN_OR_RETURN(uint64_t capacity, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint8_t strategy, reader->ReadU8());
  if (strategy > static_cast<uint8_t>(SelectionStrategy::kReservoir)) {
    return Status::Corruption("bad selection strategy: " +
                              std::to_string(strategy));
  }
  SupportSet set(capacity, static_cast<SelectionStrategy>(strategy));
  MAGNETO_ASSIGN_OR_RETURN(set.dim_, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t num_classes, reader->ReadU64());
  for (uint64_t c = 0; c < num_classes; ++c) {
    MAGNETO_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    MAGNETO_ASSIGN_OR_RETURN(uint64_t seen, reader->ReadU64());
    MAGNETO_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
    std::vector<std::vector<float>> data;
    // `rows` comes off the wire: cap the reservation so a hostile count
    // cannot force a giant allocation before the per-row reads fail.
    data.reserve(std::min<uint64_t>(rows, 4096));
    for (uint64_t r = 0; r < rows; ++r) {
      MAGNETO_ASSIGN_OR_RETURN(std::vector<float> row,
                               reader->ReadF32Vector());
      if (row.size() != set.dim_) {
        return Status::Corruption("support row dim mismatch");
      }
      data.push_back(std::move(row));
    }
    set.exemplars_[id] = std::move(data);
    set.stream_counts_[id] = seen;
  }
  return set;
}

}  // namespace magneto::core
