#include "core/drift_monitor.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace magneto::core {

namespace {

struct DriftMetrics {
  obs::Counter* observations =
      obs::Registry::Global().GetCounter("drift.observations");
  // Rising edges only: a long drifting stretch counts as one trigger.
  obs::Counter* triggers = obs::Registry::Global().GetCounter("drift.triggers");
};

DriftMetrics& Metrics() {
  static DriftMetrics* metrics = new DriftMetrics;
  return *metrics;
}

}  // namespace

DriftMonitor::DriftMonitor(Options options) : options_(options) {
  MAGNETO_CHECK(options_.window >= 1);
}

void DriftMonitor::SetBaselineDistance(double distance) {
  baseline_distance_ = distance;
}

double DriftMonitor::rolling_confidence() const {
  if (history_.empty()) return 1.0;
  double total = 0.0;
  for (const Prediction& p : history_) total += p.confidence;
  return total / static_cast<double>(history_.size());
}

double DriftMonitor::rolling_distance() const {
  if (history_.empty()) return 0.0;
  double total = 0.0;
  for (const Prediction& p : history_) total += p.distance;
  return total / static_cast<double>(history_.size());
}

bool DriftMonitor::Observe(const Prediction& prediction) {
  Metrics().observations->Increment();
  history_.push_back(prediction);
  while (history_.size() > options_.window) history_.pop_front();
  if (history_.size() < options_.window) {
    drifting_ = false;  // not enough evidence yet
    return false;
  }
  const bool low_confidence = rolling_confidence() < options_.min_confidence;
  const bool far_from_prototypes =
      baseline_distance_ > 0.0 &&
      rolling_distance() > baseline_distance_ * options_.distance_factor;
  const bool was_drifting = drifting_;
  drifting_ = low_confidence || far_from_prototypes;
  if (drifting_ && !was_drifting) Metrics().triggers->Increment();
  return drifting_;
}

void DriftMonitor::Reset() {
  history_.clear();
  drifting_ = false;
}

}  // namespace magneto::core
