#include "core/ann_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/parallel.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace magneto::core {

namespace {

struct AnnMetrics {
  obs::Counter* probes = obs::Registry::Global().GetCounter("ann.probes");
  obs::Counter* rebuilds = obs::Registry::Global().GetCounter("ann.rebuilds");
  obs::Gauge* scanned_fraction =
      obs::Registry::Global().GetGauge("ann.scanned_fraction");
};

AnnMetrics& Metrics() {
  static AnnMetrics* metrics = new AnnMetrics;
  return *metrics;
}

float Sanitize(float d) {
  return std::isfinite(d) ? d : std::numeric_limits<float>::infinity();
}

/// Deterministic Lloyd k-means over `data` (rows x dim) with `k` centroids.
/// The assignment step is per-point independent (safe under ParallelFor at
/// any thread count); the update step accumulates in fixed point order.
/// Ties in the assignment break toward the lower centroid id. Returns the
/// final assignment; `centroids` holds the trained means.
std::vector<uint32_t> KMeans(const Matrix& data, size_t k, size_t iters,
                             uint64_t seed, Matrix* centroids) {
  const size_t n = data.rows();
  const size_t dim = data.cols();
  Rng rng(seed);
  std::vector<size_t> init = rng.SampleWithoutReplacement(n, k);
  std::sort(init.begin(), init.end());
  *centroids = Matrix(k, dim);
  for (size_t c = 0; c < k; ++c) {
    std::memcpy(centroids->RowPtr(c), data.RowPtr(init[c]),
                dim * sizeof(float));
  }

  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  for (size_t iter = 0; iter < iters; ++iter) {
    ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        float best = std::numeric_limits<float>::infinity();
        uint32_t best_c = 0;
        for (size_t c = 0; c < k; ++c) {
          const float d =
              Sanitize(SquaredL2(data.RowPtr(i), centroids->RowPtr(c), dim));
          if (d < best) {
            best = d;
            best_c = static_cast<uint32_t>(c);
          }
        }
        assign[i] = best_c;
      }
    });
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const float* row = data.RowPtr(i);
      double* sum = sums.data() + assign[i] * dim;
      for (size_t j = 0; j < dim; ++j) sum[j] += row[j];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its old centroid
      float* row = centroids->RowPtr(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < dim; ++j) {
        row[j] = static_cast<float>(sums[c * dim + j] * inv);
      }
    }
  }
  // Final assignment against the last centroid update, so the inverted
  // lists match the centroids a query will rank.
  ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float best = std::numeric_limits<float>::infinity();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const float d =
            Sanitize(SquaredL2(data.RowPtr(i), centroids->RowPtr(c), dim));
        if (d < best) {
          best = d;
          best_c = static_cast<uint32_t>(c);
        }
      }
      assign[i] = best_c;
    }
  });
  return assign;
}

}  // namespace

Result<AnnIndex> AnnIndex::Build(const Matrix& vectors,
                                 const AnnOptions& options) {
  const size_t n = vectors.rows();
  const size_t dim = vectors.cols();
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("ANN index needs a non-empty matrix");
  }

  AnnIndex index;
  index.options_ = options;
  index.n_ = n;
  index.dim_ = dim;
  index.nlist_ =
      options.nlist > 0
          ? std::min(options.nlist, n)
          : std::max<size_t>(
                1, static_cast<size_t>(std::lround(std::sqrt(
                       static_cast<double>(n)))));

  std::vector<uint32_t> assign =
      KMeans(vectors, index.nlist_, options.kmeans_iters, options.seed,
             &index.centroids_);

  // CSR inverted lists; filling in ascending vector id keeps each list's
  // members ascending, which makes candidate emission order canonical.
  index.list_offsets_.assign(index.nlist_ + 1, 0);
  for (uint32_t a : assign) ++index.list_offsets_[a + 1];
  for (size_t l = 0; l < index.nlist_; ++l) {
    index.list_offsets_[l + 1] += index.list_offsets_[l];
  }
  index.list_ids_.resize(n);
  std::vector<uint32_t> cursor(index.list_offsets_.begin(),
                               index.list_offsets_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    index.list_ids_[cursor[assign[i]]++] = static_cast<uint32_t>(i);
  }

  if (options.use_pq) {
    // Residual PQ: quantize x - centroid(x) per subspace. Each subspace
    // trains its own small k-means over the residual slices, reusing the
    // deterministic trainer above.
    index.pq_nsub_ = std::max<size_t>(1, std::min(options.pq_subspaces, dim));
    index.pq_k_ = std::max<size_t>(1, std::min(options.pq_centroids, n));
    index.sub_offsets_.resize(index.pq_nsub_ + 1);
    for (size_t s = 0; s <= index.pq_nsub_; ++s) {
      index.sub_offsets_[s] = static_cast<uint32_t>(s * dim / index.pq_nsub_);
    }
    Matrix residuals(n, dim);
    ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const float* x = vectors.RowPtr(i);
        const float* c = index.centroids_.RowPtr(assign[i]);
        float* r = residuals.RowPtr(i);
        for (size_t j = 0; j < dim; ++j) r[j] = x[j] - c[j];
      }
    });
    const size_t max_dsub = dim / index.pq_nsub_ + 1;
    index.pq_codebooks_ = Matrix(index.pq_nsub_ * index.pq_k_, max_dsub);
    index.pq_codes_.assign(n * index.pq_nsub_, 0);
    for (size_t s = 0; s < index.pq_nsub_; ++s) {
      const size_t off = index.sub_offsets_[s];
      const size_t dsub = index.sub_offsets_[s + 1] - off;
      Matrix slice(n, dsub);
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(slice.RowPtr(i), residuals.RowPtr(i) + off,
                    dsub * sizeof(float));
      }
      Matrix codebook;
      std::vector<uint32_t> codes = KMeans(
          slice, index.pq_k_, options.kmeans_iters, options.seed + 1 + s,
          &codebook);
      for (size_t c = 0; c < index.pq_k_; ++c) {
        std::memcpy(index.pq_codebooks_.RowPtr(s * index.pq_k_ + c),
                    codebook.RowPtr(c), dsub * sizeof(float));
      }
      for (size_t i = 0; i < n; ++i) {
        index.pq_codes_[i * index.pq_nsub_ + s] =
            static_cast<uint8_t>(codes[i]);
      }
    }
  }

  Metrics().rebuilds->Increment();
  return index;
}

size_t AnnIndex::MemoryBytes() const {
  return centroids_.size() * sizeof(float) +
         list_offsets_.size() * sizeof(uint32_t) +
         list_ids_.size() * sizeof(uint32_t) +
         sub_offsets_.size() * sizeof(uint32_t) +
         pq_codebooks_.size() * sizeof(float) + pq_codes_.size();
}

size_t AnnIndex::ProbeLists(const float* query, Scratch* scratch) const {
  // Rank non-empty lists by centroid distance; (distance, id) pairs make
  // the order canonical under equal distances.
  std::vector<std::pair<float, uint32_t>>& cd = scratch->centroid_dist;
  cd.clear();
  for (size_t l = 0; l < nlist_; ++l) {
    if (list_offsets_[l + 1] == list_offsets_[l]) continue;
    cd.emplace_back(Sanitize(SquaredL2(query, centroids_.RowPtr(l), dim_)),
                    static_cast<uint32_t>(l));
  }
  const size_t probes = std::min(std::max<size_t>(1, options_.nprobe),
                                 cd.size());
  std::partial_sort(cd.begin(), cd.begin() + probes, cd.end());
  return probes;
}

void AnnIndex::AppendCandidates(const float* query, Scratch* scratch,
                                std::vector<uint32_t>* out) const {
  const size_t probes = ProbeLists(query, scratch);
  const std::vector<std::pair<float, uint32_t>>& cd = scratch->centroid_dist;
  size_t scanned = 0;

  if (pq_nsub_ == 0) {
    for (size_t p = 0; p < probes; ++p) {
      const uint32_t l = cd[p].second;
      out->insert(out->end(), list_ids_.begin() + list_offsets_[l],
                  list_ids_.begin() + list_offsets_[l + 1]);
      scanned += list_offsets_[l + 1] - list_offsets_[l];
    }
  } else {
    // ADC pre-ranking: per probed list, build the query-residual lookup
    // table (nsub x pq_k subspace distances), score every member by code
    // lookups, and keep only the global `pq_shortlist` best for the
    // caller's exact rerank.
    std::vector<std::pair<float, uint32_t>>& shortlist = scratch->shortlist;
    shortlist.clear();
    scratch->residual.resize(dim_);
    scratch->adc_table.resize(pq_nsub_ * pq_k_);
    for (size_t p = 0; p < probes; ++p) {
      const uint32_t l = cd[p].second;
      const float* centroid = centroids_.RowPtr(l);
      for (size_t j = 0; j < dim_; ++j) {
        scratch->residual[j] = query[j] - centroid[j];
      }
      for (size_t s = 0; s < pq_nsub_; ++s) {
        const size_t off = sub_offsets_[s];
        const size_t dsub = sub_offsets_[s + 1] - off;
        for (size_t c = 0; c < pq_k_; ++c) {
          scratch->adc_table[s * pq_k_ + c] =
              SquaredL2(scratch->residual.data() + off,
                        pq_codebooks_.RowPtr(s * pq_k_ + c), dsub);
        }
      }
      for (uint32_t m = list_offsets_[l]; m < list_offsets_[l + 1]; ++m) {
        const uint32_t id = list_ids_[m];
        const uint8_t* code = pq_codes_.data() + id * pq_nsub_;
        float approx = cd[p].first;  // ||q - centroid||² term
        for (size_t s = 0; s < pq_nsub_; ++s) {
          approx += scratch->adc_table[s * pq_k_ + code[s]];
        }
        shortlist.emplace_back(Sanitize(approx), id);
      }
      scanned += list_offsets_[l + 1] - list_offsets_[l];
    }
    const size_t keep =
        std::min(std::max<size_t>(1, options_.pq_shortlist), shortlist.size());
    std::partial_sort(shortlist.begin(), shortlist.begin() + keep,
                      shortlist.end());
    for (size_t i = 0; i < keep; ++i) out->push_back(shortlist[i].second);
  }

  Metrics().probes->Increment(static_cast<uint64_t>(probes));
  Metrics().scanned_fraction->Set(
      n_ > 0 ? static_cast<double>(scanned) / static_cast<double>(n_) : 0.0);
}

}  // namespace magneto::core
