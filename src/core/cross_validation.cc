#include "core/cross_validation.h"

#include <cmath>

#include "common/random.h"
#include "learn/metrics.h"

namespace magneto::core {

Result<CrossValidationReport> CrossValidateCloud(
    const CloudConfig& config,
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry, size_t folds, uint64_t seed) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (corpus.size() < folds) {
    return Status::InvalidArgument("fewer recordings than folds");
  }

  // Shuffle recording indices once, then deal them round-robin into folds —
  // round-robin keeps the per-class balance of the (class-ordered) corpus.
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(&order);
  std::vector<size_t> fold_of(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) fold_of[order[i]] = i % folds;

  CrossValidationReport report;
  report.folds.reserve(folds);
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<sensors::LabeledRecording> train, test;
    for (size_t i = 0; i < corpus.size(); ++i) {
      (fold_of[i] == fold ? test : train).push_back(corpus[i]);
    }
    if (test.empty() || train.empty()) {
      return Status::InvalidArgument("fold " + std::to_string(fold) +
                                     " is degenerate");
    }

    CloudInitializer cloud(config);
    CloudReport cloud_report;
    MAGNETO_ASSIGN_OR_RETURN(ModelBundle bundle,
                             cloud.Initialize(train, registry, &cloud_report));
    EdgeModel model = std::move(bundle).ToEdgeModel();
    MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset eval,
                             model.pipeline().ProcessLabeled(test));
    if (eval.empty()) {
      return Status::InvalidArgument("fold " + std::to_string(fold) +
                                     " has no complete test windows");
    }
    learn::ConfusionMatrix cm;
    MAGNETO_ASSIGN_OR_RETURN(auto pairs, model.Predict(eval));
    for (const auto& [truth, pred] : pairs) cm.Add(truth, pred);

    FoldResult result;
    result.accuracy = cm.Accuracy();
    result.macro_f1 = cm.MacroF1();
    result.train_windows = cloud_report.training_windows;
    result.test_windows = eval.size();
    report.folds.push_back(result);
  }

  double sum = 0.0, sum2 = 0.0, f1 = 0.0;
  for (const FoldResult& fold : report.folds) {
    sum += fold.accuracy;
    sum2 += fold.accuracy * fold.accuracy;
    f1 += fold.macro_f1;
  }
  const double n = static_cast<double>(folds);
  report.mean_accuracy = sum / n;
  report.stddev_accuracy =
      std::sqrt(std::max(0.0, sum2 / n - report.mean_accuracy *
                                             report.mean_accuracy));
  report.mean_macro_f1 = f1 / n;
  return report;
}

}  // namespace magneto::core
