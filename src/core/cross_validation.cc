#include "core/cross_validation.h"

#include <cmath>
#include <map>

#include "common/random.h"
#include "learn/metrics.h"

namespace magneto::core {

Result<CrossValidationReport> CrossValidateCloud(
    const CloudConfig& config,
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry, size_t folds, uint64_t seed) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (corpus.size() < folds) {
    return Status::InvalidArgument("fewer recordings than folds");
  }

  // Stratified dealing: shuffle each label's recordings, then round-robin
  // them into folds. Dealing over a globally shuffled order is NOT balanced
  // — on small corpora it produces unbalanced or even single-class folds;
  // stratifying bounds every fold's per-class count within one recording of
  // even. The fold cursor continues across labels so classes with fewer
  // recordings than folds do not all pile onto fold 0.
  std::map<sensors::ActivityId, std::vector<size_t>> by_label;
  for (size_t i = 0; i < corpus.size(); ++i) {
    by_label[corpus[i].label].push_back(i);
  }
  Rng rng(seed);
  std::vector<size_t> fold_of(corpus.size());
  size_t cursor = 0;
  for (auto& [label, members] : by_label) {
    rng.Shuffle(&members);
    for (size_t j = 0; j < members.size(); ++j) {
      fold_of[members[j]] = (cursor + j) % folds;
    }
    cursor = (cursor + members.size()) % folds;
  }

  CrossValidationReport report;
  report.folds.reserve(folds);
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<sensors::LabeledRecording> train, test;
    for (size_t i = 0; i < corpus.size(); ++i) {
      (fold_of[i] == fold ? test : train).push_back(corpus[i]);
    }
    if (test.empty() || train.empty()) {
      return Status::InvalidArgument("fold " + std::to_string(fold) +
                                     " is degenerate");
    }

    CloudInitializer cloud(config);
    CloudReport cloud_report;
    MAGNETO_ASSIGN_OR_RETURN(ModelBundle bundle,
                             cloud.Initialize(train, registry, &cloud_report));
    EdgeModel model = std::move(bundle).ToEdgeModel();
    MAGNETO_ASSIGN_OR_RETURN(sensors::FeatureDataset eval,
                             model.pipeline().ProcessLabeled(test));
    if (eval.empty()) {
      return Status::InvalidArgument("fold " + std::to_string(fold) +
                                     " has no complete test windows");
    }
    learn::ConfusionMatrix cm;
    MAGNETO_ASSIGN_OR_RETURN(auto pairs, model.Predict(eval));
    for (const auto& [truth, pred] : pairs) cm.Add(truth, pred);

    FoldResult result;
    result.accuracy = cm.Accuracy();
    result.macro_f1 = cm.MacroF1();
    result.train_windows = cloud_report.training_windows;
    result.test_windows = eval.size();
    report.folds.push_back(result);
  }

  double sum = 0.0, f1 = 0.0;
  for (const FoldResult& fold : report.folds) {
    sum += fold.accuracy;
    f1 += fold.macro_f1;
  }
  const double n = static_cast<double>(folds);
  report.mean_accuracy = sum / n;
  report.mean_macro_f1 = f1 / n;
  // Sample (n-1) stddev: the folds are a sample of possible splits, and the
  // population formula biases the spread low for the small k used here.
  double var = 0.0;
  for (const FoldResult& fold : report.folds) {
    const double d = fold.accuracy - report.mean_accuracy;
    var += d * d;
  }
  report.stddev_accuracy = std::sqrt(var / (n - 1.0));
  return report;
}

}  // namespace magneto::core
