#ifndef MAGNETO_CORE_DRIFT_MONITOR_H_
#define MAGNETO_CORE_DRIFT_MONITOR_H_

#include <deque>

#include "core/edge_model.h"

namespace magneto::core {

/// Watches the live prediction stream for signs that the model no longer
/// fits the user — the trigger for the paper's calibration story (§3.3):
/// "calibrating an activity to more closely align with the user's behavior
/// is a focal point of interest".
///
/// Two rolling signals over the last `window` predictions:
///   * mean confidence — a user whose style drifted produces chronically
///     borderline NCM margins;
///   * mean nearest-prototype distance relative to a healthy baseline.
///
/// When either degrades past its threshold the monitor recommends
/// calibration. Purely advisory: the app decides whether to prompt the user.
class DriftMonitor {
 public:
  struct Options {
    size_t window = 30;             ///< predictions per rolling estimate
    double min_confidence = 0.55;   ///< alarm below this rolling mean
    /// Alarm when rolling mean distance exceeds baseline * this factor.
    double distance_factor = 1.8;
  };

  explicit DriftMonitor(Options options);

  /// Sets the healthy-distance baseline (e.g. mean nearest-prototype
  /// distance measured right after provisioning or a calibration).
  void SetBaselineDistance(double distance);
  double baseline_distance() const { return baseline_distance_; }

  /// Feeds one prediction; returns true while the monitor recommends
  /// calibration (requires a full window of evidence).
  bool Observe(const Prediction& prediction);

  bool drifting() const { return drifting_; }
  double rolling_confidence() const;
  double rolling_distance() const;

  /// Clears the evidence (call after a calibration/update).
  void Reset();

 private:
  Options options_;
  double baseline_distance_ = 0.0;
  std::deque<Prediction> history_;
  bool drifting_ = false;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_DRIFT_MONITOR_H_
