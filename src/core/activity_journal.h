#ifndef MAGNETO_CORE_ACTIVITY_JOURNAL_H_
#define MAGNETO_CORE_ACTIVITY_JOURNAL_H_

#include <map>
#include <string>
#include <vector>

#include "core/edge_model.h"

namespace magneto::core {

/// One contiguous bout of a single activity.
struct ActivityBout {
  sensors::ActivityId activity = kUnknownActivity;
  std::string name;
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// The health-app ledger the paper's introduction motivates ("health care,
/// fitness or assistant applications"): accumulates the prediction stream
/// into per-activity totals and a bout timeline, entirely on-device.
///
/// Windows arrive at a fixed cadence (one per `window_seconds`); consecutive
/// windows of the same activity merge into one bout. Brief single-window
/// blips still count toward totals — feed *smoothed* predictions if the
/// bouts should ignore them.
class ActivityJournal {
 public:
  explicit ActivityJournal(double window_seconds = 1.0);

  /// Records one window's prediction.
  void Record(const NamedPrediction& prediction);

  /// Seconds attributed to `activity` so far.
  double TotalSeconds(sensors::ActivityId activity) const;

  /// Totals for every activity seen, descending by time.
  std::vector<std::pair<std::string, double>> Totals() const;

  /// The bout timeline (the last bout is still open).
  const std::vector<ActivityBout>& bouts() const { return bouts_; }

  double elapsed_seconds() const { return elapsed_s_; }

  /// Multi-line "daily summary" (name, minutes, percent, bout count).
  std::string Summary() const;

  void Reset();

 private:
  double window_seconds_;
  double elapsed_s_ = 0.0;
  std::map<sensors::ActivityId, double> seconds_;
  std::map<sensors::ActivityId, std::string> names_;
  std::map<sensors::ActivityId, size_t> bout_counts_;
  std::vector<ActivityBout> bouts_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_ACTIVITY_JOURNAL_H_
