#include "core/async_updater.h"

#include <chrono>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::core {

namespace {

struct AsyncMetrics {
  obs::Counter* started =
      obs::Registry::Global().GetCounter("async.updates_started");
  obs::Counter* completed =
      obs::Registry::Global().GetCounter("async.updates_completed");
  obs::Counter* failed =
      obs::Registry::Global().GetCounter("async.updates_failed");
  obs::Histogram* update_ms = obs::Registry::Global().GetHistogram(
      "async.update_ms", obs::LatencyBucketsMs());
};

AsyncMetrics& Metrics() {
  static AsyncMetrics* metrics = new AsyncMetrics;
  return *metrics;
}

}  // namespace

void AsyncUpdater::ReapWorker() {
  // Lock order: the handle leaves the object under mu_, the join happens
  // outside it. The worker's last act is to lock mu_ and publish its
  // outcome, so joining while holding mu_ would deadlock — and joining an
  // unguarded `worker_` (the old code) raced with a concurrent Launch
  // reassigning it.
  std::thread finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished = std::move(worker_);
  }
  if (finished.joinable()) finished.join();
}

AsyncUpdater::~AsyncUpdater() { ReapWorker(); }

Status AsyncUpdater::StartLearn(const EdgeModel& model,
                                const SupportSet& support, std::string name,
                                std::vector<sensors::Recording> recordings) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kIdle) {
      return Status::FailedPrecondition("an update is already in flight");
    }
    state_ = State::kRunning;
  }
  IncrementalOptions options = options_;
  Launch(model.Clone(), support,
         [options, name = std::move(name),
          recordings = std::move(recordings)](EdgeModel* m, SupportSet* s) {
           IncrementalLearner learner(options);
           return learner.LearnNewActivity(m, s, name, recordings);
         });
  return Status::Ok();
}

Status AsyncUpdater::StartCalibrate(
    const EdgeModel& model, const SupportSet& support, sensors::ActivityId id,
    std::vector<sensors::Recording> recordings) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kIdle) {
      return Status::FailedPrecondition("an update is already in flight");
    }
    state_ = State::kRunning;
  }
  IncrementalOptions options = options_;
  Launch(model.Clone(), support,
         [options, id, recordings = std::move(recordings)](EdgeModel* m,
                                                           SupportSet* s) {
           IncrementalLearner learner(options);
           return learner.Calibrate(m, s, id, recordings);
         });
  return Status::Ok();
}

void AsyncUpdater::Launch(
    EdgeModel snapshot_model, SupportSet snapshot_support,
    std::function<Result<UpdateReport>(EdgeModel*, SupportSet*)> update) {
  // A previous (already-taken) worker may still need joining. Only one
  // Launch can be active (state_ was CASed kIdle -> kRunning by the caller),
  // so nothing refills worker_ between the reap and the store below.
  ReapWorker();
  Metrics().started->Increment();
  // The snapshots move into the worker; the caller's deployment is untouched
  // and keeps serving inference.
  auto body = [this,
               model = std::make_shared<EdgeModel>(std::move(snapshot_model)),
               support =
                   std::make_shared<SupportSet>(std::move(snapshot_support)),
               update = std::move(update)]() mutable {
    const auto start = std::chrono::steady_clock::now();
    Result<UpdateReport> report = [&] {
      obs::TraceSpan span("AsyncUpdater::Update");
      return update(model.get(), support.get());
    }();
    Metrics().update_ms->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() *
        1e3);
    (report.ok() ? Metrics().completed : Metrics().failed)->Increment();
    auto outcome = std::make_unique<Result<Outcome>>([&]() -> Result<Outcome> {
      if (!report.ok()) return report.status();
      Outcome out{std::move(*model), std::move(*support),
                  std::move(report).value()};
      return out;
    }());
    {
      std::lock_guard<std::mutex> lock(mu_);
      outcome_ = std::move(outcome);
      state_ = State::kDone;
    }
    cv_.notify_all();
  };
  // Create and store the handle under mu_: the worker's completion also
  // takes mu_, so by the time anyone can observe kDone the handle is in
  // place. (Storing outside the lock let a fast worker finish — and a
  // concurrent Take reset to kIdle — before the handle was visible, after
  // which a second Launch could clobber it.)
  std::lock_guard<std::mutex> lock(mu_);
  worker_ = std::thread(std::move(body));
}

bool AsyncUpdater::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ != State::kIdle;
}

bool AsyncUpdater::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kDone;
}

Result<AsyncUpdater::Outcome> AsyncUpdater::Take() {
  std::thread finished;
  Result<Outcome> result = Status::Internal("unreachable");
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ == State::kIdle) {
      return Status::FailedPrecondition("no update was started");
    }
    // Wait on the worker's completion signal instead of joining the handle
    // unlocked (which raced with Launch's reassignment). A concurrent Take
    // may win the outcome while we wait; it leaves state_ at kIdle.
    cv_.wait(lock, [&] { return state_ != State::kRunning; });
    if (state_ == State::kIdle) {
      return Status::FailedPrecondition(
          "the update was taken by a concurrent Take");
    }
    MAGNETO_CHECK(outcome_ != nullptr);
    result = std::move(*outcome_);
    outcome_.reset();
    state_ = State::kIdle;
    finished = std::move(worker_);
  }
  // The worker already published its outcome, so this join is a reap, not a
  // wait; outside mu_ purely for lock-order hygiene.
  if (finished.joinable()) finished.join();
  return result;
}

}  // namespace magneto::core
