#include "core/async_updater.h"

#include <chrono>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::core {

namespace {

struct AsyncMetrics {
  obs::Counter* started =
      obs::Registry::Global().GetCounter("async.updates_started");
  obs::Counter* completed =
      obs::Registry::Global().GetCounter("async.updates_completed");
  obs::Counter* failed =
      obs::Registry::Global().GetCounter("async.updates_failed");
  obs::Histogram* update_ms = obs::Registry::Global().GetHistogram(
      "async.update_ms", obs::LatencyBucketsMs());
};

AsyncMetrics& Metrics() {
  static AsyncMetrics* metrics = new AsyncMetrics;
  return *metrics;
}

}  // namespace

AsyncUpdater::~AsyncUpdater() {
  if (worker_.joinable()) worker_.join();
}

Status AsyncUpdater::StartLearn(const EdgeModel& model,
                                const SupportSet& support, std::string name,
                                std::vector<sensors::Recording> recordings) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kIdle) {
      return Status::FailedPrecondition("an update is already in flight");
    }
    state_ = State::kRunning;
  }
  IncrementalOptions options = options_;
  Launch(model.Clone(), support,
         [options, name = std::move(name),
          recordings = std::move(recordings)](EdgeModel* m, SupportSet* s) {
           IncrementalLearner learner(options);
           return learner.LearnNewActivity(m, s, name, recordings);
         });
  return Status::Ok();
}

Status AsyncUpdater::StartCalibrate(
    const EdgeModel& model, const SupportSet& support, sensors::ActivityId id,
    std::vector<sensors::Recording> recordings) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kIdle) {
      return Status::FailedPrecondition("an update is already in flight");
    }
    state_ = State::kRunning;
  }
  IncrementalOptions options = options_;
  Launch(model.Clone(), support,
         [options, id, recordings = std::move(recordings)](EdgeModel* m,
                                                           SupportSet* s) {
           IncrementalLearner learner(options);
           return learner.Calibrate(m, s, id, recordings);
         });
  return Status::Ok();
}

void AsyncUpdater::Launch(
    EdgeModel snapshot_model, SupportSet snapshot_support,
    std::function<Result<UpdateReport>(EdgeModel*, SupportSet*)> update) {
  // A previous (already-taken) worker may still need joining.
  if (worker_.joinable()) worker_.join();
  Metrics().started->Increment();
  // The snapshots move into the worker; the caller's deployment is untouched
  // and keeps serving inference.
  worker_ = std::thread(
      [this, model = std::make_shared<EdgeModel>(std::move(snapshot_model)),
       support = std::make_shared<SupportSet>(std::move(snapshot_support)),
       update = std::move(update)]() mutable {
        const auto start = std::chrono::steady_clock::now();
        Result<UpdateReport> report = [&] {
          obs::TraceSpan span("AsyncUpdater::Update");
          return update(model.get(), support.get());
        }();
        Metrics().update_ms->Record(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count() *
            1e3);
        (report.ok() ? Metrics().completed : Metrics().failed)->Increment();
        auto outcome = std::make_unique<Result<Outcome>>([&]() -> Result<Outcome> {
          if (!report.ok()) return report.status();
          Outcome out{std::move(*model), std::move(*support),
                      std::move(report).value()};
          return out;
        }());
        std::lock_guard<std::mutex> lock(mu_);
        outcome_ = std::move(outcome);
        state_ = State::kDone;
      });
}

bool AsyncUpdater::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ != State::kIdle;
}

bool AsyncUpdater::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kDone;
}

Result<AsyncUpdater::Outcome> AsyncUpdater::Take() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kIdle) {
      return Status::FailedPrecondition("no update was started");
    }
  }
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  MAGNETO_CHECK(state_ == State::kDone && outcome_ != nullptr);
  Result<Outcome> result = std::move(*outcome_);
  outcome_.reset();
  state_ = State::kIdle;
  return result;
}

}  // namespace magneto::core
