#include "core/activity_journal.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace magneto::core {

ActivityJournal::ActivityJournal(double window_seconds)
    : window_seconds_(window_seconds) {
  MAGNETO_CHECK(window_seconds > 0.0);
}

void ActivityJournal::Record(const NamedPrediction& prediction) {
  const sensors::ActivityId id = prediction.prediction.activity;
  seconds_[id] += window_seconds_;
  names_[id] = prediction.name;
  if (bouts_.empty() || bouts_.back().activity != id) {
    ActivityBout bout;
    bout.activity = id;
    bout.name = prediction.name;
    bout.start_s = elapsed_s_;
    bout.duration_s = window_seconds_;
    bouts_.push_back(bout);
    ++bout_counts_[id];
  } else {
    bouts_.back().duration_s += window_seconds_;
  }
  elapsed_s_ += window_seconds_;
}

double ActivityJournal::TotalSeconds(sensors::ActivityId activity) const {
  auto it = seconds_.find(activity);
  return it == seconds_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> ActivityJournal::Totals() const {
  std::vector<std::pair<std::string, double>> totals;
  totals.reserve(seconds_.size());
  for (const auto& [id, secs] : seconds_) {
    totals.emplace_back(names_.at(id), secs);
  }
  std::sort(totals.begin(), totals.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return totals;
}

std::string ActivityJournal::Summary() const {
  std::ostringstream os;
  os << "activity journal (" << std::fixed << std::setprecision(1)
     << elapsed_s_ / 60.0 << " min total):\n";
  for (const auto& [id, secs] : seconds_) {
    const double share = elapsed_s_ > 0.0 ? 100.0 * secs / elapsed_s_ : 0.0;
    os << "  " << std::left << std::setw(14) << names_.at(id) << std::right
       << std::setw(7) << std::setprecision(1) << secs / 60.0 << " min  "
       << std::setw(5) << share << "%  " << bout_counts_.at(id) << " bout(s)\n";
  }
  return os.str();
}

void ActivityJournal::Reset() {
  elapsed_s_ = 0.0;
  seconds_.clear();
  names_.clear();
  bout_counts_.clear();
  bouts_.clear();
}

}  // namespace magneto::core
