#ifndef MAGNETO_CORE_CROSS_VALIDATION_H_
#define MAGNETO_CORE_CROSS_VALIDATION_H_

#include <vector>

#include "common/result.h"
#include "core/cloud_initializer.h"

namespace magneto::core {

/// One fold's outcome.
struct FoldResult {
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  size_t train_windows = 0;
  size_t test_windows = 0;
};

/// Aggregate over folds.
struct CrossValidationReport {
  std::vector<FoldResult> folds;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double mean_macro_f1 = 0.0;
};

/// k-fold cross-validation of the full cloud-initialization recipe at
/// *recording* granularity: recordings (not windows) are partitioned so that
/// windows from one capture never straddle the train/test boundary — window-
/// level splits leak heavily because adjacent windows of one recording are
/// nearly identical.
///
/// Each fold runs `CloudInitializer::Initialize` on the training recordings
/// and evaluates NCM accuracy on the held-out ones. Deterministic in `seed`.
Result<CrossValidationReport> CrossValidateCloud(
    const CloudConfig& config,
    const std::vector<sensors::LabeledRecording>& corpus,
    const sensors::ActivityRegistry& registry, size_t folds, uint64_t seed);

}  // namespace magneto::core

#endif  // MAGNETO_CORE_CROSS_VALIDATION_H_
