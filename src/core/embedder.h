#ifndef MAGNETO_CORE_EMBEDDER_H_
#define MAGNETO_CORE_EMBEDDER_H_

#include <cstddef>

#include "common/matrix.h"

namespace magneto::core {

/// Maps preprocessed feature vectors into the learned embedding space.
///
/// Abstracting this (rather than passing `nn::Sequential` around) lets the
/// support-set herding and the NCM classifier stay independent of the
/// backbone implementation — the paper notes the FC backbone "can be replaced
/// by any other advanced networks".
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Embeds a batch (rows = feature vectors). Non-const because
  /// implementations own the forward workspace their backbone writes
  /// through (the network itself is const during inference).
  virtual Matrix Embed(const Matrix& features) = 0;

  virtual size_t embedding_dim() const = 0;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_EMBEDDER_H_
