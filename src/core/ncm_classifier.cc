#include "core/ncm_classifier.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/qgemm.h"
#include "obs/metrics.h"

namespace magneto::core {

namespace {

obs::Histogram* ScanHistogram() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("ann.scan_us");
  return h;
}

double SanitizeDistance(double d) {
  // A NaN (from a non-finite prototype or query embedding) would violate
  // std::sort's strict weak ordering — UB, not just a bad ranking.
  return std::isfinite(d) ? d : std::numeric_limits<double>::infinity();
}

}  // namespace

Status NcmClassifier::SetPrototypeFromEmbeddings(sensors::ActivityId id,
                                                 const Matrix& embeddings) {
  if (embeddings.rows() == 0) {
    return Status::InvalidArgument("no embeddings for class " +
                                   std::to_string(id));
  }
  if (dim_ == 0) {
    dim_ = embeddings.cols();
  } else if (embeddings.cols() != dim_) {
    return Status::InvalidArgument("embedding dim mismatch: expected " +
                                   std::to_string(dim_) + ", got " +
                                   std::to_string(embeddings.cols()));
  }
  prototypes_[id] = embeddings.ColMean().Row(0);
  if (quantized_scan_) QuantizeOne(id);
  return RebuildAnnIndex();
}

void NcmClassifier::QuantizeOne(sensors::ActivityId id) {
  std::vector<float>& proto = prototypes_[id];
  QuantizedPrototype qp;
  qp.q.resize(dim_);
  qp.scale = QuantizeRowInt8(proto.data(), dim_, qp.q.data());
  qp.norm = SquaredNormInt8(qp.q.data(), dim_);
  // The fp32 prototype becomes the dequantized vector, keeping Prototype(),
  // Serialize() and the scan in exact agreement.
  for (size_t i = 0; i < dim_; ++i) {
    proto[i] = static_cast<float>(qp.q[i]) * qp.scale;
  }
  quantized_[id] = std::move(qp);
}

Status NcmClassifier::QuantizePrototypes() {
  if (prototypes_.empty()) {
    return Status::FailedPrecondition("classifier has no prototypes");
  }
  quantized_scan_ = true;
  quantized_.clear();
  for (const auto& [id, proto] : prototypes_) QuantizeOne(id);
  // Quantization moved every prototype (to its dequantized value), so the
  // coarse quantizer must re-train on what the scan now sees.
  return RebuildAnnIndex();
}

Result<NcmClassifier> NcmClassifier::FromSupportSet(const SupportSet& support,
                                                    Embedder* embedder) {
  if (embedder == nullptr) {
    return Status::InvalidArgument("embedder must not be null");
  }
  const std::vector<sensors::ActivityId> ids = support.Classes();
  if (ids.empty()) {
    return Status::InvalidArgument("support set is empty");
  }

  // Stack every class's exemplars and embed them in one batched forward:
  // one large pool-parallel GEMM per layer instead of num_classes small
  // ones. Row-wise kernels make the stacked embeddings identical to the
  // per-class ones, so the prototypes are unchanged.
  std::vector<Matrix> exemplars;
  exemplars.reserve(ids.size());
  size_t total_rows = 0;
  size_t dim = 0;
  for (sensors::ActivityId id : ids) {
    MAGNETO_ASSIGN_OR_RETURN(Matrix m, support.ClassExemplars(id));
    if (m.rows() == 0) {
      return Status::InvalidArgument("no embeddings for class " +
                                     std::to_string(id));
    }
    total_rows += m.rows();
    dim = m.cols();
    exemplars.push_back(std::move(m));
  }
  Matrix stacked(total_rows, dim);
  size_t row = 0;
  for (const Matrix& m : exemplars) {
    std::memcpy(stacked.RowPtr(row), m.data(), m.size() * sizeof(float));
    row += m.rows();
  }
  Matrix embeddings = embedder->Embed(stacked);

  NcmClassifier ncm;
  row = 0;
  for (size_t c = 0; c < ids.size(); ++c) {
    const size_t rows = exemplars[c].rows();
    MAGNETO_RETURN_IF_ERROR(ncm.SetPrototypeFromEmbeddings(
        ids[c], embeddings.RowSlice(row, row + rows)));
    row += rows;
  }
  return ncm;
}

Status NcmClassifier::RemoveClass(sensors::ActivityId id) {
  if (prototypes_.erase(id) == 0) {
    return Status::NotFound("class not in classifier: " + std::to_string(id));
  }
  quantized_.erase(id);
  return RebuildAnnIndex();
}

Status NcmClassifier::EnableAnn(AnnOptions options) {
  options.enable = true;
  ann_options_ = options;
  return RebuildAnnIndex();
}

void NcmClassifier::DisableAnn() {
  ann_options_ = AnnOptions{};
  ann_index_.reset();
  ann_ids_.clear();
}

Status NcmClassifier::RebuildAnnIndex() {
  ann_index_.reset();
  ann_ids_.clear();
  if (!ann_options_.enable ||
      prototypes_.size() < ann_options_.min_index_size) {
    // Exact fallback: absent index, nothing stale to consult.
    return Status::Ok();
  }
  Matrix protos(prototypes_.size(), dim_);
  ann_ids_.reserve(prototypes_.size());
  size_t row = 0;
  for (const auto& [id, proto] : prototypes_) {
    std::memcpy(protos.RowPtr(row), proto.data(), dim_ * sizeof(float));
    ann_ids_.push_back(id);
    ++row;
  }
  MAGNETO_ASSIGN_OR_RETURN(AnnIndex index,
                           AnnIndex::Build(protos, ann_options_));
  ann_index_ = std::make_shared<const AnnIndex>(std::move(index));
  return Status::Ok();
}

std::vector<sensors::ActivityId> NcmClassifier::Classes() const {
  std::vector<sensors::ActivityId> out;
  out.reserve(prototypes_.size());
  for (const auto& [id, proto] : prototypes_) out.push_back(id);
  return out;
}

Result<std::vector<float>> NcmClassifier::Prototype(
    sensors::ActivityId id) const {
  auto it = prototypes_.find(id);
  if (it == prototypes_.end()) {
    return Status::NotFound("class not in classifier: " + std::to_string(id));
  }
  return it->second;
}

Status NcmClassifier::DistancesInto(const float* embedding, size_t n,
                                    Scratch* scratch) const {
  if (prototypes_.empty()) {
    return Status::FailedPrecondition("classifier has no prototypes");
  }
  if (n != dim_) {
    return Status::InvalidArgument("embedding dim " + std::to_string(n) +
                                   " != classifier dim " +
                                   std::to_string(dim_));
  }
  std::vector<std::pair<sensors::ActivityId, double>>& out = scratch->dist;
  out.clear();
  out.reserve(prototypes_.size());
  if (quantized_scan_) {
    // Exact-rescale int8 scan: quantize the query once, then combine exact
    // integer dot products and norms with the two scales.
    scratch->q_query.resize(dim_);
    int8_t* qx = scratch->q_query.data();
    const double sq = QuantizeRowInt8(embedding, dim_, qx);
    const int32_t query_norm = SquaredNormInt8(qx, dim_);
    for (const auto& [id, qp] : quantized_) {
      const double si = qp.scale;
      const double d2 = sq * sq * query_norm -
                        2.0 * sq * si * DotInt8(qx, qp.q.data(), dim_) +
                        si * si * qp.norm;
      out.emplace_back(id, std::sqrt(std::max(0.0, d2)));
    }
  } else {
    for (const auto& [id, proto] : prototypes_) {
      out.emplace_back(id, SanitizeDistance(std::sqrt(
                               SquaredL2(embedding, proto.data(), dim_))));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return Status::Ok();
}

Result<std::vector<std::pair<sensors::ActivityId, double>>>
NcmClassifier::Distances(const float* embedding, size_t n) const {
  // Always the exact full scan: Distances promises the distance to *every*
  // prototype (drift monitoring, calibration); only Classify routes through
  // the ANN candidate subset.
  Scratch local;
  MAGNETO_RETURN_IF_ERROR(DistancesInto(embedding, n, &local));
  return std::move(local.dist);
}

Result<Prediction> NcmClassifier::Classify(const float* embedding, size_t n,
                                           Scratch* scratch) const {
  if (scratch == nullptr) {
    return Status::InvalidArgument("scratch must not be null");
  }
  if (ann_index_ != nullptr) {
    if (prototypes_.empty()) {
      return Status::FailedPrecondition("classifier has no prototypes");
    }
    if (n != dim_) {
      return Status::InvalidArgument("embedding dim " + std::to_string(n) +
                                     " != classifier dim " +
                                     std::to_string(dim_));
    }
    obs::ScopedTimer timer(ScanHistogram());
    scratch->candidates.clear();
    ann_index_->AppendCandidates(embedding, &scratch->ann,
                                 &scratch->candidates);
    std::vector<std::pair<sensors::ActivityId, double>>& out = scratch->dist;
    out.clear();
    if (quantized_scan_) {
      scratch->q_query.resize(dim_);
      int8_t* qx = scratch->q_query.data();
      const double sq = QuantizeRowInt8(embedding, dim_, qx);
      const int32_t query_norm = SquaredNormInt8(qx, dim_);
      for (uint32_t c : scratch->candidates) {
        const auto it = quantized_.find(ann_ids_[c]);
        const QuantizedPrototype& qp = it->second;
        const double si = qp.scale;
        const double d2 = sq * sq * query_norm -
                          2.0 * sq * si * DotInt8(qx, qp.q.data(), dim_) +
                          si * si * qp.norm;
        out.emplace_back(it->first, std::sqrt(std::max(0.0, d2)));
      }
    } else {
      for (uint32_t c : scratch->candidates) {
        const auto it = prototypes_.find(ann_ids_[c]);
        out.emplace_back(it->first,
                         SanitizeDistance(std::sqrt(SquaredL2(
                             embedding, it->second.data(), dim_))));
      }
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.second < b.second;
    });
  } else {
    MAGNETO_RETURN_IF_ERROR(DistancesInto(embedding, n, scratch));
  }

  const std::vector<std::pair<sensors::ActivityId, double>>& distances =
      scratch->dist;
  Prediction pred;
  pred.activity = distances.front().first;
  pred.distance = distances.front().second;
  // Confidence: softmax over negative distances. Under ANN this normalizes
  // over the probed candidates (the prediction and distance are the exact
  // rerank; only the normalization pool shrinks).
  double denom = 0.0;
  const double dmin = distances.front().second;
  for (const auto& [id, d] : distances) denom += std::exp(dmin - d);
  pred.confidence = 1.0 / denom;
  return pred;
}

Result<Prediction> NcmClassifier::ClassifyWithRejection(
    const float* embedding, size_t n, double reject_threshold,
    Scratch* scratch) const {
  MAGNETO_ASSIGN_OR_RETURN(Prediction pred, Classify(embedding, n, scratch));
  if (pred.distance > reject_threshold) pred.activity = kUnknownActivity;
  return pred;
}

void NcmClassifier::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(dim_);
  writer->WriteU64(prototypes_.size());
  for (const auto& [id, proto] : prototypes_) {
    writer->WriteI64(id);
    writer->WriteF32Vector(proto);
  }
}

Result<NcmClassifier> NcmClassifier::Deserialize(BinaryReader* reader) {
  NcmClassifier ncm;
  MAGNETO_ASSIGN_OR_RETURN(ncm.dim_, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  for (uint64_t i = 0; i < n; ++i) {
    MAGNETO_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    MAGNETO_ASSIGN_OR_RETURN(std::vector<float> proto,
                             reader->ReadF32Vector());
    if (proto.size() != ncm.dim_) {
      return Status::Corruption("prototype dim mismatch");
    }
    ncm.prototypes_[id] = std::move(proto);
  }
  return ncm;
}

}  // namespace magneto::core
