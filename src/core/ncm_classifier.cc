#include "core/ncm_classifier.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/qgemm.h"

namespace magneto::core {

Status NcmClassifier::SetPrototypeFromEmbeddings(sensors::ActivityId id,
                                                 const Matrix& embeddings) {
  if (embeddings.rows() == 0) {
    return Status::InvalidArgument("no embeddings for class " +
                                   std::to_string(id));
  }
  if (dim_ == 0) {
    dim_ = embeddings.cols();
  } else if (embeddings.cols() != dim_) {
    return Status::InvalidArgument("embedding dim mismatch: expected " +
                                   std::to_string(dim_) + ", got " +
                                   std::to_string(embeddings.cols()));
  }
  prototypes_[id] = embeddings.ColMean().Row(0);
  if (quantized_scan_) QuantizeOne(id);
  return Status::Ok();
}

void NcmClassifier::QuantizeOne(sensors::ActivityId id) {
  std::vector<float>& proto = prototypes_[id];
  QuantizedPrototype qp;
  qp.q.resize(dim_);
  qp.scale = QuantizeRowInt8(proto.data(), dim_, qp.q.data());
  qp.norm = SquaredNormInt8(qp.q.data(), dim_);
  // The fp32 prototype becomes the dequantized vector, keeping Prototype(),
  // Serialize() and the scan in exact agreement.
  for (size_t i = 0; i < dim_; ++i) {
    proto[i] = static_cast<float>(qp.q[i]) * qp.scale;
  }
  quantized_[id] = std::move(qp);
}

Status NcmClassifier::QuantizePrototypes() {
  if (prototypes_.empty()) {
    return Status::FailedPrecondition("classifier has no prototypes");
  }
  quantized_scan_ = true;
  quantized_.clear();
  for (const auto& [id, proto] : prototypes_) QuantizeOne(id);
  return Status::Ok();
}

Result<NcmClassifier> NcmClassifier::FromSupportSet(const SupportSet& support,
                                                    Embedder* embedder) {
  if (embedder == nullptr) {
    return Status::InvalidArgument("embedder must not be null");
  }
  const std::vector<sensors::ActivityId> ids = support.Classes();
  if (ids.empty()) {
    return Status::InvalidArgument("support set is empty");
  }

  // Stack every class's exemplars and embed them in one batched forward:
  // one large pool-parallel GEMM per layer instead of num_classes small
  // ones. Row-wise kernels make the stacked embeddings identical to the
  // per-class ones, so the prototypes are unchanged.
  std::vector<Matrix> exemplars;
  exemplars.reserve(ids.size());
  size_t total_rows = 0;
  size_t dim = 0;
  for (sensors::ActivityId id : ids) {
    MAGNETO_ASSIGN_OR_RETURN(Matrix m, support.ClassExemplars(id));
    if (m.rows() == 0) {
      return Status::InvalidArgument("no embeddings for class " +
                                     std::to_string(id));
    }
    total_rows += m.rows();
    dim = m.cols();
    exemplars.push_back(std::move(m));
  }
  Matrix stacked(total_rows, dim);
  size_t row = 0;
  for (const Matrix& m : exemplars) {
    std::memcpy(stacked.RowPtr(row), m.data(), m.size() * sizeof(float));
    row += m.rows();
  }
  Matrix embeddings = embedder->Embed(stacked);

  NcmClassifier ncm;
  row = 0;
  for (size_t c = 0; c < ids.size(); ++c) {
    const size_t rows = exemplars[c].rows();
    MAGNETO_RETURN_IF_ERROR(ncm.SetPrototypeFromEmbeddings(
        ids[c], embeddings.RowSlice(row, row + rows)));
    row += rows;
  }
  return ncm;
}

Status NcmClassifier::RemoveClass(sensors::ActivityId id) {
  if (prototypes_.erase(id) == 0) {
    return Status::NotFound("class not in classifier: " + std::to_string(id));
  }
  quantized_.erase(id);
  return Status::Ok();
}

std::vector<sensors::ActivityId> NcmClassifier::Classes() const {
  std::vector<sensors::ActivityId> out;
  out.reserve(prototypes_.size());
  for (const auto& [id, proto] : prototypes_) out.push_back(id);
  return out;
}

Result<std::vector<float>> NcmClassifier::Prototype(
    sensors::ActivityId id) const {
  auto it = prototypes_.find(id);
  if (it == prototypes_.end()) {
    return Status::NotFound("class not in classifier: " + std::to_string(id));
  }
  return it->second;
}

Result<std::vector<std::pair<sensors::ActivityId, double>>>
NcmClassifier::Distances(const float* embedding, size_t n) const {
  if (prototypes_.empty()) {
    return Status::FailedPrecondition("classifier has no prototypes");
  }
  if (n != dim_) {
    return Status::InvalidArgument("embedding dim " + std::to_string(n) +
                                   " != classifier dim " +
                                   std::to_string(dim_));
  }
  std::vector<std::pair<sensors::ActivityId, double>> out;
  out.reserve(prototypes_.size());
  if (quantized_scan_) {
    // Exact-rescale int8 scan: quantize the query once, then combine exact
    // integer dot products and norms with the two scales.
    std::vector<int8_t> qx(dim_);
    const double sq = QuantizeRowInt8(embedding, dim_, qx.data());
    const int32_t query_norm = SquaredNormInt8(qx.data(), dim_);
    for (const auto& [id, qp] : quantized_) {
      const double si = qp.scale;
      const double d2 = sq * sq * query_norm -
                        2.0 * sq * si * DotInt8(qx.data(), qp.q.data(), dim_) +
                        si * si * qp.norm;
      out.emplace_back(id, std::sqrt(std::max(0.0, d2)));
    }
  } else {
    for (const auto& [id, proto] : prototypes_) {
      out.emplace_back(
          id, std::sqrt(SquaredL2(embedding, proto.data(), dim_)));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

Result<Prediction> NcmClassifier::Classify(const float* embedding,
                                           size_t n) const {
  MAGNETO_ASSIGN_OR_RETURN(auto distances, Distances(embedding, n));
  Prediction pred;
  pred.activity = distances.front().first;
  pred.distance = distances.front().second;
  // Confidence: softmax over negative distances.
  double denom = 0.0;
  const double dmin = distances.front().second;
  for (const auto& [id, d] : distances) denom += std::exp(dmin - d);
  pred.confidence = 1.0 / denom;
  return pred;
}

Result<Prediction> NcmClassifier::ClassifyWithRejection(
    const float* embedding, size_t n, double reject_threshold) const {
  MAGNETO_ASSIGN_OR_RETURN(Prediction pred, Classify(embedding, n));
  if (pred.distance > reject_threshold) pred.activity = kUnknownActivity;
  return pred;
}

void NcmClassifier::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(dim_);
  writer->WriteU64(prototypes_.size());
  for (const auto& [id, proto] : prototypes_) {
    writer->WriteI64(id);
    writer->WriteF32Vector(proto);
  }
}

Result<NcmClassifier> NcmClassifier::Deserialize(BinaryReader* reader) {
  NcmClassifier ncm;
  MAGNETO_ASSIGN_OR_RETURN(ncm.dim_, reader->ReadU64());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  for (uint64_t i = 0; i < n; ++i) {
    MAGNETO_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    MAGNETO_ASSIGN_OR_RETURN(std::vector<float> proto,
                             reader->ReadF32Vector());
    if (proto.size() != ncm.dim_) {
      return Status::Corruption("prototype dim mismatch");
    }
    ncm.prototypes_[id] = std::move(proto);
  }
  return ncm;
}

}  // namespace magneto::core
