#include "core/knn_classifier.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace magneto::core {

namespace {

obs::Histogram* ScanHistogram() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("ann.scan_us");
  return h;
}

float SanitizeDistance(float d2) {
  // A NaN (from a non-finite stored or query embedding) would violate
  // partial_sort's strict weak ordering — UB, not just a bad ranking.
  return std::isfinite(d2) ? d2 : std::numeric_limits<float>::infinity();
}

}  // namespace

Result<KnnClassifier> KnnClassifier::FromSupportSet(const SupportSet& support,
                                                    Embedder* embedder,
                                                    Options options) {
  if (embedder == nullptr) {
    return Status::InvalidArgument("embedder must not be null");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (support.NumClasses() == 0) {
    return Status::InvalidArgument("support set is empty");
  }

  KnnClassifier knn;
  knn.options_ = options;

  sensors::FeatureDataset all = support.AsDataset();
  knn.embeddings_ = embedder->Embed(all.ToMatrix());
  knn.labels_ = all.labels();
  knn.dim_ = knn.embeddings_.cols();
  // The coarse quantizer trains on the fp32 embeddings — before the int8
  // path below drops them — so fp32 and int8 classifiers built from the
  // same support probe identical lists.
  if (options.ann.enable && knn.labels_.size() >= options.ann.min_index_size) {
    MAGNETO_ASSIGN_OR_RETURN(AnnIndex index,
                             AnnIndex::Build(knn.embeddings_, options.ann));
    knn.ann_index_ = std::make_shared<const AnnIndex>(std::move(index));
  }
  if (options.quantize_exemplars) {
    // Quantize every exemplar row and precompute its exact integer norm,
    // then drop the fp32 copy — the scan below never needs it back.
    QuantizeRowsInt8(knn.embeddings_, &knn.quantized_);
    knn.norms_.resize(knn.quantized_.rows);
    for (size_t i = 0; i < knn.quantized_.rows; ++i) {
      knn.norms_[i] =
          SquaredNormInt8(knn.quantized_.data.data() + i * knn.dim_, knn.dim_);
    }
    knn.embeddings_ = Matrix();
  }
  return knn;
}

Result<size_t> KnnClassifier::ScanTopK(const float* embedding, size_t n,
                                       size_t k, Scratch* scratch) const {
  if (scratch == nullptr) {
    return Status::InvalidArgument("scratch must not be null");
  }
  if (labels_.empty()) {
    return Status::FailedPrecondition("classifier has no exemplars");
  }
  if (n != dim_) {
    return Status::InvalidArgument("embedding dim " + std::to_string(n) +
                                   " != classifier dim " +
                                   std::to_string(dim_));
  }

  // Squared distances to the scanned exemplars; ranking by squared distance
  // is order-identical (sqrt is monotone), so the single sqrt per reported
  // neighbour is deferred to the vote/margin computation in Classify. The
  // caller's scratch is reused across calls to keep the per-query cost
  // allocation-free without the hidden process-lifetime footprint of a
  // `static thread_local` buffer.
  const bool use_ann = ann_index_ != nullptr;
  const uint32_t* candidates = nullptr;
  if (use_ann) {
    scratch->candidates.clear();
    ann_index_->AppendCandidates(embedding, &scratch->ann,
                                 &scratch->candidates);
    candidates = scratch->candidates.data();
  }
  const size_t count = use_ann ? scratch->candidates.size() : labels_.size();
  std::vector<std::pair<float, uint32_t>>& dist = scratch->dist;
  dist.resize(count);
  if (options_.quantize_exemplars) {
    // Int8 scan: quantize the query once, then compute the exact-rescale
    // squared distance against each stored exemplar,
    //   d² = sq²·Σqx² − 2·sq·si·(qx·qi) + si²·Σqi²,
    // where the dot product and both norms are exact int32 and only the
    // final three-term combination runs in floating point.
    scratch->q_query.resize(dim_);
    const float sq = QuantizeRowInt8(embedding, dim_, scratch->q_query.data());
    const int32_t query_norm = SquaredNormInt8(scratch->q_query.data(), dim_);
    const int8_t* qx = scratch->q_query.data();
    ParallelFor(0, count, 2048, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const size_t idx = use_ann ? candidates[i] : i;
        const int8_t* qi = quantized_.data.data() + idx * dim_;
        const double si = quantized_.scales[idx];
        const double d2 = double(sq) * sq * query_norm -
                          2.0 * sq * si * DotInt8(qx, qi, dim_) +
                          si * si * norms_[idx];
        dist[i] = {SanitizeDistance(static_cast<float>(std::max(0.0, d2))),
                   static_cast<uint32_t>(idx)};
      }
    });
  } else {
    ParallelFor(0, count, 2048, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const size_t idx = use_ann ? candidates[i] : i;
        dist[i] = {
            SanitizeDistance(SquaredL2(embedding, embeddings_.RowPtr(idx),
                                       dim_)),
            static_cast<uint32_t>(idx)};
      }
    });
  }
  const size_t top = std::min(k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + top, dist.end());
  return top;
}

Result<std::vector<std::pair<float, uint32_t>>> KnnClassifier::Neighbors(
    const float* embedding, size_t n, size_t k, Scratch* scratch) const {
  MAGNETO_ASSIGN_OR_RETURN(size_t top, ScanTopK(embedding, n, k, scratch));
  return std::vector<std::pair<float, uint32_t>>(scratch->dist.begin(),
                                                 scratch->dist.begin() + top);
}

Result<Prediction> KnnClassifier::Classify(const float* embedding, size_t n,
                                           Scratch* scratch) const {
  size_t k = 0;
  if (ann_index_ != nullptr) {
    obs::ScopedTimer timer(ScanHistogram());
    MAGNETO_ASSIGN_OR_RETURN(k, ScanTopK(embedding, n, options_.k, scratch));
  } else {
    MAGNETO_ASSIGN_OR_RETURN(k, ScanTopK(embedding, n, options_.k, scratch));
  }
  const std::vector<std::pair<float, uint32_t>>& dist = scratch->dist;

  std::map<sensors::ActivityId, double> votes;
  std::map<sensors::ActivityId, double> nearest;
  double total_vote = 0.0;
  for (size_t j = 0; j < k; ++j) {
    const auto& [d2, idx] = dist[j];
    const double d = std::sqrt(static_cast<double>(d2));
    const sensors::ActivityId label = labels_[idx];
    const double w = options_.distance_weighted ? 1.0 / (d + 1e-6) : 1.0;
    votes[label] += w;
    total_vote += w;
    auto it = nearest.find(label);
    if (it == nearest.end() || d < it->second) nearest[label] = d;
  }

  Prediction pred;
  double best = -1.0;
  double best_near = std::numeric_limits<double>::infinity();
  for (const auto& [label, vote] : votes) {
    // Equal vote mass is broken by the nearer nearest-exemplar, not by the
    // ordered-map iteration (which would always hand ties to the lowest
    // ActivityId regardless of geometry).
    const double near = nearest.find(label)->second;
    if (vote > best || (vote == best && near < best_near)) {
      best = vote;
      best_near = near;
      pred.activity = label;
    }
  }
  pred.distance = best_near;
  pred.confidence = total_vote > 0.0 ? best / total_vote : 0.0;
  return pred;
}

}  // namespace magneto::core
