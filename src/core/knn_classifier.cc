#include "core/knn_classifier.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "common/parallel.h"

namespace magneto::core {

Result<KnnClassifier> KnnClassifier::FromSupportSet(const SupportSet& support,
                                                    Embedder* embedder,
                                                    Options options) {
  if (embedder == nullptr) {
    return Status::InvalidArgument("embedder must not be null");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (support.NumClasses() == 0) {
    return Status::InvalidArgument("support set is empty");
  }

  KnnClassifier knn;
  knn.options_ = options;

  sensors::FeatureDataset all = support.AsDataset();
  knn.embeddings_ = embedder->Embed(all.ToMatrix());
  knn.labels_ = all.labels();
  knn.dim_ = knn.embeddings_.cols();
  if (options.quantize_exemplars) {
    // Quantize every exemplar row and precompute its exact integer norm,
    // then drop the fp32 copy — the scan below never needs it back.
    QuantizeRowsInt8(knn.embeddings_, &knn.quantized_);
    knn.norms_.resize(knn.quantized_.rows);
    for (size_t i = 0; i < knn.quantized_.rows; ++i) {
      knn.norms_[i] =
          SquaredNormInt8(knn.quantized_.data.data() + i * knn.dim_, knn.dim_);
    }
    knn.embeddings_ = Matrix();
  }
  return knn;
}

Result<Prediction> KnnClassifier::Classify(const float* embedding, size_t n,
                                           Scratch* scratch) const {
  if (scratch == nullptr) {
    return Status::InvalidArgument("scratch must not be null");
  }
  if (labels_.empty()) {
    return Status::FailedPrecondition("classifier has no exemplars");
  }
  if (n != dim_) {
    return Status::InvalidArgument("embedding dim " + std::to_string(n) +
                                   " != classifier dim " +
                                   std::to_string(dim_));
  }

  // Squared distances to all exemplars; ranking by squared distance is
  // order-identical (sqrt is monotone), so the single sqrt per reported
  // neighbour is deferred to the vote/margin computation below. The caller's
  // scratch is reused across calls to keep the per-query cost
  // allocation-free without the hidden process-lifetime footprint of a
  // `static thread_local` buffer.
  std::vector<std::pair<float, uint32_t>>& dist = scratch->dist;
  dist.resize(labels_.size());
  if (options_.quantize_exemplars) {
    // Int8 scan: quantize the query once, then compute the exact-rescale
    // squared distance against each stored exemplar,
    //   d² = sq²·Σqx² − 2·sq·si·(qx·qi) + si²·Σqi²,
    // where the dot product and both norms are exact int32 and only the
    // final three-term combination runs in floating point.
    scratch->q_query.resize(dim_);
    const float sq = QuantizeRowInt8(embedding, dim_, scratch->q_query.data());
    const int32_t query_norm = SquaredNormInt8(scratch->q_query.data(), dim_);
    const int8_t* qx = scratch->q_query.data();
    ParallelFor(0, labels_.size(), 2048, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const int8_t* qi = quantized_.data.data() + i * dim_;
        const double si = quantized_.scales[i];
        const double d2 = double(sq) * sq * query_norm -
                          2.0 * sq * si * DotInt8(qx, qi, dim_) +
                          si * si * norms_[i];
        dist[i] = {static_cast<float>(std::max(0.0, d2)),
                   static_cast<uint32_t>(i)};
      }
    });
  } else {
    ParallelFor(0, labels_.size(), 2048, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        dist[i] = {SquaredL2(embedding, embeddings_.RowPtr(i), dim_),
                   static_cast<uint32_t>(i)};
      }
    });
  }
  const size_t k = std::min(options_.k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());

  std::map<sensors::ActivityId, double> votes;
  std::map<sensors::ActivityId, double> nearest;
  double total_vote = 0.0;
  for (size_t j = 0; j < k; ++j) {
    const auto& [d2, idx] = dist[j];
    const double d = std::sqrt(static_cast<double>(d2));
    const sensors::ActivityId label = labels_[idx];
    const double w = options_.distance_weighted ? 1.0 / (d + 1e-6) : 1.0;
    votes[label] += w;
    total_vote += w;
    auto it = nearest.find(label);
    if (it == nearest.end() || d < it->second) nearest[label] = d;
  }

  Prediction pred;
  double best = -1.0;
  for (const auto& [label, vote] : votes) {
    if (vote > best) {
      best = vote;
      pred.activity = label;
    }
  }
  pred.distance = nearest[pred.activity];
  pred.confidence = total_vote > 0.0 ? best / total_vote : 0.0;
  return pred;
}

}  // namespace magneto::core
