#include "core/update_transaction.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace magneto::core {

namespace {

struct TransactionMetrics {
  obs::Counter* commits =
      obs::Registry::Global().GetCounter("learner.commits");
  obs::Counter* rollbacks =
      obs::Registry::Global().GetCounter("learner.rollbacks");
  obs::Gauge* staged_bytes =
      obs::Registry::Global().GetGauge("learner.staged_bytes");
};

TransactionMetrics& Metrics() {
  static TransactionMetrics* metrics = new TransactionMetrics;
  return *metrics;
}

}  // namespace

UpdateTransaction::UpdateTransaction(EdgeModel* model, SupportSet* support)
    : model_(model),
      live_support_(support),
      staged_(model->TakeSnapshot()),
      support_(*support),
      embedder_(&staged_.backbone) {
  Metrics().staged_bytes->Set(static_cast<double>(StagedBytes()));
}

UpdateTransaction::~UpdateTransaction() {
  if (!committed_) {
    Metrics().rollbacks->Increment();
    // A rollback is an anomaly worth a post-mortem: snapshot the recent
    // serving history (auto-dumps when a dump path is configured).
    obs::FlightRecorder::Global().NoteAnomaly("update_rollback");
  }
  Metrics().staged_bytes->Set(0.0);
}

size_t UpdateTransaction::StagedBytes() const {
  return staged_.backbone.NumParameters() * sizeof(float) +
         support_.MemoryBytes() +
         staged_.classifier.num_classes() *
             staged_.classifier.embedding_dim() * sizeof(float);
}

size_t UpdateTransaction::StagedEmbedder::embedding_dim() const {
  size_t dim = backbone_->InputDim();
  for (size_t i = 0; i < backbone_->num_layers(); ++i) {
    dim = backbone_->layer(i).output_dim(dim);
  }
  return dim;
}

Status UpdateTransaction::RebuildPrototypes() {
  MAGNETO_ASSIGN_OR_RETURN(NcmClassifier rebuilt,
                           NcmClassifier::FromSupportSet(support_, &embedder_));
  // Preserve the staged classifier's ANN configuration: the transaction
  // stages a *replacement* classifier, and committing it must not silently
  // turn an indexed deployment back into a linear scan. The index itself is
  // rebuilt here, on the staged copy — the live classifier keeps its own
  // until Commit's single swap.
  if (staged_.classifier.ann_enabled()) {
    MAGNETO_RETURN_IF_ERROR(
        rebuilt.EnableAnn(staged_.classifier.ann_options()));
  }
  staged_.classifier = std::move(rebuilt);
  return Status::Ok();
}

void UpdateTransaction::Commit() {
  Metrics().staged_bytes->Set(static_cast<double>(StagedBytes()));
  model_->Restore(std::move(staged_));
  *live_support_ = std::move(support_);
  committed_ = true;
  Metrics().commits->Increment();
}

}  // namespace magneto::core
