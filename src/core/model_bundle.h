#ifndef MAGNETO_CORE_MODEL_BUNDLE_H_
#define MAGNETO_CORE_MODEL_BUNDLE_H_

#include <string>

#include "common/result.h"
#include "core/edge_model.h"
#include "core/ncm_classifier.h"
#include "core/support_set.h"
#include "nn/sequential.h"
#include "preprocess/pipeline.h"
#include "sensors/activity.h"

namespace magneto::core {

/// Bundle wire versions accepted by `ModelBundle::FromString`.
inline constexpr uint32_t kBundleWireV2 = 2;
inline constexpr uint32_t kBundleWireV3 = 3;

/// The single artifact that crosses the cloud -> edge link (§3.2): the
/// pre-processing function (with frozen normaliser stats), the initial ML
/// model, the support set, plus the activity registry and NCM prototypes
/// derived from them.
///
/// Wire format (".magneto" file), v2: magic "MGTO", u32 version, u64 payload
/// length, payload, u32 CRC-32 over everything after the magic (version +
/// length + payload), so header bit-flips report as checksum errors. v1
/// files (CRC over the payload only) still load.
///
/// v3 shares v2's header/CRC framing but ships the support set quantized
/// (int8 rows + per-row scale, see `SupportSet::SerializeQuantized`) and
/// re-quantizes the NCM prototypes on load. Paired with a
/// `compress::QuantizeBackbone`d backbone this puts the whole cloud→edge
/// artifact at roughly a quarter of the fp32 v2 bytes. v1/v2 read paths are
/// kept; loading remembers the wire version so round trips preserve it.
/// Move-only (owns the backbone).
struct ModelBundle {
  preprocess::Pipeline pipeline;
  nn::Sequential backbone;
  NcmClassifier classifier;
  sensors::ActivityRegistry registry;
  SupportSet support{200, SelectionStrategy::kHerding};

  /// Wire version this bundle serialises to. `FromString` records the
  /// version it read, so a loaded v3 bundle checkpoints back as v3 instead
  /// of silently inflating to fp32 on the next save.
  uint32_t wire_version = kBundleWireV2;

  ModelBundle() = default;
  ModelBundle(ModelBundle&&) noexcept = default;
  ModelBundle& operator=(ModelBundle&&) noexcept = default;

  /// Serialises the whole bundle (with header and checksum) at
  /// `wire_version`.
  std::string SerializeToString() const;

  /// Parses and checksum-verifies a serialised bundle (wire v1/v2/v3).
  static Result<ModelBundle> FromString(const std::string& bytes);

  /// Crash-safe: writes via `WriteFileAtomic`, so an interrupted save leaves
  /// any previous file at `path` intact.
  Status SaveToFile(const std::string& path) const;
  static Result<ModelBundle> LoadFromFile(const std::string& path);

  /// Loads `path`; if it is missing or corrupt, falls back to
  /// `fallback_path` (the last-known-good checkpoint — see
  /// `EdgeRuntime::SaveCheckpoint`). Increments the
  /// `edge.checkpoint.fallbacks` counter and sets `*used_fallback` when the
  /// fallback was used. Fails with the primary's error when both fail.
  static Result<ModelBundle> LoadFromFileWithFallback(
      const std::string& path, const std::string& fallback_path,
      bool* used_fallback = nullptr);

  /// Exact size of the artifact the edge must store — the paper's "< 5 MB"
  /// claim (§4.2.2) is measured on this.
  size_t SerializedBytes() const { return SerializeToString().size(); }

  /// Consumes the bundle into a runnable edge model. The support set is not
  /// part of `EdgeModel`; move `support` out separately (the edge runtime
  /// owns it next to the model).
  EdgeModel ToEdgeModel() &&;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_MODEL_BUNDLE_H_
