#ifndef MAGNETO_CORE_KNN_CLASSIFIER_H_
#define MAGNETO_CORE_KNN_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/qgemm.h"
#include "common/result.h"
#include "core/ann_index.h"
#include "core/embedder.h"
#include "core/ncm_classifier.h"
#include "core/support_set.h"
#include "sensors/activity.h"

namespace magneto::core {

/// k-nearest-neighbour classifier over the embedded support exemplars — the
/// classical alternative the related work builds on (Shapelet features with
/// a kNN classifier, §2.2). Kept as a drop-in baseline against NCM:
/// it stores every exemplar embedding (k x the memory of NCM's single
/// prototype per class) and pays O(support size) per query instead of
/// O(classes); bench_pretraining reports the trade.
///
/// Concurrency contract: a built classifier is immutable, so `Classify` may
/// be called from any number of threads concurrently — each call either
/// brings its own `Scratch` or allocates a local one. (It used to keep a
/// `static thread_local` scratch, which retained the largest-ever allocation
/// per thread for the life of the process and was invisible shared state
/// across every classifier instance on that thread.)
class KnnClassifier {
 public:
  struct Options {
    size_t k = 5;
    /// Weight votes by 1/(distance + eps) instead of uniformly.
    bool distance_weighted = true;
    /// Store the support embeddings as symmetric per-exemplar int8 instead
    /// of fp32 (4x less scan memory and bandwidth). Queries are quantized
    /// per call and distances computed by the exact rescale
    ///   d² = sq²·Σqx² − 2·sq·si·(qx·qi) + si²·Σqi²
    /// over exact integer dot products and precomputed exemplar norms, so
    /// the only approximation is the int8 rounding of the vectors
    /// themselves. Composes with `compress::QuantizeBackbone` for the fully
    /// quantized edge path.
    bool quantize_exemplars = false;
    /// Approximate support index (IVF-Flat, optional PQ pre-ranking). When
    /// `ann.enable` and the support set holds at least `ann.min_index_size`
    /// exemplars, queries scan only the probed lists' candidates; otherwise
    /// the exact linear scan runs unchanged. The index selects candidates
    /// only — distances always come from this classifier's own store (fp32
    /// rows or int8 codes), so ANN composes with `quantize_exemplars`.
    AnnOptions ann;
  };

  /// Reusable per-query workspace. Passing the same instance across calls
  /// keeps the hot path allocation-free; distinct threads must use distinct
  /// instances. Predictions are byte-identical with or without one.
  struct Scratch {
    std::vector<std::pair<float, uint32_t>> dist;
    std::vector<int8_t> q_query;  ///< int8 path: quantized query vector
    AnnIndex::Scratch ann;
    std::vector<uint32_t> candidates;  ///< ANN path: ids to rerank
  };

  /// Embeds every support exemplar through `embedder`.
  static Result<KnnClassifier> FromSupportSet(const SupportSet& support,
                                              Embedder* embedder,
                                              Options options);

  size_t num_examples() const { return labels_.size(); }
  size_t embedding_dim() const { return dim_; }
  const Options& options() const { return options_; }
  /// True when queries actually go through the ANN index (built at
  /// construction because `options().ann.enable` was set and the support
  /// size reached `ann.min_index_size`). False = exact scan.
  bool ann_active() const { return ann_index_ != nullptr; }

  /// Bytes of stored exemplar embeddings (int8 data + scales + norms when
  /// `quantize_exemplars` is set — the fp32 copy is dropped).
  size_t MemoryBytes() const {
    if (options_.quantize_exemplars) {
      return quantized_.data.size() +
             quantized_.scales.size() * sizeof(float) +
             norms_.size() * sizeof(int32_t);
    }
    return embeddings_.size() * sizeof(float);
  }

  /// Classifies one embedding: majority (or distance-weighted) vote among
  /// the k nearest stored exemplars. `Prediction::distance` is the distance
  /// to the nearest exemplar of the winning class; `confidence` is the
  /// winning class's share of the vote mass. `scratch` (optional) is reused
  /// across calls to keep the query allocation-free.
  Result<Prediction> Classify(const float* embedding, size_t n,
                              Scratch* scratch) const;
  Result<Prediction> Classify(const float* embedding, size_t n) const {
    Scratch local;
    return Classify(embedding, n, &local);
  }
  Result<Prediction> Classify(const std::vector<float>& embedding) const {
    return Classify(embedding.data(), embedding.size());
  }

  /// The `k` nearest stored exemplars as (squared distance, exemplar index)
  /// pairs, ascending. Under ANN the search is restricted to the probed
  /// candidates (exactly the pool `Classify` votes over) — which is what
  /// bench_ann measures recall against the exact scan with.
  Result<std::vector<std::pair<float, uint32_t>>> Neighbors(
      const float* embedding, size_t n, size_t k, Scratch* scratch) const;

  sensors::ActivityId label(size_t exemplar) const { return labels_[exemplar]; }

 private:
  KnnClassifier() = default;

  /// Fills `scratch->dist` with (squared distance, exemplar index) pairs —
  /// every exemplar on the exact path, the ANN candidates otherwise — and
  /// partial-sorts the best `k` to the front. Non-finite distances are
  /// sanitized to +inf (a NaN would break partial_sort's strict weak
  /// ordering). Returns the number of ranked pairs (>= 1).
  Result<size_t> ScanTopK(const float* embedding, size_t n, size_t k,
                          Scratch* scratch) const;

  Options options_;
  size_t dim_ = 0;
  Matrix embeddings_;  ///< num_examples x dim (fp32 path; empty when int8)
  QuantizedRows quantized_;      ///< int8 path: per-exemplar int8 + scale
  std::vector<int32_t> norms_;   ///< int8 path: Σqi² per exemplar
  std::vector<sensors::ActivityId> labels_;
  /// Immutable once built; shared so copies stay cheap and identical.
  std::shared_ptr<const AnnIndex> ann_index_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_KNN_CLASSIFIER_H_
