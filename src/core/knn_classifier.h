#ifndef MAGNETO_CORE_KNN_CLASSIFIER_H_
#define MAGNETO_CORE_KNN_CLASSIFIER_H_

#include <vector>

#include "common/qgemm.h"
#include "common/result.h"
#include "core/embedder.h"
#include "core/ncm_classifier.h"
#include "core/support_set.h"
#include "sensors/activity.h"

namespace magneto::core {

/// k-nearest-neighbour classifier over the embedded support exemplars — the
/// classical alternative the related work builds on (Shapelet features with
/// a kNN classifier, §2.2). Kept as a drop-in baseline against NCM:
/// it stores every exemplar embedding (k x the memory of NCM's single
/// prototype per class) and pays O(support size) per query instead of
/// O(classes); bench_pretraining reports the trade.
///
/// Concurrency contract: a built classifier is immutable, so `Classify` may
/// be called from any number of threads concurrently — each call either
/// brings its own `Scratch` or allocates a local one. (It used to keep a
/// `static thread_local` scratch, which retained the largest-ever allocation
/// per thread for the life of the process and was invisible shared state
/// across every classifier instance on that thread.)
class KnnClassifier {
 public:
  struct Options {
    size_t k = 5;
    /// Weight votes by 1/(distance + eps) instead of uniformly.
    bool distance_weighted = true;
    /// Store the support embeddings as symmetric per-exemplar int8 instead
    /// of fp32 (4x less scan memory and bandwidth). Queries are quantized
    /// per call and distances computed by the exact rescale
    ///   d² = sq²·Σqx² − 2·sq·si·(qx·qi) + si²·Σqi²
    /// over exact integer dot products and precomputed exemplar norms, so
    /// the only approximation is the int8 rounding of the vectors
    /// themselves. Composes with `compress::QuantizeBackbone` for the fully
    /// quantized edge path.
    bool quantize_exemplars = false;
  };

  /// Reusable per-query workspace. Passing the same instance across calls
  /// keeps the hot path allocation-free; distinct threads must use distinct
  /// instances. Predictions are byte-identical with or without one.
  struct Scratch {
    std::vector<std::pair<float, uint32_t>> dist;
    std::vector<int8_t> q_query;  ///< int8 path: quantized query vector
  };

  /// Embeds every support exemplar through `embedder`.
  static Result<KnnClassifier> FromSupportSet(const SupportSet& support,
                                              Embedder* embedder,
                                              Options options);

  size_t num_examples() const { return labels_.size(); }
  size_t embedding_dim() const { return dim_; }
  const Options& options() const { return options_; }

  /// Bytes of stored exemplar embeddings (int8 data + scales + norms when
  /// `quantize_exemplars` is set — the fp32 copy is dropped).
  size_t MemoryBytes() const {
    if (options_.quantize_exemplars) {
      return quantized_.data.size() +
             quantized_.scales.size() * sizeof(float) +
             norms_.size() * sizeof(int32_t);
    }
    return embeddings_.size() * sizeof(float);
  }

  /// Classifies one embedding: majority (or distance-weighted) vote among
  /// the k nearest stored exemplars. `Prediction::distance` is the distance
  /// to the nearest exemplar of the winning class; `confidence` is the
  /// winning class's share of the vote mass. `scratch` (optional) is reused
  /// across calls to keep the query allocation-free.
  Result<Prediction> Classify(const float* embedding, size_t n,
                              Scratch* scratch) const;
  Result<Prediction> Classify(const float* embedding, size_t n) const {
    Scratch local;
    return Classify(embedding, n, &local);
  }
  Result<Prediction> Classify(const std::vector<float>& embedding) const {
    return Classify(embedding.data(), embedding.size());
  }

 private:
  KnnClassifier() = default;

  Options options_;
  size_t dim_ = 0;
  Matrix embeddings_;  ///< num_examples x dim (fp32 path; empty when int8)
  QuantizedRows quantized_;      ///< int8 path: per-exemplar int8 + scale
  std::vector<int32_t> norms_;   ///< int8 path: Σqi² per exemplar
  std::vector<sensors::ActivityId> labels_;
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_KNN_CLASSIFIER_H_
