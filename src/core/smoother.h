#ifndef MAGNETO_CORE_SMOOTHER_H_
#define MAGNETO_CORE_SMOOTHER_H_

#include <cstdint>
#include <deque>

#include "core/edge_model.h"

namespace magneto::core {

/// Temporal post-processing of the per-window prediction stream — the
/// "post-processing and result interpretation" stage the paper's intro names
/// as part of a complete HAR pipeline.
///
/// A single noisy window (a pothole during Drive, one arm swing during Walk)
/// should not flip the displayed activity. The smoother majority-votes over
/// the last `window` predictions, weighting each vote by its confidence, and
/// only switches its output once the new activity actually wins the window.
/// Latency cost: a switch is confirmed after about `window/2` windows.
///
/// Votes expire by *time*, not only by displacement: a prediction stops
/// voting once it is more than `window` pushes old, even when the pushes in
/// between were rejected by `min_confidence` and so never entered the
/// history themselves. Without that, a burst of low-confidence windows after
/// an activity change would leave the pre-change winner in the history
/// indefinitely and the smoother would keep reporting it.
///
/// Not thread-safe; in a multi-session deployment each session owns its own
/// smoother (see platform::EdgeFleet).
class PredictionSmoother {
 public:
  struct Options {
    size_t window = 5;          ///< vote history length, >= 1
    double min_confidence = 0.0;///< raw predictions below this don't vote
  };

  explicit PredictionSmoother(Options options);

  /// Feeds one raw prediction, returns the smoothed one. The smoothed
  /// confidence is the winning class's share of the vote mass.
  NamedPrediction Push(const NamedPrediction& raw);

  /// Clears history (call on mode switches or after a model update).
  void Reset();

  size_t history_size() const { return history_.size(); }

 private:
  struct Entry {
    NamedPrediction prediction;
    uint64_t tick;  ///< value of ticks_ when the entry was accepted
  };

  Options options_;
  std::deque<Entry> history_;
  uint64_t ticks_ = 0;  ///< total pushes, accepted or rejected
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_SMOOTHER_H_
