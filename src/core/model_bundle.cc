#include "core/model_bundle.h"

#include <cstring>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace magneto::core {

namespace {
constexpr char kMagic[4] = {'M', 'G', 'T', 'O'};
/// v1: trailing CRC covered the body only — a bit-flip in the version or
/// length field surfaced as a misleading "unsupported version" / "truncated
/// body". v2 keeps the identical field layout but the trailing CRC covers
/// version + length + body, so any header damage is a checksum error.
/// v3 keeps v2's framing; only the support-set section encoding differs.
constexpr size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kFooterBytes = sizeof(uint32_t);

/// Parses the five bundle sections out of a bounds-checked body reader.
/// v1/v2 bodies are identical; a v3 body carries the quantized support-set
/// encoding and restores the classifier's int8 scan state.
Result<ModelBundle> ParseBody(BinaryReader* body_reader, uint32_t version) {
  ModelBundle bundle;
  bundle.wire_version =
      version == 1 ? kBundleWireV2 : version;  // v1 re-saves as v2
  MAGNETO_ASSIGN_OR_RETURN(bundle.pipeline,
                           preprocess::Pipeline::Deserialize(body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.backbone,
                           nn::Sequential::Deserialize(body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.classifier,
                           NcmClassifier::Deserialize(body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.registry,
                           sensors::ActivityRegistry::Deserialize(body_reader));
  if (version == kBundleWireV3) {
    MAGNETO_ASSIGN_OR_RETURN(bundle.support,
                             SupportSet::DeserializeQuantized(body_reader));
    // A v3 bundle was written by a quantized deployment; the serialized
    // prototypes are dequantized int8 vectors, so re-quantizing restores
    // the int8 scan state exactly.
    if (bundle.classifier.num_classes() > 0) {
      MAGNETO_RETURN_IF_ERROR(bundle.classifier.QuantizePrototypes());
    }
  } else {
    MAGNETO_ASSIGN_OR_RETURN(bundle.support,
                             SupportSet::Deserialize(body_reader));
  }
  if (!body_reader->AtEnd()) {
    return Status::Corruption("trailing bytes in bundle body");
  }
  return bundle;
}

}  // namespace

std::string ModelBundle::SerializeToString() const {
  MAGNETO_CHECK(wire_version == kBundleWireV2 ||
                wire_version == kBundleWireV3);
  BinaryWriter payload;
  pipeline.Serialize(&payload);
  backbone.Serialize(&payload);
  classifier.Serialize(&payload);
  registry.Serialize(&payload);
  if (wire_version == kBundleWireV3) {
    support.SerializeQuantized(&payload);
  } else {
    support.Serialize(&payload);
  }
  const std::string& body = payload.buffer();

  BinaryWriter out;
  out.WriteBytes(kMagic, sizeof(kMagic));
  out.WriteU32(wire_version);
  out.WriteU64(body.size());
  out.WriteBytes(body.data(), body.size());
  // v2: the CRC protects everything after the magic — version, length, body.
  out.WriteU32(Crc32(out.buffer().data() + sizeof(kMagic),
                     out.size() - sizeof(kMagic)));
  return out.TakeBuffer();
}

Result<ModelBundle> ModelBundle::FromString(const std::string& bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    return Status::Corruption("bundle too small");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad bundle magic");
  }
  BinaryReader header(bytes.data() + sizeof(kMagic),
                      bytes.size() - sizeof(kMagic));
  MAGNETO_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  MAGNETO_ASSIGN_OR_RETURN(uint64_t body_size, header.ReadU64());

  if (version == 1) {
    // Legacy read path: CRC over the body only, located via the length
    // field. Subtraction-form bounds check — `body_size` is untrusted, and
    // `body_size + sizeof(uint32_t)` can wrap past UINT64_MAX and slip
    // through an addition-form comparison, putting the reader's bounds far
    // past the buffer.
    if (header.remaining() < sizeof(uint32_t) ||
        body_size > header.remaining() - sizeof(uint32_t)) {
      return Status::Corruption("truncated bundle body");
    }
    const char* body = bytes.data() + kHeaderBytes;
    BinaryReader crc_reader(body + body_size, sizeof(uint32_t));
    MAGNETO_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.ReadU32());
    if (Crc32(body, body_size) != stored_crc) {
      return Status::Corruption("bundle checksum mismatch");
    }
    BinaryReader body_reader(body, body_size);
    return ParseBody(&body_reader, version);
  }

  // v2+: the trailing CRC is anchored to the end of the buffer, not to the
  // (untrusted) length field, so it can be verified before anything else in
  // the header is believed. Corruption anywhere — version and length fields
  // included — therefore reports as a checksum mismatch, and the version /
  // length errors below only fire for genuinely well-formed inputs.
  BinaryReader crc_reader(bytes.data() + bytes.size() - kFooterBytes,
                          kFooterBytes);
  MAGNETO_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.ReadU32());
  if (Crc32(bytes.data() + sizeof(kMagic),
            bytes.size() - sizeof(kMagic) - kFooterBytes) != stored_crc) {
    return Status::Corruption("bundle checksum mismatch");
  }
  if (version != kBundleWireV2 && version != kBundleWireV3) {
    return Status::Corruption("unsupported bundle version: " +
                              std::to_string(version));
  }
  if (body_size != bytes.size() - kHeaderBytes - kFooterBytes) {
    return Status::Corruption("truncated bundle body");
  }
  BinaryReader body_reader(bytes.data() + kHeaderBytes, body_size);
  return ParseBody(&body_reader, version);
}

Status ModelBundle::SaveToFile(const std::string& path) const {
  // Atomic replacement: a crash mid-save must never brick the device by
  // destroying the only copy of the deployed bundle.
  return WriteFileAtomic(path, SerializeToString());
}

Result<ModelBundle> ModelBundle::LoadFromFile(const std::string& path) {
  MAGNETO_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return FromString(bytes);
}

Result<ModelBundle> ModelBundle::LoadFromFileWithFallback(
    const std::string& path, const std::string& fallback_path,
    bool* used_fallback) {
  if (used_fallback != nullptr) *used_fallback = false;
  Result<ModelBundle> primary = LoadFromFile(path);
  if (primary.ok()) return primary;
  Result<ModelBundle> fallback = LoadFromFile(fallback_path);
  if (!fallback.ok()) {
    // Surface the primary failure; the fallback being absent is expected
    // before the first checkpoint rotation.
    return Status(primary.status().code(),
                  primary.status().message() + " (fallback " + fallback_path +
                      ": " + fallback.status().message() + ")");
  }
  static obs::Counter* const fallbacks =
      obs::Registry::Global().GetCounter("edge.checkpoint.fallbacks");
  fallbacks->Increment();
  // Falling back to the last-known-good checkpoint means the primary was
  // corrupt — snapshot the recent serving history for the post-mortem.
  obs::FlightRecorder::Global().NoteAnomaly("checkpoint_fallback");
  if (used_fallback != nullptr) *used_fallback = true;
  return fallback;
}

EdgeModel ModelBundle::ToEdgeModel() && {
  return EdgeModel(std::move(pipeline), std::move(backbone),
                   std::move(classifier), std::move(registry));
}

}  // namespace magneto::core
