#include "core/model_bundle.h"

#include <cstring>

namespace magneto::core {

namespace {
constexpr char kMagic[4] = {'M', 'G', 'T', 'O'};
constexpr uint32_t kVersion = 1;
}  // namespace

std::string ModelBundle::SerializeToString() const {
  BinaryWriter payload;
  pipeline.Serialize(&payload);
  backbone.Serialize(&payload);
  classifier.Serialize(&payload);
  registry.Serialize(&payload);
  support.Serialize(&payload);
  const std::string& body = payload.buffer();

  BinaryWriter out;
  out.WriteBytes(kMagic, sizeof(kMagic));
  out.WriteU32(kVersion);
  out.WriteU64(body.size());
  out.WriteBytes(body.data(), body.size());
  out.WriteU32(Crc32(body.data(), body.size()));
  return out.TakeBuffer();
}

Result<ModelBundle> ModelBundle::FromString(const std::string& bytes) {
  BinaryReader reader(bytes);
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::Corruption("bundle too small");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad bundle magic");
  }
  BinaryReader header(bytes.data() + sizeof(kMagic),
                      bytes.size() - sizeof(kMagic));
  MAGNETO_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  if (version != kVersion) {
    return Status::Corruption("unsupported bundle version: " +
                              std::to_string(version));
  }
  MAGNETO_ASSIGN_OR_RETURN(uint64_t body_size, header.ReadU64());
  if (header.remaining() < body_size + sizeof(uint32_t)) {
    return Status::Corruption("truncated bundle body");
  }
  const char* body = bytes.data() + (bytes.size() - header.remaining());
  BinaryReader body_reader(body, body_size);

  BinaryReader crc_reader(body + body_size, sizeof(uint32_t));
  MAGNETO_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.ReadU32());
  if (Crc32(body, body_size) != stored_crc) {
    return Status::Corruption("bundle checksum mismatch");
  }

  ModelBundle bundle;
  MAGNETO_ASSIGN_OR_RETURN(bundle.pipeline,
                           preprocess::Pipeline::Deserialize(&body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.backbone,
                           nn::Sequential::Deserialize(&body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.classifier,
                           NcmClassifier::Deserialize(&body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.registry,
                           sensors::ActivityRegistry::Deserialize(&body_reader));
  MAGNETO_ASSIGN_OR_RETURN(bundle.support,
                           SupportSet::Deserialize(&body_reader));
  if (!body_reader.AtEnd()) {
    return Status::Corruption("trailing bytes in bundle body");
  }
  return bundle;
}

Status ModelBundle::SaveToFile(const std::string& path) const {
  return WriteFile(path, SerializeToString());
}

Result<ModelBundle> ModelBundle::LoadFromFile(const std::string& path) {
  MAGNETO_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return FromString(bytes);
}

EdgeModel ModelBundle::ToEdgeModel() && {
  return EdgeModel(std::move(pipeline), std::move(backbone),
                   std::move(classifier), std::move(registry));
}

}  // namespace magneto::core
