#ifndef MAGNETO_CORE_ANN_INDEX_H_
#define MAGNETO_CORE_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace magneto::core {

/// Configuration of the approximate support-set index. Carried by both
/// classifiers as `Options::ann`; `enable = false` (the default) keeps the
/// exact linear scan everywhere.
struct AnnOptions {
  /// Master switch. Even when enabled, the classifier falls back to the
  /// exact scan whenever the index is absent (vocabulary smaller than
  /// `min_index_size`) or stale (a mutation landed and the rebuild found
  /// too few vectors).
  bool enable = false;
  /// Number of inverted lists (k-means cells). 0 = auto: ~sqrt(n), the
  /// classic IVF balance between centroid-scan and list-scan cost.
  size_t nlist = 0;
  /// Lists probed per query. Higher = better recall, more scanned vectors.
  size_t nprobe = 8;
  /// Exact-scan fallback threshold: the index is only built once the
  /// vocabulary holds at least this many vectors. Below it a linear scan is
  /// both faster and exact, so approximation buys nothing.
  size_t min_index_size = 1024;
  /// Lloyd iterations for the coarse quantizer.
  size_t kmeans_iters = 10;
  /// Seed for the deterministic k-means init (sampling without
  /// replacement); results are bit-identical across MAGNETO_THREADS.
  uint64_t seed = 0x5eed;
  /// Optional product-quantization residual codebook: probed lists are
  /// pre-ranked by asymmetric (table-lookup) distance and only the best
  /// `pq_shortlist` candidates are handed back for exact reranking. Cuts
  /// the exact-distance work on very large vocabularies; composes with the
  /// classifiers' int8 exemplar codes (the PQ codes rank, the int8 or fp32
  /// store reranks).
  bool use_pq = false;
  size_t pq_subspaces = 4;    ///< residual subvector count (clamped to dim)
  size_t pq_centroids = 16;   ///< codewords per subspace (clamped to n)
  size_t pq_shortlist = 128;  ///< candidates kept for exact reranking
};

/// IVF-Flat approximate-nearest-neighbour index over row-major fp32
/// vectors: a k-means coarse quantizer partitions the vectors into
/// `nlist` inverted lists; a query scans the `nprobe` nearest lists
/// instead of the whole set.
///
/// The index only *selects candidates* — it never computes the distances a
/// classifier acts on. Callers rerank the returned ids against their own
/// storage (fp32 rows or int8 codes), so ANN and exact scans differ only in
/// the candidate subset, never in distance arithmetic.
///
/// Determinism contract (matches the repo-wide rule): building twice with
/// the same data/options yields bit-identical indexes at any
/// `MAGNETO_THREADS` — the k-means assignment step is per-point independent
/// under `ParallelFor` and the centroid update accumulates in fixed point
/// order; queries probe lists in (distance, list id) order and emit
/// candidates in ascending id order within each list.
///
/// Concurrency contract: immutable after `Build`; any number of threads may
/// call `AppendCandidates` concurrently, each with its own `Scratch`.
class AnnIndex {
 public:
  /// Reusable per-query workspace (mirrors the classifiers' Scratch).
  struct Scratch {
    std::vector<std::pair<float, uint32_t>> centroid_dist;
    std::vector<float> residual;                       ///< PQ: query - centroid
    std::vector<float> adc_table;                      ///< PQ: nsub x pq_k
    std::vector<std::pair<float, uint32_t>> shortlist;  ///< PQ candidates
  };

  /// Builds an index over `vectors` (rows = vectors). Fails on an empty
  /// matrix. `options.enable` is not consulted here — calling Build *is*
  /// the decision to index.
  static Result<AnnIndex> Build(const Matrix& vectors,
                                const AnnOptions& options);

  size_t num_vectors() const { return n_; }
  size_t num_lists() const { return nlist_; }
  size_t dim() const { return dim_; }
  const AnnOptions& options() const { return options_; }

  /// Index overhead in bytes (centroids + list structure + PQ codes); the
  /// vectors themselves stay with the caller.
  size_t MemoryBytes() const;

  /// Appends the candidate vector ids for `query` (length `dim()`) to
  /// `out`: the members of the `nprobe` nearest non-empty lists, pre-ranked
  /// and truncated to `pq_shortlist` by ADC distance when PQ is on. Always
  /// appends at least one candidate. Records `ann.probes` and
  /// `ann.scanned_fraction`.
  void AppendCandidates(const float* query, Scratch* scratch,
                        std::vector<uint32_t>* out) const;

 private:
  AnnIndex() = default;

  size_t ProbeLists(const float* query, Scratch* scratch) const;

  AnnOptions options_;
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t nlist_ = 0;
  Matrix centroids_;  ///< nlist x dim
  /// CSR layout: list l holds ids list_ids_[list_offsets_[l] ..
  /// list_offsets_[l+1]), ascending within each list.
  std::vector<uint32_t> list_offsets_;
  std::vector<uint32_t> list_ids_;
  /// PQ residual codebook (empty unless options_.use_pq): subspace s spans
  /// columns [sub_offsets_[s], sub_offsets_[s+1]) and its pq_k_ codewords
  /// live in rows [s * pq_k_, (s+1) * pq_k_) of pq_codebooks_.
  size_t pq_nsub_ = 0;
  size_t pq_k_ = 0;
  std::vector<uint32_t> sub_offsets_;
  Matrix pq_codebooks_;
  std::vector<uint8_t> pq_codes_;  ///< n x nsub, indexed by vector id
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_ANN_INDEX_H_
