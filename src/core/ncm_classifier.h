#ifndef MAGNETO_CORE_NCM_CLASSIFIER_H_
#define MAGNETO_CORE_NCM_CLASSIFIER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "core/ann_index.h"
#include "core/embedder.h"
#include "core/support_set.h"
#include "sensors/activity.h"

namespace magneto::core {

/// Sentinel id for open-set rejection: "none of the known activities".
inline constexpr sensors::ActivityId kUnknownActivity = -1;

/// One inference outcome.
struct Prediction {
  sensors::ActivityId activity = kUnknownActivity;
  double distance = 0.0;    ///< Euclidean distance to the winning prototype
  double confidence = 0.0;  ///< softmax over negative distances
  bool is_unknown() const { return activity == kUnknownActivity; }
};

/// Nearest-class-mean classifier over the embedding space (§3.1).
///
/// The decisive property for MAGNETO: adding a class is *one mean
/// computation* — no output-layer surgery, no softmax retraining — which is
/// why the platform can learn user activities on-device in seconds. Each
/// prototype is the mean embedding of that class's support exemplars.
class NcmClassifier {
 public:
  /// Reusable per-query workspace, mirroring `KnnClassifier::Scratch`: the
  /// serving hot path (`EdgeFleet::ServeBatch`, `EdgeModel` inference) used
  /// to allocate a fresh distance vector and int8 query buffer per call.
  /// Distinct threads must use distinct instances; predictions are
  /// byte-identical with or without one.
  struct Scratch {
    std::vector<std::pair<sensors::ActivityId, double>> dist;
    std::vector<int8_t> q_query;  ///< int8 path: quantized query vector
    AnnIndex::Scratch ann;
    std::vector<uint32_t> candidates;  ///< ANN path: prototype rows to rerank
  };

  NcmClassifier() = default;

  /// Builds/overwrites the prototype of one class from its embeddings
  /// (rows = exemplar embeddings).
  Status SetPrototypeFromEmbeddings(sensors::ActivityId id,
                                    const Matrix& embeddings);

  /// Builds all prototypes from a support set, embedding every exemplar
  /// through `embedder`. Clears previous prototypes.
  static Result<NcmClassifier> FromSupportSet(const SupportSet& support,
                                              Embedder* embedder);

  Status RemoveClass(sensors::ActivityId id);

  size_t num_classes() const { return prototypes_.size(); }
  size_t embedding_dim() const { return dim_; }
  bool HasClass(sensors::ActivityId id) const {
    return prototypes_.count(id) > 0;
  }
  std::vector<sensors::ActivityId> Classes() const;

  Result<std::vector<float>> Prototype(sensors::ActivityId id) const;

  /// Classifies one embedding (length must equal embedding_dim()).
  /// `scratch` is reused across calls to keep the query allocation-free;
  /// the scratch-free overloads allocate a local one.
  Result<Prediction> Classify(const float* embedding, size_t n,
                              Scratch* scratch) const;
  Result<Prediction> Classify(const float* embedding, size_t n) const {
    Scratch local;
    return Classify(embedding, n, &local);
  }
  Result<Prediction> Classify(const std::vector<float>& embedding) const {
    return Classify(embedding.data(), embedding.size());
  }

  /// Open-set variant: if the nearest prototype is farther than
  /// `reject_threshold`, the prediction is `kUnknownActivity` (the distance
  /// and confidence of the would-be winner are preserved for display).
  /// A practical threshold is a small multiple of the typical intra-class
  /// distance in the trained embedding — see `CalibrateRejectionThreshold`.
  Result<Prediction> ClassifyWithRejection(const float* embedding, size_t n,
                                           double reject_threshold,
                                           Scratch* scratch) const;
  Result<Prediction> ClassifyWithRejection(const float* embedding, size_t n,
                                           double reject_threshold) const {
    Scratch local;
    return ClassifyWithRejection(embedding, n, reject_threshold, &local);
  }

  /// Distance to every prototype, ascending by distance.
  Result<std::vector<std::pair<sensors::ActivityId, double>>> Distances(
      const float* embedding, size_t n) const;

  /// Switches the classifier to int8 prototype scans: every prototype is
  /// quantized (symmetric per-vector, like the support-set wire format) and
  /// queries are scanned with the exact-rescale distance
  ///   d² = sq²·Σqx² − 2·sq·si·(qx·qi) + si²·Σqi².
  /// The stored fp32 prototypes are replaced by their dequantized values so
  /// `Prototype`/`Serialize` describe exactly what the scan sees — which
  /// also makes re-quantization after a round trip exact (the max-|q|
  /// element is always ±127, so the recovered scale is bit-identical).
  /// Prototypes added later via `SetPrototypeFromEmbeddings` are quantized
  /// on entry. FailedPrecondition if the classifier is empty.
  Status QuantizePrototypes();
  bool quantized() const { return quantized_scan_; }

  // -- Approximate prototype index ---------------------------------------------
  //
  // Runtime serving configuration, deliberately *not* serialized: a
  // deserialized classifier always starts exact, and wire bytes are
  // unchanged from the pre-ANN format.

  /// Turns the ANN path on (`options.enable` is forced true) and builds the
  /// index if the vocabulary already has `options.min_index_size` classes.
  /// Rebuild-on-mutation from then on: `SetPrototypeFromEmbeddings`,
  /// `RemoveClass` and `QuantizePrototypes` re-train the coarse quantizer
  /// so the index is never stale — below the size threshold the classifier
  /// simply falls back to the exact scan.
  Status EnableAnn(AnnOptions options);
  /// Drops the index and returns to exact scans.
  void DisableAnn();
  bool ann_enabled() const { return ann_options_.enable; }
  /// True when queries actually route through the index right now.
  bool ann_active() const { return ann_index_ != nullptr; }
  const AnnOptions& ann_options() const { return ann_options_; }

  void Serialize(BinaryWriter* writer) const;
  static Result<NcmClassifier> Deserialize(BinaryReader* reader);

 private:
  /// One int8-scanned prototype: quantized values, scale, exact Σq².
  struct QuantizedPrototype {
    std::vector<int8_t> q;
    float scale = 1.0f;
    int32_t norm = 0;
  };

  void QuantizeOne(sensors::ActivityId id);

  /// Exact full scan into `scratch->dist`, ascending by distance —
  /// byte-identical to the pre-ANN `Distances` computation.
  Status DistancesInto(const float* embedding, size_t n,
                       Scratch* scratch) const;

  /// Retrains the coarse quantizer over the current prototypes (or drops
  /// the index when disabled / below `min_index_size`). Called by every
  /// prototype mutation while ANN is enabled.
  Status RebuildAnnIndex();

  size_t dim_ = 0;
  std::map<sensors::ActivityId, std::vector<float>> prototypes_;
  std::map<sensors::ActivityId, QuantizedPrototype> quantized_;
  bool quantized_scan_ = false;
  AnnOptions ann_options_;  ///< .enable records the EnableAnn decision
  std::shared_ptr<const AnnIndex> ann_index_;  ///< immutable once built
  std::vector<sensors::ActivityId> ann_ids_;   ///< index row -> class id
};

}  // namespace magneto::core

#endif  // MAGNETO_CORE_NCM_CLASSIFIER_H_
