#include "compress/compress.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/random.h"
#include "common/svd.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/quantized_linear.h"

namespace magneto::compress {

namespace {

/// Collects the Linear layers of a net (non-owning).
std::vector<const nn::Linear*> LinearLayers(const nn::Sequential& net) {
  std::vector<const nn::Linear*> out;
  for (size_t i = 0; i < net.num_layers(); ++i) {
    if (net.layer(i).type() == nn::LayerType::kLinear) {
      out.push_back(static_cast<const nn::Linear*>(&net.layer(i)));
    }
  }
  return out;
}

}  // namespace

Result<nn::Sequential> QuantizeBackbone(const nn::Sequential& net) {
  nn::Sequential out;
  for (size_t i = 0; i < net.num_layers(); ++i) {
    const nn::Layer& layer = net.layer(i);
    if (layer.type() == nn::LayerType::kLinear) {
      MAGNETO_ASSIGN_OR_RETURN(
          std::unique_ptr<nn::QuantizedLinear> quantized,
          nn::QuantizedLinear::FromLinear(static_cast<const nn::Linear&>(layer)));
      out.Add(std::move(quantized));
    } else {
      out.Add(layer.Clone());
    }
  }
  return out;
}

Result<double> PruneByMagnitude(nn::Sequential* net, double fraction) {
  if (net == nullptr) return Status::InvalidArgument("net must not be null");
  if (fraction < 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("prune fraction must be in [0, 1)");
  }
  for (size_t i = 0; i < net->num_layers(); ++i) {
    if (net->layer(i).type() != nn::LayerType::kLinear) continue;
    auto& linear = static_cast<nn::Linear&>(net->layer(i));
    Matrix& w = linear.weight();
    if (fraction == 0.0) continue;

    // Per-layer magnitude threshold at the requested quantile. Ties at the
    // threshold are all pruned, so the achieved sparsity can slightly exceed
    // the request.
    std::vector<float> magnitudes(w.size());
    for (size_t j = 0; j < w.size(); ++j) {
      magnitudes[j] = std::fabs(w.data()[j]);
    }
    const size_t k = static_cast<size_t>(
        fraction * static_cast<double>(magnitudes.size()));
    if (k == 0) continue;
    std::nth_element(magnitudes.begin(), magnitudes.begin() + (k - 1),
                     magnitudes.end());
    const float threshold = magnitudes[k - 1];
    for (size_t j = 0; j < w.size(); ++j) {
      if (std::fabs(w.data()[j]) <= threshold) w.data()[j] = 0.0f;
    }
  }
  return Sparsity(*net);
}

double Sparsity(const nn::Sequential& net) {
  size_t zeros = 0, total = 0;
  for (const nn::Linear* linear : LinearLayers(net)) {
    const Matrix& w = linear->weight();
    total += w.size();
    for (size_t j = 0; j < w.size(); ++j) {
      if (w.data()[j] == 0.0f) ++zeros;
    }
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total)
                   : 0.0;
}

size_t SparseEncodedBytes(const nn::Sequential& net) {
  size_t bytes = 0;
  for (const nn::Linear* linear : LinearLayers(net)) {
    const Matrix& w = linear->weight();
    size_t nnz = 0;
    for (size_t j = 0; j < w.size(); ++j) {
      if (w.data()[j] != 0.0f) ++nnz;
    }
    bytes += nnz * (sizeof(uint32_t) + sizeof(float));  // COO entries
    bytes += linear->bias().size() * sizeof(float);     // dense bias
    bytes += 16;                                        // shape header
  }
  return bytes;
}

Result<nn::Sequential> FactorizeBackbone(const nn::Sequential& net,
                                         double energy_fraction) {
  if (energy_fraction <= 0.0 || energy_fraction > 1.0) {
    return Status::InvalidArgument("energy_fraction must be in (0, 1]");
  }
  nn::Sequential out;
  for (size_t i = 0; i < net.num_layers(); ++i) {
    const nn::Layer& layer = net.layer(i);
    if (layer.type() != nn::LayerType::kLinear) {
      out.Add(layer.Clone());
      continue;
    }
    const auto& linear = static_cast<const nn::Linear&>(layer);
    const size_t in = linear.in_dim();
    const size_t n_out = linear.out_dim();
    MAGNETO_ASSIGN_OR_RETURN(SvdResult svd, Svd(linear.weight()));
    size_t k = RankForEnergy(svd, energy_fraction);
    // Only factor when the two thin layers are actually smaller.
    if (k * (in + n_out) >= in * n_out) {
      out.Add(layer.Clone());
      continue;
    }
    // W ~ (U_k sqrt(S)) * (sqrt(S) Vt_k): split the spectrum evenly so both
    // factors stay well-scaled.
    auto first = std::make_unique<nn::Linear>(in, k);
    auto second = std::make_unique<nn::Linear>(k, n_out);
    for (size_t r = 0; r < in; ++r) {
      for (size_t c = 0; c < k; ++c) {
        first->weight().At(r, c) =
            svd.u.At(r, c) * std::sqrt(std::max(0.0f, svd.s[c]));
      }
    }
    for (size_t r = 0; r < k; ++r) {
      const float root = std::sqrt(std::max(0.0f, svd.s[r]));
      for (size_t c = 0; c < n_out; ++c) {
        second->weight().At(r, c) = root * svd.vt.At(r, c);
      }
    }
    second->bias() = linear.bias();
    out.Add(std::move(first));
    out.Add(std::move(second));
  }
  return out;
}

Result<nn::Sequential> DistillStudent(const nn::Sequential& teacher,
                                      const sensors::FeatureDataset& transfer_data,
                                      const StudentOptions& options,
                                      double* final_loss) {
  if (transfer_data.empty()) {
    return Status::InvalidArgument("transfer data is empty");
  }
  if (options.epochs == 0 || options.batch_size == 0) {
    return Status::InvalidArgument("epochs and batch_size must be > 0");
  }

  // Teacher targets, computed once. Forward is const, so the teacher can be
  // used directly — no defensive clone.
  nn::ForwardWorkspace teacher_ws;
  Matrix targets = teacher.Forward(transfer_data.ToMatrix(), &teacher_ws);
  const size_t embedding_dim = targets.cols();

  std::vector<size_t> dims = options.dims;
  dims.push_back(embedding_dim);
  Rng rng(options.seed);
  nn::Sequential student = nn::BuildMlp(transfer_data.dim(), dims, &rng);

  nn::Adam::Options adam;
  adam.learning_rate = options.learning_rate;
  nn::Adam optimizer(student.Params(), student.Grads(), adam);

  const size_t steps_per_epoch = std::max<size_t>(
      1, (transfer_data.size() + options.batch_size - 1) / options.batch_size);
  nn::ForwardWorkspace ws;
  double last_loss = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      optimizer.ZeroGrad();
      const size_t batch =
          std::min(options.batch_size, transfer_data.size());
      Matrix x(batch, transfer_data.dim());
      Matrix t(batch, embedding_dim);
      for (size_t b = 0; b < batch; ++b) {
        const size_t idx = rng.Index(transfer_data.size());
        std::memcpy(x.RowPtr(b), transfer_data.Row(idx),
                    transfer_data.dim() * sizeof(float));
        std::memcpy(t.RowPtr(b), targets.RowPtr(idx),
                    embedding_dim * sizeof(float));
      }
      const Matrix& pred = student.Forward(x, &ws, /*training=*/true);
      nn::LossResult loss = nn::DistillationMse(pred, t);
      student.Backward(loss.grad, &ws);
      optimizer.Step();
      epoch_loss += loss.loss;
    }
    last_loss = epoch_loss / static_cast<double>(steps_per_epoch);
  }
  if (final_loss != nullptr) *final_loss = last_loss;
  return student;
}

size_t SerializedBytes(const nn::Sequential& net) {
  BinaryWriter writer;
  net.Serialize(&writer);
  return writer.size();
}

}  // namespace magneto::compress
