#ifndef MAGNETO_COMPRESS_COMPRESS_H_
#define MAGNETO_COMPRESS_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "nn/sequential.h"
#include "sensors/dataset.h"

namespace magneto::compress {

/// Model-compression toolkit for the edge deployment — the techniques the
/// paper's related-work section names as the standard levers for "model
/// inference on the Edge" (§2.1): weight quantization, parameter pruning
/// (Han et al.), low-rank factorization (Denton et al.), and knowledge
/// distillation into a smaller student (Hinton et al.). All operate on the
/// backbone after cloud pre-training; bench_compression compares the
/// size/accuracy/latency trade-offs.

/// Replaces every `Linear` with an int8 `QuantizedLinear` (activations and
/// dropout pass through; dropout is identity at inference). The result is
/// inference-only.
Result<nn::Sequential> QuantizeBackbone(const nn::Sequential& net);

/// Magnitude pruning: zeroes the smallest-|w| `fraction` of each Linear's
/// weights (per layer, biases untouched). Returns the achieved global
/// sparsity over prunable weights.
Result<double> PruneByMagnitude(nn::Sequential* net, double fraction);

/// Fraction of exactly-zero weights across all Linear layers.
double Sparsity(const nn::Sequential& net);

/// Bytes of a sparse encoding of the backbone (COO: u32 index + f32 value
/// per nonzero, plus dense biases) — what a pruned model would cost to ship.
size_t SparseEncodedBytes(const nn::Sequential& net);

/// Low-rank factorization: replaces each Linear(in, out) whose spectrum
/// allows it with Linear(in, k) -> Linear(k, out), where k captures
/// `energy_fraction` of the squared singular values. Layers where the
/// factored form would not be smaller are kept verbatim.
Result<nn::Sequential> FactorizeBackbone(const nn::Sequential& net,
                                         double energy_fraction);

/// Hyperparameters for distilling a compact student.
struct StudentOptions {
  std::vector<size_t> dims = {64, 32};  ///< student hidden widths
  size_t epochs = 40;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  uint64_t seed = 123;
};

/// Knowledge distillation (model-size flavour): trains a fresh student MLP to
/// reproduce the teacher's embeddings on `transfer_data`. The student's final
/// width must match the teacher's embedding dim (it is appended
/// automatically). Returns the trained student and the final MSE via
/// `final_loss`.
Result<nn::Sequential> DistillStudent(const nn::Sequential& teacher,
                                      const sensors::FeatureDataset& transfer_data,
                                      const StudentOptions& options,
                                      double* final_loss = nullptr);

/// Serialised size of a backbone in bytes.
size_t SerializedBytes(const nn::Sequential& net);

}  // namespace magneto::compress

#endif  // MAGNETO_COMPRESS_COMPRESS_H_
