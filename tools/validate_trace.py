#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON exported by obs::WriteTrace.

Checks, per the invariants the exporter promises:

  * B/E discipline — on every (pid, tid) track the duration events form a
    proper stack: every "E" closes the most recent unclosed "B" and no "B"
    is left open at the end of the track.
  * Flow completeness — every flow begin ("s") has a matching finish ("f")
    with the same name + id. Orphan "t" steps or "f" finishes are tolerated
    (a ring overwrite can drop the begin) but a dangling "s" means a request
    vanished mid-flight, which the serving path never allows.
  * Monotonic timestamps — events on one (pid, tid) track must be sorted by
    "ts"; the exporter sorts globally, so any inversion is an exporter bug.

Exit status 0 when the trace holds all invariants, 1 with a message on the
first violation, 2 on usage / parse errors.

Usage: validate_trace.py TRACE.json
"""

import json
import sys


def fail(message):
    print("validate_trace: FAIL: %s" % message, file=sys.stderr)
    return 1


def validate(events):
    stacks = {}  # (pid, tid) -> list of open B names
    last_ts = {}  # (pid, tid) -> last seen ts
    flow_begun = {}  # (name, id) -> count of "s"
    flow_finished = {}  # (name, id) -> count of "f"

    for i, event in enumerate(events):
        ph = event.get("ph")
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            return fail("event %d has no numeric ts: %r" % (i, event))
        if ts < last_ts.get(track, float("-inf")):
            return fail(
                "event %d (%s %r) on track %r: ts %s < previous %s"
                % (i, ph, event.get("name"), track, ts, last_ts[track])
            )
        last_ts[track] = ts

        if ph == "B":
            stacks.setdefault(track, []).append(event.get("name"))
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                return fail(
                    "event %d: E on track %r with no open B" % (i, track)
                )
            stack.pop()
        elif ph in ("s", "t", "f"):
            key = (event.get("name"), event.get("id"))
            if key[0] is None or key[1] is None:
                return fail("event %d: flow %s without name/id" % (i, ph))
            if ph == "s":
                flow_begun[key] = flow_begun.get(key, 0) + 1
            elif ph == "f":
                flow_finished[key] = flow_finished.get(key, 0) + 1

    for track, stack in stacks.items():
        if stack:
            return fail(
                "track %r ends with unclosed B events: %s" % (track, stack)
            )

    for key, begun in sorted(flow_begun.items()):
        finished = flow_finished.get(key, 0)
        if finished < begun:
            return fail(
                "flow %r id %d: %d begin(s) but %d finish(es)"
                % (key[0], key[1], begun, finished)
            )

    n_flows = len(flow_begun)
    print(
        "validate_trace: OK: %d events, %d tracks, %d flows"
        % (len(events), len(last_ts), n_flows)
    )
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            trace = json.load(f)
    except (OSError, ValueError) as e:
        print("validate_trace: cannot read %s: %s" % (argv[1], e),
              file=sys.stderr)
        return 2
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("validate_trace: %s has no traceEvents" % argv[1],
              file=sys.stderr)
        return 2
    return validate(events)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
