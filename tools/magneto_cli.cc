/// magneto — command-line front end to the MAGNETO platform.
///
///   magneto pretrain --out model.magneto [--users N] [--seconds S]
///                    [--epochs E] [--support K] [--paper-backbone]
///       Runs the offline cloud step on a synthetic multi-user corpus and
///       writes the transferable bundle.
///
///   magneto inspect <bundle>
///       Prints the bundle's architecture, classes, and size breakdown.
///
///   magneto simulate --bundle <bundle> [--activity NAME] [--seconds S]
///                    [--user-intensity X] [--rtt-ms MS] [--mbps M]
///                    [--fault-drop-rate P] [--fault-corrupt-rate P]
///                    [--net-seed N] [--chunk-bytes B]
///       Streams synthetic sensor data through the edge runtime and prints
///       the live predictions. Provisioning crosses a simulated lossy link
///       via the chunked fault-tolerant transport: --fault-drop-rate drops
///       whole chunk frames, --fault-corrupt-rate corrupts them in flight
///       (half truncations, half bit-flips), --net-seed makes the fault
///       sequence reproducible.
///
///   magneto learn --bundle <bundle> --out <bundle> --name NAME
///                 [--gesture-seed N] [--seconds S] [--fail-step STEP]
///       On-device incremental learning of a new synthetic gesture. The
///       update is transactional: on commit the updated bundle is
///       checkpointed to --out (the pre-update state rotates to
///       <out>.lkg); on rollback --out still holds the pre-update model
///       and the capture can be retried. --fail-step
///       preprocess|train|support|prototypes injects a failure at that
///       update step (test/CI hook) and exits 0 after verifying the
///       rollback.
///
///   magneto calibrate --bundle <bundle> --out <bundle> --activity NAME
///                     [--user-intensity X] [--seconds S]
///       Re-calibrates an existing activity to a personalised style.
///
///   magneto compress --bundle <bundle> --out <bundle>
///                    [--method int8|student|lowrank] [--student-dims N]
///       Produces an inference-only compressed deployment bundle.
///
///   magneto fleet --bundle <bundle> [--sessions N] [--seconds S]
///                 [--max-batch B] [--threads T] [--promote 0|1]
///                 [--open-loop 0|1] [--rate R] [--windows W]
///                 [--serve-threads T] [--queue C] [--concurrent-batches B]
///       Serves N concurrent user sessions from one shared deployment
///       (platform::EdgeFleet): each session streams a personalised
///       synthetic activity from its own thread while embedding forwards
///       are micro-batched across sessions. With --promote 1 (default) a
///       copy-on-swap bundle promotion lands mid-run to demonstrate that
///       classification never stalls. Prints per-session results and
///       aggregate throughput.
///       With --open-loop 1 the closed PushFrame loop is replaced by an
///       open-loop generator: W pre-featurized windows arrive as a Poisson
///       process at R windows/s (0 = as fast as possible), admitted into a
///       C-slot bounded queue drained by T serve workers with up to B
///       micro-batches embedding concurrently. Arrivals past a full queue
///       are shed, the backlog is what makes cross-session micro-batches
///       actually form (watch "mean batch" exceed 1 as R climbs past the
///       service capacity).
///
///   magneto cloud --bundle <bundle> [--devices N] [--workers T]
///                 [--shards S] [--seed N] [--faulty-frac P] [--drop-rate P]
///                 [--corrupt-rate P] [--churn-frac P] [--quantized-frac P]
///                 [--max-reconnects R] [--rollout 0|1] [--stages CSV]
///                 [--halt-threshold P] [--rtt-ms MS] [--mbps M]
///       Fleet control plane: registers the bundle as a tenant of the
///       sharded `CloudControlPlane`, provisions N simulated devices
///       concurrently over lossy links (per-device arrival times, fault
///       rates, and mid-transfer churn with chunk-level resume), then — with
///       --rollout 1 (default) — publishes a second version and walks a
///       staged canary rollout across the same fleet, printing per-stage
///       failure rates, version skew, and the final version histogram.
///       Deterministic for a fixed --seed at any --workers/--shards.
///
///   magneto collect --out data.msns [--users N] [--seconds S] [--seed N]
///       Writes a synthetic multi-user collection campaign to disk.
///
///   magneto crossval [--data data.msns | --users N] [--folds K]
///       k-fold cross-validation of the cloud recipe at recording level.
///
///   magneto export-csv --bundle <bundle> --data data.msns --out features.csv
///       Runs a campaign through the bundle's preprocessing pipeline and
///       writes the normalised features as CSV for external analysis.
///
/// Telemetry flags, valid with every subcommand:
///   --metrics-out FILE   after the command, write the metrics registry
///                        snapshot (counters/gauges/histograms) as JSON
///   --trace-out FILE     enable tracing for the run and write a Chrome
///                        trace_event JSON (open in chrome://tracing or
///                        https://ui.perfetto.dev). Serving requests and
///                        bundle deliveries carry flow events, so one
///                        window is causally linked across threads.
///   --flight-record-out FILE
///                        write the flight recorder ring (the last ~4096
///                        requests: stage timings, batch size, outcome) as
///                        JSON after the run; the same path receives an
///                        automatic dump when an anomaly fires mid-run
///                        (shed burst, update rollback, checkpoint
///                        fallback).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "magneto.h"

namespace {

using namespace magneto;

/// Minimal flag parser: --key value pairs after the subcommand.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      values_[argv[i] + 2] = argv[i + 1];
    }
    for (int i = first; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper-backbone") == 0) {
        flags_["paper-backbone"] = true;
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  bool GetFlag(const std::string& key) const { return flags_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
};

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

std::vector<sensors::LabeledRecording> SyntheticCorpus(uint64_t seed,
                                                       size_t users,
                                                       double seconds) {
  sensors::ActivityLibrary canonical = sensors::DefaultActivityLibrary();
  std::vector<sensors::LabeledRecording> corpus;
  Rng seeder(seed);
  for (size_t u = 0; u < users; ++u) {
    sensors::UserProfile profile(seeder.engine()(), 0.6);
    sensors::SyntheticGenerator gen(seeder.engine()());
    Rng ctx_rng(seeder.engine()());
    for (const auto& [id, model] : profile.Personalize(canonical)) {
      sensors::RecordingContext ctx =
          sensors::RecordingContext::Sample(&ctx_rng);
      corpus.push_back({gen.Generate(ctx.Apply(model), seconds), id});
    }
  }
  return corpus;
}

int CmdPretrain(const Args& args) {
  const std::string out = args.Get("out", "model.magneto");
  core::CloudConfig config;
  if (args.GetFlag("paper-backbone")) {
    config.backbone_dims = {1024, 512, 128, 64, 128};
  } else {
    config.backbone_dims = {128, 64, 32};
  }
  config.train.epochs = static_cast<size_t>(args.GetInt("epochs", 20));
  config.support_capacity = static_cast<size_t>(args.GetInt("support", 50));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 11));

  std::vector<sensors::LabeledRecording> corpus;
  const std::string data = args.Get("data", "");
  if (!data.empty()) {
    auto loaded = sensors::LoadRecordings(data);
    if (!loaded.ok()) return Fail(loaded.status(), "load campaign");
    corpus = std::move(loaded).value();
    std::printf("pretraining on %zu recordings from %s\n", corpus.size(),
                data.c_str());
  } else {
    const size_t users = static_cast<size_t>(args.GetInt("users", 8));
    const double seconds = args.GetDouble("seconds", 8.0);
    std::printf(
        "pretraining on %zu synthetic users x 5 activities x %.0f s\n",
        users, seconds);
    corpus = SyntheticCorpus(config.seed, users, seconds);
  }

  core::CloudInitializer cloud(config);
  core::CloudReport report;
  auto bundle = cloud.Initialize(corpus,
                                 sensors::ActivityRegistry::BaseActivities(),
                                 &report);
  if (!bundle.ok()) return Fail(bundle.status(), "pretrain");
  Status saved = bundle.value().SaveToFile(out);
  if (!saved.ok()) return Fail(saved, "save");
  std::printf("trained on %zu windows (final loss %.4f)\n",
              report.training_windows, report.train.final_embedding_loss());
  std::printf("wrote %s (%.1f KiB)\n", out.c_str(),
              report.bundle_bytes / 1024.0);
  return 0;
}

int CmdInspect(const std::string& path) {
  auto bundle = core::ModelBundle::LoadFromFile(path);
  if (!bundle.ok()) return Fail(bundle.status(), "load");
  const core::ModelBundle& b = bundle.value();
  std::printf("bundle: %s\n", path.c_str());
  std::printf("  serialized: %.1f KiB (wire v%u%s)\n",
              b.SerializedBytes() / 1024.0, b.wire_version,
              b.classifier.quantized() ? ", int8 scans" : "");
  std::printf("  backbone (%zu params, %.1f KiB):\n",
              b.backbone.NumParameters(),
              b.backbone.NumParameters() * sizeof(float) / 1024.0);
  std::string summary = b.backbone.Summary();
  for (size_t pos = 0; pos < summary.size();) {
    const size_t eol = summary.find('\n', pos);
    std::printf("    %s\n", summary.substr(pos, eol - pos).c_str());
    pos = eol == std::string::npos ? summary.size() : eol + 1;
  }
  std::printf("  features: %zu-dim, normaliser %s\n",
              b.pipeline.feature_dim(),
              b.pipeline.fitted() ? "fitted" : "NOT FITTED");
  std::printf("  activities (%zu):\n", b.registry.size());
  for (sensors::ActivityId id : b.registry.Ids()) {
    std::printf("    %2lld  %-14s support=%zu%s\n",
                static_cast<long long>(id),
                b.registry.NameOf(id).ValueOrDie().c_str(),
                b.support.ClassSize(id),
                b.classifier.HasClass(id) ? "" : "  (no prototype!)");
  }
  std::printf("  support set: %zu exemplars, %.1f KiB (capacity %zu/class)\n",
              b.support.TotalSize(), b.support.MemoryBytes() / 1024.0,
              b.support.capacity_per_class());
  return 0;
}

int CmdSimulate(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load");
  const std::string activity = args.Get("activity", "Walk");
  const double seconds = args.GetDouble("seconds", 6.0);
  const double intensity = args.GetDouble("user-intensity", 0.0);

  // Model the cloud -> edge provisioning step: the bundle is the only thing
  // that crosses the link (MAGNETO's privacy contract: no user data uplink).
  // Delivery uses the chunked fault-tolerant transport so an injected-fault
  // link still yields a byte-identical, CRC-verified bundle.
  platform::NetworkLink link(args.GetDouble("rtt-ms", 50.0),
                             args.GetDouble("mbps", 10.0));
  const double drop_rate = args.GetDouble("fault-drop-rate", 0.0);
  const double corrupt_rate = args.GetDouble("fault-corrupt-rate", 0.0);
  if (drop_rate > 0.0 || corrupt_rate > 0.0) {
    platform::FaultPolicy policy;
    policy.drop_rate = drop_rate;
    policy.truncate_rate = corrupt_rate / 2.0;
    policy.bit_flip_rate = corrupt_rate / 2.0;
    policy.seed = static_cast<uint64_t>(args.GetInt("net-seed", 1));
    link.SetFaultInjector(std::make_unique<platform::FaultInjector>(policy));
  }
  platform::TransportOptions transport_options;
  transport_options.chunk_bytes =
      static_cast<size_t>(args.GetInt("chunk-bytes", 4096));
  platform::BundleTransport transport(&link, transport_options);
  const std::string sent_bytes = bundle.value().SerializeToString();
  auto delivered = transport.Deliver(platform::Direction::kDownlink,
                                     platform::PayloadKind::kModelArtifact,
                                     sent_bytes);
  if (!delivered.ok()) return Fail(delivered.status(), "provision transport");
  const platform::TransportReport& report = transport.report();
  std::printf("provisioned %.1f KiB bundle in %.2f s "
              "(rtt %.0f ms, %.0f Mbit/s; %zu chunks, %zu retries)\n",
              sent_bytes.size() / 1024.0, report.seconds, link.rtt_ms(),
              link.bandwidth_mbps(), report.chunks, report.retries);
  // Re-parse from the delivered bytes: the device boots from what actually
  // crossed the (possibly lossy) link, proving end-to-end integrity.
  std::printf("delivery: wire v%u, byte-identical: %s\n",
              bundle.value().wire_version,
              delivered.value() == sent_bytes ? "yes" : "NO");
  bundle = core::ModelBundle::FromString(delivered.value());
  if (!bundle.ok()) return Fail(bundle.status(), "delivered bundle");

  auto id = bundle.value().registry.IdOf(activity);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  sensors::SignalModel model;
  if (id.ok() && lib.count(id.value())) {
    model = lib[id.value()];
  } else {
    std::printf("note: '%s' has no canonical generator; using a gesture "
                "signature seeded from the name hash\n",
                activity.c_str());
    uint64_t h = 1469598103934665603ull;
    for (char c : activity) h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
    model = sensors::MakeGestureModel(h);
  }
  if (intensity > 0.0) {
    model = sensors::UserProfile(99, intensity).Personalize(model);
  }

  core::SupportSet support = std::move(bundle.value().support);
  core::EdgeModel edge = std::move(bundle).value().ToEdgeModel();
  core::EdgeRuntime runtime(std::move(edge), std::move(support), {});

  sensors::SyntheticGenerator gen(42);
  sensors::Recording rec = gen.Generate(model, seconds);
  std::printf("%8s  %-14s %10s\n", "t", "prediction", "confidence");
  double t = 0.0;
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    auto pred = runtime.PushFrame(frame);
    if (!pred.ok()) return Fail(pred.status(), "inference");
    if (pred.value().has_value()) {
      std::printf("%7.1fs  %-14s %9.2f\n", t, pred.value()->name.c_str(),
                  pred.value()->prediction.confidence);
    }
    t += 1.0 / rec.sample_rate_hz;
  }
  return 0;
}

/// Maps a `--fail-step` name to the update step it should sabotage.
bool ParseUpdateStep(const std::string& name, core::UpdateStep* step) {
  if (name == "preprocess") *step = core::UpdateStep::kPreprocess;
  else if (name == "train") *step = core::UpdateStep::kTrain;
  else if (name == "support") *step = core::UpdateStep::kSupportSet;
  else if (name == "prototypes") *step = core::UpdateStep::kPrototypes;
  else return false;
  return true;
}

int CmdLearn(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load");
  const std::string out = args.Get("out", "updated.magneto");
  const std::string name = args.Get("name", "Gesture Hi");
  const double seconds = args.GetDouble("seconds", 25.0);
  const uint64_t gesture_seed =
      static_cast<uint64_t>(args.GetInt("gesture-seed", 4242));
  const std::string fail_step = args.Get("fail-step", "");

  core::IncrementalOptions options;
  options.train.epochs = 12;
  options.train.learning_rate = 1e-3;
  options.train.distill_weight = 1.0;
  if (!fail_step.empty()) {
    core::UpdateStep step;
    if (!ParseUpdateStep(fail_step, &step)) {
      std::fprintf(stderr,
                   "error: unknown --fail-step '%s' "
                   "(preprocess|train|support|prototypes)\n",
                   fail_step.c_str());
      return 2;
    }
    options.failure_hook = [step, fail_step](core::UpdateStep s) {
      if (s == step) {
        return Status::Internal("injected failure at step '" + fail_step +
                                "'");
      }
      return Status::Ok();
    };
  }

  core::SupportSet support = std::move(bundle.value().support);
  core::EdgeModel model = std::move(bundle).value().ToEdgeModel();
  core::EdgeRuntime runtime(std::move(model), std::move(support), options);

  // Persist the pre-update state first: whatever happens to the update,
  // --out always holds a loadable checkpoint — the committed post-update
  // model, or the unchanged pre-update one after a rollback.
  Status pre = runtime.SaveCheckpoint(out);
  if (!pre.ok()) return Fail(pre, "checkpoint");
  runtime.EnableAutoCheckpoint(out);

  sensors::SyntheticGenerator gen(7);
  sensors::Recording capture =
      gen.Generate(sensors::MakeGestureModel(gesture_seed), seconds);
  std::printf("learning '%s' from a %.0f s synthetic capture...\n",
              name.c_str(), seconds);

  Status recording = runtime.StartRecording();
  if (!recording.ok()) return Fail(recording, "record");
  for (size_t i = 0; i < capture.samples.rows(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = capture.samples.At(i, c);
    }
    auto pushed = runtime.PushFrame(frame);
    if (!pushed.ok()) return Fail(pushed.status(), "capture");
  }
  auto report = runtime.FinishRecordingAndLearn(name);
  if (!report.ok()) {
    std::printf("update rolled back: %s\n",
                report.status().ToString().c_str());
    std::printf("deployed model unchanged; %s still holds the pre-update "
                "checkpoint, the capture is safely retryable\n", out.c_str());
    // An injected failure is the expected outcome of a --fail-step run.
    return fail_step.empty() ? Fail(report.status(), "learn") : 0;
  }
  std::printf("update committed: activity #%lld from %zu windows "
              "(contrastive %.4f, distill %.4f)\n",
              static_cast<long long>(report.value().activity),
              report.value().new_windows,
              report.value().train.final_embedding_loss(),
              report.value().train.final_distill_loss());
  std::printf("wrote %s (%.1f KiB; pre-update state in %s)\n", out.c_str(),
              runtime.ToBundle().SerializedBytes() / 1024.0,
              core::EdgeRuntime::LastKnownGoodPath(out).c_str());
  return 0;
}

int CmdCalibrate(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load");
  const std::string out = args.Get("out", "calibrated.magneto");
  const std::string activity = args.Get("activity", "Walk");
  const double seconds = args.GetDouble("seconds", 25.0);
  const double intensity = args.GetDouble("user-intensity", 0.8);

  core::SupportSet support = std::move(bundle.value().support);
  core::EdgeModel model = std::move(bundle).value().ToEdgeModel();
  auto id = model.registry().IdOf(activity);
  if (!id.ok()) return Fail(id.status(), "activity lookup");

  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  if (!lib.count(id.value())) {
    std::fprintf(stderr, "error: no canonical generator for '%s'\n",
                 activity.c_str());
    return 1;
  }
  sensors::UserProfile user(99, intensity);
  sensors::SyntheticGenerator gen(9);
  sensors::Recording capture =
      gen.Generate(user.Personalize(lib[id.value()]), seconds);

  std::printf("calibrating '%s' to a user at intensity %.1f...\n",
              activity.c_str(), intensity);
  core::IncrementalOptions options;
  options.train.epochs = 12;
  options.train.learning_rate = 1e-3;
  options.train.distill_weight = 1.0;
  core::IncrementalLearner learner(options);
  auto report = learner.Calibrate(&model, &support, id.value(), {capture});
  if (!report.ok()) {
    std::printf("update rolled back: deployed model unchanged, the capture "
                "is safely retryable\n");
    return Fail(report.status(), "calibrate");
  }
  std::printf("update committed: %zu fresh windows folded in\n",
              report.value().new_windows);

  core::ModelBundle updated;
  updated.pipeline = model.pipeline();
  updated.classifier = model.classifier();
  updated.registry = model.registry();
  updated.support = std::move(support);
  updated.backbone = std::move(model.backbone());
  Status saved = updated.SaveToFile(out);
  if (!saved.ok()) return Fail(saved, "save");
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdCompress(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load");
  const std::string out = args.Get("out", "compressed.magneto");
  const std::string method = args.Get("method", "int8");
  const size_t before = bundle.value().SerializedBytes();

  Result<nn::Sequential> compressed = Status::Unimplemented("");
  if (method == "int8") {
    compressed = compress::QuantizeBackbone(bundle.value().backbone);
  } else if (method == "lowrank") {
    compressed = compress::FactorizeBackbone(bundle.value().backbone,
                                             args.GetDouble("energy", 0.9));
  } else if (method == "student") {
    compress::StudentOptions options;
    options.dims = {static_cast<size_t>(args.GetInt("student-dims", 64))};
    options.epochs = 80;
    compressed = compress::DistillStudent(
        bundle.value().backbone, bundle.value().support.AsDataset(), options);
  } else {
    std::fprintf(stderr, "error: unknown method '%s'\n", method.c_str());
    return 1;
  }
  if (!compressed.ok()) return Fail(compressed.status(), "compress");
  bundle.value().backbone = std::move(compressed).value();

  // Prototypes must be rebuilt through the compressed embedding.
  core::SupportSet support = std::move(bundle.value().support);
  core::EdgeModel model = std::move(bundle).value().ToEdgeModel();
  Status rebuilt = model.RebuildPrototypes(support);
  if (!rebuilt.ok()) return Fail(rebuilt, "rebuild prototypes");

  core::ModelBundle updated;
  updated.pipeline = model.pipeline();
  updated.classifier = model.classifier();
  updated.registry = model.registry();
  updated.support = std::move(support);
  updated.backbone = std::move(model.backbone());
  if (method == "int8") {
    // Full quantized edge path: int8 backbone, int8 prototype scans, and
    // the wire-v3 quantized bundle encoding for the download itself.
    updated.wire_version = core::kBundleWireV3;
    Status quantized = updated.classifier.QuantizePrototypes();
    if (!quantized.ok()) return Fail(quantized, "quantize prototypes");
  }
  Status saved = updated.SaveToFile(out);
  if (!saved.ok()) return Fail(saved, "save");
  std::printf("%s: %.1f KiB -> %.1f KiB (%s, wire v%u)%s\n", out.c_str(),
              before / 1024.0, updated.SerializedBytes() / 1024.0,
              method.c_str(), updated.wire_version,
              method == "int8" ? "  [inference-only: no on-device updates]"
                               : "");
  return 0;
}

int CmdFleet(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load");
  const size_t sessions = static_cast<size_t>(args.GetInt("sessions", 8));
  const double seconds = args.GetDouble("seconds", 6.0);
  const bool promote = args.GetInt("promote", 1) != 0;
  const bool open_loop = args.GetInt("open-loop", 0) != 0;
  const int64_t threads = args.GetInt("threads", 0);
  if (threads > 0) SetParallelThreads(static_cast<size_t>(threads));

  platform::FleetOptions options;
  options.max_batch = static_cast<size_t>(args.GetInt("max-batch", 8));
  if (open_loop) {
    options.serve_threads =
        static_cast<size_t>(args.GetInt("serve-threads", 4));
    options.max_concurrent_batches =
        static_cast<size_t>(args.GetInt("concurrent-batches", 4));
    options.admission_capacity =
        static_cast<size_t>(args.GetInt("queue", 256));
  }

  // Each session is a distinct simulated user: own personalisation, own
  // activity, own driver thread. Only the frozen deployment is shared.
  const sensors::ActivityId cycle[] = {sensors::kStill, sensors::kWalk,
                                       sensors::kRun};
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();

  // The open-loop generator replays pre-featurized windows, so featurize
  // through the bundle's pipeline before it moves into the fleet.
  const size_t arrivals =
      static_cast<size_t>(args.GetInt("windows", 400));
  const double rate = args.GetDouble("rate", 0.0);
  std::vector<std::vector<std::vector<float>>> features(sessions);
  if (open_loop) {
    const auto& seg = bundle.value().pipeline.config().segmentation;
    for (size_t s = 0; s < sessions; ++s) {
      sensors::UserProfile user(100 + s, 0.5);
      sensors::SyntheticGenerator gen(200 + s);
      sensors::Recording rec =
          gen.Generate(user.Personalize(lib[cycle[s % 3]]), seconds);
      for (size_t start = 0; start + seg.window_samples <= rec.num_samples();
           start += seg.stride) {
        Matrix window(seg.window_samples, sensors::kNumChannels);
        for (size_t r = 0; r < seg.window_samples; ++r) {
          for (size_t c = 0; c < sensors::kNumChannels; ++c) {
            window.At(r, c) = rec.samples.At(start + r, c);
          }
        }
        auto fv = bundle.value().pipeline.ProcessWindow(window);
        if (!fv.ok()) return Fail(fv.status(), "featurize");
        features[s].push_back(std::move(fv).value());
      }
      if (features[s].empty()) {
        return Fail(Status::InvalidArgument("--seconds too short for a "
                                            "single window"),
                    "featurize");
      }
    }
  }

  // SLO health for the open-loop run: rolling p99 / shed-rate / error-budget
  // burn, sampled by a background exporter so the metrics snapshot carries a
  // health timeline. Declared before the fleet so it outlives the workers.
  obs::SloMonitor slo;
  if (open_loop) options.slo_monitor = &slo;

  auto fleet =
      platform::EdgeFleet::Create(std::move(bundle).value(), sessions,
                                  options);
  if (!fleet.ok()) return Fail(fleet.status(), "create fleet");

  double wall = 0.0;
  if (open_loop) {
    std::printf("fleet: %zu sessions, open loop @ %s windows/s, %zu windows, "
                "%zu serve threads, queue %zu, max batch %zu x %zu "
                "concurrent\n",
                sessions, rate > 0 ? std::to_string(rate).c_str() : "max",
                arrivals, options.serve_threads, options.admission_capacity,
                options.max_batch, options.max_concurrent_batches);
    Rng rng(917);
    using Clock = std::chrono::steady_clock;
    slo.StartExporter(0.05);
    const auto start = Clock::now();
    auto next = start;
    for (size_t i = 0; i < arrivals; ++i) {
      if (rate > 0.0) {
        // Poisson arrivals: exponential gaps, spin-waited (sleep granularity
        // is far coarser than the gaps at interesting rates).
        const double gap_s = -std::log(1.0 - rng.Uniform()) / rate;
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(gap_s));
        while (Clock::now() < next) {
        }
      }
      const size_t s = i % sessions;
      const auto& pool = features[s];
      fleet.value()->SubmitWindow(s, pool[(i / sessions) % pool.size()]);
      if (promote && i == arrivals / 2) {
        Status promoted =
            fleet.value()->PromoteBundle(fleet.value()->ToBundle());
        if (!promoted.ok()) return Fail(promoted, "promote");
      }
    }
    fleet.value()->DrainSubmitted();
    wall = std::chrono::duration<double>(Clock::now() - start).count();
    slo.StopExporter();
  } else {
    std::printf("fleet: %zu sessions x %.0f s @ %zu pool threads, "
                "max batch %zu\n",
                sessions, seconds, ParallelThreads(), options.max_batch);
    std::atomic<int> failures{0};
    std::vector<std::thread> drivers;
    const auto start = std::chrono::steady_clock::now();
    for (size_t s = 0; s < sessions; ++s) {
      drivers.emplace_back([&, s] {
        sensors::UserProfile user(100 + s, 0.5);
        sensors::SyntheticGenerator gen(200 + s);
        sensors::Recording rec =
            gen.Generate(user.Personalize(lib[cycle[s % 3]]), seconds);
        for (size_t i = 0; i < rec.num_samples(); ++i) {
          sensors::Frame frame;
          for (size_t c = 0; c < sensors::kNumChannels; ++c) {
            frame[c] = rec.samples.At(i, c);
          }
          if (!fleet.value()->PushFrame(s, frame).ok()) failures.fetch_add(1);
        }
      });
    }
    if (promote) {
      // Wait for the fleet to warm up, then hot-swap the deployment under
      // full classification load.
      while (fleet.value()->session_stats(0).windows < 1) {
        std::this_thread::yield();
      }
      Status promoted =
          fleet.value()->PromoteBundle(fleet.value()->ToBundle());
      if (!promoted.ok()) return Fail(promoted, "promote");
    }
    for (auto& t : drivers) t.join();
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    if (failures.load() > 0) {
      std::fprintf(stderr, "error: %d PushFrame failures\n", failures.load());
      return 1;
    }
  }

  std::printf("%8s %8s %8s %9s %8s  %-14s %10s\n", "session", "frames",
              "windows", "submitted", "rejected", "last", "confidence");
  size_t total_windows = 0;
  size_t total_rejected = 0;
  for (size_t s = 0; s < sessions; ++s) {
    platform::FleetSessionStats stats = fleet.value()->session_stats(s);
    total_windows += stats.windows;
    total_rejected += stats.rejected;
    auto last = fleet.value()->last_prediction(s);
    std::printf("%8zu %8zu %8zu %9zu %8zu  %-14s %9.2f\n", s, stats.frames,
                stats.windows, stats.submitted, stats.rejected,
                last ? last->name.c_str() : "-",
                last ? last->prediction.confidence : 0.0);
  }
  const obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  const auto* batches = snap.FindCounter("fleet.batches");
  const auto* requests = snap.FindCounter("fleet.requests");
  std::printf("%zu windows in %.2f s (%.0f windows/s); %llu requests in "
              "%llu batches (mean batch %.2f); %zu shed; deployment v%llu\n",
              total_windows, wall, total_windows / wall,
              static_cast<unsigned long long>(requests ? requests->value : 0),
              static_cast<unsigned long long>(batches ? batches->value : 0),
              batches && batches->value > 0
                  ? static_cast<double>(requests->value) /
                        static_cast<double>(batches->value)
                  : 0.0,
              total_rejected,
              static_cast<unsigned long long>(
                  fleet.value()->deployment_version()));
  if (open_loop) {
    const obs::HealthReport health = slo.Evaluate();
    std::printf("slo: %s (p99 %.0f us vs %.0f us target, shed rate %.3f, "
                "error-budget burn %.2f)\n",
                obs::HealthStateName(health.state), health.p99_latency_us,
                slo.targets().p99_latency_us, health.shed_rate,
                health.error_budget_burn);
  }
  return 0;
}

int CmdCloud(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load bundle");

  // Adopt the on-disk bundle into a server (no retraining) and front it
  // with the control plane.
  platform::CloudServer server(core::CloudConfig{});
  Status adopted = server.AdoptBundle(std::move(bundle).value());
  if (!adopted.ok()) return Fail(adopted, "adopt bundle");

  platform::CloudControlPlane::Options options;
  options.num_shards = static_cast<size_t>(args.GetInt("shards", 16));
  options.provision_workers =
      static_cast<size_t>(args.GetInt("workers", 8));
  options.max_reconnects =
      static_cast<size_t>(args.GetInt("max-reconnects", 8));
  platform::CloudControlPlane plane(options);

  auto tenant = plane.RegisterTenant("cli", server);
  if (!tenant.ok()) return Fail(tenant.status(), "register tenant");

  platform::FleetSpec spec;
  spec.num_devices = static_cast<size_t>(args.GetInt("devices", 10000));
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  spec.faulty_fraction = args.GetDouble("faulty-frac", 0.2);
  spec.drop_rate = args.GetDouble("drop-rate", 0.2);
  spec.corrupt_rate = args.GetDouble("corrupt-rate", 0.05);
  spec.churn_fraction = args.GetDouble("churn-frac", 0.1);
  spec.quantized_fraction = args.GetDouble("quantized-frac", 0.5);
  spec.rtt_ms = args.GetDouble("rtt-ms", 50.0);
  spec.bandwidth_mbps = args.GetDouble("mbps", 10.0);

  std::printf("provisioning %zu devices (%zu workers, %zu shards, "
              "faulty %.0f%%, churn %.0f%%, int8 %.0f%%)...\n",
              spec.num_devices, options.provision_workers,
              options.num_shards, spec.faulty_fraction * 100.0,
              spec.churn_fraction * 100.0, spec.quantized_fraction * 100.0);
  auto fleet = plane.ProvisionFleet(tenant.value(), spec);
  if (!fleet.ok()) return Fail(fleet.status(), "provision fleet");
  const platform::FleetReport& fr = fleet.value();
  std::printf("provisioned %zu/%zu (%zu failed) in %.2f s wall "
              "(%.0f devices/s)\n",
              fr.provisioned, fr.devices, fr.failed, fr.wall_seconds,
              fr.devices_per_second);
  std::printf("  fp32 %zu / int8 %zu, %zu churned, %zu resumed sessions, "
              "%.1f MB wire\n",
              fr.fp32_devices, fr.int8_devices, fr.churned_devices,
              fr.resumed_sessions,
              static_cast<double>(fr.wire_bytes) / 1e6);
  std::printf("  sim completion p50 %.1f s / p90 %.1f s / p99 %.1f s\n",
              fr.CompletionQuantile(0.5), fr.CompletionQuantile(0.9),
              fr.CompletionQuantile(0.99));

  if (args.GetInt("rollout", 1) != 0) {
    // Publish the same model as version 2 (the contents do not matter for
    // the rollout mechanics) and walk a staged canary across the fleet.
    auto v1 = plane.Artifact(tenant.value(), 1);
    if (!v1.ok()) return Fail(v1.status(), "fetch v1");
    auto v2 = plane.PublishVersionBytes(tenant.value(), v1.value()->fp32_bytes);
    if (!v2.ok()) return Fail(v2.status(), "publish v2");

    platform::RolloutPolicy policy;
    policy.halt_failure_rate = args.GetDouble("halt-threshold", 0.25);
    const std::string stages = args.Get("stages", "");
    if (!stages.empty()) {
      policy.stages.clear();
      size_t pos = 0;
      while (pos < stages.size()) {
        size_t comma = stages.find(',', pos);
        if (comma == std::string::npos) comma = stages.size();
        policy.stages.push_back(std::stod(stages.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    }

    std::printf("rolling out v%llu in %zu stages...\n",
                static_cast<unsigned long long>(v2.value()),
                policy.stages.size());
    auto rollout = plane.RunRollout(tenant.value(), v2.value(), policy, spec);
    if (!rollout.ok()) return Fail(rollout.status(), "rollout");
    const platform::RolloutReport& rr = rollout.value();
    for (const platform::StageRecord& stage : rr.stage_records) {
      std::printf("  stage %4.0f%%: %6zu targeted, %6zu updated, %5zu "
                  "failed (%.1f%%), skew before: %zu old / %zu new\n",
                  stage.fraction * 100.0, stage.targeted, stage.updated,
                  stage.failed, stage.failure_rate * 100.0,
                  stage.skew_old_before, stage.skew_new_before);
    }
    std::printf("rollout %s: %zu updated, %zu failed, %zu pinned, "
                "%zu skipped, %zu resumed sessions\n",
                platform::RolloutStateName(rr.state), rr.devices_updated,
                rr.devices_failed, rr.devices_pinned, rr.devices_skipped,
                rr.resumed_sessions);

    auto counts = plane.VersionCounts(tenant.value());
    if (!counts.ok()) return Fail(counts.status(), "version counts");
    std::printf("version histogram:");
    for (const auto& [version, count] : counts.value()) {
      std::printf("  v%llu=%zu", static_cast<unsigned long long>(version),
                  count);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdCollect(const Args& args) {
  const std::string out = args.Get("out", "campaign.msns");
  const size_t users = static_cast<size_t>(args.GetInt("users", 8));
  const double seconds = args.GetDouble("seconds", 8.0);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 11));
  auto corpus = SyntheticCorpus(seed, users, seconds);
  Status saved = sensors::SaveRecordings(corpus, out);
  if (!saved.ok()) return Fail(saved, "save campaign");
  size_t samples = 0;
  for (const auto& rec : corpus) samples += rec.recording.num_samples();
  std::printf("wrote %s: %zu recordings, %zu samples (%zu users x 5 "
              "activities x %.0f s)\n",
              out.c_str(), corpus.size(), samples, users, seconds);
  return 0;
}

int CmdCrossval(const Args& args) {
  std::vector<sensors::LabeledRecording> corpus;
  const std::string data = args.Get("data", "");
  if (!data.empty()) {
    auto loaded = sensors::LoadRecordings(data);
    if (!loaded.ok()) return Fail(loaded.status(), "load campaign");
    corpus = std::move(loaded).value();
  } else {
    corpus = SyntheticCorpus(static_cast<uint64_t>(args.GetInt("seed", 11)),
                             static_cast<size_t>(args.GetInt("users", 8)),
                             args.GetDouble("seconds", 8.0));
  }
  core::CloudConfig config;
  config.backbone_dims = {128, 64, 32};
  config.train.epochs = static_cast<size_t>(args.GetInt("epochs", 15));
  const size_t folds = static_cast<size_t>(args.GetInt("folds", 5));
  std::printf("%zu-fold recording-level cross-validation over %zu "
              "recordings...\n",
              folds, corpus.size());
  auto report = core::CrossValidateCloud(
      config, corpus, sensors::ActivityRegistry::BaseActivities(), folds,
      static_cast<uint64_t>(args.GetInt("seed", 11)));
  if (!report.ok()) return Fail(report.status(), "cross-validate");
  for (size_t i = 0; i < report.value().folds.size(); ++i) {
    const core::FoldResult& fold = report.value().folds[i];
    std::printf("  fold %zu: accuracy %.1f%% (train %zu / test %zu "
                "windows)\n",
                i, fold.accuracy * 100.0, fold.train_windows,
                fold.test_windows);
  }
  std::printf("mean accuracy %.1f%% +- %.1f%%, macro-F1 %.3f\n",
              report.value().mean_accuracy * 100.0,
              report.value().stddev_accuracy * 100.0,
              report.value().mean_macro_f1);
  return 0;
}

int CmdExportCsv(const Args& args) {
  auto bundle = core::ModelBundle::LoadFromFile(args.Get("bundle", ""));
  if (!bundle.ok()) return Fail(bundle.status(), "load bundle");
  auto campaign = sensors::LoadRecordings(args.Get("data", ""));
  if (!campaign.ok()) return Fail(campaign.status(), "load campaign");
  auto features = bundle.value().pipeline.ProcessLabeled(campaign.value());
  if (!features.ok()) return Fail(features.status(), "preprocess");
  const std::string out = args.Get("out", "features.csv");
  std::vector<std::string> names;
  if (bundle.value().pipeline.config().features ==
      preprocess::FeatureMode::kStatistical) {
    names = preprocess::FeatureExtractor::FeatureNames();
  }
  Status saved = sensors::WriteFeatureCsv(features.value(), names, out);
  if (!saved.ok()) return Fail(saved, "write csv");
  std::printf("wrote %s: %zu rows x %zu features\n", out.c_str(),
              features.value().size(), features.value().dim());
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: magneto <pretrain|inspect|simulate|learn|calibrate|compress|"
               "fleet|cloud|collect|crossval|export-csv> "
               "[flags]\n(see the header of tools/magneto_cli.cc)\n");
}

}  // namespace

namespace {

int Dispatch(const std::string& command, const Args& args, int argc,
             char** argv) {
  if (command == "pretrain") return CmdPretrain(args);
  if (command == "inspect") {
    if (argc < 3) {
      Usage();
      return 2;
    }
    return CmdInspect(argv[2]);
  }
  if (command == "simulate") return CmdSimulate(args);
  if (command == "learn") return CmdLearn(args);
  if (command == "calibrate") return CmdCalibrate(args);
  if (command == "compress") return CmdCompress(args);
  if (command == "fleet") return CmdFleet(args);
  if (command == "cloud") return CmdCloud(args);
  if (command == "collect") return CmdCollect(args);
  if (command == "crossval") return CmdCrossval(args);
  if (command == "export-csv") return CmdExportCsv(args);
  Usage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);

  // Telemetry flags work with every subcommand. Scanned over raw argv so a
  // positional argument (e.g. `inspect <bundle>`) cannot misalign them.
  std::string metrics_out;
  std::string trace_out;
  std::string flight_record_out;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_out = argv[i + 1];
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
    if (std::strcmp(argv[i], "--flight-record-out") == 0) {
      flight_record_out = argv[i + 1];
    }
  }
  if (!trace_out.empty()) obs::SetTraceEnabled(true);
  if (!flight_record_out.empty()) {
    // Configured before dispatch so mid-run anomalies (shed burst, update
    // rollback, checkpoint fallback) auto-dump; the final dump below then
    // overwrites with the complete end-of-run picture.
    obs::FlightRecorder::Global().SetAutoDumpPath(flight_record_out);
  }

  const int rc = Dispatch(command, args, argc, argv);

  if (!metrics_out.empty()) {
    const std::string json = obs::Registry::Global().TakeSnapshot().ToJson();
    if (!obs::WriteStringToFile(json, metrics_out)) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return rc != 0 ? rc : 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::WriteTrace(trace_out)) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
      return rc != 0 ? rc : 1;
    }
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  if (!flight_record_out.empty()) {
    if (!obs::FlightRecorder::Global().Dump(flight_record_out)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   flight_record_out.c_str());
      return rc != 0 ? rc : 1;
    }
    std::printf("wrote flight record to %s\n", flight_record_out.c_str());
  }
  return rc;
}
