/// Quickstart: the full MAGNETO lifecycle in ~60 lines.
///
///   1. Cloud initialization: pre-train on the initial activity corpus.
///   2. Serialise the bundle (the one artifact that crosses cloud -> edge).
///   3. Provision an edge device from the bytes.
///   4. Run real-time inference on the device.
///
/// Run: ./build/examples/quickstart

#include <cstdio>

#include "example_util.h"

int main() {
  using namespace magneto;

  // ---- 1. Cloud initialization (offline step, open data only) --------------
  std::printf("== Cloud initialization ==\n");
  core::CloudInitializer cloud(examples::DemoCloudConfig());
  core::CloudReport report;
  auto bundle = cloud.Initialize(examples::DemoCorpus(/*seed=*/1),
                                 sensors::ActivityRegistry::BaseActivities(),
                                 &report);
  examples::CheckOk(bundle.status(), "cloud initialization");
  std::printf("trained on %zu windows, final contrastive loss %.4f\n",
              report.training_windows, report.train.final_embedding_loss());

  // ---- 2. The transfer artifact ---------------------------------------------
  const std::string wire = bundle.value().SerializeToString();
  std::printf("bundle size: %.2f KiB (model %.2f KiB, support set %.2f KiB)\n",
              wire.size() / 1024.0,
              bundle.value().backbone.NumParameters() * sizeof(float) /
                  1024.0,
              bundle.value().support.MemoryBytes() / 1024.0);

  // ---- 3. Edge provisioning --------------------------------------------------
  auto device = platform::EdgeDevice::Provision(wire, {});
  examples::CheckOk(device.status(), "edge provisioning");
  core::EdgeRuntime& runtime = device.value().runtime();
  std::printf("device provisioned with %zu activities\n",
              runtime.model().registry().size());

  // ---- 4. Real-time inference ------------------------------------------------
  std::printf("\n== Edge inference ==\n");
  sensors::SyntheticGenerator phone(/*seed=*/99);
  for (const auto& [id, model] : sensors::DefaultActivityLibrary()) {
    sensors::Recording rec = phone.Generate(model, 3.0);
    auto preds = examples::StreamRecording(&runtime, rec);
    const std::string truth =
        runtime.model().registry().NameOf(id).ValueOrDie();
    std::printf("true=%-10s ->", truth.c_str());
    for (const auto& p : preds) {
      std::printf(" %s(%.2f)", p.name.c_str(), p.prediction.confidence);
    }
    std::printf("\n");
  }
  std::printf("\nprocessed %zu frames into %zu predictions\n",
              runtime.stats().frames, runtime.stats().predictions);
  return 0;
}
