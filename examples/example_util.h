#ifndef MAGNETO_EXAMPLES_EXAMPLE_UTIL_H_
#define MAGNETO_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <vector>

#include "magneto.h"

namespace magneto::examples {

/// A demo-sized cloud configuration: large enough to classify the synthetic
/// activities reliably, small enough that every example runs in seconds on a
/// laptop. Swap `backbone_dims` for {1024, 512, 128, 64, 128} to use the
/// paper's exact architecture.
inline core::CloudConfig DemoCloudConfig() {
  core::CloudConfig config;
  config.backbone_dims = {128, 64, 32};
  config.train.epochs = 15;
  config.train.batch_size = 64;
  config.train.learning_rate = 1e-3;
  config.train.seed = 7;
  config.support_capacity = 50;
  config.selection = core::SelectionStrategy::kHerding;
  config.seed = 11;
  return config;
}

/// The "initial dataset" stand-in: synthetic recordings of the five base
/// activities (Drive, E-scooter, Run, Still, Walk).
inline std::vector<sensors::LabeledRecording> DemoCorpus(
    uint64_t seed, size_t recordings_per_class = 4,
    double seconds_each = 8.0) {
  sensors::SyntheticGenerator gen(seed);
  return gen.GenerateDataset(sensors::DefaultActivityLibrary(),
                             recordings_per_class, seconds_each);
}

/// Feeds a recording into a runtime frame by frame (like the phone's sensor
/// callback would) and returns the emitted predictions.
inline std::vector<core::NamedPrediction> StreamRecording(
    core::EdgeRuntime* runtime, const sensors::Recording& rec) {
  std::vector<core::NamedPrediction> out;
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    auto pred = runtime->PushFrame(frame);
    if (!pred.ok()) {
      std::fprintf(stderr, "PushFrame failed: %s\n",
                   pred.status().ToString().c_str());
      continue;
    }
    if (pred.value().has_value()) out.push_back(*pred.value());
  }
  return out;
}

/// Aborts the example with a message if `status` is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace magneto::examples

#endif  // MAGNETO_EXAMPLES_EXAMPLE_UTIL_H_
