/// Personalization via calibration (§3.3, final paragraph): a user whose
/// walking style deviates strongly from the population the cloud model was
/// trained on re-records the activity; MAGNETO replaces the activity's
/// support data and retrains on-device, aligning the model to that user.
///
/// The example prints the user's Walk accuracy before and after calibration,
/// and verifies the other activities were not disturbed.
///
/// Run: ./build/examples/calibration

#include <cstdio>

#include "example_util.h"

namespace {

using namespace magneto;

/// Fraction of windows of `rec` classified as `expected`.
double RecognitionRate(core::EdgeModel* model, const sensors::Recording& rec,
                       sensors::ActivityId expected) {
  auto preds = model->InferRecording(rec);
  examples::CheckOk(preds.status(), "inference");
  if (preds.value().empty()) return 0.0;
  size_t hits = 0;
  for (const auto& p : preds.value()) {
    if (p.prediction.activity == expected) ++hits;
  }
  return static_cast<double>(hits) / preds.value().size();
}

}  // namespace

int main() {
  std::printf("== Cloud initialization on canonical (population) data ==\n");
  core::CloudInitializer cloud(examples::DemoCloudConfig());
  auto bundle = cloud.Initialize(examples::DemoCorpus(31),
                                 sensors::ActivityRegistry::BaseActivities());
  examples::CheckOk(bundle.status(), "cloud initialization");

  core::SupportSet support = std::move(bundle.value().support);
  core::EdgeModel model = std::move(bundle).value().ToEdgeModel();

  // A user with a strongly personal gait (tempo, amplitude, phase shifts).
  sensors::UserProfile user(/*seed=*/99, /*intensity=*/0.9);
  sensors::ActivityLibrary personal =
      user.Personalize(sensors::DefaultActivityLibrary());
  sensors::SyntheticGenerator phone(/*seed=*/55);

  std::printf("\n== Before calibration ==\n");
  sensors::Recording personal_walk = phone.Generate(personal[sensors::kWalk],
                                                    10.0);
  const double walk_before =
      RecognitionRate(&model, personal_walk, sensors::kWalk);
  std::printf("user's Walk recognised: %.0f%% of windows\n",
              walk_before * 100.0);

  std::printf("\n== Calibrating Walk with 25 s of the user's own data ==\n");
  core::IncrementalOptions options;
  options.train.epochs = 12;
  options.train.learning_rate = 1e-3;
  options.train.distill_weight = 1.0;
  options.train.seed = 61;
  core::IncrementalLearner learner(options);
  auto report = learner.Calibrate(
      &model, &support, sensors::kWalk,
      {phone.Generate(personal[sensors::kWalk], 25.0)});
  examples::CheckOk(report.status(), "calibration");
  std::printf("retrained on %zu fresh windows; Walk's support data replaced\n",
              report.value().new_windows);

  std::printf("\n== After calibration ==\n");
  sensors::Recording fresh_walk =
      phone.Generate(personal[sensors::kWalk], 10.0);
  const double walk_after =
      RecognitionRate(&model, fresh_walk, sensors::kWalk);
  std::printf("user's Walk recognised: %.0f%% of windows (was %.0f%%)\n",
              walk_after * 100.0, walk_before * 100.0);

  // The calibration must not break the canonical activities.
  std::printf("\nretention of the other activities (canonical style):\n");
  sensors::ActivityLibrary canonical = sensors::DefaultActivityLibrary();
  for (sensors::ActivityId id :
       {sensors::kDrive, sensors::kEScooter, sensors::kRun, sensors::kStill}) {
    const double rate =
        RecognitionRate(&model, phone.Generate(canonical[id], 6.0), id);
    std::printf("  %-10s %.0f%%\n",
                model.registry().NameOf(id).ValueOrDie().c_str(),
                rate * 100.0);
  }
  return 0;
}
