/// The advanced edge toolkit in one scenario:
///
///   1. compress the cloud model (int8 + distilled student) before shipping,
///   2. run with output smoothing and open-set rejection,
///   3. learn a new activity in the background while inference keeps serving,
///   4. hot-swap the retrained model.
///
/// Run: ./build/examples/edge_toolkit

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "example_util.h"

int main() {
  using namespace magneto;

  // ---- Cloud side ------------------------------------------------------------
  std::printf("== Cloud: pretrain, then compress for shipping ==\n");
  core::CloudInitializer cloud(examples::DemoCloudConfig());
  auto bundle = cloud.Initialize(examples::DemoCorpus(71),
                                 sensors::ActivityRegistry::BaseActivities());
  examples::CheckOk(bundle.status(), "cloud init");

  const size_t fp32_bytes = compress::SerializedBytes(bundle.value().backbone);
  auto quantized = compress::QuantizeBackbone(bundle.value().backbone);
  examples::CheckOk(quantized.status(), "quantize");
  std::printf("backbone fp32: %.1f KiB -> int8: %.1f KiB\n",
              fp32_bytes / 1024.0,
              compress::SerializedBytes(quantized.value()) / 1024.0);

  compress::StudentOptions student_options;
  student_options.dims = {48};
  student_options.epochs = 60;
  double distill_loss = 0.0;
  auto student = compress::DistillStudent(bundle.value().backbone,
                                          bundle.value().support.AsDataset(),
                                          student_options, &distill_loss);
  examples::CheckOk(student.status(), "distill");
  std::printf("distilled student: %.1f KiB (MSE to teacher %.4f)\n",
              compress::SerializedBytes(student.value()) / 1024.0,
              distill_loss);

  // The fp32 model goes to the device (it must keep training on-device; the
  // compressed variants are for inference-only deployments).
  core::IncrementalOptions update;
  update.train.epochs = 12;
  update.train.learning_rate = 1e-3;
  update.train.distill_weight = 1.0;
  update.train.seed = 72;
  auto device = platform::EdgeDevice::Provision(
      bundle.value().SerializeToString(), update);
  examples::CheckOk(device.status(), "provision");
  core::EdgeRuntime& runtime = device.value().runtime();

  // ---- Smoothing + open-set rejection ------------------------------------------
  std::printf("\n== Edge: smoothing on, open-set rejection armed ==\n");
  runtime.EnableSmoothing({.window = 5});
  sensors::SyntheticGenerator phone(73);

  // Calibrate the rejection threshold empirically: the largest
  // nearest-prototype distance seen on known-activity data, with headroom.
  std::vector<sensors::Recording> known;
  for (const auto& [id, m] : sensors::DefaultActivityLibrary()) {
    known.push_back(phone.Generate(m, 2.0));
  }
  const double threshold =
      core::CalibrateRejectionThreshold(&runtime.model(), known).ValueOrDie();
  runtime.model().set_rejection_threshold(threshold);

  // A sensor stream no human activity produces: violent random shaking.
  sensors::SignalModel chaos = sensors::DefaultActivityLibrary()[sensors::kRun];
  for (auto& ch : chaos.channels) {
    ch.noise_sigma = ch.noise_sigma * 20.0 + 5.0;
    ch.drift_sigma += 0.5;
  }
  auto chaos_preds =
      examples::StreamRecording(&runtime, phone.Generate(chaos, 4.0));
  size_t unknowns = 0;
  for (const auto& p : chaos_preds) unknowns += (p.name == "Unknown");
  std::printf("out-of-distribution stream: %zu/%zu windows flagged Unknown "
              "(calibrated threshold %.1f)\n",
              unknowns, chaos_preds.size(),
              runtime.model().rejection_threshold());
  runtime.model().set_rejection_threshold(0.0);  // off for the rest
  sensors::SignalModel mystery = sensors::MakeGestureModel(999);

  // ---- Background learning with hot swap ---------------------------------------
  std::printf("\n== Background update while inference keeps serving ==\n");
  examples::CheckOk(runtime.StartRecording(), "start recording");
  examples::StreamRecording(&runtime, phone.Generate(mystery, 25.0));
  examples::CheckOk(runtime.FinishRecordingAndLearnAsync("Mystery Move"),
                    "async learn");

  size_t live_predictions = 0;
  while (!runtime.UpdateReady()) {
    auto preds = examples::StreamRecording(
        &runtime,
        phone.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk],
                       1.0));
    live_predictions += preds.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("served %zu live predictions while retraining ran in the "
              "background\n",
              live_predictions);

  auto report = runtime.CommitUpdate();
  examples::CheckOk(report.status(), "commit");
  std::printf("hot-swapped: '%s' is now activity #%lld (%zu windows)\n",
              "Mystery Move",
              static_cast<long long>(report.value().activity),
              report.value().new_windows);

  auto preds = examples::StreamRecording(&runtime,
                                         phone.Generate(mystery, 5.0));
  size_t hits = 0;
  for (const auto& p : preds) hits += (p.name == "Mystery Move");
  std::printf("fresh mystery data now recognised: %zu/%zu windows\n", hits,
              preds.size());
  return 0;
}
