/// Figure 1 head-to-head: the conventional cloud-based HAR deployment vs
/// MAGNETO's edge deployment, on the same model, the same activity stream,
/// and the same simulated network.
///
/// Prints per-protocol latency, byte ledger, and the privacy audit.
///
/// Run: ./build/examples/cloud_vs_edge

#include <cstdio>

#include "example_util.h"

int main() {
  using namespace magneto;

  std::printf("== Pretraining the shared model ==\n");
  platform::CloudServer server(examples::DemoCloudConfig());
  examples::CheckOk(server.Pretrain(examples::DemoCorpus(41),
                                    sensors::ActivityRegistry::BaseActivities()),
                    "pretrain");

  // One hour of mixed user activity (compressed to 12 s/class for the demo).
  sensors::SyntheticGenerator phone(/*seed=*/43);
  auto stream = phone.GenerateDataset(sensors::DefaultActivityLibrary(),
                                      /*per_class=*/1, /*duration_s=*/12.0);

  auto bundle =
      core::ModelBundle::FromString(server.ServeBundleBytes().ValueOrDie());
  examples::CheckOk(bundle.status(), "bundle parse");

  const struct {
    const char* name;
    double rtt_ms;
    double mbps;
  } kNetworks[] = {
      {"urban 5G   (20 ms, 100 Mbit/s)", 20.0, 100.0},
      {"typical 4G (60 ms,  20 Mbit/s)", 60.0, 20.0},
      {"congested  (200 ms,  2 Mbit/s)", 200.0, 2.0},
  };

  for (const auto& net : kNetworks) {
    std::printf("\n== Network: %s ==\n", net.name);
    platform::NetworkLink cloud_link(net.rtt_ms, net.mbps);
    platform::NetworkLink edge_link(net.rtt_ms, net.mbps);

    auto cloud = platform::CloudProtocol(&server, &cloud_link)
                     .Run(stream, bundle.value().pipeline);
    examples::CheckOk(cloud.status(), "cloud protocol");
    auto edge = platform::EdgeProtocol(&server, &edge_link).Run(stream);
    examples::CheckOk(edge.status(), "edge protocol");

    std::printf("%-18s %10s %14s %16s %10s\n", "protocol", "windows",
                "latency/window", "uplink user B", "accuracy");
    for (const auto* m : {&cloud.value(), &edge.value()}) {
      std::printf("%-18s %10zu %11.1f ms %16zu %9.1f%%\n",
                  m->protocol.c_str(), m->windows,
                  m->mean_window_latency_s * 1000.0, m->uplink_user_bytes,
                  m->accuracy * 100.0);
    }
    std::printf("edge one-time setup (bundle download): %.0f ms\n",
                edge.value().setup_latency_s * 1000.0);

    std::printf("cloud-protocol audit:  %s\n",
                platform::PrivacyAuditor(&cloud_link).Verify().ToString()
                    .c_str());
    std::printf("edge-protocol audit:   %s\n",
                platform::PrivacyAuditor(&edge_link).Verify().ToString()
                    .c_str());
  }
  return 0;
}
