/// Drift detection closing the personalization loop:
///
///   1. the device runs happily on the population model,
///   2. the user's movement pattern changes (injury, new shoes, new habit),
///   3. the DriftMonitor notices chronically poor NCM margins and recommends
///      calibration,
///   4. the app calibrates from a fresh capture; recognition recovers and
///      the monitor goes quiet.
///
/// Run: ./build/examples/drift_and_recover

#include <cstdio>

#include "example_util.h"

namespace {

using namespace magneto;

struct StreamStats {
  size_t windows = 0;
  size_t correct = 0;
  bool drift_flagged = false;
};

StreamStats StreamWithMonitor(core::EdgeRuntime* runtime,
                              core::DriftMonitor* monitor,
                              const sensors::Recording& rec,
                              sensors::ActivityId truth) {
  StreamStats stats;
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    auto pred = runtime->PushFrame(frame);
    examples::CheckOk(pred.status(), "push frame");
    if (pred.value().has_value()) {
      ++stats.windows;
      stats.correct += (pred.value()->prediction.activity == truth);
      if (monitor->Observe(pred.value()->prediction)) {
        stats.drift_flagged = true;
      }
    }
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("== Provisioning ==\n");
  core::CloudInitializer cloud(examples::DemoCloudConfig());
  auto bundle = cloud.Initialize(examples::DemoCorpus(81),
                                 sensors::ActivityRegistry::BaseActivities());
  examples::CheckOk(bundle.status(), "cloud init");
  core::IncrementalOptions update;
  update.train.epochs = 12;
  update.train.learning_rate = 1e-3;
  update.train.distill_weight = 1.0;
  update.train.seed = 82;
  auto device = platform::EdgeDevice::Provision(
      bundle.value().SerializeToString(), update);
  examples::CheckOk(device.status(), "provision");
  core::EdgeRuntime& runtime = device.value().runtime();

  // Calibrate the monitor's healthy baseline on known-good data.
  sensors::SyntheticGenerator phone(83);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  core::DriftMonitor monitor({.window = 8, .min_confidence = 0.5});
  {
    auto preds = runtime.model()
                     .InferRecording(phone.Generate(lib[sensors::kWalk], 5.0))
                     .ValueOrDie();
    double mean_distance = 0.0;
    for (const auto& p : preds) mean_distance += p.prediction.distance;
    monitor.SetBaselineDistance(mean_distance / preds.size());
  }
  std::printf("drift monitor armed (baseline distance %.2f)\n",
              monitor.baseline_distance());

  std::printf("\n== Phase 1: the user walks normally ==\n");
  auto healthy = StreamWithMonitor(
      &runtime, &monitor, phone.Generate(lib[sensors::kWalk], 10.0),
      sensors::kWalk);
  std::printf("recognised %zu/%zu windows, drift flagged: %s\n",
              healthy.correct, healthy.windows,
              healthy.drift_flagged ? "YES" : "no");

  std::printf("\n== Phase 2: the user's gait changes drastically ==\n");
  sensors::UserProfile injured(/*seed=*/84, /*intensity=*/1.0);
  sensors::SignalModel new_gait = injured.Personalize(lib[sensors::kWalk]);
  auto drifted = StreamWithMonitor(&runtime, &monitor,
                                   phone.Generate(new_gait, 12.0),
                                   sensors::kWalk);
  std::printf("recognised %zu/%zu windows, drift flagged: %s "
              "(rolling confidence %.2f, rolling distance %.2f)\n",
              drifted.correct, drifted.windows,
              drifted.drift_flagged ? "YES" : "no",
              monitor.rolling_confidence(), monitor.rolling_distance());

  if (drifted.drift_flagged) {
    std::printf("\n== Phase 3: monitor recommends calibration — "
                "recording 25 s ==\n");
    examples::CheckOk(runtime.StartRecording(), "start recording");
    examples::StreamRecording(&runtime, phone.Generate(new_gait, 25.0));
    auto report = runtime.FinishRecordingAndCalibrate("Walk");
    examples::CheckOk(report.status(), "calibrate");
    monitor.Reset();
    // Refresh the healthy baseline on the calibrated model.
    auto preds = runtime.model()
                     .InferRecording(phone.Generate(new_gait, 5.0))
                     .ValueOrDie();
    double mean_distance = 0.0;
    for (const auto& p : preds) mean_distance += p.prediction.distance;
    monitor.SetBaselineDistance(mean_distance / preds.size());

    std::printf("\n== Phase 4: after calibration ==\n");
    auto recovered = StreamWithMonitor(&runtime, &monitor,
                                       phone.Generate(new_gait, 10.0),
                                       sensors::kWalk);
    std::printf("recognised %zu/%zu windows, drift flagged: %s\n",
                recovered.correct, recovered.windows,
                recovered.drift_flagged ? "YES" : "no");
  }
  return 0;
}
