/// A day-in-the-life stream: the user transitions Still -> Walk -> Run ->
/// E-scooter -> Drive while the edge runtime classifies every one-second
/// window in real time. Prints a timeline with per-window latency, showing
/// the paper's "imperceptible prediction latency ... only a few milliseconds"
/// (§4.2.1) on live data.
///
/// Run: ./build/examples/streaming_inference

#include <chrono>
#include <cstdio>

#include "example_util.h"

int main() {
  using namespace magneto;

  core::CloudInitializer cloud(examples::DemoCloudConfig());
  auto bundle = cloud.Initialize(examples::DemoCorpus(51),
                                 sensors::ActivityRegistry::BaseActivities());
  examples::CheckOk(bundle.status(), "cloud initialization");
  auto device = platform::EdgeDevice::Provision(
      bundle.value().SerializeToString(), {});
  examples::CheckOk(device.status(), "provision");
  core::EdgeRuntime& runtime = device.value().runtime();
  runtime.EnableJournal();

  // The scripted day: (activity, seconds).
  const std::pair<sensors::ActivityId, double> kScript[] = {
      {sensors::kStill, 5.0}, {sensors::kWalk, 6.0},  {sensors::kRun, 6.0},
      {sensors::kWalk, 4.0},  {sensors::kEScooter, 6.0},
      {sensors::kStill, 3.0}, {sensors::kDrive, 8.0},
  };

  sensors::SyntheticGenerator phone(/*seed=*/66);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();

  std::printf("%8s  %-10s  %-10s  %10s  %10s\n", "t", "truth", "predicted",
              "confidence", "latency");
  double t = 0.0;
  size_t correct = 0, total = 0;
  double worst_latency_ms = 0.0;
  for (const auto& [activity, seconds] : kScript) {
    sensors::Recording rec = phone.Generate(lib[activity], seconds);
    const std::string truth =
        runtime.model().registry().NameOf(activity).ValueOrDie();
    for (size_t i = 0; i < rec.num_samples(); ++i) {
      sensors::Frame frame;
      for (size_t c = 0; c < sensors::kNumChannels; ++c) {
        frame[c] = rec.samples.At(i, c);
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto pred = runtime.PushFrame(frame);
      const double frame_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      examples::CheckOk(pred.status(), "push frame");
      if (pred.value().has_value()) {
        // This frame completed a window: frame_ms is the full
        // preprocess+embed+classify latency.
        worst_latency_ms = std::max(worst_latency_ms, frame_ms);
        ++total;
        if (pred.value()->prediction.activity == activity) ++correct;
        std::printf("%7.1fs  %-10s  %-10s  %9.2f  %7.2f ms\n", t,
                    truth.c_str(), pred.value()->name.c_str(),
                    pred.value()->prediction.confidence, frame_ms);
      }
      t += 1.0 / rec.sample_rate_hz;
    }
  }
  std::printf("\n%zu/%zu windows correct (%.0f%%), worst window latency "
              "%.2f ms\n",
              correct, total, 100.0 * correct / total, worst_latency_ms);
  std::printf("\n%s", runtime.journal()->Summary().c_str());
  return 0;
}
