/// Re-enactment of the paper's demonstration (Figure 3, panels a-e), with
/// the Android GUI replaced by console narration:
///
///   (a, b) real-time inference of base activities with the initial model
///   (c)    collecting new activity data for "Gesture Hi"
///   (d)    updating the edge model on-device
///   (e)    inference on the freshly learned activity
///
/// Everything after the initial bundle download happens locally; the example
/// finishes with the privacy audit proving zero uplink bytes.
///
/// Run: ./build/examples/demo_walkthrough

#include <cstdio>
#include <map>

#include "example_util.h"

namespace {

using namespace magneto;

void Banner(const char* panel, const char* title) {
  std::printf("\n--- Figure 3(%s): %s ---\n", panel, title);
}

/// Streams a recording and prints a compact prediction histogram, GUI-style.
void ShowLivePredictions(core::EdgeRuntime* runtime,
                         const sensors::Recording& rec,
                         const std::string& truth) {
  auto preds = examples::StreamRecording(runtime, rec);
  std::map<std::string, size_t> histogram;
  double mean_confidence = 0.0;
  for (const auto& p : preds) {
    ++histogram[p.name];
    mean_confidence += p.prediction.confidence;
  }
  std::printf("performing: %-12s | screen shows:", truth.c_str());
  for (const auto& [name, count] : histogram) {
    std::printf("  %s x%zu", name.c_str(), count);
  }
  if (!preds.empty()) {
    std::printf("  (mean confidence %.2f)\n", mean_confidence / preds.size());
  } else {
    std::printf("  (recording...)\n");
  }
}

}  // namespace

int main() {
  // Setup: the phone arrives provisioned with the cloud bundle.
  std::printf("== Provisioning the demo phone ==\n");
  core::CloudInitializer cloud(examples::DemoCloudConfig());
  auto bundle = cloud.Initialize(examples::DemoCorpus(21),
                                 sensors::ActivityRegistry::BaseActivities());
  examples::CheckOk(bundle.status(), "cloud initialization");

  platform::NetworkLink link(/*rtt_ms=*/60.0, /*bandwidth_mbps=*/20.0);
  const std::string wire = bundle.value().SerializeToString();
  const double download_s = link.Transfer(
      platform::Direction::kDownlink, platform::PayloadKind::kModelArtifact,
      wire.size());
  std::printf("bundle downloaded: %.1f KiB in %.0f ms — the phone now goes "
              "OFFLINE\n",
              wire.size() / 1024.0, download_s * 1000.0);

  core::IncrementalOptions update;
  update.train.epochs = 12;
  update.train.learning_rate = 1e-3;
  update.train.distill_weight = 1.0;
  update.train.seed = 23;
  auto device = platform::EdgeDevice::Provision(wire, update);
  examples::CheckOk(device.status(), "provisioning");
  core::EdgeRuntime& runtime = device.value().runtime();

  sensors::SyntheticGenerator participant(/*seed=*/77);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();

  Banner("a", "inference on Still with the initial model");
  ShowLivePredictions(&runtime, participant.Generate(lib[sensors::kStill], 4.0),
                      "Still");

  Banner("b", "inference on Walk with the initial model");
  ShowLivePredictions(&runtime, participant.Generate(lib[sensors::kWalk], 4.0),
                      "Walk");

  Banner("c", "collecting new activity data for Gesture Hi");
  sensors::SignalModel gesture = sensors::MakeGestureModel(/*seed=*/4242);
  examples::CheckOk(runtime.StartRecording(), "start recording");
  examples::StreamRecording(&runtime,
                            participant.Generate(gesture, /*seconds=*/25.0));
  std::printf("recorded %.0f s of 'Gesture Hi' (annotated by the user)\n",
              runtime.recorded_seconds());

  Banner("d", "updating the Edge model");
  auto report = runtime.FinishRecordingAndLearn("Gesture Hi");
  examples::CheckOk(report.status(), "incremental update");
  std::printf("on-device retraining done: %zu new windows, "
              "contrastive %.4f + distillation %.4f, support set %.1f KiB\n",
              report.value().new_windows,
              report.value().train.final_embedding_loss(),
              report.value().train.final_distill_loss(),
              report.value().support_bytes / 1024.0);

  Banner("e", "inference on the new activity Gesture Hi");
  ShowLivePredictions(&runtime, participant.Generate(gesture, 5.0),
                      "Gesture Hi");
  // And the old activities still work — no catastrophic forgetting.
  ShowLivePredictions(&runtime, participant.Generate(lib[sensors::kRun], 4.0),
                      "Run");
  ShowLivePredictions(&runtime,
                      participant.Generate(lib[sensors::kStill], 4.0),
                      "Still");

  std::printf("\n== Privacy audit (Definition 1) ==\n%s",
              platform::PrivacyAuditor(&link).Report().c_str());
  return 0;
}
