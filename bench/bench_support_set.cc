/// Ablation A1: support-set selection strategy and capacity.
///
/// The support set is MAGNETO's memory-accuracy dial (§3.2 item 3): its
/// exemplars define the NCM prototypes and the retraining set. This bench
/// sweeps capacity x selection strategy and reports (i) base-activity
/// accuracy from the resulting prototypes and (ii) old-class retention after
/// an incremental update that retrains on those exemplars.

#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

const char* StrategyName(core::SelectionStrategy s) {
  switch (s) {
    case core::SelectionStrategy::kRandom:
      return "random";
    case core::SelectionStrategy::kHerding:
      return "herding";
    case core::SelectionStrategy::kReservoir:
      return "reservoir";
  }
  return "?";
}

void Run() {
  // Pretrain once with a generous support pool, then rebuild smaller support
  // sets from the full training features for each configuration.
  core::CloudConfig config = BenchCloudConfig();
  core::CloudInitializer cloud(config);
  auto bundle = Unwrap(
      cloud.Initialize(HeterogeneousCorpus(1, 8, 1, 8.0, 0.7),
                       sensors::ActivityRegistry::BaseActivities()),
      "cloud init");
  core::EdgeModel model = std::move(bundle).ToEdgeModel();

  auto train_features = Unwrap(
      model.pipeline().ProcessLabeled(HeterogeneousCorpus(1, 8, 1, 8.0, 0.7)),
      "train features");
  auto eval = Unwrap(model.pipeline().ProcessLabeled(HeterogeneousCorpus(999, 6, 1, 8.0, 0.7)),
                     "eval features");

  // An untrained backbone of the same shape: prototype estimation in a
  // *poor* embedding space, where exemplar count and selection start to
  // matter. The contrast is the point of the table: a well-trained
  // contrastive space collapses each class so tightly that even one exemplar
  // reconstructs the prototype, so the support capacity is really purchased
  // for retraining stability (A1b), not for prototyping.
  Rng untrained_rng(55);
  nn::Sequential untrained_net = nn::BuildMlp(
      preprocess::kNumFeatures, config.backbone_dims, &untrained_rng);
  core::EdgeModel untrained(model.pipeline(), std::move(untrained_net),
                            core::NcmClassifier{}, model.registry());

  std::printf("== A1: support capacity x selection strategy ==\n");
  std::printf("%-10s %-11s %14s %16s %14s\n", "capacity", "strategy",
              "acc (trained)", "acc (untrained)", "memory (KiB)");
  for (size_t capacity : {1u, 2u, 5u, 15u, 50u}) {
    for (core::SelectionStrategy strategy :
         {core::SelectionStrategy::kRandom,
          core::SelectionStrategy::kHerding}) {
      core::SupportSet support(capacity, strategy);
      core::SupportSet untrained_support(capacity, strategy);
      Rng rng(33);
      for (sensors::ActivityId id : train_features.Classes()) {
        CheckOk(support.SetClass(id, train_features.FilterByClass(id), &model,
                                 &rng),
                "set class");
        CheckOk(untrained_support.SetClass(
                    id, train_features.FilterByClass(id), &untrained, &rng),
                "set class untrained");
      }
      CheckOk(model.RebuildPrototypes(support), "rebuild");
      CheckOk(untrained.RebuildPrototypes(untrained_support),
              "rebuild untrained");
      std::printf("%-10zu %-11s %13.1f%% %15.1f%% %14.1f\n", capacity,
                  StrategyName(strategy), Accuracy(&model, eval) * 100.0,
                  Accuracy(&untrained, eval) * 100.0,
                  support.MemoryBytes() / 1024.0);
    }
  }

  // Retention after an incremental update, as a function of what the update
  // had to retrain on.
  std::printf("\n== A1b: retention after learning 'Gesture Hi', by support "
              "capacity (herding, MSE lambda=1) ==\n");
  std::printf("%-10s %8s %8s %8s\n", "capacity", "new", "old", "forget");
  const std::string wire = [&] {
    // Re-run cloud init to get a fresh bundle to clone per row.
    core::CloudInitializer c(BenchCloudConfig());
    return Unwrap(c.Initialize(HeterogeneousCorpus(1, 8, 1, 8.0, 0.7),
                               sensors::ActivityRegistry::BaseActivities()),
                  "cloud init 2")
        .SerializeToString();
  }();
  sensors::SignalModel gesture = sensors::MakeGestureModel(99);
  sensors::SyntheticGenerator gen(3);
  const sensors::Recording capture = gen.Generate(gesture, 25.0);

  for (size_t capacity : {1u, 5u, 15u, 50u}) {
    auto row_bundle = Unwrap(core::ModelBundle::FromString(wire), "clone");
    core::EdgeModel row_model = std::move(row_bundle).ToEdgeModel();
    // Build the row's support set at the requested capacity.
    core::SupportSet support(capacity, core::SelectionStrategy::kHerding);
    Rng rng(44);
    for (sensors::ActivityId id : train_features.Classes()) {
      CheckOk(support.SetClass(id, train_features.FilterByClass(id),
                               &row_model, &rng),
              "set class");
    }
    CheckOk(row_model.RebuildPrototypes(support), "rebuild");

    learn::ConfusionMatrix before;
    for (const auto& [truth, pred] :
         Unwrap(row_model.Predict(eval), "predict")) {
      before.Add(truth, pred);
    }

    core::IncrementalOptions options;
    options.train.epochs = 12;
    options.train.learning_rate = 1e-3;
    options.train.distill_weight = 1.0;
    options.train.seed = 23;
    core::IncrementalLearner learner(options);
    auto report = Unwrap(
        learner.LearnNewActivity(&row_model, &support, "Gesture Hi",
                                 {capture}),
        "update");

    learn::ConfusionMatrix after;
    for (const auto& [truth, pred] :
         Unwrap(row_model.Predict(eval), "predict")) {
      after.Add(truth, pred);
    }
    for (int i = 0; i < 3; ++i) {
      for (const auto& p :
           Unwrap(row_model.InferRecording(gen.Generate(gesture, 8.0)),
                  "infer")) {
        after.Add(report.activity, p.prediction.activity);
      }
    }
    auto f = learn::ComputeForgetting(before, after, report.activity);
    std::printf("%-10zu %7.1f%% %7.1f%% %7.1f%%\n", capacity,
                f.new_class_accuracy * 100.0,
                f.old_class_accuracy_after * 100.0,
                f.mean_forgetting * 100.0);
  }
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
