// Fleet-scale sweep over the sharded cloud control plane: provisions
// simulated device fleets (heterogeneous arrival rates, per-device lossy
// links, mid-transfer churn with chunk-level resume) across a grid of fleet
// sizes and fault rates, then walks a staged canary rollout across the
// largest fleet under churn. Reports provisioning throughput and the
// simulated rollout-completion curve per row; the rollout must complete with
// nonzero resumed transfers or the bench fails — the control-plane contract
// of DESIGN.md, "Cloud control plane".
//
// Emits BENCH_cloud_scale.json (+ metrics sidecar).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace magneto::bench {
namespace {

struct FleetRow {
  size_t devices = 0;
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  platform::FleetReport report;
};

int Run() {
  // One small pretrained bundle shared by every row: the sweep varies fleet
  // size and link behaviour, not the model.
  core::CloudConfig config = BenchCloudConfig();
  config.backbone_dims = {64, 32};
  config.train.epochs = 6;
  platform::CloudServer server(config);
  CheckOk(server.Pretrain(BenchCorpus(33, 2, 6.0),
                          sensors::ActivityRegistry::BaseActivities()),
          "pretrain");

  const std::vector<size_t> fleet_sizes = {10'000, 30'000};
  const std::vector<std::pair<double, double>> fault_rates = {
      {0.0, 0.0}, {0.2, 0.05}};

  platform::CloudControlPlane::Options options;
  options.num_shards = 16;
  options.provision_workers = 8;

  std::vector<FleetRow> rows;
  for (size_t devices : fleet_sizes) {
    for (const auto& [drop, corrupt] : fault_rates) {
      // Fresh plane per row so each fleet's device table starts empty.
      platform::CloudControlPlane plane(options);
      platform::TenantId tenant =
          Unwrap(plane.RegisterTenant("bench", server), "register tenant");

      platform::FleetSpec spec;
      spec.num_devices = devices;
      spec.seed = 29;
      spec.faulty_fraction = drop > 0.0 || corrupt > 0.0 ? 0.2 : 0.0;
      spec.drop_rate = drop;
      spec.corrupt_rate = corrupt;
      spec.churn_fraction = 0.1;
      spec.quantized_fraction = 0.5;

      FleetRow row;
      row.devices = devices;
      row.drop_rate = drop;
      row.corrupt_rate = corrupt;
      row.report = Unwrap(plane.ProvisionFleet(tenant, spec), "provision");
      std::printf(
          "%6zu devices drop %4.0f%%: %6zu ok %4zu failed  %6.2f s wall "
          "(%6.0f dev/s)  %5zu resumed  sim p99 %6.1f s\n",
          devices, drop * 100.0, row.report.provisioned, row.report.failed,
          row.report.wall_seconds, row.report.devices_per_second,
          row.report.resumed_sessions, row.report.CompletionQuantile(0.99));
      rows.push_back(std::move(row));
    }
  }

  // Staged canary rollout at 10^4 devices under churn + faults: provision,
  // publish v2, walk the stages. This is the end-to-end control-plane story:
  // old and new versions in flight, churned devices resuming mid-bundle.
  platform::CloudControlPlane plane(options);
  platform::TenantId tenant =
      Unwrap(plane.RegisterTenant("bench-rollout", server), "register tenant");
  platform::FleetSpec rollout_spec;
  rollout_spec.num_devices = 10'000;
  rollout_spec.seed = 31;
  rollout_spec.faulty_fraction = 0.2;
  rollout_spec.drop_rate = 0.2;
  rollout_spec.corrupt_rate = 0.05;
  rollout_spec.churn_fraction = 0.1;
  platform::FleetReport provisioned =
      Unwrap(plane.ProvisionFleet(tenant, rollout_spec), "provision rollout");
  const std::string fp32 =
      Unwrap(plane.Artifact(tenant, 1), "artifact")->fp32_bytes;
  const uint64_t v2 =
      Unwrap(plane.PublishVersionBytes(tenant, fp32), "publish v2");
  platform::RolloutReport rollout = Unwrap(
      plane.RunRollout(tenant, v2, platform::RolloutPolicy{}, rollout_spec),
      "rollout");
  std::printf("rollout to v%llu: %s, %zu updated, %zu failed, %zu resumed "
              "sessions, sim %.1f s\n",
              static_cast<unsigned long long>(v2),
              platform::RolloutStateName(rollout.state),
              rollout.devices_updated, rollout.devices_failed,
              rollout.resumed_sessions, rollout.sim_completion_s);
  if (rollout.state != platform::RolloutState::kCompleted) {
    std::fprintf(stderr, "rollout halted — fault rates exceed what the "
                         "transport can absorb\n");
    return 1;
  }
  if (rollout.resumed_sessions == 0 || provisioned.resumed_sessions == 0) {
    std::fprintf(stderr, "no resumed sessions despite churn — the resume "
                         "path did not exercise\n");
    return 1;
  }

  obs::JsonWriter json = BenchJson("cloud_scale");
  json.Field("bundle_fp32_bytes",
             static_cast<uint64_t>(fp32.size()))
      .Field("provision_workers", static_cast<uint64_t>(options.provision_workers))
      .Field("num_shards", static_cast<uint64_t>(options.num_shards))
      .Key("fleet_rows")
      .BeginArray();
  for (const FleetRow& row : rows) {
    json.BeginObject()
        .Field("devices", static_cast<uint64_t>(row.devices))
        .Field("drop_rate", row.drop_rate)
        .Field("corrupt_rate", row.corrupt_rate)
        .Field("provisioned", static_cast<uint64_t>(row.report.provisioned))
        .Field("failed", static_cast<uint64_t>(row.report.failed))
        .Field("churned_devices",
               static_cast<uint64_t>(row.report.churned_devices))
        .Field("resumed_sessions",
               static_cast<uint64_t>(row.report.resumed_sessions))
        .Field("fp32_devices", static_cast<uint64_t>(row.report.fp32_devices))
        .Field("int8_devices", static_cast<uint64_t>(row.report.int8_devices))
        .Field("wire_bytes", static_cast<uint64_t>(row.report.wire_bytes))
        .Field("wall_seconds", row.report.wall_seconds)
        .Field("devices_per_second", row.report.devices_per_second)
        .Key("completion_curve_s")
        .BeginArray();
    // The rollout-completion curve as deciles of simulated completion time.
    for (int d = 1; d <= 10; ++d) {
      json.Value(row.report.CompletionQuantile(d / 10.0));
    }
    json.EndArray().EndObject();
  }
  json.EndArray();

  json.Key("rollout").BeginObject();
  json.Field("devices", static_cast<uint64_t>(rollout_spec.num_devices))
      .Field("to_version", static_cast<uint64_t>(rollout.to_version))
      .Field("state", platform::RolloutStateName(rollout.state))
      .Field("devices_updated", static_cast<uint64_t>(rollout.devices_updated))
      .Field("devices_failed", static_cast<uint64_t>(rollout.devices_failed))
      .Field("resumed_sessions",
             static_cast<uint64_t>(rollout.resumed_sessions))
      .Field("sim_completion_s", rollout.sim_completion_s)
      .Field("wall_seconds", rollout.wall_seconds)
      .Key("stages")
      .BeginArray();
  for (const platform::StageRecord& stage : rollout.stage_records) {
    json.BeginObject()
        .Field("fraction", stage.fraction)
        .Field("targeted", static_cast<uint64_t>(stage.targeted))
        .Field("updated", static_cast<uint64_t>(stage.updated))
        .Field("failed", static_cast<uint64_t>(stage.failed))
        .Field("failure_rate", stage.failure_rate)
        .Field("skew_old_before", static_cast<uint64_t>(stage.skew_old_before))
        .Field("skew_new_before", static_cast<uint64_t>(stage.skew_new_before))
        .Field("sim_end_s", stage.sim_end_s)
        .EndObject();
  }
  json.EndArray().EndObject();

  json.EndObject();
  if (!json.WriteToFile("BENCH_cloud_scale.json")) {
    std::fprintf(stderr, "cannot write BENCH_cloud_scale.json\n");
    return 1;
  }
  std::printf("wrote BENCH_cloud_scale.json\n");
  WriteMetricsSnapshot("BENCH_cloud_scale.metrics.json");
  return 0;
}

}  // namespace
}  // namespace magneto::bench

int main() { return magneto::bench::Run(); }
