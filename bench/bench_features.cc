/// Ablation A4 — the feature-extractor slot (§3.2 item 1: "more advanced
/// feature extractors can be explored and integrated into our framework").
///
/// Compares the paper's 80 statistical features against the FFT-based
/// spectral extractor and their concatenation: held-out accuracy, feature
/// dimension, and per-window preprocessing latency.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

constexpr double kIntensity = 0.7;

double PreprocessLatencyMs(const preprocess::Pipeline& pipeline,
                           const Matrix& window, int reps = 300) {
  for (int i = 0; i < 10; ++i) (void)pipeline.ProcessWindow(window);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    auto features = pipeline.ProcessWindow(window);
    CheckOk(features.status(), "process");
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

void Run() {
  auto corpus = HeterogeneousCorpus(1, 8, 1, 8.0, kIntensity);
  auto eval_corpus = HeterogeneousCorpus(999, 6, 1, 8.0, kIntensity);
  sensors::SyntheticGenerator gen(2);
  const Matrix window =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kRun], 1.0)
          .samples;

  std::printf("== A4: feature extractor ablation ==\n");
  std::printf("%-14s %6s %10s %16s %16s\n", "features", "dim", "accuracy",
              "preproc ms/win", "train loss");
  const struct {
    const char* label;
    preprocess::FeatureMode mode;
  } kModes[] = {
      {"statistical", preprocess::FeatureMode::kStatistical},
      {"spectral", preprocess::FeatureMode::kSpectral},
      {"combined", preprocess::FeatureMode::kCombined},
  };
  for (const auto& m : kModes) {
    core::CloudConfig config = BenchCloudConfig();
    config.train.epochs = 20;
    config.pipeline.features = m.mode;
    core::CloudInitializer cloud(config);
    core::CloudReport report;
    auto bundle = Unwrap(
        cloud.Initialize(corpus, sensors::ActivityRegistry::BaseActivities(),
                         &report),
        "cloud init");
    core::EdgeModel model = std::move(bundle).ToEdgeModel();
    auto eval = Unwrap(model.pipeline().ProcessLabeled(eval_corpus), "eval");
    std::printf("%-14s %6zu %9.1f%% %13.3f %16.4f\n", m.label,
                model.pipeline().feature_dim(), Accuracy(&model, eval) * 100.0,
                PreprocessLatencyMs(model.pipeline(), window),
                report.train.final_embedding_loss());
  }
  std::printf("\n(the statistical set is the paper's default; the spectral "
              "set plugs into the same pipeline/bundle machinery untouched)\n");
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
