#ifndef MAGNETO_BENCH_BENCH_UTIL_H_
#define MAGNETO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "magneto.h"

namespace magneto::bench {

/// Version of the BENCH_*.json layout. Bump when a field changes meaning so
/// downstream tooling can tell old artifacts from new ones. v2: emitted via
/// obs::JsonWriter, top-level {"schema_version", "bench", ...}. v3: open-loop
/// fleet runs carry per-stage latency attribution (stage_*_p50/p99_us) and
/// SLO health, BENCH_fleet.json gains a trace_overhead block, and the
/// metrics snapshots move to metrics schema_version 2 (histogram exemplars,
/// optional embedded "health" object).
inline constexpr int kBenchSchemaVersion = 3;

/// Starts a BENCH_*.json document with the common header fields. The caller
/// fills in bench-specific fields and closes the root object.
inline obs::JsonWriter BenchJson(const std::string& bench_name) {
  obs::JsonWriter json(/*pretty=*/true);
  json.BeginObject()
      .Field("schema_version", kBenchSchemaVersion)
      .Field("bench", bench_name);
  return json;
}

/// Dumps the process-wide metrics registry next to a bench's main artifact
/// (e.g. BENCH_parallel.metrics.json) so each bench run leaves its telemetry
/// behind. Exits on I/O failure like the other bench helpers.
inline void WriteMetricsSnapshot(const std::string& path) {
  const std::string json = obs::Registry::Global().TakeSnapshot().ToJson();
  if (!obs::WriteStringToFile(json, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// Benchmark-sized cloud configuration (same shape as the examples').
inline core::CloudConfig BenchCloudConfig() {
  core::CloudConfig config;
  config.backbone_dims = {128, 64, 32};
  config.train.epochs = 15;
  config.train.batch_size = 64;
  config.train.learning_rate = 1e-3;
  config.train.seed = 7;
  config.support_capacity = 50;
  config.selection = core::SelectionStrategy::kHerding;
  config.seed = 11;
  return config;
}

/// The paper's exact architecture, for footprint/latency-faithful rows.
inline core::CloudConfig PaperCloudConfig() {
  core::CloudConfig config = BenchCloudConfig();
  config.backbone_dims = {1024, 512, 128, 64, 128};
  config.support_capacity = 200;
  return config;
}

inline std::vector<sensors::LabeledRecording> BenchCorpus(
    uint64_t seed, size_t per_class = 4, double seconds = 8.0) {
  sensors::SyntheticGenerator gen(seed);
  return gen.GenerateDataset(sensors::DefaultActivityLibrary(), per_class,
                             seconds);
}

/// A population corpus like the paper's collection campaign: every recording
/// comes from a different person (random `UserProfile`), so each class is a
/// *family* of signatures rather than a point. This is the regime where a
/// learned, invariance-inducing embedding earns its keep over raw features.
inline std::vector<sensors::LabeledRecording> HeterogeneousCorpus(
    uint64_t seed, size_t users, size_t recordings_per_user_class = 1,
    double seconds = 8.0, double intensity = 0.6) {
  sensors::ActivityLibrary canonical = sensors::DefaultActivityLibrary();
  std::vector<sensors::LabeledRecording> corpus;
  Rng seeder(seed);
  for (size_t u = 0; u < users; ++u) {
    sensors::UserProfile profile(seeder.engine()(), intensity);
    sensors::SyntheticGenerator gen(seeder.engine()());
    sensors::ActivityLibrary personal = profile.Personalize(canonical);
    Rng ctx_rng(seeder.engine()());
    for (const auto& [id, model] : personal) {
      for (size_t r = 0; r < recordings_per_user_class; ++r) {
        // Each capture happens under its own conditions (time of day,
        // altitude, pocket vs hand, GPS quality).
        sensors::RecordingContext context =
            sensors::RecordingContext::Sample(&ctx_rng);
        corpus.push_back({gen.Generate(context.Apply(model), seconds), id});
      }
    }
  }
  return corpus;
}

inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T Unwrap(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Accuracy of `model` on a labeled feature dataset.
inline double Accuracy(core::EdgeModel* model,
                       const sensors::FeatureDataset& data) {
  auto pairs = Unwrap(model->Predict(data), "predict");
  if (pairs.empty()) return 0.0;
  size_t correct = 0;
  for (const auto& [truth, pred] : pairs) correct += (truth == pred);
  return static_cast<double>(correct) / static_cast<double>(pairs.size());
}

}  // namespace magneto::bench

#endif  // MAGNETO_BENCH_BENCH_UTIL_H_
