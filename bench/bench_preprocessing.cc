/// Experiment C4 (§4.1.2): "the real-time coming data can be processed
/// instantly, as the preprocessing requires linear time."
///
/// Measures preprocessing throughput (denoise + segment + featurise +
/// normalise) as stream length grows. Linearity shows up as a flat
/// per-window time across the sweep; google-benchmark's complexity fitter
/// confirms O(N).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

preprocess::Pipeline& FittedPipeline() {
  static auto* pipeline = [] {
    auto* p = new preprocess::Pipeline{preprocess::PipelineConfig{}};
    auto fitted = p->Fit(BenchCorpus(1, 2, 4.0));
    CheckOk(fitted.status(), "pipeline fit");
    return p;
  }();
  return *pipeline;
}

sensors::Recording MakeStream(double seconds) {
  sensors::SyntheticGenerator gen(5);
  return gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk],
                      seconds);
}

/// Full pipeline over a stream of state.range(0) seconds (= windows).
void BM_PipelineStream(benchmark::State& state) {
  preprocess::Pipeline& pipeline = FittedPipeline();
  sensors::Recording rec = MakeStream(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto windows = pipeline.Process(rec);
    benchmark::DoNotOptimize(windows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineStream)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// Stage breakdown on a fixed 60 s stream.
void BM_Stage_Denoise(benchmark::State& state) {
  sensors::Recording rec = MakeStream(60.0);
  preprocess::DenoiseConfig config;
  for (auto _ : state) {
    auto out = preprocess::Denoise(rec.samples, config);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 60);
}
BENCHMARK(BM_Stage_Denoise)->Unit(benchmark::kMillisecond);

void BM_Stage_DenoiseMedian(benchmark::State& state) {
  sensors::Recording rec = MakeStream(60.0);
  preprocess::DenoiseConfig config;
  config.method = preprocess::DenoiseMethod::kMedian;
  for (auto _ : state) {
    auto out = preprocess::Denoise(rec.samples, config);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 60);
}
BENCHMARK(BM_Stage_DenoiseMedian)->Unit(benchmark::kMillisecond);

void BM_Stage_Segment(benchmark::State& state) {
  sensors::Recording rec = MakeStream(60.0);
  preprocess::SegmentationConfig config;
  for (auto _ : state) {
    auto windows = preprocess::Segment(rec, config);
    benchmark::DoNotOptimize(windows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 60);
}
BENCHMARK(BM_Stage_Segment)->Unit(benchmark::kMillisecond);

void BM_Stage_FeatureExtraction(benchmark::State& state) {
  sensors::Recording rec = MakeStream(1.0);
  preprocess::FeatureExtractor extractor;
  for (auto _ : state) {
    auto features = extractor.Extract(rec.samples);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage_FeatureExtraction)->Unit(benchmark::kMicrosecond);

/// Window-size sensitivity of the 80-feature extractor (still linear).
void BM_FeatureExtractionVsWindow(benchmark::State& state) {
  sensors::SyntheticGenerator gen(7);
  sensors::GeneratorOptions opts;
  opts.sample_rate_hz = static_cast<double>(state.range(0));
  sensors::SyntheticGenerator sized(opts, 7);
  sensors::Recording rec = sized.Generate(
      sensors::DefaultActivityLibrary()[sensors::kRun], 1.0);
  preprocess::FeatureExtractor extractor;
  for (auto _ : state) {
    auto features = extractor.Extract(rec.samples);
    benchmark::DoNotOptimize(features);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FeatureExtractionVsWindow)
    ->RangeMultiplier(2)
    ->Range(60, 1920)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oNLogN);

}  // namespace
}  // namespace magneto::bench

BENCHMARK_MAIN();
