// Thread-scaling sweep over the pooled hot paths: GEMM, preprocessing
// throughput, and one Siamese training epoch, at 1/2/4/8 lanes. Emits
// BENCH_parallel.json so the perf trajectory is tracked across PRs, and
// fails (exit 1) if any workload is not bit-identical across thread counts —
// the determinism contract of the shared runtime (DESIGN.md, "Parallel
// runtime").
//
// Speedups are only meaningful on a machine with that many cores;
// `hardware_threads` is recorded in the JSON so readers can judge.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

// Process-wide heap telemetry for the zero-allocation serving assertions
// below: every operator new/new[] funnels through one counter. Coarse but
// exact — if a hot path allocates anything at all (a std::vector growth, a
// map node, a Matrix buffer), the per-call delta says so. Matrix's own
// AllocationCount only sees Matrix buffers; the classifier scratch is plain
// std::vector storage, which only this counter can observe.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

uint64_t HeapAllocations() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1)) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace magneto::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// FNV-1a over raw float bytes: bit-exact fingerprint of a result.
uint64_t Fingerprint(const float* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n * sizeof(float); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ull;
  }
  return h;
}

struct Sample {
  double seconds = 0.0;
  uint64_t fingerprint = 0;
};

/// Best-of-`reps` wall time; the fingerprint must agree across reps.
template <typename Fn>
Sample BestOf(size_t reps, Fn fn) {
  Sample best;
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const uint64_t fp = fn();
    const double s = Seconds(t0, Clock::now());
    if (r == 0 || s < best.seconds) best.seconds = s;
    best.fingerprint = fp;
  }
  return best;
}

struct Workload {
  std::string name;
  double work_units;        // flops for GEMM, windows/examples otherwise
  std::string units_label;  // what work_units/seconds means
  std::vector<size_t> threads;
  std::vector<Sample> samples;  // one per thread count
};

/// Heap traffic of the forward pass, measured via Matrix::AllocationCount.
/// One workspace reused across calls amortizes every buffer to zero steady-
/// state allocations; a fresh workspace per call re-pays all of them — the
/// before/after of the ping-pong buffer refactor.
struct AllocStats {
  double reused_per_forward = 0.0;
  double fresh_per_forward = 0.0;
  double forward_us = 0.0;  ///< mean reused-workspace forward, 64-row batch
  /// NCM serving: heap allocations per Classify with a caller-owned,
  /// warmed scratch (the EdgeFleet contract: must be exactly 0), with a
  /// fresh scratch per call for contrast, and through the ANN index.
  double ncm_scratch_per_classify = 0.0;
  double ncm_fresh_per_classify = 0.0;
  double ncm_ann_scratch_per_classify = 0.0;
};

void Report(const std::vector<Workload>& workloads, bool deterministic,
            const AllocStats& allocs) {
  obs::JsonWriter json = BenchJson("parallel_scaling");
  json.Field("hardware_threads", std::thread::hardware_concurrency())
      .Field("deterministic_across_thread_counts", deterministic)
      .Key("workspace_allocations")
      .BeginObject()
      .Field("allocs_per_forward_reused_ws", allocs.reused_per_forward)
      .Field("allocs_per_forward_fresh_ws", allocs.fresh_per_forward)
      .Field("forward_us_reused_ws", allocs.forward_us)
      .Field("ncm_allocs_per_classify_scratch", allocs.ncm_scratch_per_classify)
      .Field("ncm_allocs_per_classify_fresh", allocs.ncm_fresh_per_classify)
      .Field("ncm_allocs_per_classify_ann_scratch",
             allocs.ncm_ann_scratch_per_classify)
      .EndObject()
      .Key("workloads")
      .BeginArray();
  for (const Workload& wl : workloads) {
    const double t1 = wl.samples.front().seconds;
    json.BeginObject()
        .Field("name", wl.name)
        .Field("units", wl.units_label)
        .Key("runs")
        .BeginArray();
    for (size_t i = 0; i < wl.threads.size(); ++i) {
      const Sample& s = wl.samples[i];
      json.BeginObject()
          .Field("threads", static_cast<uint64_t>(wl.threads[i]))
          .Field("seconds", s.seconds)
          .Field("throughput", wl.work_units / s.seconds / 1e6)
          .Field("speedup_vs_1t", t1 / s.seconds)
          .EndObject();
    }
    json.EndArray().EndObject();
  }
  json.EndArray().EndObject();
  if (!json.WriteToFile("BENCH_parallel.json")) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    std::exit(1);
  }
  // The run's own telemetry rides along: counters/histograms filled by the
  // instrumented runtime while the sweep executed.
  WriteMetricsSnapshot("BENCH_parallel.metrics.json");
}

}  // namespace
}  // namespace magneto::bench

int main() {
  using namespace magneto;
  using namespace magneto::bench;

  const std::vector<size_t> sweep = {1, 2, 4, 8};
  std::vector<Workload> workloads;
  bool deterministic = true;

  // --- GEMM: 320^3, the backbone's dominant kernel shape class ---
  {
    const size_t dim = 320;
    Matrix a(dim, dim), b(dim, dim);
    for (size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = static_cast<float>((i * 2654435761u) % 17) - 8.0f;
      b.data()[i] = static_cast<float>((i * 40503u) % 13) - 6.0f;
    }
    Workload wl{"gemm_320", 2.0 * dim * dim * dim, "Mflop/s", sweep, {}};
    for (size_t t : sweep) {
      SetParallelThreads(t);
      wl.samples.push_back(BestOf(3, [&] {
        Matrix c = MatMul(a, b);
        return Fingerprint(c.data(), c.size());
      }));
    }
    workloads.push_back(wl);
  }

  // --- Preprocessing pipeline throughput over a labeled corpus ---
  {
    const auto corpus = BenchCorpus(/*seed=*/21, /*per_class=*/4);
    preprocess::PipelineConfig config;
    config.features = preprocess::FeatureMode::kCombined;
    preprocess::Pipeline pipeline(config);
    Unwrap(pipeline.Fit(corpus), "pipeline fit");
    const size_t windows =
        Unwrap(pipeline.ProcessLabeled(corpus), "pipeline warmup").size();
    Workload wl{"pipeline_process", static_cast<double>(windows),
                "Mwindows/s", sweep, {}};
    for (size_t t : sweep) {
      SetParallelThreads(t);
      wl.samples.push_back(BestOf(3, [&] {
        auto ds = Unwrap(pipeline.ProcessLabeled(corpus), "pipeline process");
        Matrix m = ds.ToMatrix();
        return Fingerprint(m.data(), m.size());
      }));
    }
    workloads.push_back(wl);
  }

  // --- One Siamese training epoch (forward + backward + optimizer) ---
  {
    const auto corpus = BenchCorpus(/*seed=*/22, /*per_class=*/6);
    preprocess::Pipeline pipeline{preprocess::PipelineConfig{}};
    sensors::FeatureDataset data = Unwrap(pipeline.Fit(corpus), "fit");
    learn::TrainOptions options;
    options.epochs = 1;
    options.batch_size = 64;
    options.seed = 7;
    Workload wl{"siamese_epoch", static_cast<double>(data.size()),
                "Mexamples/s", sweep, {}};
    for (size_t t : sweep) {
      SetParallelThreads(t);
      wl.samples.push_back(BestOf(2, [&] {
        Rng rng(3);
        nn::Sequential net = nn::BuildMlp(data.dim(), {256, 128, 64}, &rng);
        learn::SiameseTrainer trainer(options);
        Unwrap(trainer.Train(&net, data), "train");
        uint64_t h = 1469598103934665603ull;
        for (const Matrix* p : net.Params()) {
          h ^= Fingerprint(p->data(), p->size());
        }
        return h;
      }));
    }
    workloads.push_back(wl);
  }

  // --- Forward-pass allocation traffic: reused vs fresh workspace ---
  AllocStats allocs;
  {
    SetParallelThreads(1);
    Rng rng(5);
    nn::Sequential net = nn::BuildMlp(64, {256, 128, 64}, &rng);
    Matrix x(64, 64);
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>((i * 2654435761u) % 19) - 9.0f;
    }
    constexpr size_t kForwards = 200;
    nn::ForwardWorkspace ws;
    net.Forward(x, &ws);  // grow buffers to their steady-state shapes
    uint64_t before = Matrix::AllocationCount();
    const auto t0 = Clock::now();
    for (size_t i = 0; i < kForwards; ++i) net.Forward(x, &ws);
    allocs.forward_us = Seconds(t0, Clock::now()) / kForwards * 1e6;
    allocs.reused_per_forward =
        static_cast<double>(Matrix::AllocationCount() - before) / kForwards;
    before = Matrix::AllocationCount();
    for (size_t i = 0; i < kForwards; ++i) {
      nn::ForwardWorkspace fresh;
      net.Forward(x, &fresh);
    }
    allocs.fresh_per_forward =
        static_cast<double>(Matrix::AllocationCount() - before) / kForwards;
    std::printf(
        "forward allocations: %.2f/call reused workspace vs %.2f/call "
        "fresh (%.1f us/forward)\n",
        allocs.reused_per_forward, allocs.fresh_per_forward,
        allocs.forward_us);
  }

  // --- NCM serving allocations: with a caller-owned warmed scratch the
  // classify steady state must be exactly allocation-free (the contract the
  // EdgeFleet serve path relies on), exact scan and ANN path alike ---
  bool ncm_alloc_free = true;
  {
    SetParallelThreads(1);
    Rng rng(9);
    const size_t dim = 32, classes = 64;
    core::NcmClassifier ncm;
    for (size_t c = 0; c < classes; ++c) {
      Matrix rows(4, dim);
      for (size_t i = 0; i < rows.size(); ++i) {
        rows.data()[i] =
            static_cast<float>(rng.Normal(static_cast<double>(c), 1.0));
      }
      CheckOk(ncm.SetPrototypeFromEmbeddings(
                  static_cast<sensors::ActivityId>(100 + c), rows),
              "set prototype");
    }
    std::vector<float> query(dim, 0.5f);
    constexpr size_t kCalls = 1000;
    core::NcmClassifier::Scratch scratch;
    Unwrap(ncm.Classify(query.data(), dim, &scratch), "warm classify");
    uint64_t before = HeapAllocations();
    for (size_t i = 0; i < kCalls; ++i) {
      Unwrap(ncm.Classify(query.data(), dim, &scratch), "classify");
    }
    allocs.ncm_scratch_per_classify =
        static_cast<double>(HeapAllocations() - before) / kCalls;
    before = HeapAllocations();
    for (size_t i = 0; i < kCalls; ++i) {
      core::NcmClassifier::Scratch fresh;
      Unwrap(ncm.Classify(query.data(), dim, &fresh), "classify fresh");
    }
    allocs.ncm_fresh_per_classify =
        static_cast<double>(HeapAllocations() - before) / kCalls;

    core::AnnOptions ann;
    ann.enable = true;
    ann.min_index_size = 1;
    ann.nlist = 8;
    ann.nprobe = 4;
    CheckOk(ncm.EnableAnn(ann), "enable ann");
    if (!ncm.ann_active()) {
      std::fprintf(stderr, "NCM ANN index failed to activate\n");
      std::exit(1);
    }
    Unwrap(ncm.Classify(query.data(), dim, &scratch), "warm ann classify");
    before = HeapAllocations();
    for (size_t i = 0; i < kCalls; ++i) {
      Unwrap(ncm.Classify(query.data(), dim, &scratch), "ann classify");
    }
    allocs.ncm_ann_scratch_per_classify =
        static_cast<double>(HeapAllocations() - before) / kCalls;

    std::printf(
        "ncm classify allocations: %.3f/call warmed scratch, %.3f/call ann "
        "scratch, %.2f/call fresh scratch\n",
        allocs.ncm_scratch_per_classify, allocs.ncm_ann_scratch_per_classify,
        allocs.ncm_fresh_per_classify);
    if (allocs.ncm_scratch_per_classify != 0.0 ||
        allocs.ncm_ann_scratch_per_classify != 0.0) {
      std::fprintf(stderr,
                   "NCM classify with warmed scratch allocated on the "
                   "steady-state path!\n");
      ncm_alloc_free = false;
    }
  }

  for (const Workload& wl : workloads) {
    std::printf("%-18s", wl.name.c_str());
    for (size_t i = 0; i < wl.threads.size(); ++i) {
      std::printf("  %zut: %8.2f ms (x%.2f)", wl.threads[i],
                  wl.samples[i].seconds * 1e3,
                  wl.samples.front().seconds / wl.samples[i].seconds);
    }
    std::printf("\n");
    for (const Sample& s : wl.samples) {
      if (s.fingerprint != wl.samples.front().fingerprint) {
        std::fprintf(stderr, "%s: results differ across thread counts!\n",
                     wl.name.c_str());
        deterministic = false;
      }
    }
  }

  Report(workloads, deterministic, allocs);
  std::printf("wrote BENCH_parallel.json (hardware threads: %u)\n",
              std::thread::hardware_concurrency());
  return (deterministic && ncm_alloc_free) ? 0 : 1;
}
