/// Experiments C2 + C3 — the paper's storage arithmetic:
///   §3.2:   "200 observations per class cost roughly 0.5 MB in 32-bit
///            precision" (paper counts raw 120x22 windows; our stored
///            exemplars are 80-float feature vectors — both rows below)
///   §4.2.2: "the entire data size ... (including support set,
///            preprocessing, and the model) does not exceed 5 MB"
///
/// Prints the exact measured bytes for the support-set sweep and the full
/// transfer artifact, using the paper's exact backbone.

#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

void RunSupportSweep() {
  std::printf("== C2: support-set payload vs observations/class ==\n");
  std::printf("%-12s %-22s %-22s\n", "obs/class",
              "feature exemplars (KiB)", "raw-window equivalent (MiB)");
  const size_t kFeatureBytes = preprocess::kNumFeatures * sizeof(float);
  const size_t kRawWindowBytes = 120 * sensors::kNumChannels * sizeof(float);
  for (size_t per_class : {50u, 100u, 200u, 400u}) {
    // Exact bytes via a populated support set (5 classes).
    core::SupportSet set(per_class, core::SelectionStrategy::kRandom);
    Rng rng(1);
    Rng data_rng(2);
    for (sensors::ActivityId id = 0; id < 5; ++id) {
      sensors::FeatureDataset data;
      for (size_t i = 0; i < per_class; ++i) {
        std::vector<float> row(preprocess::kNumFeatures);
        for (float& v : row) {
          v = static_cast<float>(data_rng.Normal(0.0, 1.0));
        }
        data.Append(row, id);
      }
      CheckOk(set.SetClass(id, data, nullptr, &rng), "set class");
    }
    const size_t measured = set.MemoryBytes();
    const size_t expected = 5 * per_class * kFeatureBytes;
    std::printf("%-12zu %10.1f (per class %5.1f) %10.2f (per class %4.2f)\n",
                per_class, measured / 1024.0,
                per_class * kFeatureBytes / 1024.0,
                5.0 * per_class * kRawWindowBytes / (1024.0 * 1024.0),
                per_class * kRawWindowBytes / (1024.0 * 1024.0));
    if (measured != expected) {
      std::printf("  !! accounting mismatch: %zu != %zu\n", measured,
                  expected);
    }
  }
  std::printf("paper's figure: 200 obs/class ~ 0.5 MB  ->  raw-window "
              "equivalent above reproduces it (0.5 MiB/class at 200)\n\n");
}

void RunBundleFootprint() {
  std::printf("== C3: total edge payload with the paper backbone ==\n");
  core::CloudConfig config = PaperCloudConfig();
  config.train.epochs = 1;  // artifact size is architecture-driven
  core::CloudInitializer cloud(config);
  auto bundle = Unwrap(
      cloud.Initialize(BenchCorpus(3, 3, 8.0),
                       sensors::ActivityRegistry::BaseActivities()),
      "cloud init");

  BinaryWriter pipeline_bytes;
  bundle.pipeline.Serialize(&pipeline_bytes);
  BinaryWriter support_bytes;
  bundle.support.Serialize(&support_bytes);
  BinaryWriter classifier_bytes;
  bundle.classifier.Serialize(&classifier_bytes);

  const size_t model_bytes = bundle.backbone.NumParameters() * sizeof(float);
  const size_t total = bundle.SerializedBytes();
  std::printf("%-34s %12.2f KiB\n", "backbone [1024x512x128x64x128]",
              model_bytes / 1024.0);
  std::printf("%-34s %12.2f KiB\n", "preprocessing function (frozen)",
              pipeline_bytes.size() / 1024.0);
  std::printf("%-34s %12.2f KiB\n",
              "support set (5 classes x 200 feats)",
              support_bytes.size() / 1024.0);
  std::printf("%-34s %12.2f KiB\n", "NCM prototypes + registry",
              classifier_bytes.size() / 1024.0);
  std::printf("%-34s %12.2f MiB  (paper budget: < 5 MB)  %s\n",
              "TOTAL serialised bundle", total / (1024.0 * 1024.0),
              total < 5u * 1024 * 1024 ? "PASS" : "FAIL");

  // How much headroom for user-added activities?
  const size_t per_class_bytes =
      config.support_capacity * preprocess::kNumFeatures * sizeof(float);
  const size_t headroom = 5u * 1024 * 1024 - total;
  std::printf("headroom: %.2f MiB ~= %zu additional user activities at 200 "
              "exemplars each\n\n",
              headroom / (1024.0 * 1024.0), headroom / per_class_bytes);
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::RunSupportSweep();
  magneto::bench::RunBundleFootprint();
  return 0;
}
