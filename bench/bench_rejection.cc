/// Ablation A7 — open-set rejection operating points.
///
/// A deployed HAR model constantly sees movement it was never taught
/// (fidgeting, carrying groceries, novel gestures). The NCM distance gives a
/// natural unknown detector; this bench sweeps the rejection threshold and
/// reports, per operating point:
///
///   known-accept  — fraction of known-activity windows still classified
///                   (and of those, the accuracy)
///   unknown-reject — fraction of never-trained-gesture windows flagged
///
/// plus the threshold `CalibrateRejectionThreshold` picks automatically.

#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

void Run() {
  core::CloudConfig config = BenchCloudConfig();
  config.train.epochs = 20;
  core::CloudInitializer cloud(config);
  auto bundle = Unwrap(
      cloud.Initialize(HeterogeneousCorpus(1, 8, 1, 8.0, 0.7),
                       sensors::ActivityRegistry::BaseActivities()),
      "cloud init");
  core::EdgeModel model = std::move(bundle).ToEdgeModel();

  // Known-activity stream: unseen users of the five base classes.
  auto known_corpus = HeterogeneousCorpus(999, 5, 1, 8.0, 0.7);
  sensors::SyntheticGenerator gen(2);
  // Easy unknowns: sensor streams no human activity produces (violent
  // shaking, saturating noise).
  std::vector<sensors::Recording> easy_unknowns;
  for (int i = 0; i < 3; ++i) {
    sensors::SignalModel chaos =
        sensors::DefaultActivityLibrary()[sensors::kRun];
    for (auto& ch : chaos.channels) {
      ch.noise_sigma = ch.noise_sigma * (15.0 + 5.0 * i) + 4.0;
      ch.drift_sigma += 0.4;
    }
    easy_unknowns.push_back(gen.Generate(chaos, 10.0));
  }
  // Hard unknowns: never-trained gestures — physically close to Still.
  std::vector<sensors::Recording> hard_unknowns;
  for (uint64_t seed : {101u, 202u, 303u}) {
    hard_unknowns.push_back(
        gen.Generate(sensors::MakeGestureModel(seed), 10.0));
  }

  // Collect nearest-prototype distances for both streams once.
  struct Sample {
    double distance;
    bool correct;  // (known stream only)
  };
  std::vector<Sample> known, easy, hard;
  for (const auto& labeled : known_corpus) {
    for (const auto& p :
         Unwrap(model.InferRecording(labeled.recording), "known infer")) {
      known.push_back(
          {p.prediction.distance, p.prediction.activity == labeled.label});
    }
  }
  for (const auto& rec : easy_unknowns) {
    for (const auto& p : Unwrap(model.InferRecording(rec), "easy infer")) {
      easy.push_back({p.prediction.distance, false});
    }
  }
  for (const auto& rec : hard_unknowns) {
    for (const auto& p : Unwrap(model.InferRecording(rec), "hard infer")) {
      hard.push_back({p.prediction.distance, false});
    }
  }

  std::vector<sensors::Recording> calib;
  for (const auto& labeled : HeterogeneousCorpus(3, 2, 1, 8.0, 0.7)) {
    calib.push_back(labeled.recording);
  }
  const double auto_threshold =
      Unwrap(core::CalibrateRejectionThreshold(&model, calib), "calibrate");

  std::printf("== A7: open-set rejection sweep (%zu known, %zu easy-OOD, "
              "%zu hard-OOD windows) ==\n",
              known.size(), easy.size(), hard.size());
  std::printf("%-12s %13s %16s %15s %15s\n", "threshold", "known kept",
              "kept accuracy", "easy rejected", "hard rejected");
  for (double threshold : {1.5, 2.0, 3.0, 5.0, 8.0, auto_threshold}) {
    size_t kept = 0, kept_correct = 0, easy_rej = 0, hard_rej = 0;
    for (const Sample& s : known) {
      if (s.distance <= threshold) {
        ++kept;
        kept_correct += s.correct;
      }
    }
    for (const Sample& s : easy) easy_rej += (s.distance > threshold);
    for (const Sample& s : hard) hard_rej += (s.distance > threshold);
    std::printf("%-12.2f %12.1f%% %15.1f%% %14.1f%% %14.1f%%%s\n", threshold,
                100.0 * kept / known.size(),
                kept > 0 ? 100.0 * kept_correct / kept : 0.0,
                100.0 * easy_rej / easy.size(),
                100.0 * hard_rej / hard.size(),
                threshold == auto_threshold ? "  <- auto" : "");
  }
  std::printf(
      "\n(finding: sensor chaos is reliably rejected at the calibrated\n"
      " threshold, but novel *gestures* embed near Still — rejection cannot\n"
      " separate them, which is exactly why MAGNETO teaches them as new\n"
      " classes instead: see bench_incremental)\n");
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
