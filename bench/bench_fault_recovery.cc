// Fault-recovery sweep over the chunked cloud->edge bundle transport: for a
// grid of injected fault rates (drops plus in-flight corruption), delivers
// the same pretrained bundle over a seeded lossy NetworkLink and reports
// delivery latency, retry cost, and goodput. Every delivery must arrive
// byte-identical (per-chunk CRC + whole-payload CRC) or the bench fails —
// the robustness contract of DESIGN.md, "Fault tolerance & persistence".
//
// Emits BENCH_fault_recovery.json (+ metrics sidecar).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace magneto::bench {
namespace {

struct Row {
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  platform::TransportReport report;
};

int Run() {
  // One small pretrained bundle, reused across every fault rate so rows
  // differ only in link behaviour.
  core::CloudConfig config = BenchCloudConfig();
  config.backbone_dims = {64, 32};
  config.train.epochs = 6;
  core::CloudInitializer cloud(config);
  core::ModelBundle bundle =
      Unwrap(cloud.Initialize(BenchCorpus(33, 2, 6.0),
                              sensors::ActivityRegistry::BaseActivities()),
             "pretrain");
  const std::string payload = bundle.SerializeToString();

  const std::vector<std::pair<double, double>> rates = {
      {0.0, 0.0}, {0.05, 0.01}, {0.1, 0.025},
      {0.2, 0.05}, {0.3, 0.05}, {0.4, 0.1}};

  std::vector<Row> rows;
  for (const auto& [drop, corrupt] : rates) {
    platform::NetworkLink link(50.0, 10.0);
    if (drop > 0.0 || corrupt > 0.0) {
      platform::FaultPolicy policy;
      policy.drop_rate = drop;
      policy.truncate_rate = corrupt / 2.0;
      policy.bit_flip_rate = corrupt / 2.0;
      policy.seed = 17;
      link.SetFaultInjector(
          std::make_unique<platform::FaultInjector>(policy));
    }
    platform::BundleTransport transport(&link, platform::TransportOptions{});
    auto delivered =
        transport.Deliver(platform::Direction::kDownlink,
                          platform::PayloadKind::kModelArtifact, payload);
    if (!delivered.ok()) {
      std::fprintf(stderr, "delivery at drop=%.2f corrupt=%.2f failed: %s\n",
                   drop, corrupt, delivered.status().ToString().c_str());
      return 1;
    }
    if (delivered.value() != payload) {
      std::fprintf(stderr,
                   "delivered bundle not byte-identical at drop=%.2f\n", drop);
      return 1;
    }
    Row row;
    row.drop_rate = drop;
    row.corrupt_rate = corrupt;
    row.report = transport.report();
    rows.push_back(row);
    std::printf(
        "drop %4.0f%%  corrupt %4.1f%%: %5zu attempts (%4zu retries) "
        "%6.2f s  goodput %7.1f KiB/s\n",
        drop * 100.0, corrupt * 100.0, row.report.attempts,
        row.report.retries, row.report.seconds,
        row.report.goodput_bytes_per_s() / 1024.0);
  }

  obs::JsonWriter json = BenchJson("fault_recovery");
  json.Field("bundle_bytes", static_cast<uint64_t>(payload.size()))
      .Field("chunk_bytes",
             static_cast<uint64_t>(platform::TransportOptions{}.chunk_bytes))
      .Field("net_seed", static_cast<uint64_t>(17))
      .Key("rows")
      .BeginArray();
  for (const Row& row : rows) {
    json.BeginObject()
        .Field("drop_rate", row.drop_rate)
        .Field("corrupt_rate", row.corrupt_rate)
        .Field("chunks", static_cast<uint64_t>(row.report.chunks))
        .Field("attempts", static_cast<uint64_t>(row.report.attempts))
        .Field("retries", static_cast<uint64_t>(row.report.retries))
        .Field("wire_bytes", static_cast<uint64_t>(row.report.wire_bytes))
        .Field("delivery_seconds", row.report.seconds)
        .Field("backoff_seconds", row.report.backoff_seconds)
        .Field("goodput_bytes_per_s", row.report.goodput_bytes_per_s())
        .Field("byte_identical", true)
        .EndObject();
  }
  json.EndArray().EndObject();
  if (!json.WriteToFile("BENCH_fault_recovery.json")) {
    std::fprintf(stderr, "cannot write BENCH_fault_recovery.json\n");
    return 1;
  }
  std::printf("wrote BENCH_fault_recovery.json\n");
  WriteMetricsSnapshot("BENCH_fault_recovery.metrics.json");
  return 0;
}

}  // namespace
}  // namespace magneto::bench

int main() { return magneto::bench::Run(); }
