/// Ablation A3 — the §2.1 model-compression toolbox applied to MAGNETO's
/// backbone: int8 quantization, magnitude pruning, low-rank factorization
/// (Denton et al.), and knowledge distillation into a smaller student
/// (Hinton et al.).
///
/// For each variant: parameter count, bytes to ship to the edge, held-out
/// accuracy (NCM prototypes rebuilt through the variant's embedding), and
/// single-window embedding latency. The paper's position — that these
/// techniques "can be integrated into the platform incrementally" — is
/// demonstrated by every variant dropping into the same EdgeModel unchanged.

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

constexpr double kIntensity = 0.7;

double MeanEmbedLatencyMs(core::EdgeModel* model, const Matrix& window,
                          int reps = 200) {
  // Warm up.
  for (int i = 0; i < 10; ++i) (void)model->InferWindow(window);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    auto pred = model->InferWindow(window);
    CheckOk(pred.status(), "infer");
  }
  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  return total_ms / reps;
}

void Run() {
  // Pretrain a paper-sized backbone so the compression numbers are
  // representative of the real deployment artifact.
  core::CloudConfig config = PaperCloudConfig();
  config.train.epochs = 12;
  config.support_capacity = 50;
  core::CloudInitializer cloud(config);
  auto bundle = Unwrap(
      cloud.Initialize(HeterogeneousCorpus(1, 6, 1, 8.0, kIntensity),
                       sensors::ActivityRegistry::BaseActivities()),
      "cloud init");
  core::SupportSet support = std::move(bundle.support);
  const preprocess::Pipeline pipeline = bundle.pipeline;
  const sensors::ActivityRegistry registry = bundle.registry;
  core::EdgeModel baseline = std::move(bundle).ToEdgeModel();

  auto eval = Unwrap(pipeline.ProcessLabeled(
                         HeterogeneousCorpus(999, 5, 1, 8.0, kIntensity)),
                     "eval");
  sensors::SyntheticGenerator gen(2);
  const Matrix window =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 1.0)
          .samples;

  // Transfer set for the student: the support exemplars (all the edge has).
  const sensors::FeatureDataset transfer = support.AsDataset();

  struct Variant {
    std::string label;
    nn::Sequential net;
    std::string note;
  };
  std::vector<Variant> variants;
  variants.push_back({"fp32 baseline [1024x512x128x64x128]",
                      baseline.backbone().Clone(), ""});
  variants.push_back(
      {"int8 quantized",
       Unwrap(compress::QuantizeBackbone(baseline.backbone()), "quantize"),
       ""});
  for (double fraction : {0.5, 0.8, 0.95}) {
    nn::Sequential pruned = baseline.backbone().Clone();
    const double sparsity =
        Unwrap(compress::PruneByMagnitude(&pruned, fraction), "prune");
    char note[64];
    std::snprintf(note, sizeof(note), "sparsity %.0f%%, sparse-coded %zu KiB",
                  sparsity * 100.0,
                  compress::SparseEncodedBytes(pruned) / 1024);
    variants.push_back({"pruned " + std::to_string(int(fraction * 100)) + "%",
                        std::move(pruned), note});
  }
  for (double energy : {0.95, 0.8}) {
    variants.push_back(
        {"low-rank (energy " + std::to_string(int(energy * 100)) + "%)",
         Unwrap(compress::FactorizeBackbone(baseline.backbone(), energy),
                "factorize"),
         ""});
  }
  {
    compress::StudentOptions student_options;
    student_options.dims = {128, 64};
    student_options.epochs = 80;
    double final_loss = 0.0;
    variants.push_back(
        {"distilled student [128x64x128]",
         Unwrap(compress::DistillStudent(baseline.backbone(), transfer,
                                         student_options, &final_loss),
                "distill"),
         "distill MSE " + std::to_string(final_loss)});
  }

  std::printf("== A3: backbone compression for the edge ==\n");
  std::printf("%-38s %12s %12s %10s %14s  %s\n", "variant", "params",
              "ship KiB", "accuracy", "latency/win", "notes");
  const size_t baseline_params = baseline.backbone().NumParameters();
  for (Variant& v : variants) {
    core::EdgeModel model(pipeline, std::move(v.net), core::NcmClassifier{},
                          registry);
    CheckOk(model.RebuildPrototypes(support), "prototypes");
    const double acc = Accuracy(&model, eval);
    const double latency = MeanEmbedLatencyMs(&model, window);
    // NumParameters counts trainable fp32 scalars; the int8 variant is
    // inference-only, so report the baseline's count for comparability.
    const size_t params = model.backbone().NumParameters() > 0
                              ? model.backbone().NumParameters()
                              : baseline_params;
    std::printf("%-38s %12zu %12.1f %9.1f%% %11.3f ms  %s\n", v.label.c_str(),
                params,
                compress::SerializedBytes(model.backbone()) / 1024.0,
                acc * 100.0, latency, v.note.c_str());
  }
  std::printf("\n(every variant drops into the same EdgeModel/NCM stack — "
              "prototypes are rebuilt through the compressed embedding)\n");
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
