/// Experiments C5 + F3 (§3.3, §4.2.2): on-device incremental learning of a
/// new activity and the anti-forgetting mechanism decomposition.
///
/// The paper's update recipe has two ingredients: (i) rehearsal — retraining
/// on the support set mixed with the fresh windows — and (ii) embedding
/// distillation toward the frozen pre-update model. The first table ablates
/// the 2x2 grid, with naive fine-tuning (neither ingredient) as the
/// catastrophic-forgetting baseline the paper warns about.
///
/// Columns:
///   new     — recall of the new activity on fresh data
///   old     — mean recall of the five base activities after the update
///   forget  — mean per-class recall drop on the base activities
///
/// Also: the few-shot sweep (F3) and sequential addition of three custom
/// gestures (the "learning process can be repeated" claim).

#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

constexpr double kIntensity = 0.7;

struct BenchSetup {
  std::string wire;                       // pretrained bundle bytes
  sensors::FeatureDataset old_eval;       // held-out base-activity windows
};

BenchSetup Pretrain() {
  core::CloudConfig config = BenchCloudConfig();
  config.train.epochs = 20;
  core::CloudInitializer cloud(config);
  auto bundle = Unwrap(
      cloud.Initialize(HeterogeneousCorpus(1, 8, 1, 8.0, kIntensity),
                       sensors::ActivityRegistry::BaseActivities()),
      "cloud init");
  BenchSetup setup;
  setup.wire = bundle.SerializeToString();
  setup.old_eval = Unwrap(bundle.pipeline.ProcessLabeled(
                              HeterogeneousCorpus(999, 6, 1, 8.0, kIntensity)),
                          "old eval");
  return setup;
}

struct UpdateOutcome {
  learn::ForgettingReport forgetting;
};

UpdateOutcome RunUpdate(const BenchSetup& setup, bool rehearse, double lambda,
                        double ewc_weight, learn::DistillationKind kind,
                        const std::vector<sensors::Recording>& captures,
                        const std::vector<sensors::SignalModel>& eval_models,
                        const std::vector<std::string>& names) {
  auto bundle = Unwrap(core::ModelBundle::FromString(setup.wire), "clone");
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();

  learn::ConfusionMatrix before;
  for (const auto& [truth, pred] :
       Unwrap(model.Predict(setup.old_eval), "predict")) {
    before.Add(truth, pred);
  }

  core::IncrementalOptions options;
  options.train.epochs = 12;
  options.train.learning_rate = 1e-3;
  options.train.distill_weight = lambda;
  options.train.distillation = kind;
  options.train.seed = 13;
  options.rehearse_support = rehearse;
  options.ewc_weight = ewc_weight;
  core::IncrementalLearner learner(options);

  sensors::ActivityId last_id = -1;
  for (size_t i = 0; i < captures.size(); ++i) {
    auto report = Unwrap(learner.LearnNewActivity(&model, &support, names[i],
                                                  {captures[i]}),
                         "update");
    last_id = report.activity;
  }

  learn::ConfusionMatrix after;
  for (const auto& [truth, pred] :
       Unwrap(model.Predict(setup.old_eval), "predict")) {
    after.Add(truth, pred);
  }
  // Evaluate every added gesture on fresh captures (attributed to the last
  // class for the single-gesture tables; summed recall otherwise).
  sensors::SyntheticGenerator eval_gen(7);
  for (size_t i = 0; i < eval_models.size(); ++i) {
    const sensors::ActivityId id =
        Unwrap(model.registry().IdOf(names[i]), "id");
    for (int rep = 0; rep < 3; ++rep) {
      sensors::Recording rec = eval_gen.Generate(eval_models[i], 8.0);
      for (const auto& p : Unwrap(model.InferRecording(rec), "infer")) {
        after.Add(id, p.prediction.activity);
      }
    }
  }
  UpdateOutcome outcome;
  outcome.forgetting = learn::ComputeForgetting(before, after, last_id);
  return outcome;
}

void Run() {
  BenchSetup setup = Pretrain();
  sensors::SignalModel gesture = sensors::MakeGestureModel(4242);
  sensors::SyntheticGenerator capture_gen(11);
  const sensors::Recording capture = capture_gen.Generate(gesture, 25.0);

  std::printf("== C5: anti-forgetting mechanism decomposition "
              "(learning 'Gesture Hi', 25 s) ==\n");
  std::printf("%-40s %8s %8s %8s\n", "update recipe", "new", "old", "forget");
  const struct {
    const char* label;
    bool rehearse;
    double lambda;
    double ewc;
    learn::DistillationKind kind;
  } kRows[] = {
      {"naive fine-tune (no rehearsal, no KD)", false, 0.0, 0.0,
       learn::DistillationKind::kMse},
      {"distillation only (LwF-style)", false, 1.0, 0.0,
       learn::DistillationKind::kMse},
      {"EWC only (Kirkpatrick et al.)", false, 0.0, 50.0,
       learn::DistillationKind::kMse},
      {"rehearsal only", true, 0.0, 0.0, learn::DistillationKind::kMse},
      {"rehearsal + EWC", true, 0.0, 50.0, learn::DistillationKind::kMse},
      {"rehearsal + MSE distillation (paper)", true, 1.0, 0.0,
       learn::DistillationKind::kMse},
      {"rehearsal + cosine distillation", true, 1.0, 0.0,
       learn::DistillationKind::kCosine},
      {"rehearsal + strong MSE (lambda=4)", true, 4.0, 0.0,
       learn::DistillationKind::kMse},
  };
  for (const auto& row : kRows) {
    auto outcome = RunUpdate(setup, row.rehearse, row.lambda, row.ewc,
                             row.kind, {capture}, {gesture}, {"Gesture Hi"});
    std::printf("%-40s %7.1f%% %7.1f%% %7.1f%%\n", row.label,
                outcome.forgetting.new_class_accuracy * 100.0,
                outcome.forgetting.old_class_accuracy_after * 100.0,
                outcome.forgetting.mean_forgetting * 100.0);
  }

  std::printf("\n== F3: few-shot sweep (recording length, paper recipe) ==\n");
  std::printf("%-10s %8s %8s %8s\n", "seconds", "new", "old", "forget");
  for (double seconds : {5.0, 10.0, 20.0, 40.0}) {
    const sensors::Recording rec = capture_gen.Generate(gesture, seconds);
    auto outcome =
        RunUpdate(setup, true, 1.0, 0.0, learn::DistillationKind::kMse, {rec},
                  {gesture}, {"Gesture Hi"});
    std::printf("%-10.0f %7.1f%% %7.1f%% %7.1f%%\n", seconds,
                outcome.forgetting.new_class_accuracy * 100.0,
                outcome.forgetting.old_class_accuracy_after * 100.0,
                outcome.forgetting.mean_forgetting * 100.0);
  }

  std::printf("\n== sequential additions: three custom gestures, one after "
              "another ==\n");
  std::printf("%-28s %8s %8s %8s\n", "recipe after 3 updates", "new(last)",
              "old", "forget");
  std::vector<sensors::SignalModel> gestures = {
      sensors::MakeGestureModel(1001), sensors::MakeGestureModel(2002),
      sensors::MakeGestureModel(3003)};
  std::vector<sensors::Recording> captures;
  for (const auto& g : gestures) {
    captures.push_back(capture_gen.Generate(g, 25.0));
  }
  const std::vector<std::string> names = {"Gesture A", "Gesture B",
                                          "Gesture C"};
  for (bool rehearse : {false, true}) {
    auto outcome =
        RunUpdate(setup, rehearse, rehearse ? 1.0 : 0.0, 0.0,
                  learn::DistillationKind::kMse, captures, gestures, names);
    std::printf("%-28s %7.1f%% %7.1f%% %7.1f%%\n",
                rehearse ? "paper (rehearsal + KD)" : "naive fine-tune",
                outcome.forgetting.new_class_accuracy * 100.0,
                outcome.forgetting.old_class_accuracy_after * 100.0,
                outcome.forgetting.mean_forgetting * 100.0);
  }
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
