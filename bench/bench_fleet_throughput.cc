// Multi-session serving throughput in two regimes, emitted as BENCH_fleet.json
// with every run labeled by `mode`:
//
//  * closed_loop — N session threads stream frames through PushFrame and block
//    for each prediction. Offered load can never exceed service capacity, so
//    micro-batches only form when session threads collide; this measures the
//    interactive path (offered_rate is recorded as 0: the callers self-clock).
//  * open_loop — a Poisson arrival generator pushes pre-featurized windows
//    through SubmitWindow at a fixed offered rate, independent of how fast the
//    fleet drains them. The bounded admission queue builds a backlog whenever
//    arrivals outpace service, which is exactly what lets the serve workers
//    drain multi-window micro-batches (mean_batch > 1) — and sheds arrivals
//    once the queue is full instead of queueing without bound. The rate sweep
//    is calibrated against the measured service capacity of this machine so
//    the under/over-saturation shape is reproducible anywhere.
//
// Speedups are only meaningful on a machine with that many cores;
// `hardware_threads` is recorded in the JSON so readers can judge.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace magneto::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct ClosedLoopResult {
  size_t sessions = 0;
  size_t threads = 0;
  size_t windows = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t requests = 0;
  uint64_t batches = 0;
};

/// One serving stage's latency quantiles, read from the fleet.stage.*
/// histograms. The five stages tile the admit -> publish interval, so their
/// means sum to the end-to-end mean exactly (quantiles approximately).
struct StageLatency {
  const char* stage = nullptr;  ///< fleet.stage.<stage>_us suffix
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

constexpr const char* kStageNames[] = {"queue", "batch_wait", "embed",
                                       "classify", "publish"};

struct OpenLoopResult {
  double offered_rate = 0.0;  ///< target arrivals per second
  size_t arrivals = 0;
  size_t admitted = 0;
  size_t rejected = 0;
  size_t served = 0;
  double seconds = 0.0;  ///< generator start -> queue fully drained
  double classify_p50_us = 0.0;
  double classify_p99_us = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p99_us = 0.0;
  double e2e_mean_us = 0.0;
  double e2e_p50_us = 0.0;
  double e2e_p99_us = 0.0;
  std::vector<StageLatency> stages;  ///< one entry per kStageNames
  uint64_t requests = 0;
  uint64_t batches = 0;
  const char* health = "OK";  ///< end-of-run SLO state (when monitored)
};

/// Per-session frame streams, personalised per simulated user. Generated
/// once per session count so every thread-count run replays identical input.
std::vector<std::vector<sensors::Frame>> SessionStreams(size_t sessions,
                                                        double seconds) {
  const sensors::ActivityId cycle[] = {sensors::kStill, sensors::kWalk,
                                       sensors::kRun};
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  std::vector<std::vector<sensors::Frame>> streams(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    sensors::UserProfile user(300 + s, 0.5);
    sensors::SyntheticGenerator gen(400 + s);
    sensors::Recording rec =
        gen.Generate(user.Personalize(lib[cycle[s % 3]]), seconds);
    streams[s].resize(rec.num_samples());
    for (size_t i = 0; i < rec.num_samples(); ++i) {
      for (size_t c = 0; c < sensors::kNumChannels; ++c) {
        streams[s][i][c] = rec.samples.At(i, c);
      }
    }
  }
  return streams;
}

core::ModelBundle CopyBundle(const core::ModelBundle& bundle) {
  core::ModelBundle copy;
  copy.pipeline = bundle.pipeline;
  copy.backbone = bundle.backbone.Clone();
  copy.classifier = bundle.classifier;
  copy.registry = bundle.registry;
  copy.support = bundle.support;
  return copy;
}

ClosedLoopResult DriveClosedLoop(
    const core::ModelBundle& bundle,
    const std::vector<std::vector<sensors::Frame>>& streams, size_t threads) {
  SetParallelThreads(threads);
  obs::Registry::Global().ResetAll();

  platform::FleetOptions options;
  options.max_batch = 8;
  auto fleet =
      Unwrap(platform::EdgeFleet::Create(CopyBundle(bundle), streams.size(),
                                         options),
             "create fleet");

  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  const auto t0 = Clock::now();
  for (size_t s = 0; s < streams.size(); ++s) {
    drivers.emplace_back([&, s] {
      for (const sensors::Frame& frame : streams[s]) {
        if (!fleet->PushFrame(s, frame).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (failures.load() > 0) {
    std::fprintf(stderr, "fleet run had %d PushFrame failures\n",
                 failures.load());
    std::exit(1);
  }

  ClosedLoopResult result;
  result.sessions = streams.size();
  result.threads = threads;
  result.seconds = wall;
  for (size_t s = 0; s < streams.size(); ++s) {
    result.windows += fleet->session_stats(s).windows;
  }
  const obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  if (const auto* h = snap.FindHistogram("fleet.classify_us")) {
    result.p50_us = h->Quantile(0.5);
    result.p99_us = h->Quantile(0.99);
  }
  if (const auto* c = snap.FindCounter("fleet.requests")) {
    result.requests = c->value;
  }
  if (const auto* c = snap.FindCounter("fleet.batches")) {
    result.batches = c->value;
  }
  return result;
}

/// Pre-featurizes `count` windows per session through the bundle's pipeline —
/// the open-loop generator replays these so the measured path is admission +
/// batching + embedding + classification, not featurization.
std::vector<std::vector<std::vector<float>>> FeaturizeWindows(
    const core::ModelBundle& bundle,
    const std::vector<std::vector<sensors::Frame>>& streams, size_t count) {
  const auto& seg = bundle.pipeline.config().segmentation;
  std::vector<std::vector<std::vector<float>>> features(streams.size());
  for (size_t s = 0; s < streams.size(); ++s) {
    for (size_t w = 0; w < count; ++w) {
      const size_t start = (w * seg.stride) %
                           (streams[s].size() - seg.window_samples + 1);
      Matrix window(seg.window_samples, sensors::kNumChannels);
      for (size_t r = 0; r < seg.window_samples; ++r) {
        for (size_t c = 0; c < sensors::kNumChannels; ++c) {
          window.At(r, c) = streams[s][start + r][c];
        }
      }
      features[s].push_back(
          Unwrap(bundle.pipeline.ProcessWindow(window), "featurize"));
    }
  }
  return features;
}

/// Fires `arrivals` windows at the fleet with exponential inter-arrival times
/// (Poisson process at `rate` arrivals/s; rate <= 0 = as fast as possible),
/// round-robin across sessions, then drains. Spin-waits between arrivals:
/// sleep granularity is far coarser than the microsecond gaps at high rates.
OpenLoopResult DriveOpenLoop(
    const core::ModelBundle& bundle,
    const std::vector<std::vector<std::vector<float>>>& features,
    const platform::FleetOptions& base_options, double rate,
    size_t arrivals, obs::SloMonitor* slo = nullptr) {
  obs::Registry::Global().ResetAll();
  platform::FleetOptions options = base_options;
  options.slo_monitor = slo;
  auto fleet =
      Unwrap(platform::EdgeFleet::Create(CopyBundle(bundle), features.size(),
                                         options),
             "create fleet");

  // The exporter samples health on a timer so the run leaves a time-series,
  // not just end-of-run totals.
  if (slo != nullptr) slo->StartExporter(/*period_seconds=*/0.02);
  Rng rng(917);
  const auto t0 = Clock::now();
  auto next = t0;
  for (size_t i = 0; i < arrivals; ++i) {
    if (rate > 0.0) {
      const double gap_s = -std::log(1.0 - rng.Uniform()) / rate;
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap_s));
      while (Clock::now() < next) {
      }
    }
    const size_t session = i % features.size();
    const auto& pool = features[session];
    fleet->SubmitWindow(session, pool[(i / features.size()) % pool.size()]);
  }
  fleet->DrainSubmitted();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (slo != nullptr) slo->StopExporter();

  OpenLoopResult result;
  result.offered_rate = rate;
  result.arrivals = arrivals;
  result.seconds = wall;
  for (size_t s = 0; s < features.size(); ++s) {
    const platform::FleetSessionStats stats = fleet->session_stats(s);
    result.admitted += stats.submitted;
    result.rejected += stats.rejected;
    result.served += stats.windows;
  }
  const obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  if (const auto* h = snap.FindHistogram("fleet.classify_us")) {
    result.classify_p50_us = h->Quantile(0.5);
    result.classify_p99_us = h->Quantile(0.99);
  }
  if (const auto* h = snap.FindHistogram("fleet.queue_wait_us")) {
    result.queue_wait_p50_us = h->Quantile(0.5);
    result.queue_wait_p99_us = h->Quantile(0.99);
  }
  if (const auto* h = snap.FindHistogram("fleet.e2e_us")) {
    result.e2e_mean_us = h->count > 0 ? h->sum / h->count : 0.0;
    result.e2e_p50_us = h->Quantile(0.5);
    result.e2e_p99_us = h->Quantile(0.99);
  }
  for (const char* stage : kStageNames) {
    StageLatency lat;
    lat.stage = stage;
    const std::string name = std::string("fleet.stage.") + stage + "_us";
    if (const auto* h = snap.FindHistogram(name)) {
      // The five stage means sum to the e2e mean exactly (the stages tile
      // admit -> publish); the quantiles are log-bucket upper bounds and
      // only sum approximately.
      lat.mean_us = h->count > 0 ? h->sum / h->count : 0.0;
      lat.p50_us = h->Quantile(0.5);
      lat.p99_us = h->Quantile(0.99);
    }
    result.stages.push_back(lat);
  }
  if (const auto* c = snap.FindCounter("fleet.requests")) {
    result.requests = c->value;
  }
  if (const auto* c = snap.FindCounter("fleet.batches")) {
    result.batches = c->value;
  }
  if (slo != nullptr) {
    result.health = obs::HealthStateName(slo->Evaluate().state);
  }
  return result;
}

double MeanBatch(uint64_t requests, uint64_t batches) {
  return batches > 0
             ? static_cast<double>(requests) / static_cast<double>(batches)
             : 0.0;
}

}  // namespace
}  // namespace magneto::bench

int main() {
  using namespace magneto;
  using namespace magneto::bench;

  core::CloudConfig config = BenchCloudConfig();
  config.train.epochs = 8;  // the serving path is what's measured, not this
  core::CloudInitializer cloud(config);
  core::ModelBundle bundle =
      Unwrap(cloud.Initialize(BenchCorpus(/*seed=*/33, /*per_class=*/3),
                              sensors::ActivityRegistry::BaseActivities()),
             "pretrain");

  // --- Closed loop: sessions x pool threads ---
  const std::vector<size_t> session_sweep = {1, 4, 8, 16};
  const std::vector<size_t> thread_sweep = {1, 2, 4, 8};
  const double seconds_per_session = 8.0;

  std::vector<ClosedLoopResult> closed;
  for (size_t sessions : session_sweep) {
    const auto streams = SessionStreams(sessions, seconds_per_session);
    for (size_t threads : thread_sweep) {
      ClosedLoopResult r = DriveClosedLoop(bundle, streams, threads);
      closed.push_back(r);
      std::printf(
          "closed  sessions %2zu  threads %zu: %4zu windows in %6.1f ms "
          "(%7.0f win/s, p50 %6.0f us, p99 %6.0f us, mean batch %.2f)\n",
          r.sessions, r.threads, r.windows, r.seconds * 1e3,
          r.windows / r.seconds, r.p50_us, r.p99_us,
          MeanBatch(r.requests, r.batches));
    }
  }

  // --- Open loop: Poisson rate sweep over a fixed serving configuration ---
  // Intra-op parallelism is pinned to 1 so all concurrency comes from the
  // serve workers + concurrent batch leaders — the lock-free const-backbone
  // path this bench exists to measure.
  SetParallelThreads(1);
  constexpr size_t kOpenLoopSessions = 8;
  platform::FleetOptions open_options;
  open_options.max_batch = 8;
  open_options.max_concurrent_batches = 4;
  open_options.serve_threads = 4;
  open_options.admission_capacity = 256;

  const auto open_streams = SessionStreams(kOpenLoopSessions, 4.0);
  const auto features = FeaturizeWindows(bundle, open_streams, 32);

  // Calibrate: an unthrottled burst measures this machine's service
  // capacity, so the sweep brackets saturation identically on any hardware.
  OpenLoopResult calibration =
      DriveOpenLoop(bundle, features, open_options, /*rate=*/0.0,
                    /*arrivals=*/4000);
  const double capacity = calibration.served / calibration.seconds;
  std::printf("open    calibration: %.0f windows/s service capacity\n",
              capacity);

  // Trace overhead: what fraction of one request's service time the tracing
  // machinery costs when enabled. Measured directly — a tight loop emitting
  // exactly the event sequence one served request records (the
  // EdgeFleet::SubmitWindow span plus the s/t/f flow markers; the
  // per-chunk and per-batch spans amortize across many requests and are
  // sub-dominant) — rather than as a trace-on vs trace-off throughput A/B:
  // on small or oversubscribed machines the A/B's run-to-run scheduler
  // noise (30%+ observed) dwarfs a sub-microsecond per-request cost. The
  // budget is < 2% of the calibrated per-request service time.
  obs::SetTraceEnabled(true);
  constexpr int kTraceReps = 200000;
  // Cleared every 2048 iterations (5 events each) so the loop measures the
  // no-overwrite steady state — a ring sized for its trace window — not the
  // perpetually-wrapping worst case the counters already surface.
  constexpr int kTraceClearEvery = 2048;
  const uint64_t trace_ts = obs::RequestContext::NowNs();
  const auto trace_t0 = Clock::now();
  for (int i = 0; i < kTraceReps; ++i) {
    if (i % kTraceClearEvery == 0) obs::ClearTrace();
    const uint64_t id = static_cast<uint64_t>(i) + 1;
    obs::TraceSpan span("bench.request", trace_ts);
    obs::TraceFlowBeginAt("bench.flow", id, trace_ts);
    obs::TraceFlowStepAt("bench.flow", id, trace_ts);
    obs::TraceFlowEndAt("bench.flow", id, trace_ts);
  }
  const double trace_ns_per_request =
      std::chrono::duration<double, std::nano>(Clock::now() - trace_t0)
          .count() /
      kTraceReps;
  obs::SetTraceEnabled(false);
  obs::ClearTrace();
  const double service_ns_per_request = capacity > 0 ? 1e9 / capacity : 0.0;
  const double trace_overhead =
      service_ns_per_request > 0 ? trace_ns_per_request / service_ns_per_request
                                 : 0.0;
  std::printf(
      "open    trace overhead: %.0f ns/request vs %.0f ns service "
      "(%.2f%%)\n",
      trace_ns_per_request, service_ns_per_request, trace_overhead * 100.0);

  const std::vector<double> load_factors = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<OpenLoopResult> open;
  // Each run gets a fresh SLO monitor (rolling window must not blend load
  // points); the last one stays alive so its health block + exporter
  // timeline can be embedded in the final metrics snapshot.
  std::unique_ptr<obs::SloMonitor> slo;
  for (double factor : load_factors) {
    const double rate = factor * capacity;
    const size_t arrivals = static_cast<size_t>(
        std::clamp(rate * 0.75, 1000.0, 30000.0));
    slo = std::make_unique<obs::SloMonitor>();
    OpenLoopResult r = DriveOpenLoop(bundle, features, open_options, rate,
                                     arrivals, slo.get());
    open.push_back(r);
    std::printf(
        "open    rate %8.0f/s (%.2fx): %5zu/%5zu admitted, %5zu shed, "
        "%7.0f win/s, classify p99 %6.0f us, wait p99 %8.0f us, "
        "mean batch %.2f, %s\n",
        r.offered_rate, factor, r.admitted, r.arrivals, r.rejected,
        r.served / r.seconds, r.classify_p99_us, r.queue_wait_p99_us,
        MeanBatch(r.requests, r.batches), r.health);
  }

  obs::JsonWriter json = BenchJson("fleet_throughput");
  json.Field("hardware_threads", std::thread::hardware_concurrency())
      .Field("seconds_per_session", seconds_per_session)
      .Field("max_batch", static_cast<uint64_t>(8))
      .Key("open_loop_config")
      .BeginObject()
      .Field("sessions", static_cast<uint64_t>(kOpenLoopSessions))
      .Field("serve_threads",
             static_cast<uint64_t>(open_options.serve_threads))
      .Field("max_concurrent_batches",
             static_cast<uint64_t>(open_options.max_concurrent_batches))
      .Field("admission_capacity",
             static_cast<uint64_t>(open_options.admission_capacity))
      .Field("calibrated_capacity_windows_per_s", capacity)
      .EndObject()
      .Key("trace_overhead")
      .BeginObject()
      .Field("trace_ns_per_request", trace_ns_per_request)
      .Field("service_ns_per_request", service_ns_per_request)
      .Field("overhead_fraction", trace_overhead)
      .Field("budget_fraction", 0.02)
      .EndObject()
      .Key("runs")
      .BeginArray();
  for (const ClosedLoopResult& r : closed) {
    json.BeginObject()
        .Field("mode", std::string("closed_loop"))
        .Field("offered_rate", 0.0)  // callers self-clock on the reply
        .Field("sessions", static_cast<uint64_t>(r.sessions))
        .Field("threads", static_cast<uint64_t>(r.threads))
        .Field("windows", static_cast<uint64_t>(r.windows))
        .Field("seconds", r.seconds)
        .Field("windows_per_s", r.windows / r.seconds)
        .Field("classify_p50_us", r.p50_us)
        .Field("classify_p99_us", r.p99_us)
        .Field("requests", r.requests)
        .Field("batches", r.batches)
        .Field("mean_batch", MeanBatch(r.requests, r.batches))
        .EndObject();
  }
  for (const OpenLoopResult& r : open) {
    json.BeginObject()
        .Field("mode", std::string("open_loop"))
        .Field("offered_rate", r.offered_rate)
        .Field("arrivals", static_cast<uint64_t>(r.arrivals))
        .Field("admitted", static_cast<uint64_t>(r.admitted))
        .Field("rejected", static_cast<uint64_t>(r.rejected))
        .Field("windows", static_cast<uint64_t>(r.served))
        .Field("seconds", r.seconds)
        .Field("windows_per_s", r.served / r.seconds)
        .Field("classify_p50_us", r.classify_p50_us)
        .Field("classify_p99_us", r.classify_p99_us)
        .Field("queue_wait_p50_us", r.queue_wait_p50_us)
        .Field("queue_wait_p99_us", r.queue_wait_p99_us)
        .Field("e2e_mean_us", r.e2e_mean_us)
        .Field("e2e_p50_us", r.e2e_p50_us)
        .Field("e2e_p99_us", r.e2e_p99_us);
    // Per-stage attribution: the five stages tile admit -> publish, so the
    // stage means sum to e2e_mean_us and explain where latency is spent.
    json.Key("stages").BeginObject();
    for (const StageLatency& lat : r.stages) {
      json.Key(lat.stage)
          .BeginObject()
          .Field("mean_us", lat.mean_us)
          .Field("p50_us", lat.p50_us)
          .Field("p99_us", lat.p99_us)
          .EndObject();
    }
    json.EndObject()
        .Field("health", std::string(r.health))
        .Field("requests", r.requests)
        .Field("batches", r.batches)
        .Field("mean_batch", MeanBatch(r.requests, r.batches))
        .EndObject();
  }
  json.EndArray().EndObject();
  if (!json.WriteToFile("BENCH_fleet.json")) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  // The snapshot reflects the last (4x overload) sweep run; its SLO
  // monitor's health block — including the exporter's time-series — rides
  // along under "health".
  const std::string snapshot_json =
      obs::Registry::Global().TakeSnapshot().ToJson(
          /*pretty=*/true, [&](obs::JsonWriter& w) {
            w.Key("health");
            slo->AppendHealthJson(w);
          });
  if (!obs::WriteStringToFile(snapshot_json, "BENCH_fleet.metrics.json")) {
    std::fprintf(stderr, "cannot write BENCH_fleet.metrics.json\n");
    return 1;
  }
  std::printf("wrote BENCH_fleet.json (hardware threads: %u)\n",
              std::thread::hardware_concurrency());
  return 0;
}
