// Multi-session serving throughput: N concurrent sessions stream synthetic
// users through one shared EdgeFleet deployment while embedding forwards are
// micro-batched across sessions. Sweeps session count x pool threads and
// emits BENCH_fleet.json (throughput, p50/p99 classify latency, batch
// coalescing) so the serving-path perf trajectory is tracked across PRs.
//
// Speedups are only meaningful on a machine with that many cores;
// `hardware_threads` is recorded in the JSON so readers can judge.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace magneto::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  size_t sessions = 0;
  size_t threads = 0;
  size_t windows = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t requests = 0;
  uint64_t batches = 0;
};

/// Per-session frame streams, personalised per simulated user. Generated
/// once per session count so every thread-count run replays identical input.
std::vector<std::vector<sensors::Frame>> SessionStreams(size_t sessions,
                                                        double seconds) {
  const sensors::ActivityId cycle[] = {sensors::kStill, sensors::kWalk,
                                       sensors::kRun};
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  std::vector<std::vector<sensors::Frame>> streams(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    sensors::UserProfile user(300 + s, 0.5);
    sensors::SyntheticGenerator gen(400 + s);
    sensors::Recording rec =
        gen.Generate(user.Personalize(lib[cycle[s % 3]]), seconds);
    streams[s].resize(rec.num_samples());
    for (size_t i = 0; i < rec.num_samples(); ++i) {
      for (size_t c = 0; c < sensors::kNumChannels; ++c) {
        streams[s][i][c] = rec.samples.At(i, c);
      }
    }
  }
  return streams;
}

RunResult DriveFleet(const core::ModelBundle& bundle,
                     const std::vector<std::vector<sensors::Frame>>& streams,
                     size_t threads) {
  SetParallelThreads(threads);
  obs::Registry::Global().ResetAll();

  core::ModelBundle copy;
  copy.pipeline = bundle.pipeline;
  copy.backbone = bundle.backbone.Clone();
  copy.classifier = bundle.classifier;
  copy.registry = bundle.registry;
  copy.support = bundle.support;
  platform::FleetOptions options;
  options.max_batch = 8;
  auto fleet = Unwrap(
      platform::EdgeFleet::Create(std::move(copy), streams.size(), options),
      "create fleet");

  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  const auto t0 = Clock::now();
  for (size_t s = 0; s < streams.size(); ++s) {
    drivers.emplace_back([&, s] {
      for (const sensors::Frame& frame : streams[s]) {
        if (!fleet->PushFrame(s, frame).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (failures.load() > 0) {
    std::fprintf(stderr, "fleet run had %d PushFrame failures\n",
                 failures.load());
    std::exit(1);
  }

  RunResult result;
  result.sessions = streams.size();
  result.threads = threads;
  result.seconds = wall;
  for (size_t s = 0; s < streams.size(); ++s) {
    result.windows += fleet->session_stats(s).windows;
  }
  const obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  if (const auto* h = snap.FindHistogram("fleet.classify_us")) {
    result.p50_us = h->Quantile(0.5);
    result.p99_us = h->Quantile(0.99);
  }
  if (const auto* c = snap.FindCounter("fleet.requests")) {
    result.requests = c->value;
  }
  if (const auto* c = snap.FindCounter("fleet.batches")) {
    result.batches = c->value;
  }
  return result;
}

}  // namespace
}  // namespace magneto::bench

int main() {
  using namespace magneto;
  using namespace magneto::bench;

  core::CloudConfig config = BenchCloudConfig();
  config.train.epochs = 8;  // the serving path is what's measured, not this
  core::CloudInitializer cloud(config);
  core::ModelBundle bundle =
      Unwrap(cloud.Initialize(BenchCorpus(/*seed=*/33, /*per_class=*/3),
                              sensors::ActivityRegistry::BaseActivities()),
             "pretrain");

  const std::vector<size_t> session_sweep = {1, 4, 8, 16};
  const std::vector<size_t> thread_sweep = {1, 2, 4, 8};
  const double seconds_per_session = 8.0;

  std::vector<RunResult> results;
  for (size_t sessions : session_sweep) {
    const auto streams = SessionStreams(sessions, seconds_per_session);
    for (size_t threads : thread_sweep) {
      RunResult r = DriveFleet(bundle, streams, threads);
      results.push_back(r);
      std::printf(
          "sessions %2zu  threads %zu: %4zu windows in %6.1f ms "
          "(%7.0f win/s, p50 %6.0f us, p99 %6.0f us, %llu reqs / %llu "
          "batches)\n",
          r.sessions, r.threads, r.windows, r.seconds * 1e3,
          r.windows / r.seconds, r.p50_us, r.p99_us,
          static_cast<unsigned long long>(r.requests),
          static_cast<unsigned long long>(r.batches));
    }
  }

  obs::JsonWriter json = BenchJson("fleet_throughput");
  json.Field("hardware_threads", std::thread::hardware_concurrency())
      .Field("seconds_per_session", seconds_per_session)
      .Field("max_batch", static_cast<uint64_t>(8))
      .Key("runs")
      .BeginArray();
  for (const RunResult& r : results) {
    json.BeginObject()
        .Field("sessions", static_cast<uint64_t>(r.sessions))
        .Field("threads", static_cast<uint64_t>(r.threads))
        .Field("windows", static_cast<uint64_t>(r.windows))
        .Field("seconds", r.seconds)
        .Field("windows_per_s", r.windows / r.seconds)
        .Field("classify_p50_us", r.p50_us)
        .Field("classify_p99_us", r.p99_us)
        .Field("requests", r.requests)
        .Field("batches", r.batches)
        .Field("mean_batch",
               r.batches > 0 ? static_cast<double>(r.requests) /
                                   static_cast<double>(r.batches)
                             : 0.0)
        .EndObject();
  }
  json.EndArray().EndObject();
  if (!json.WriteToFile("BENCH_fleet.json")) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  WriteMetricsSnapshot("BENCH_fleet.metrics.json");
  std::printf("wrote BENCH_fleet.json (hardware threads: %u)\n",
              std::thread::hardware_concurrency());
  return 0;
}
