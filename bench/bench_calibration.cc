/// Experiment C7 (§3.3, final paragraph): "calibrating an activity to more
/// closely align with the user's behavior ... the data for the targeted
/// activity within the support set is replaced with newly acquired data."
///
/// Sweeps the user's deviation from the canonical activity signature
/// (`UserProfile` intensity) and reports the user's Walk recognition before
/// vs after calibration, plus retention of the untouched activities.

#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

double RecognitionRate(core::EdgeModel* model, const sensors::Recording& rec,
                       sensors::ActivityId expected) {
  auto preds = Unwrap(model->InferRecording(rec), "infer");
  if (preds.empty()) return 0.0;
  size_t hits = 0;
  for (const auto& p : preds) hits += (p.prediction.activity == expected);
  return static_cast<double>(hits) / preds.size();
}

void Run() {
  core::CloudInitializer cloud(BenchCloudConfig());
  auto base_bundle = Unwrap(
      cloud.Initialize(BenchCorpus(1),
                       sensors::ActivityRegistry::BaseActivities()),
      "cloud init");
  const std::string wire = base_bundle.SerializeToString();

  std::printf("== C7: calibration of Walk to a user's personal style ==\n");
  std::printf("%-10s %12s %12s %14s %12s\n", "intensity", "before", "after",
              "other acts", "gain");
  for (double intensity : {0.0, 0.3, 0.6, 0.9, 1.2}) {
    auto bundle = Unwrap(core::ModelBundle::FromString(wire), "clone");
    core::SupportSet support = std::move(bundle.support);
    core::EdgeModel model = std::move(bundle).ToEdgeModel();

    sensors::UserProfile user(/*seed=*/1000 + static_cast<uint64_t>(
                                  intensity * 100),
                              intensity);
    sensors::ActivityLibrary personal =
        user.Personalize(sensors::DefaultActivityLibrary());
    sensors::SyntheticGenerator phone(17);

    const double before = RecognitionRate(
        &model, phone.Generate(personal[sensors::kWalk], 12.0), sensors::kWalk);

    core::IncrementalOptions options;
    options.train.epochs = 12;
    options.train.learning_rate = 1e-3;
    options.train.distill_weight = 1.0;
    options.train.seed = 19;
    core::IncrementalLearner learner(options);
    CheckOk(learner
                .Calibrate(&model, &support, sensors::kWalk,
                           {phone.Generate(personal[sensors::kWalk], 25.0)})
                .status(),
            "calibrate");

    const double after = RecognitionRate(
        &model, phone.Generate(personal[sensors::kWalk], 12.0), sensors::kWalk);

    // Retention on the canonical versions of the untouched activities.
    sensors::ActivityLibrary canonical = sensors::DefaultActivityLibrary();
    double others = 0.0;
    const sensors::ActivityId kOthers[] = {sensors::kDrive, sensors::kEScooter,
                                           sensors::kRun, sensors::kStill};
    for (sensors::ActivityId id : kOthers) {
      others += RecognitionRate(&model, phone.Generate(canonical[id], 6.0), id);
    }
    others /= 4.0;

    std::printf("%-10.1f %11.1f%% %11.1f%% %13.1f%% %+11.1f%%\n", intensity,
                before * 100.0, after * 100.0, others * 100.0,
                (after - before) * 100.0);
  }
  std::printf("\n(intensity 0 = canonical user: calibration is a no-op win;\n"
              " high intensity = strongly personal gait: calibration "
              "recovers recognition the population model lost)\n");
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
