/// Experiment F1 (Figure 1): cloud-based vs edge-based HAR deployment.
///
/// Both protocols serve the same pre-trained model over the same simulated
/// link; the figure's claims are (i) per-window latency — the cloud loop pays
/// RTT + serialisation on every window, the edge loop only local compute —
/// and (ii) privacy — the cloud loop exfiltrates every window, the edge loop
/// uplinks nothing. Sweeps the link quality and reports the break-even
/// stream length at which downloading the bundle beats cloud round trips.

#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

void Run() {
  platform::CloudServer server(BenchCloudConfig());
  CheckOk(server.Pretrain(BenchCorpus(1),
                          sensors::ActivityRegistry::BaseActivities()),
          "pretrain");
  auto bundle = Unwrap(
      core::ModelBundle::FromString(
          Unwrap(server.ServeBundleBytes(), "serve")),
      "parse bundle");

  sensors::SyntheticGenerator phone(2);
  auto stream = phone.GenerateDataset(sensors::DefaultActivityLibrary(),
                                      /*per_class=*/1, /*duration_s=*/12.0);

  const struct {
    const char* name;
    double rtt_ms;
    double mbps;
  } kNetworks[] = {
      {"5G", 20.0, 100.0},
      {"4G", 60.0, 20.0},
      {"3G", 120.0, 5.0},
      {"congested", 200.0, 2.0},
  };

  std::printf("== F1: protocol comparison (60 windows of mixed activity) ==\n");
  std::printf("%-10s %-16s %14s %14s %16s %14s %9s %12s\n", "network",
              "protocol", "latency/win", "total latency", "uplink user B",
              "downlink B", "accuracy", "energy (J)");
  for (const auto& net : kNetworks) {
    platform::NetworkLink cloud_link(net.rtt_ms, net.mbps);
    platform::NetworkLink raw_link(net.rtt_ms, net.mbps);
    platform::NetworkLink edge_link(net.rtt_ms, net.mbps);

    auto cloud = Unwrap(platform::CloudProtocol(&server, &cloud_link)
                            .Run(stream, bundle.pipeline),
                        "cloud protocol");
    auto raw = Unwrap(platform::CloudProtocol(&server, &raw_link)
                          .Run(stream, bundle.pipeline,
                               /*uplink_raw_windows=*/true),
                      "cloud raw protocol");
    auto edge = Unwrap(platform::EdgeProtocol(&server, &edge_link).Run(stream),
                       "edge protocol");

    for (const auto* m : {&cloud, &raw, &edge}) {
      std::printf(
          "%-10s %-16s %11.2f ms %11.2f s %16zu %14zu %8.1f%% %12.3f\n",
          net.name, m->protocol.c_str(), m->mean_window_latency_s * 1000.0,
          m->total_latency_s, m->uplink_user_bytes, m->downlink_bytes,
          m->accuracy * 100.0, m->total_joules());
    }
    // Break-even: after how many windows has the cloud protocol's cumulative
    // network time exceeded the edge protocol's one-time setup?
    const double per_window_overhead =
        cloud.mean_window_latency_s - edge.mean_window_latency_s;
    if (per_window_overhead > 0.0) {
      std::printf("%-10s edge pays off after %.1f windows "
                  "(setup %.2f s vs %.1f ms/window overhead)\n",
                  net.name, edge.setup_latency_s / per_window_overhead,
                  edge.setup_latency_s, per_window_overhead * 1000.0);
    }
  }

  std::printf("\n== privacy audits ==\n");
  platform::NetworkLink audit_cloud(60.0, 20.0);
  platform::NetworkLink audit_edge(60.0, 20.0);
  (void)platform::CloudProtocol(&server, &audit_cloud)
      .Run(stream, bundle.pipeline);
  (void)platform::EdgeProtocol(&server, &audit_edge).Run(stream);
  std::printf("cloud protocol:\n%s",
              platform::PrivacyAuditor(&audit_cloud).Report().c_str());
  std::printf("edge protocol:\n%s",
              platform::PrivacyAuditor(&audit_edge).Report().c_str());
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
