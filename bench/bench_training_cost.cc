/// Ablation A2: on-device retraining cost — the paper's energy constraint
/// proxy ("the training process [must] be very efficient without excessive
/// power consumption", §1).
///
/// Measures wall time of one incremental update as a function of update
/// epochs, support capacity, and backbone size (demo vs paper architecture).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

struct UpdateFixture {
  UpdateFixture(std::vector<size_t> dims, size_t support_capacity) {
    core::CloudConfig config = BenchCloudConfig();
    config.backbone_dims = std::move(dims);
    config.support_capacity = support_capacity;
    config.train.epochs = 2;  // the bench measures the *update*, not pretrain
    core::CloudInitializer cloud(config);
    auto bundle =
        Unwrap(cloud.Initialize(BenchCorpus(1, 3, 8.0),
                                sensors::ActivityRegistry::BaseActivities()),
               "cloud init");
    wire = bundle.SerializeToString();
    sensors::SyntheticGenerator gen(2);
    capture = gen.Generate(sensors::MakeGestureModel(77), 25.0);
  }

  std::string wire;
  sensors::Recording capture;
};

void RunUpdate(benchmark::State& state, UpdateFixture& fixture,
               size_t epochs) {
  for (auto _ : state) {
    state.PauseTiming();
    auto bundle =
        Unwrap(core::ModelBundle::FromString(fixture.wire), "clone");
    core::SupportSet support = std::move(bundle.support);
    core::EdgeModel model = std::move(bundle).ToEdgeModel();
    core::IncrementalOptions options;
    options.train.epochs = epochs;
    options.train.distill_weight = 1.0;
    options.train.seed = 3;
    core::IncrementalLearner learner(options);
    state.ResumeTiming();

    auto report = learner.LearnNewActivity(&model, &support, "Gesture Hi",
                                           {fixture.capture});
    benchmark::DoNotOptimize(report);
  }
}

void BM_Update_DemoBackbone_Epochs(benchmark::State& state) {
  static auto* fixture = new UpdateFixture({128, 64, 32}, 50);
  RunUpdate(state, *fixture, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Update_DemoBackbone_Epochs)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_Update_DemoBackbone_SupportSize(benchmark::State& state) {
  // Support capacity grows the retraining set: cost scales with it.
  static std::map<int64_t, UpdateFixture*>* fixtures =
      new std::map<int64_t, UpdateFixture*>();
  if (fixtures->count(state.range(0)) == 0) {
    (*fixtures)[state.range(0)] = new UpdateFixture(
        {128, 64, 32}, static_cast<size_t>(state.range(0)));
  }
  RunUpdate(state, *(*fixtures)[state.range(0)], 5);
}
BENCHMARK(BM_Update_DemoBackbone_SupportSize)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_Update_PaperBackbone(benchmark::State& state) {
  // The paper's exact architecture (~690k params), 3 update epochs.
  static auto* fixture =
      new UpdateFixture({1024, 512, 128, 64, 128}, 50);
  RunUpdate(state, *fixture, 3);
}
BENCHMARK(BM_Update_PaperBackbone)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Prototype rebuild alone (what calibration pays beyond training).
void BM_RebuildPrototypes(benchmark::State& state) {
  static auto* fixture = new UpdateFixture({128, 64, 32}, 50);
  auto bundle = Unwrap(core::ModelBundle::FromString(fixture->wire), "clone");
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();
  for (auto _ : state) {
    CheckOk(model.RebuildPrototypes(support), "rebuild");
  }
}
BENCHMARK(BM_RebuildPrototypes)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace magneto::bench

BENCHMARK_MAIN();
