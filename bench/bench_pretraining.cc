/// Experiment C6 (§3.2 / §4.1.2): the cloud-initialised model separates the
/// five base activities — Drive, E-scooter, Run, Still, Walk — via NCM over
/// the contrastive embedding.
///
/// The corpus is heterogeneous (every recording = a different user under
/// different capture conditions), like the paper's collection campaign.
/// Reports held-out accuracy, macro-F1, the confusion matrix, an embedding
/// ablation (trained vs untrained vs raw features), and the contrastive
/// margin ablation that motivates the library's roomy default.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

constexpr double kIntensity = 0.7;  // strong person-to-person variation

sensors::FeatureDataset Eval(const core::EdgeModel& model) {
  // const_cast-free: pipeline() is const, ProcessLabeled is const.
  return Unwrap(model.pipeline().ProcessLabeled(
                    HeterogeneousCorpus(999, 6, 1, 8.0, kIntensity)),
                "eval preprocessing");
}

void Run() {
  auto corpus = HeterogeneousCorpus(1, 8, 1, 8.0, kIntensity);

  core::CloudConfig config = BenchCloudConfig();
  config.train.epochs = 20;
  core::CloudInitializer cloud(config);
  core::CloudReport report;
  auto bundle = Unwrap(
      cloud.Initialize(corpus, sensors::ActivityRegistry::BaseActivities(),
                       &report),
      "cloud init");
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();
  auto eval = Eval(model);

  std::printf("== C6: base-activity recognition after cloud init ==\n");
  std::printf("corpus: 8 users x 5 activities x 8 s, per-capture context "
              "nuisance; eval: 6 unseen users\n");
  std::printf("training windows: %zu, final contrastive loss: %.4f\n",
              report.training_windows, report.train.final_embedding_loss());

  learn::ConfusionMatrix cm;
  for (const auto& [truth, pred] : Unwrap(model.Predict(eval), "predict")) {
    cm.Add(truth, pred);
  }
  std::printf("\n%s\n", cm.ToString(model.registry()).c_str());

  // --- embedding ablation ---------------------------------------------------
  std::printf("== embedding ablation (same support set, same eval) ==\n");
  const double trained = Accuracy(&model, eval);

  Rng rng(55);
  nn::Sequential random_net =
      nn::BuildMlp(preprocess::kNumFeatures, config.backbone_dims, &rng);
  core::EdgeModel random_model(model.pipeline(), std::move(random_net),
                               core::NcmClassifier{}, model.registry());
  CheckOk(random_model.RebuildPrototypes(support), "random prototypes");
  const double untrained = Accuracy(&random_model, eval);

  class IdentityEmbedder : public core::Embedder {
   public:
    Matrix Embed(const Matrix& features) override { return features; }
    size_t embedding_dim() const override { return preprocess::kNumFeatures; }
  };
  IdentityEmbedder identity;
  auto raw_ncm = Unwrap(
      core::NcmClassifier::FromSupportSet(support, &identity), "raw ncm");
  size_t raw_correct = 0;
  for (size_t i = 0; i < eval.size(); ++i) {
    auto pred =
        Unwrap(raw_ncm.Classify(eval.Row(i), eval.dim()), "raw classify");
    raw_correct += (pred.activity == eval.Label(i));
  }
  const double raw =
      static_cast<double>(raw_correct) / static_cast<double>(eval.size());

  std::printf("%-42s %6.1f%%   (embedding dim %zu)\n",
              "contrastive embedding + NCM (MAGNETO)", trained * 100.0,
              model.embedding_dim());
  std::printf("%-42s %6.1f%%   (embedding dim %zu)\n",
              "untrained backbone + NCM", untrained * 100.0,
              model.embedding_dim());
  std::printf("%-42s %6.1f%%   (dim %zu -- 2.5x the storage/compute)\n",
              "raw normalised features + NCM", raw * 100.0,
              preprocess::kNumFeatures);
  std::printf("(the learned space matches raw-feature accuracy at a fraction "
              "of the dimension, and — unlike raw features — supports the "
              "distillation-anchored updates of §3.3)\n");

  // --- classifier head: NCM vs kNN --------------------------------------------
  std::printf("\n== classifier head over the same embedding ==\n");
  std::printf("%-26s %10s %14s %16s\n", "classifier", "accuracy",
              "memory (KiB)", "classify cost");
  {
    auto time_per_query_us = [&](auto&& classify) {
      Matrix embeddings = model.Embed(eval.ToMatrix());
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < eval.size(); ++i) {
        classify(embeddings.RowPtr(i), embeddings.cols());
      }
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
                 .count() /
             static_cast<double>(eval.size());
    };

    // NCM (the paper's choice).
    size_t ncm_correct = 0;
    for (const auto& [truth, pred] : Unwrap(model.Predict(eval), "ncm")) {
      ncm_correct += (truth == pred);
    }
    const size_t ncm_bytes =
        model.classifier().num_classes() * model.embedding_dim() *
        sizeof(float);
    const double ncm_us = time_per_query_us([&](const float* e, size_t n) {
      auto p = model.classifier().Classify(e, n);
      CheckOk(p.status(), "ncm classify");
    });
    std::printf("%-26s %9.1f%% %14.2f %13.2f us\n", "NCM (paper)",
                100.0 * ncm_correct / eval.size(), ncm_bytes / 1024.0,
                ncm_us);

    // kNN over all support exemplars (related-work style).
    for (size_t k : {1u, 5u}) {
      core::KnnClassifier::Options options;
      options.k = k;
      auto knn = Unwrap(
          core::KnnClassifier::FromSupportSet(support, &model, options),
          "knn build");
      Matrix embeddings = model.Embed(eval.ToMatrix());
      size_t correct = 0;
      for (size_t i = 0; i < eval.size(); ++i) {
        auto pred = Unwrap(
            knn.Classify(embeddings.RowPtr(i), embeddings.cols()), "knn");
        correct += (pred.activity == eval.Label(i));
      }
      const double knn_us = time_per_query_us([&](const float* e, size_t n) {
        auto p = knn.Classify(e, n);
        CheckOk(p.status(), "knn classify");
      });
      std::printf("kNN (k=%zu)%17s %9.1f%% %14.2f %13.2f us\n", k, "",
                  100.0 * correct / eval.size(), knn.MemoryBytes() / 1024.0,
                  knn_us);
    }
    std::printf("(NCM stores one prototype per class and adds classes with "
                "a single mean — the property §3.1 builds on)\n");
  }

  // --- class-count scaling -----------------------------------------------------
  std::printf("\n== class-count scaling (canonical generators, 3 recordings/"
              "class) ==\n");
  std::printf("%-10s %10s %10s %16s\n", "classes", "accuracy", "macro-F1",
              "hardest class");
  for (bool extended : {false, true}) {
    sensors::ActivityLibrary lib = extended
                                       ? sensors::ExtendedActivityLibrary()
                                       : sensors::DefaultActivityLibrary();
    sensors::ActivityRegistry reg =
        extended ? sensors::ActivityRegistry::ExtendedActivities()
                 : sensors::ActivityRegistry::BaseActivities();
    sensors::SyntheticGenerator train_gen(61), eval_gen(62);
    core::CloudConfig scale_config = BenchCloudConfig();
    scale_config.train.epochs = 20;
    core::CloudInitializer scale_cloud(scale_config);
    auto scale_bundle = Unwrap(
        scale_cloud.Initialize(train_gen.GenerateDataset(lib, 3, 8.0), reg),
        "scale init");
    core::EdgeModel scale_model = std::move(scale_bundle).ToEdgeModel();
    auto scale_eval = Unwrap(scale_model.pipeline().ProcessLabeled(
                                 eval_gen.GenerateDataset(lib, 2, 8.0)),
                             "scale eval");
    learn::ConfusionMatrix scale_cm;
    for (const auto& [truth, pred] :
         Unwrap(scale_model.Predict(scale_eval), "scale predict")) {
      scale_cm.Add(truth, pred);
    }
    sensors::ActivityId hardest = -1;
    double worst = 2.0;
    for (sensors::ActivityId cls : scale_cm.Classes()) {
      if (scale_cm.Recall(cls) < worst) {
        worst = scale_cm.Recall(cls);
        hardest = cls;
      }
    }
    std::printf("%-10zu %9.1f%% %10.3f %12s %.0f%%\n", lib.size(),
                scale_cm.Accuracy() * 100.0, scale_cm.MacroF1(),
                reg.NameOf(hardest).ValueOrDie().c_str(), worst * 100.0);
  }

  // --- margin ablation --------------------------------------------------------
  std::printf("\n== contrastive margin ablation ==\n");
  std::printf("%-10s %12s\n", "margin", "accuracy");
  for (double margin : {0.5, 1.0, 3.0, 5.0, 10.0}) {
    core::CloudConfig m_config = BenchCloudConfig();
    m_config.train.epochs = 20;
    m_config.train.margin = margin;
    core::CloudInitializer m_cloud(m_config);
    auto m_bundle = Unwrap(
        m_cloud.Initialize(corpus, sensors::ActivityRegistry::BaseActivities()),
        "margin init");
    core::EdgeModel m_model = std::move(m_bundle).ToEdgeModel();
    std::printf("%-10.1f %11.1f%%%s\n", margin,
                Accuracy(&m_model, eval) * 100.0,
                margin == 5.0 ? "   <- library default" : "");
  }
}

}  // namespace
}  // namespace magneto::bench

int main() {
  magneto::bench::Run();
  return 0;
}
