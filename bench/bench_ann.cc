// ANN support-set index at hundred-class scale: IVF-Flat candidate selection
// behind the KNN classifier, swept over nprobe at 50/200/500 procedural
// activity classes (LargeVocabularyLibrary), fp32 and int8 exemplar storage.
// For every cell the bench reports recall@1/recall@5 against the exact scan
// of the same storage, plus single-thread classify latency measured
// interleaved (exact and ANN alternate short rounds so scheduler noise hits
// both alike).
//
// The bench *enforces* the acceptance contract:
//   - at 200 classes, fp32, default nprobe (8): recall@1 >= 0.95 AND
//     classify speedup >= 5x over the exact scan,
//   - the exact fallback (index below min_index_size) is byte-identical to
//     an ANN-disabled classifier,
//   - ANN predictions are bit-identical across thread counts (1/4/8 — the
//     in-process equivalent of sweeping MAGNETO_THREADS).
//
// Emits BENCH_ann.json (+ metrics sidecar with the ann.* counters).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace magneto::bench {
namespace {

constexpr double kMinRecallAt1 = 0.95;
constexpr double kMinSpeedup = 5.0;
constexpr size_t kGateClasses = 200;
const size_t kGateNprobe = core::AnnOptions{}.nprobe;  // the default knob

constexpr size_t kNprobes[] = {1, 2, 4, 8, 16, 32};
constexpr size_t kClassCounts[] = {50, 200, 500};

/// Untrained He-initialised MLP: a seeded random projection preserves the
/// cluster geometry of the 80-feature space well enough for index
/// experiments, at none of the training cost of a real backbone.
class MlpEmbedder : public core::Embedder {
 public:
  MlpEmbedder() {
    Rng rng(123);
    net_ = nn::BuildMlp(preprocess::kNumFeatures, {64, 32}, &rng);
  }
  Matrix Embed(const Matrix& features) override {
    return net_.Forward(features, &ws_, /*training=*/false);
  }
  size_t embedding_dim() const override { return 32; }

 private:
  nn::Sequential net_;
  nn::ForwardWorkspace ws_;
};

struct VocabularyData {
  core::SupportSet support{1, core::SelectionStrategy::kRandom};
  sensors::FeatureDataset queries;
};

/// `classes` procedural activities, `per_class` support windows + `queries`
/// query windows each, through a pipeline fitted on the same corpus (the
/// cloud's job in a real deployment).
VocabularyData MakeVocabulary(size_t classes, size_t per_class,
                              size_t queries_per_class) {
  sensors::LargeVocabularyOptions vocab;
  vocab.num_classes = classes;
  vocab.overlap = 0.3;
  vocab.seed = 1;
  sensors::SyntheticGenerator gen(2);
  const double seconds =
      static_cast<double>(per_class + queries_per_class) + 0.5;
  auto corpus = gen.GenerateVocabularyDataset(vocab, 1, seconds);

  preprocess::Pipeline pipeline{preprocess::PipelineConfig{}};
  const sensors::FeatureDataset features =
      Unwrap(pipeline.Fit(corpus), "pipeline fit");

  VocabularyData data;
  data.support =
      core::SupportSet(per_class, core::SelectionStrategy::kRandom);
  Rng rng(3);
  for (const auto& [id, count] : features.ClassCounts()) {
    sensors::FeatureDataset class_rows = features.FilterByClass(id);
    sensors::FeatureDataset support_rows;
    for (size_t i = 0; i < class_rows.size(); ++i) {
      if (i < per_class) {
        support_rows.Append(class_rows.Row(i), class_rows.dim(), id);
      } else {
        data.queries.Append(class_rows.Row(i), class_rows.dim(), id);
      }
    }
    CheckOk(data.support.SetClass(id, support_rows, nullptr, &rng),
            "set class");
  }
  return data;
}

/// Embedded queries (rows) through the bench embedder.
Matrix EmbedQueries(core::Embedder* embedder,
                    const sensors::FeatureDataset& queries) {
  return embedder->Embed(queries.ToMatrix());
}

core::KnnClassifier BuildClassifier(const core::SupportSet& support,
                                    core::Embedder* embedder, bool int8,
                                    bool ann, size_t nprobe) {
  core::KnnClassifier::Options options;
  options.quantize_exemplars = int8;
  options.ann.enable = ann;
  options.ann.nprobe = nprobe;
  return Unwrap(core::KnnClassifier::FromSupportSet(support, embedder,
                                                    options),
                "build classifier");
}

/// Fraction of queries whose ANN top-1 / top-5 neighbour sets contain the
/// exact scan's answers (computed on the same exemplar storage, so int8
/// recall is measured against the int8 exact scan).
struct Recall {
  double at1 = 0.0;
  double at5 = 0.0;
};

Recall MeasureRecall(const core::KnnClassifier& exact,
                     const core::KnnClassifier& ann, const Matrix& queries) {
  core::KnnClassifier::Scratch se, sa;
  size_t hit1 = 0, hit5 = 0;
  for (size_t i = 0; i < queries.rows(); ++i) {
    auto truth = Unwrap(
        exact.Neighbors(queries.RowPtr(i), queries.cols(), 5, &se), "exact");
    auto got = Unwrap(
        ann.Neighbors(queries.RowPtr(i), queries.cols(), 5, &sa), "ann");
    if (!got.empty() && !truth.empty() && got[0].second == truth[0].second) {
      ++hit1;
    }
    size_t found = 0;
    for (const auto& [td, ti] : truth) {
      for (const auto& [gd, gi] : got) {
        if (gi == ti) {
          ++found;
          break;
        }
      }
    }
    if (found == truth.size()) ++hit5;
  }
  const double n = static_cast<double>(queries.rows());
  return {static_cast<double>(hit1) / n, static_cast<double>(hit5) / n};
}

/// Mean single-thread classify latency over the query set, one round.
double ClassifyRoundMicros(const core::KnnClassifier& classifier,
                           const Matrix& queries,
                           core::KnnClassifier::Scratch* scratch) {
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.rows(); ++i) {
    CheckOk(classifier.Classify(queries.RowPtr(i), queries.cols(), scratch)
                .status(),
            "classify");
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         static_cast<double>(queries.rows());
}

/// Interleaved best-of-rounds: exact and ANN alternate within each pass.
struct LatencyPair {
  double exact_us = 0.0;
  double ann_us = 0.0;
};

LatencyPair MeasureLatency(const core::KnnClassifier& exact,
                           const core::KnnClassifier& ann,
                           const Matrix& queries, int rounds = 5) {
  SetParallelThreads(1);
  core::KnnClassifier::Scratch se, sa;
  (void)ClassifyRoundMicros(exact, queries, &se);  // warm both paths
  (void)ClassifyRoundMicros(ann, queries, &sa);
  LatencyPair best;
  for (int r = 0; r < rounds; ++r) {
    const double e = ClassifyRoundMicros(exact, queries, &se);
    const double a = ClassifyRoundMicros(ann, queries, &sa);
    if (r == 0 || e < best.exact_us) best.exact_us = e;
    if (r == 0 || a < best.ann_us) best.ann_us = a;
  }
  SetParallelThreads(0);
  return best;
}

/// FNV-1a over the raw prediction bytes of every query — the thread-count
/// determinism fingerprint.
uint64_t PredictionFingerprint(const core::KnnClassifier& classifier,
                               const Matrix& queries) {
  core::KnnClassifier::Scratch scratch;
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < queries.rows(); ++i) {
    const core::Prediction p =
        Unwrap(classifier.Classify(queries.RowPtr(i), queries.cols(),
                                   &scratch),
               "classify");
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(&p);
    for (size_t b = 0; b < sizeof(p); ++b) {
      h = (h ^ bytes[b]) * 1099511628211ull;
    }
  }
  return h;
}

int Run() {
  MlpEmbedder embedder;
  int failures = 0;
  double gate_recall1 = 0.0, gate_speedup = 0.0;

  obs::JsonWriter json = BenchJson("ann");
  json.Field("recall_gate", kMinRecallAt1)
      .Field("speedup_gate", kMinSpeedup)
      .Field("gate_classes", static_cast<uint64_t>(kGateClasses))
      .Field("gate_nprobe", static_cast<uint64_t>(kGateNprobe));
  json.Key("sweep").BeginArray();

  for (size_t classes : kClassCounts) {
    // ~50 exemplars/class at 50/200 classes, leaner at 500 to keep the
    // bench inside its budget; 2 query windows per class.
    const size_t per_class = classes >= 500 ? 24 : 50;
    VocabularyData data = MakeVocabulary(classes, per_class, 2);
    const Matrix queries = EmbedQueries(&embedder, data.queries);
    std::printf("== %zu classes (%zu exemplars, %zu queries) ==\n", classes,
                data.support.TotalSize(), queries.rows());

    for (bool int8 : {false, true}) {
      core::KnnClassifier exact =
          BuildClassifier(data.support, &embedder, int8, false, 0);
      for (size_t nprobe : kNprobes) {
        core::KnnClassifier ann =
            BuildClassifier(data.support, &embedder, int8, true, nprobe);
        if (!ann.ann_active()) {
          std::fprintf(stderr, "FAIL: index inactive at %zu classes\n",
                       classes);
          return 1;
        }
        const Recall recall = MeasureRecall(exact, ann, queries);
        const LatencyPair lat = MeasureLatency(exact, ann, queries);
        const double speedup = lat.exact_us / lat.ann_us;
        std::printf(
            "%s nprobe %2zu: recall@1 %.3f  recall@5 %.3f  exact %7.1f us  "
            "ann %7.1f us  speedup %5.2fx\n",
            int8 ? "int8" : "fp32", nprobe, recall.at1, recall.at5,
            lat.exact_us, lat.ann_us, speedup);
        json.BeginObject()
            .Field("classes", static_cast<uint64_t>(classes))
            .Field("exemplars", static_cast<uint64_t>(data.support.TotalSize()))
            .Field("storage", int8 ? "int8" : "fp32")
            .Field("nprobe", static_cast<uint64_t>(nprobe))
            .Field("recall_at_1", recall.at1)
            .Field("recall_at_5", recall.at5)
            .Field("exact_us", lat.exact_us)
            .Field("ann_us", lat.ann_us)
            .Field("speedup", speedup)
            .EndObject();
        if (classes == kGateClasses && !int8 && nprobe == kGateNprobe) {
          gate_recall1 = recall.at1;
          gate_speedup = speedup;
        }
      }
    }

    // Exact-fallback gate: ann.enable with an out-of-reach min_index_size
    // must serve byte-identical predictions to an ANN-disabled classifier.
    if (classes == kGateClasses) {
      core::KnnClassifier::Options fallback_options;
      fallback_options.ann.enable = true;
      fallback_options.ann.min_index_size = data.support.TotalSize() + 1;
      core::KnnClassifier fallback = Unwrap(
          core::KnnClassifier::FromSupportSet(data.support, &embedder,
                                              fallback_options),
          "fallback");
      core::KnnClassifier plain =
          BuildClassifier(data.support, &embedder, false, false, 0);
      if (fallback.ann_active()) {
        std::fprintf(stderr, "FAIL: fallback built an index\n");
        ++failures;
      }
      core::KnnClassifier::Scratch sf, sp;
      bool identical = true;
      for (size_t i = 0; i < queries.rows(); ++i) {
        const core::Prediction a = Unwrap(
            fallback.Classify(queries.RowPtr(i), queries.cols(), &sf), "f");
        const core::Prediction b = Unwrap(
            plain.Classify(queries.RowPtr(i), queries.cols(), &sp), "p");
        identical &= std::memcmp(&a, &b, sizeof(core::Prediction)) == 0;
      }
      json.BeginObject()
          .Field("classes", static_cast<uint64_t>(classes))
          .Field("check", "exact_fallback_byte_identical")
          .Field("pass", identical)
          .EndObject();
      if (!identical) {
        std::fprintf(stderr, "FAIL: exact fallback diverged\n");
        ++failures;
      } else {
        std::printf("exact fallback: byte-identical to pre-ANN scan\n");
      }

      // Thread-count determinism: index build + classify fingerprints must
      // agree across pool sizes.
      uint64_t fingerprints[3] = {0, 0, 0};
      const size_t thread_counts[3] = {1, 4, 8};
      for (int t = 0; t < 3; ++t) {
        SetParallelThreads(thread_counts[t]);
        core::KnnClassifier ann = BuildClassifier(data.support, &embedder,
                                                  false, true, kGateNprobe);
        fingerprints[t] = PredictionFingerprint(ann, queries);
      }
      SetParallelThreads(0);
      const bool deterministic = fingerprints[0] == fingerprints[1] &&
                                 fingerprints[0] == fingerprints[2];
      json.BeginObject()
          .Field("classes", static_cast<uint64_t>(classes))
          .Field("check", "thread_count_bit_identical")
          .Field("pass", deterministic)
          .Field("fingerprint", fingerprints[0])
          .EndObject();
      if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: predictions differ across thread counts "
                     "(%016llx %016llx %016llx)\n",
                     static_cast<unsigned long long>(fingerprints[0]),
                     static_cast<unsigned long long>(fingerprints[1]),
                     static_cast<unsigned long long>(fingerprints[2]));
        ++failures;
      } else {
        std::printf("thread sweep 1/4/8: bit-identical predictions\n");
      }
    }
  }
  json.EndArray();

  json.Field("gate_recall_at_1", gate_recall1)
      .Field("gate_speedup", gate_speedup)
      .EndObject();
  if (!json.WriteToFile("BENCH_ann.json")) {
    std::fprintf(stderr, "cannot write BENCH_ann.json\n");
    return 1;
  }
  std::printf("wrote BENCH_ann.json\n");
  WriteMetricsSnapshot("BENCH_ann.metrics.json");

  if (gate_recall1 < kMinRecallAt1) {
    std::fprintf(stderr, "FAIL: recall@1 %.3f < %.2f at %zu classes\n",
                 gate_recall1, kMinRecallAt1, kGateClasses);
    ++failures;
  }
  if (gate_speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx < %.1fx at %zu classes\n",
                 gate_speedup, kMinSpeedup, kGateClasses);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace magneto::bench

int main() { return magneto::bench::Run(); }
